//! Leader election in an asynchronous network of clustered data centers
//! (Corollary 1.3): every node deterministically learns the identifier of the elected
//! leader, under several adversarial delay schedules.
//!
//! ```text
//! cargo run --example leader_election
//! ```

use det_synchronizer::prelude::*;

fn main() {
    // Six "data centers" of eight tightly-connected machines each, arranged in a ring
    // with single links between neighboring centers — a topology where naive flooding
    // is badly distorted by slow inter-center links.
    let graph = Graph::clustered_ring(6, 8);
    println!(
        "electing a leader among {} nodes ({} links)",
        graph.node_count(),
        graph.edge_count()
    );

    for delay in DelayModel::standard_suite(7) {
        let report = run_synchronized_leader_election(&graph, delay.clone())
            .expect("leader election run");
        assert!(report.outputs.iter().all(|o| *o == Some(report.leader)));
        println!(
            "  adversary {:<28} leader = node {:<3} time = {:>7.2}  msgs = {:>7}",
            format!("{delay:?}"),
            report.leader,
            report.metrics.time_to_output.unwrap_or(f64::NAN),
            report.metrics.total_messages()
        );
    }

    println!("\nevery adversary produced the same leader at every node");
}
