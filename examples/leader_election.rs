//! Leader election in an asynchronous network of clustered data centers
//! (Corollary 1.3): every node deterministically learns the identifier of the elected
//! leader, under several adversarial delay schedules. The election algorithm is an
//! ordinary event-driven algorithm driven through the `Session` API.
//!
//! ```text
//! cargo run --example leader_election
//! ```

use det_synchronizer::algos::leader::LeaderElection;
use det_synchronizer::covers::builder::build_sparse_cover;
use det_synchronizer::graph::metrics;
use det_synchronizer::prelude::*;
use std::sync::Arc;

fn main() {
    // Six "data centers" of eight tightly-connected machines each, arranged in a ring
    // with single links between neighboring centers — a topology where naive flooding
    // is badly distorted by slow inter-center links.
    let graph = Graph::clustered_ring(6, 8);
    println!("electing a leader among {} nodes ({} links)", graph.node_count(), graph.edge_count());

    // The election convergecasts inside the clusters of a cover whose radius reaches
    // the whole graph (see ds-algos::leader for the construction details).
    let diameter = metrics::diameter(&graph).expect("connected network");
    let cover = Arc::new(build_sparse_cover(&graph, diameter.max(1)));

    for delay in DelayModel::standard_suite(7) {
        let run = Session::on(&graph)
            .delay(delay.clone())
            .synchronizer(SyncKind::DetAuto)
            .run(|v| LeaderElection::new(v, cover.clone()))
            .expect("leader election run");
        let leader = run.outputs.iter().flatten().copied().next().expect("a leader is elected");
        assert!(run.outputs.iter().all(|o| *o == Some(leader)));
        println!(
            "  adversary {:<28} leader = node {:<3} time = {:>7.2}  msgs = {:>7}",
            format!("{delay:?}"),
            leader,
            run.metrics.time_to_output.unwrap_or(f64::NAN),
            run.metrics.total_messages()
        );
    }

    println!("\nevery adversary produced the same leader at every node");
}
