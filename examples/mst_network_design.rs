//! Minimum spanning tree of a weighted communication network (Corollary 1.4): the
//! nodes of an asynchronous network deterministically agree on the cheapest spanning
//! backbone, and the result is checked against a centralized Kruskal computation.
//!
//! ```text
//! cargo run --example mst_network_design
//! ```

use det_synchronizer::graph::weights::{minimum_spanning_tree, total_weight, EdgeWeights};
use det_synchronizer::prelude::*;

fn main() {
    // A sparse random network of 48 routers with distinct link costs.
    let graph = Graph::random_connected(48, 0.08, 99);
    let weights = EdgeWeights::random_distinct(&graph, 99);
    println!(
        "computing the MST of a {}-node / {}-link network asynchronously",
        graph.node_count(),
        graph.edge_count()
    );

    let report = run_synchronized_mst(&graph, &weights, DelayModel::jitter(5)).expect("MST run");
    println!("{}", report.metrics);
    println!("  distributed MST edges: {}", report.tree_edges.len());

    // Centralized reference: Kruskal on the same weights.
    let reference = minimum_spanning_tree(&graph, &weights);
    let mut expected: Vec<(NodeId, NodeId)> =
        reference.iter().map(|&e| graph.endpoints(e)).collect();
    expected.sort();
    assert_eq!(report.tree_edges, expected);
    println!(
        "  matches Kruskal exactly (total weight {})",
        total_weight(&weights, &reference)
    );
}
