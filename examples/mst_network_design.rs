//! Minimum spanning tree of a weighted communication network (Corollary 1.4): the
//! nodes of an asynchronous network deterministically agree on the cheapest spanning
//! backbone, and the result is checked against a centralized Kruskal computation.
//! The MST algorithm is an ordinary event-driven algorithm driven through the
//! `Session` API (the `run_synchronized_mst` wrapper packages the same steps).
//!
//! ```text
//! cargo run --example mst_network_design
//! ```

use det_synchronizer::algos::mst::MstAlgorithm;
use det_synchronizer::covers::builder::build_sparse_cover;
use det_synchronizer::graph::metrics;
use det_synchronizer::graph::weights::{minimum_spanning_tree, total_weight, EdgeWeights};
use det_synchronizer::prelude::*;
use std::sync::Arc;

fn main() {
    // A sparse random network of 48 routers with distinct link costs.
    let graph = Graph::random_connected(48, 0.08, 99);
    let weights = EdgeWeights::random_distinct(&graph, 99);
    println!(
        "computing the MST of a {}-node / {}-link network asynchronously",
        graph.node_count(),
        graph.edge_count()
    );

    // The filtering convergecast runs inside a graph-spanning cover.
    let diameter = metrics::diameter(&graph).expect("connected network");
    let cover = Arc::new(build_sparse_cover(&graph, diameter.max(1)));

    let run = Session::on(&graph)
        .delay(DelayModel::jitter(5))
        .synchronizer(SyncKind::DetAuto)
        .run(|v| MstAlgorithm::new(&graph, &weights, v, cover.clone()))
        .expect("MST run");
    println!("{}", run.metrics);

    // Every node outputs its incident MST edges; their union is the tree.
    let mut tree_edges: Vec<(NodeId, NodeId)> =
        run.outputs.iter().flatten().flat_map(|edges| edges.iter().copied()).collect();
    tree_edges.sort();
    tree_edges.dedup();
    println!("  distributed MST edges: {}", tree_edges.len());

    // Centralized reference: Kruskal on the same weights.
    let reference = minimum_spanning_tree(&graph, &weights);
    let mut expected: Vec<(NodeId, NodeId)> =
        reference.iter().map(|&e| graph.endpoints(e)).collect();
    expected.sort();
    assert_eq!(tree_edges, expected);
    println!("  matches Kruskal exactly (total weight {})", total_weight(&weights, &reference));
}
