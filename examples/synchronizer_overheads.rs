//! Compare every execution strategy — direct (lock-step ground truth), Awerbuch's α
//! and β baselines, and the paper's deterministic synchronizer — on the same workload
//! (single-source flooding), showing the message-complexity trade-off the paper
//! targets: α pays Θ(m) control messages per pulse, β pays Θ(n) per pulse plus Θ(D)
//! time, while the cover-based synchronizer pays only polylogarithmic factors over
//! the algorithm's own messages.
//!
//! The sweep is one loop over `SyncKind::standard_suite()` through the `Session`
//! API, and the table is rendered by `ds-bench`'s shared table path — the same code
//! the `exp_*` binaries use.
//!
//! ```text
//! cargo run --example synchronizer_overheads
//! ```

use det_synchronizer::algos::flood::FloodAlgorithm;
use det_synchronizer::prelude::*;
use ds_bench::{print_table, Row};

fn main() {
    let graph = Graph::grid(8, 8);
    let source = NodeId(0);
    let session = Session::on(&graph).delay(DelayModel::jitter(1));

    let mut rows = Vec::new();
    for kind in SyncKind::standard_suite() {
        let report = session
            .clone()
            .synchronizer(kind.clone())
            .compare(|v| FloodAlgorithm::new(&graph, v, source, 1))
            .expect("flood run");
        assert!(report.outputs_match(), "{} diverged from the ground truth", kind.label());
        rows.push(Row {
            label: format!("flood/grid64/{}", kind.label()),
            values: vec![
                ("T(A)", report.sync_rounds as f64),
                ("M(A)", report.sync_messages as f64),
                ("time", report.async_metrics.time_to_output.unwrap_or(f64::NAN)),
                ("msgs", report.async_metrics.total_messages() as f64),
                ("timeOvh", report.time_overhead().unwrap_or(f64::NAN)),
                ("msgOvh", report.message_overhead()),
            ],
        });
    }

    print_table("synchronizer overheads on single-source flooding (8x8 grid)", &rows);
    println!("every strategy reproduced the synchronous outputs exactly");
}
