//! Compare the deterministic synchronizer against Awerbuch's α and β baselines on the
//! same workload (single-source flooding), showing the message-complexity trade-off
//! the paper targets: α pays Θ(m) control messages per pulse, β pays Θ(n) per pulse
//! plus Θ(D) time, while the cover-based synchronizer pays only polylogarithmic
//! factors over the algorithm's own messages.
//!
//! ```text
//! cargo run --example synchronizer_overheads
//! ```

use det_synchronizer::algos::flood::FloodAlgorithm;
use det_synchronizer::algos::runner::compare_runs;
use det_synchronizer::netsim::async_engine::{run_async, SimLimits};
use det_synchronizer::netsim::sync_engine::run_sync;
use det_synchronizer::prelude::*;
use det_synchronizer::sync::alpha::AlphaSynchronizer;
use det_synchronizer::sync::beta::{BetaSynchronizer, SpanningTree};

fn main() {
    let graph = Graph::grid(8, 8);
    let source = NodeId(0);
    let delay = DelayModel::jitter(1);
    let make = |v: NodeId| FloodAlgorithm::new(&graph, v, source, 1);

    let sync = run_sync(&graph, make, 10_000).expect("synchronous run");
    let t = sync.rounds_to_quiescence;
    println!("flooding on an 8x8 grid: T(A) = {t} rounds, M(A) = {} messages\n", sync.messages);

    // α synchronizer.
    let alpha = run_async(
        &graph,
        delay.clone(),
        |v| AlphaSynchronizer::new(&graph, v, make(v), t),
        SimLimits::default(),
    )
    .expect("alpha run");
    println!("  alpha        : {}", alpha.metrics);

    // β synchronizer.
    let tree = SpanningTree::bfs(&graph, source);
    let beta = run_async(
        &graph,
        delay.clone(),
        |v| BetaSynchronizer::new(tree.clone(), v, make(v), t),
        SimLimits::default(),
    )
    .expect("beta run");
    println!("  beta         : {}", beta.metrics);

    // The paper's deterministic synchronizer.
    let det = compare_runs(&graph, delay, make).expect("synchronized run");
    assert!(det.outputs_match());
    println!("  deterministic: {}", det.async_metrics);
    println!(
        "\n  deterministic synchronizer overheads: time x{:.1}, messages x{:.1}",
        det.time_overhead().unwrap_or(f64::NAN),
        det.message_overhead()
    );
}
