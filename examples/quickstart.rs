//! Quickstart: run a single-source BFS asynchronously through the deterministic
//! synchronizer and print every node's distance, plus the run's cost accounting.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use det_synchronizer::prelude::*;

fn main() {
    // An 8×8 grid: 64 nodes, diameter 14.
    let graph = Graph::grid(8, 8);
    let source = NodeId(0);

    // Pseudo-random adversarial message delays (deterministic for the given seed).
    let delay = DelayModel::jitter(2024);

    let report = run_synchronized_bfs(&graph, source, delay).expect("synchronized BFS run");

    println!("asynchronous deterministic BFS from {source} on an 8x8 grid");
    println!("{}", report.metrics);
    println!();
    for row in 0..8 {
        let line: Vec<String> = (0..8)
            .map(|col| format!("{:2}", report.outputs[&NodeId(row * 8 + col)].distance))
            .collect();
        println!("  {}", line.join(" "));
    }

    // The distances are exact — identical to a synchronous (lock-step) execution.
    let reference = det_synchronizer::graph::metrics::bfs_distances(&graph, source);
    for v in graph.nodes() {
        assert_eq!(report.outputs[&v].distance, reference[v.index()].unwrap() as u64);
    }
    println!("\nall {} distances match the synchronous ground truth", graph.node_count());
}
