//! Quickstart: run a single-source BFS asynchronously through the deterministic
//! synchronizer — via the `Session` builder, the workspace's single execution entry
//! point — and print every node's distance, plus the run's cost accounting.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use det_synchronizer::algos::bfs::BfsAlgorithm;
use det_synchronizer::prelude::*;

fn main() {
    // An 8×8 grid: 64 nodes, diameter 14.
    let graph = Graph::grid(8, 8);
    let source = NodeId(0);

    // Pseudo-random adversarial message delays (deterministic for the given seed).
    // `compare` runs the synchronous ground truth first, then the synchronized
    // asynchronous execution, and reports both.
    let report = Session::on(&graph)
        .delay(DelayModel::jitter(2024))
        .synchronizer(SyncKind::DetAuto)
        .compare(|v| BfsAlgorithm::new(&graph, v, &[source]))
        .expect("synchronized BFS run");

    println!("asynchronous deterministic BFS from {source} on an 8x8 grid");
    println!("{}", report.async_metrics);
    println!();
    for row in 0..8 {
        let line: Vec<String> = (0..8)
            .map(|col| format!("{:2}", report.async_outputs[row * 8 + col].unwrap().distance))
            .collect();
        println!("  {}", line.join(" "));
    }

    // The distances are exact — identical to a synchronous (lock-step) execution.
    assert!(report.outputs_match());
    let reference = det_synchronizer::graph::metrics::bfs_distances(&graph, source);
    for v in graph.nodes() {
        assert_eq!(
            report.async_outputs[v.index()].unwrap().distance,
            reference[v.index()].unwrap() as u64
        );
    }
    println!(
        "\nall {} distances match the synchronous ground truth \
         (time x{:.1}, messages x{:.1})",
        graph.node_count(),
        report.time_overhead().unwrap_or(f64::NAN),
        report.message_overhead()
    );
}
