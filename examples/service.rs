//! Serving many simulations (DESIGN.md §11): a batch of independent BFS
//! requests dispatched through a `SessionPool`, sharing cover builds via the
//! cover cache and recycling engine state between runs — with every pooled
//! schedule bit-identical to the same scenario run standalone.
//!
//! ```text
//! cargo run --example service
//! ```

use det_synchronizer::algos::bfs::BfsAlgorithm;
use det_synchronizer::prelude::*;
use det_synchronizer::sync::service::{ServiceRequest, SessionPool};

fn main() {
    let grid = Graph::grid(8, 8);
    let torus = Graph::torus(6, 6);
    let requests: Vec<ServiceRequest<'_>> = (0..8)
        .map(|i| {
            let graph = if i % 2 == 0 { &grid } else { &torus };
            ServiceRequest::on(graph) // DetAuto by default
                .delay(DelayModel::jitter(3 + i)) // one adversary per request
        })
        .collect();

    let pool = SessionPool::new(2); // 2 worker threads (0 = inline)
    let results = pool.run_batch::<BfsAlgorithm, _>(&requests, |i, v| {
        BfsAlgorithm::new(requests[i].graph, v, &[NodeId(0)])
    });
    for (i, result) in results.iter().enumerate() {
        let run = result.as_ref().expect("pooled run");
        assert_eq!(run.outputs.len(), requests[i].graph.node_count());

        // The headline guarantee: the pooled schedule is bit-identical to the
        // same request run through a standalone `Session`.
        let solo = Session::on(requests[i].graph)
            .delay(requests[i].delay.clone())
            .synchronizer(SyncKind::DetAuto)
            .run(|v| BfsAlgorithm::new(requests[i].graph, v, &[NodeId(0)]))
            .expect("standalone run");
        assert_eq!(run.outputs, solo.outputs);
        assert_eq!(run.metrics, solo.metrics);
        println!(
            "request {i}: {} nodes, {} events, time-to-quiescence {}",
            run.outputs.len(),
            run.metrics.events,
            run.metrics.time_to_quiescence
        );
    }

    // Dispatch is by submission index, so here each topology stays on one
    // worker: its config is built exactly once and shared via Arc.
    assert_eq!(pool.cache().misses(), 2);
    assert_eq!(pool.cache().hits(), 6);
    println!(
        "cover cache: {} misses, {} hits; engine slabs: {} checkouts, {} reuses",
        pool.cache().misses(),
        pool.cache().hits(),
        pool.bank().checkouts(),
        pool.bank().reuses()
    );
}
