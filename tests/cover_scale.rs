//! Release-mode cover-construction scale tests: the dense-id pipeline on the E9
//! tier graphs (4096 nodes, the size where the old `BTreeMap` builder started to
//! dominate setup time).
//!
//! Two properties are pinned:
//!
//! * **Validity at scale** — `SparseCover::validate` (Definition 2.1: tree edges
//!   exist, every `d`-ball covered) holds on 4096-node grid / torus /
//!   random-regular graphs; the pre-existing cover tests stop at ~60 nodes.
//! * **Bit-identical construction** — the rewritten builder produces exactly the
//!   clusters of the legacy (`BTreeMap`-based) builder on the tier graphs: same
//!   members, same tree parents, same children order, same layer order.
//!
//! Ignored under debug builds (the legacy builder is too slow unoptimized); the
//! CI release perf job runs this file via `cargo test --release --test
//! cover_scale`.

use det_synchronizer::covers::builder::{build_layered_sparse_cover, build_sparse_cover};
use det_synchronizer::covers::legacy;
use det_synchronizer::graph::Graph;

fn tier_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("grid/4096", Graph::grid(64, 64)),
        ("torus/4096", Graph::torus(64, 64)),
        ("random-regular/4096", Graph::random_regular(4096, 4, 4096)),
    ]
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-mode scale test; debug builds are too slow")]
fn covers_validate_on_4096_node_tier_graphs() {
    for (label, graph) in tier_graphs() {
        for d in [2, 8] {
            let cover = build_sparse_cover(&graph, d);
            cover.validate(&graph).unwrap_or_else(|e| panic!("{label} d={d}: {e}"));
            let log_n = (graph.node_count() as f64).log2().ceil() as usize;
            assert!(
                cover.max_membership() <= log_n + 1,
                "{label} d={d}: membership {} exceeds log n + 1",
                cover.max_membership()
            );
            assert!(
                cover.clusters.iter().all(|c| c.member_count() > 0),
                "{label} d={d}: empty cluster"
            );
        }
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-mode scale test; debug builds are too slow")]
fn dense_builder_matches_legacy_on_tier_graphs() {
    for (label, graph) in tier_graphs() {
        for d in [2, 8] {
            let new = build_sparse_cover(&graph, d);
            let old = legacy::build_sparse_cover(&graph, d);
            assert_eq!(new, old, "{label} d={d}: cover diverged from the legacy builder");
        }
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-mode scale test; debug builds are too slow")]
fn layered_dense_builder_matches_legacy_on_a_tier_graph() {
    // One layered build (the structure `SynchronizerConfig::build` consumes) on
    // the 4096-node grid: every layer must match the legacy construction.
    let graph = Graph::grid(64, 64);
    let new = build_layered_sparse_cover(&graph, 16);
    let old = legacy::build_layered_sparse_cover(&graph, 16);
    assert_eq!(new.layers(), old.layers());
    for (j, (a, b)) in new.iter().zip(old.iter()).enumerate() {
        assert_eq!(a, b, "layer {j} diverged from the legacy builder");
    }
}
