//! Release-mode cover-construction scale tests: the dense-id pipeline on the E9
//! tier graphs (4096 nodes, the size where the old `BTreeMap` builder started to
//! dominate setup time).
//!
//! The pre-dense-id `legacy` builder — kept for one release as the executable
//! reference of a bit-identical equivalence pin — is deleted; what the pipeline
//! owes its callers at scale is the *properties*, checked directly:
//!
//! * **Definition 2.1 validity** — `SparseCover::validate` (tree edges exist,
//!   trees rooted and connected, every `d`-ball covered by one cluster) holds on
//!   4096-node grid / torus / random-regular graphs; the in-crate cover tests
//!   stop at ~60 nodes.
//! * **Sparsity and depth bounds** — `O(log n)` membership and `O(d log n)`
//!   cluster-tree height, the quantities the synchronizer's overhead theorems
//!   consume.
//! * **Layered structure** — `build_layered_sparse_cover` produces one valid
//!   `2^j`-cover per layer up to the requested radius.
//!
//! Ignored under debug builds (ball coverage touches `Σ_v |B(v, d)|` nodes,
//! too slow unoptimized); the CI release perf job runs this file via
//! `cargo test --release --test cover_scale`.

use det_synchronizer::covers::builder::{build_layered_sparse_cover, build_sparse_cover};
use det_synchronizer::graph::Graph;

fn tier_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("grid/4096", Graph::grid(64, 64)),
        ("torus/4096", Graph::torus(64, 64)),
        ("random-regular/4096", Graph::random_regular(4096, 4, 4096)),
    ]
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-mode scale test; debug builds are too slow")]
fn covers_validate_on_4096_node_tier_graphs() {
    for (label, graph) in tier_graphs() {
        let log_n = (graph.node_count() as f64).log2().ceil() as usize;
        for d in [2, 8] {
            let cover = build_sparse_cover(&graph, d);
            cover.validate(&graph).unwrap_or_else(|e| panic!("{label} d={d}: {e}"));
            assert!(
                cover.max_membership() <= log_n + 1,
                "{label} d={d}: membership {} exceeds log n + 1",
                cover.max_membership()
            );
            assert!(
                cover.max_height() <= (2 * d + 1) * (log_n + 1),
                "{label} d={d}: tree height {} exceeds the O(d log n) bound",
                cover.max_height()
            );
            assert!(
                cover.clusters.iter().all(|c| c.member_count() > 0),
                "{label} d={d}: empty cluster"
            );
        }
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-mode scale test; debug builds are too slow")]
fn layered_cover_layers_validate_on_a_tier_graph() {
    // One layered build (the structure `SynchronizerConfig::build` consumes) on
    // the 4096-node grid: every layer must be a valid cover of its radius.
    let graph = Graph::grid(64, 64);
    let layered = build_layered_sparse_cover(&graph, 16);
    assert_eq!(layered.layers(), 5, "radii 1, 2, 4, 8, 16");
    for (j, cover) in layered.iter().enumerate() {
        assert_eq!(cover.radius, 1 << j, "layer {j} has the wrong radius");
        cover.validate(&graph).unwrap_or_else(|e| panic!("layer {j}: {e}"));
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-mode scale test; debug builds are too slow")]
fn incremental_repair_matches_a_rebuild_on_4096_node_tier_graphs() {
    // Acceptance pin for the dynamic-topology repair (DESIGN.md §9): on every
    // tier graph, knock out one interior node and one extra edge, repair the
    // cover incrementally, rebuild it from scratch, and check the two agree on
    // the cover contract — both validate on the new graph, both cover every
    // node, and the repaired membership stays within the documented additive
    // budget (kept log-bound + patch log-bound) of the rebuilt optimum.
    use det_synchronizer::covers::builder::build_sparse_cover;
    use det_synchronizer::covers::repair::{repair_sparse_cover, without_edge, without_node};
    use det_synchronizer::graph::NodeId;

    for (label, graph) in tier_graphs() {
        let d = 2;
        let log_n = (graph.node_count() as f64).log2().ceil() as usize;
        let cover = build_sparse_cover(&graph, d);

        let crashed = NodeId(graph.node_count() / 2 + 3);
        let step1 = without_node(&graph, crashed);
        let (_, u, v) = step1.edges().nth(step1.edge_count() / 3).unwrap();
        let step2 = without_edge(&step1, u, v);

        let (mid, stats1) = repair_sparse_cover(&cover, &graph, &step1);
        let (repaired, stats2) = repair_sparse_cover(&mid, &step1, &step2);
        assert!(stats1.dropped > 0, "{label}: the crash must break clusters");
        assert!(stats1.kept > 0, "{label}: most clusters must survive untouched");
        assert!(stats1.kept + stats2.kept > 0, "{label}");

        let rebuilt = build_sparse_cover(&step2, d);
        repaired.validate(&step2).unwrap_or_else(|e| panic!("{label} repaired: {e}"));
        rebuilt.validate(&step2).unwrap_or_else(|e| panic!("{label} rebuilt: {e}"));
        for w in step2.nodes() {
            assert!(!repaired.clusters_of(w).is_empty(), "{label}: {w} uncovered after repair");
            assert!(!rebuilt.clusters_of(w).is_empty(), "{label}: {w} uncovered after rebuild");
        }
        // Two repairs stack at most two patch carvings on the kept cover.
        assert!(
            repaired.max_membership() <= 3 * (log_n + 1),
            "{label}: repaired membership {} vs rebuilt {} exceeds the additive budget",
            repaired.max_membership(),
            rebuilt.max_membership()
        );
        assert!(rebuilt.max_membership() <= log_n + 1, "{label}: rebuilt membership out of bound");
    }
}
