//! Property-based tests: on randomly generated connected graphs, source sets, and
//! delay adversaries, the synchronized asynchronous execution must reproduce the
//! synchronous execution exactly, and the sparse-cover invariants must hold.

use det_synchronizer::algos::bfs::BfsAlgorithm;
use det_synchronizer::algos::runner::compare_runs;
use det_synchronizer::covers::builder::build_sparse_cover;
use det_synchronizer::graph::metrics;
use det_synchronizer::prelude::*;
use proptest::prelude::*;

fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (4usize..28, 0u64..1000).prop_map(|(n, seed)| {
        let p = 2.5 / n as f64;
        Graph::random_connected(n, p.min(1.0), seed)
    })
}

fn arbitrary_delay() -> impl Strategy<Value = DelayModel> {
    prop_oneof![
        Just(DelayModel::uniform()),
        (0u64..100).prop_map(DelayModel::jitter),
        (1usize..6).prop_map(DelayModel::slow_cut),
        (1u64..5).prop_map(DelayModel::bursty),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn synchronized_bfs_equals_synchronous_bfs(
        graph in arbitrary_graph(),
        delay in arbitrary_delay(),
        source_pick in 0usize..1000,
    ) {
        let source = NodeId(source_pick % graph.node_count());
        let report = compare_runs(&graph, delay, |v| BfsAlgorithm::new(&graph, v, &[source]))
            .expect("runs succeed");
        prop_assert!(report.outputs_match());
        // Semantic check: outputs are the true distances.
        let dist = metrics::bfs_distances(&graph, source);
        for v in graph.nodes() {
            let out = report.async_outputs[v.index()].expect("all nodes reached");
            prop_assert_eq!(out.distance, dist[v.index()].unwrap() as u64);
        }
    }

    #[test]
    fn sparse_covers_satisfy_definition_2_1(
        graph in arbitrary_graph(),
        d in 1usize..5,
    ) {
        let cover = build_sparse_cover(&graph, d);
        prop_assert!(cover.validate(&graph).is_ok());
        let log_n = (graph.node_count() as f64).log2().ceil() as usize;
        prop_assert!(cover.max_membership() <= log_n + 1);
    }

    #[test]
    fn multi_source_bfs_is_exact_for_random_source_sets(
        graph in arbitrary_graph(),
        picks in prop::collection::vec(0usize..1000, 1..4),
        seed in 0u64..100,
    ) {
        let sources: Vec<NodeId> =
            picks.iter().map(|p| NodeId(p % graph.node_count())).collect();
        let report = run_synchronized_multi_bfs(&graph, &sources, DelayModel::jitter(seed))
            .expect("run succeeds");
        let dist = metrics::multi_source_distances(&graph, &sources);
        for v in graph.nodes() {
            prop_assert_eq!(report.outputs[&v].distance, dist[v.index()].unwrap() as u64);
        }
    }
}
