//! Property-based tests: on randomly generated connected graphs, source sets, and
//! delay adversaries, the synchronized asynchronous execution must reproduce the
//! synchronous execution exactly, and the sparse-cover invariants must hold.
//!
//! The workspace builds without external crates, so instead of proptest these are
//! seeded sweeps over a deterministic case generator (`ds_graph::rng::Prng`): every
//! run explores the same cases, and a failing case is reported by its index and
//! parameters so it can be replayed in isolation.

use det_synchronizer::algos::bfs::BfsAlgorithm;
use det_synchronizer::covers::builder::build_sparse_cover;
use det_synchronizer::graph::metrics;
use det_synchronizer::graph::rng::Prng;
use det_synchronizer::prelude::*;

const CASES: usize = 24;

/// A deterministic pseudo-random connected graph, sized like the old proptest
/// strategy (4..28 nodes, expected degree ~2.5).
fn arbitrary_graph(rng: &mut Prng) -> Graph {
    let n = rng.index_in(4, 28);
    let seed = rng.next_u64() % 1000;
    let p = 2.5 / n as f64;
    Graph::random_connected(n, p.min(1.0), seed)
}

/// A deterministic pseudo-random delay adversary from the four families.
fn arbitrary_delay(rng: &mut Prng) -> DelayModel {
    match rng.index_in(0, 4) {
        0 => DelayModel::uniform(),
        1 => DelayModel::jitter(rng.next_u64() % 100),
        2 => DelayModel::slow_cut(rng.index_in(1, 6)),
        _ => DelayModel::bursty(rng.next_u64() % 4 + 1),
    }
}

#[test]
fn synchronized_bfs_equals_synchronous_bfs() {
    let mut rng = Prng::new(0xB_F5);
    for case in 0..CASES {
        let graph = arbitrary_graph(&mut rng);
        let delay = arbitrary_delay(&mut rng);
        let source = NodeId(rng.index_in(0, graph.node_count()));
        let report = Session::on(&graph)
            .delay(delay.clone())
            .synchronizer(SyncKind::DetAuto)
            .compare(|v| BfsAlgorithm::new(&graph, v, &[source]))
            .unwrap_or_else(|e| panic!("case {case} (n={}, {delay:?}): {e}", graph.node_count()));
        assert!(
            report.outputs_match(),
            "case {case}: outputs diverged (n={}, source={source}, {delay:?})",
            graph.node_count()
        );
        // Semantic check: outputs are the true distances.
        let dist = metrics::bfs_distances(&graph, source);
        for v in graph.nodes() {
            let out = report.async_outputs[v.index()].expect("all nodes reached");
            assert_eq!(out.distance, dist[v.index()].unwrap() as u64, "case {case}, node {v}");
        }
    }
}

#[test]
fn sparse_covers_satisfy_definition_2_1() {
    let mut rng = Prng::new(0xC0_4E5);
    for case in 0..CASES {
        let graph = arbitrary_graph(&mut rng);
        let d = rng.index_in(1, 5);
        let cover = build_sparse_cover(&graph, d);
        assert!(
            cover.validate(&graph).is_ok(),
            "case {case}: cover invalid (n={}, d={d})",
            graph.node_count()
        );
        let log_n = (graph.node_count() as f64).log2().ceil() as usize;
        assert!(
            cover.max_membership() <= log_n + 1,
            "case {case}: membership {} exceeds log n + 1 (n={}, d={d})",
            cover.max_membership(),
            graph.node_count()
        );
    }
}

#[test]
fn multi_source_bfs_is_exact_for_random_source_sets() {
    let mut rng = Prng::new(0x5EED);
    for case in 0..CASES {
        let graph = arbitrary_graph(&mut rng);
        let k = rng.index_in(1, 4);
        let sources: Vec<NodeId> =
            (0..k).map(|_| NodeId(rng.index_in(0, graph.node_count()))).collect();
        let seed = rng.next_u64() % 100;
        let report = run_synchronized_multi_bfs(&graph, &sources, DelayModel::jitter(seed))
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        let dist = metrics::multi_source_distances(&graph, &sources);
        for v in graph.nodes() {
            assert_eq!(
                report.outputs[&v].distance,
                dist[v.index()].unwrap() as u64,
                "case {case}, node {v}, sources {sources:?}"
            );
        }
    }
}
