//! The `Session` matrix: every synchronizer kind (direct, α, β, det) must produce
//! identical outputs on the same workload suite as `tests/applications.rs`, through
//! the exact same `Session::on(..)…run(..)` call path.

use det_synchronizer::algos::bfs::BfsAlgorithm;
use det_synchronizer::algos::flood::FloodAlgorithm;
use det_synchronizer::algos::leader::LeaderElection;
use det_synchronizer::algos::mst::MstAlgorithm;
use det_synchronizer::covers::builder::build_sparse_cover;
use det_synchronizer::graph::metrics;
use det_synchronizer::graph::weights::EdgeWeights;
use det_synchronizer::prelude::*;
use std::sync::Arc;

fn workloads() -> Vec<(&'static str, Graph)> {
    vec![
        ("path", Graph::path(16)),
        ("cycle", Graph::cycle(14)),
        ("grid", Graph::grid(5, 5)),
        ("caterpillar", Graph::caterpillar(6, 2)),
        ("random", Graph::random_connected(28, 0.1, 13)),
        ("clustered-ring", Graph::clustered_ring(4, 4)),
    ]
}

/// Runs `make` under every [`SyncKind`] on `graph` and asserts all four executions
/// produce the direct (lock-step ground truth) outputs.
fn assert_matrix_matches<A, F>(name: &str, graph: &Graph, delay: DelayModel, mut make: F)
where
    A: EventDriven,
    F: FnMut(NodeId) -> A,
{
    let direct = Session::on(graph)
        .synchronizer(SyncKind::Direct)
        .run(&mut make)
        .unwrap_or_else(|e| panic!("{name}/direct: {e}"));
    assert!(
        direct.outputs.iter().all(Option::is_some),
        "{name}: ground truth left nodes without output"
    );
    for kind in SyncKind::standard_suite() {
        let run = Session::on(graph)
            .delay(delay.clone())
            .synchronizer(kind.clone())
            .run(&mut make)
            .unwrap_or_else(|e| panic!("{name}/{}: {e}", kind.label()));
        assert_eq!(
            run.outputs,
            direct.outputs,
            "{name}: {} diverged from the ground truth under {delay:?}",
            kind.label()
        );
        assert_eq!(run.ordering_violations, 0, "{name}/{}", kind.label());
    }
}

#[test]
fn all_synchronizers_agree_on_flooding_across_the_workload_suite() {
    for (name, graph) in workloads() {
        assert_matrix_matches(name, &graph, DelayModel::jitter(29), |v| {
            FloodAlgorithm::new(&graph, v, NodeId(0), 5)
        });
    }
}

#[test]
fn all_synchronizers_agree_on_bfs_across_the_workload_suite() {
    for (name, graph) in workloads() {
        assert_matrix_matches(name, &graph, DelayModel::slow_cut(3), |v| {
            BfsAlgorithm::new(&graph, v, &[NodeId(0), NodeId(5)])
        });
    }
}

#[test]
fn all_synchronizers_agree_on_leader_election() {
    let graph = Graph::clustered_ring(4, 4);
    let d = metrics::diameter(&graph).unwrap().max(1);
    let cover = Arc::new(build_sparse_cover(&graph, d));
    assert_matrix_matches("clustered-ring", &graph, DelayModel::bursty(2), |v| {
        LeaderElection::new(v, cover.clone())
    });
}

#[test]
fn all_synchronizers_agree_on_mst() {
    let graph = Graph::random_connected(20, 0.15, 21);
    let weights = EdgeWeights::random_distinct(&graph, 31);
    let d = metrics::diameter(&graph).unwrap().max(1);
    let cover = Arc::new(build_sparse_cover(&graph, d));
    assert_matrix_matches("random", &graph, DelayModel::jitter(4), |v| {
        MstAlgorithm::new(&graph, &weights, v, cover.clone())
    });
}

#[test]
fn all_synchronizers_agree_under_every_adversary() {
    let graph = Graph::grid(4, 4);
    for delay in DelayModel::standard_suite(11) {
        assert_matrix_matches("grid", &graph, delay.clone(), |v| {
            FloodAlgorithm::new(&graph, v, NodeId(0), 7)
        });
    }
}

/// Regression test for the registration-abstraction deadlock: on deep pulse
/// schedules (T ≈ 15, reached by an 8×8 grid BFS from a corner) a stale Go-Ahead
/// could wipe a re-dirtied cluster-tree edge and stall the far corner forever.
/// Seeds 1 and 2024 reproduced the stall before the fix.
#[test]
fn det_synchronizer_completes_deep_pulse_schedules() {
    let graph = Graph::grid(8, 8);
    for seed in [1, 2024] {
        let report = Session::on(&graph)
            .delay(DelayModel::jitter(seed))
            .synchronizer(SyncKind::DetAuto)
            .compare(|v| BfsAlgorithm::new(&graph, v, &[NodeId(0)]))
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            report.outputs_match(),
            "seed {seed}: det synchronizer diverged or stalled on the 8x8 grid"
        );
    }
}
