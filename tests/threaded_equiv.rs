//! Threaded sharded engine vs. the serial wheel, with worker threads forced
//! on. This is the ThreadSanitizer target of the `analysis` CI job (DESIGN.md
//! §8): the grid workloads here put well over `PARALLEL_TICK_THRESHOLD` due
//! events into each tick, so phase 1 genuinely crosses the scoped-thread
//! hand-off, and TSan watches every access while the assertions pin that the
//! threads changed nothing — schedules, metrics and delivery traces all
//! bit-identical to the serial reference.

use det_synchronizer::netsim::protocol::{Ctx, Protocol};
use det_synchronizer::netsim::{
    run_async_sharded_traced_with, run_async_traced, MessageClass, ShardedOptions, SimLimits,
    ThreadMode,
};
use det_synchronizer::prelude::*;
use ds_verify::{check_equivalence, check_trace};

/// Dense flood: every node seeds its neighborhood, so each tick of a 12×12
/// grid carries hundreds of due events — far past the parallel threshold.
#[derive(Debug)]
struct Flood<'g> {
    neighbors: &'g [NodeId],
    arrivals: Vec<(NodeId, u64)>,
    waves_left: u64,
}

impl<'g> Flood<'g> {
    fn new(graph: &'g Graph, me: NodeId) -> Self {
        Flood { neighbors: graph.neighbors(me), arrivals: Vec::new(), waves_left: 4 }
    }
}

impl Protocol for Flood<'_> {
    type Message = u64;

    fn on_start(&mut self, ctx: &mut Ctx<u64>) {
        for (i, &u) in self.neighbors.iter().enumerate() {
            ctx.send_with(u, 1, (i % 3) as u64, MessageClass::Algorithm);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<u64>) {
        self.arrivals.push((from, msg));
        if self.waves_left > 0 {
            self.waves_left -= 1;
            for (i, &u) in self.neighbors.iter().enumerate() {
                ctx.send_with(u, msg + 1, (msg + i as u64) % 4, MessageClass::Algorithm);
            }
        }
    }

    fn is_done(&self) -> bool {
        true
    }
}

fn arrivals(report: &det_synchronizer::netsim::AsyncReport<Flood<'_>>) -> Vec<Vec<(NodeId, u64)>> {
    report.nodes.iter().map(|n| n.arrivals.clone()).collect()
}

#[test]
fn forced_worker_threads_reproduce_the_serial_schedule() {
    let graph = Graph::grid(12, 12);
    for delay in [DelayModel::uniform(), DelayModel::jitter(7)] {
        let (wheel_report, wheel_trace) = run_async_traced(
            &graph,
            delay.clone(),
            |v| Flood::new(&graph, v),
            SimLimits::default(),
            SchedulerKind::TimingWheel,
        )
        .expect("wheel run");
        check_trace(&wheel_trace).expect("wheel trace violates HB");

        for shards in [2usize, 4] {
            let (threaded_report, threaded_trace) = run_async_sharded_traced_with(
                &graph,
                delay.clone(),
                |v| Flood::new(&graph, v),
                SimLimits::default(),
                ShardedOptions { shards, threads: ThreadMode::ForceOn },
            )
            .expect("threaded run");
            assert_eq!(
                threaded_report.metrics, wheel_report.metrics,
                "metrics diverged ({shards} shards, {delay:?})"
            );
            assert_eq!(
                arrivals(&threaded_report),
                arrivals(&wheel_report),
                "per-node schedules diverged ({shards} shards, {delay:?})"
            );
            check_trace(&threaded_trace).expect("threaded trace violates HB");
            check_equivalence(&wheel_trace, &threaded_trace).expect("threaded trace diverged");
        }
    }
}

#[test]
fn forced_and_disabled_threads_trace_identically() {
    let graph = Graph::grid(12, 12);
    let delay = DelayModel::jitter(19);
    for shards in [2usize, 4] {
        let run = |threads: ThreadMode| {
            run_async_sharded_traced_with(
                &graph,
                delay.clone(),
                |v| Flood::new(&graph, v),
                SimLimits::default(),
                ShardedOptions { shards, threads },
            )
            .expect("sharded run")
        };
        let (off_report, off_trace) = run(ThreadMode::Off);
        let (on_report, on_trace) = run(ThreadMode::ForceOn);
        assert_eq!(on_report.metrics, off_report.metrics, "{shards} shards");
        assert_eq!(arrivals(&on_report), arrivals(&off_report), "{shards} shards");
        assert_eq!(on_trace, off_trace, "{shards} shards");
        check_trace(&on_trace).expect("threaded trace violates HB");
    }
}
