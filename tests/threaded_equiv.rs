//! Threaded sharded engine vs. the serial wheel, with worker threads forced
//! on. This is the ThreadSanitizer target of the `analysis` CI job (DESIGN.md
//! §8): the grid workloads here put well over `PARALLEL_TICK_THRESHOLD` due
//! events into each barrier, so phase 1 genuinely crosses the worker-pool
//! channel hand-off — including pools smaller than the shard count, where
//! one worker serves several shards per barrier — and TSan watches every
//! access while the assertions pin that the threads changed nothing —
//! schedules, metrics and delivery traces all bit-identical to the serial
//! reference.

use det_synchronizer::netsim::protocol::{Ctx, Protocol};
use det_synchronizer::netsim::{
    run_async_sharded_traced_with, run_async_traced, MessageClass, ShardedOptions, SimLimits,
    ThreadMode,
};
use det_synchronizer::prelude::*;
use ds_verify::{check_equivalence, check_trace};

/// Dense flood: every node seeds its neighborhood, so each tick of a 12×12
/// grid carries hundreds of due events — far past the parallel threshold.
#[derive(Debug)]
struct Flood<'g> {
    neighbors: &'g [NodeId],
    arrivals: Vec<(NodeId, u64)>,
    waves_left: u64,
}

impl<'g> Flood<'g> {
    fn new(graph: &'g Graph, me: NodeId) -> Self {
        Flood { neighbors: graph.neighbors(me), arrivals: Vec::new(), waves_left: 4 }
    }
}

impl Protocol for Flood<'_> {
    type Message = u64;

    fn on_start(&mut self, ctx: &mut Ctx<u64>) {
        for (i, &u) in self.neighbors.iter().enumerate() {
            ctx.send_with(u, 1, (i % 3) as u64, MessageClass::Algorithm);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<u64>) {
        self.arrivals.push((from, msg));
        if self.waves_left > 0 {
            self.waves_left -= 1;
            for (i, &u) in self.neighbors.iter().enumerate() {
                ctx.send_with(u, msg + 1, (msg + i as u64) % 4, MessageClass::Algorithm);
            }
        }
    }

    fn is_done(&self) -> bool {
        true
    }
}

fn arrivals(report: &det_synchronizer::netsim::AsyncReport<Flood<'_>>) -> Vec<Vec<(NodeId, u64)>> {
    report.nodes.iter().map(|n| n.arrivals.clone()).collect()
}

#[test]
fn forced_worker_threads_reproduce_the_serial_schedule() {
    let graph = Graph::grid(12, 12);
    for delay in [DelayModel::uniform(), DelayModel::jitter(7)] {
        let (wheel_report, wheel_trace) = run_async_traced(
            &graph,
            delay.clone(),
            |v| Flood::new(&graph, v),
            SimLimits::default(),
            SchedulerKind::TimingWheel,
        )
        .expect("wheel run");
        check_trace(&wheel_trace).expect("wheel trace violates HB");

        for shards in [2usize, 4] {
            for workers in [1usize, 2, 4] {
                let (threaded_report, threaded_trace) = run_async_sharded_traced_with(
                    &graph,
                    delay.clone(),
                    |v| Flood::new(&graph, v),
                    SimLimits::default(),
                    ShardedOptions {
                        workers,
                        threads: ThreadMode::ForceOn,
                        ..ShardedOptions::new(shards)
                    },
                )
                .expect("threaded run");
                assert_eq!(
                    threaded_report.metrics, wheel_report.metrics,
                    "metrics diverged ({shards} shards, {workers} workers, {delay:?})"
                );
                assert_eq!(
                    arrivals(&threaded_report),
                    arrivals(&wheel_report),
                    "per-node schedules diverged ({shards} shards, {workers} workers, {delay:?})"
                );
                check_trace(&threaded_trace).expect("threaded trace violates HB");
                check_equivalence(&wheel_trace, &threaded_trace).expect("threaded trace diverged");
            }
        }
    }
}

#[test]
fn forced_and_disabled_threads_trace_identically() {
    // jitter_at_least keeps a 500-tick delay floor, so the batched-window path
    // is live here too: batching over the pool must trace identically to the
    // coordinator-only run.
    let graph = Graph::grid(12, 12);
    let delay = DelayModel::jitter_at_least(19, 0.5);
    for shards in [2usize, 4] {
        for batching in [true, false] {
            let run = |threads: ThreadMode, workers: usize| {
                run_async_sharded_traced_with(
                    &graph,
                    delay.clone(),
                    |v| Flood::new(&graph, v),
                    SimLimits::default(),
                    ShardedOptions { workers, threads, batching, ..ShardedOptions::new(shards) },
                )
                .expect("sharded run")
            };
            let (off_report, off_trace) = run(ThreadMode::Off, 0);
            let (on_report, on_trace) = run(ThreadMode::ForceOn, 2);
            assert_eq!(on_report.metrics, off_report.metrics, "{shards} shards, {batching}");
            assert_eq!(arrivals(&on_report), arrivals(&off_report), "{shards} shards, {batching}");
            assert_eq!(on_trace, off_trace, "{shards} shards, batching={batching}");
            check_trace(&on_trace).expect("threaded trace violates HB");
            if batching {
                assert_eq!(
                    on_report.batched_ticks, off_report.batched_ticks,
                    "batching must not depend on the thread mode"
                );
                assert!(
                    off_report.batched_ticks > 0,
                    "the 500-tick delay floor must form real multi-tick windows"
                );
            } else {
                assert_eq!(off_report.batched_ticks, 0);
                assert_eq!(on_report.batched_ticks, 0);
            }
        }
    }
}
