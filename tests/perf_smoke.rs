//! Release-mode scale smoke test: a synchronized BFS on a 64×64 grid (4096 nodes,
//! the E9 headline scenario) must complete — correctly — within an explicit event
//! budget. Ignored under debug builds, where the unoptimized engines are too slow
//! for a smoke test; CI runs `cargo test --release` for this file via the E9 job.

use det_synchronizer::algos::bfs::BfsAlgorithm;
use det_synchronizer::graph::metrics;
use det_synchronizer::prelude::*;

#[test]
#[cfg_attr(debug_assertions, ignore = "release-mode smoke test; debug engines are too slow")]
fn synchronized_bfs_on_128x128_grid_completes_within_event_budget() {
    // The 16384-node tier the timing-wheel engine opened up (E9's largest grid
    // scenario). The run processes ~7.9M delivery events; a 20M budget leaves
    // headroom for schedule jitter while still catching message blowups.
    let graph = Graph::grid(128, 128);
    let limits = SimLimits { max_events: 20_000_000, max_rounds: 10_000 };
    let run = Session::on(&graph)
        .delay(DelayModel::jitter(1))
        .synchronizer(SyncKind::DetAuto)
        .limits(limits)
        .run(|v| BfsAlgorithm::new(&graph, v, &[NodeId(0)]))
        .expect("128x128 synchronized BFS within the event budget");
    assert_eq!(run.ordering_violations, 0);
    let dist = metrics::bfs_distances(&graph, NodeId(0));
    for v in graph.nodes() {
        assert_eq!(
            run.outputs[v.index()].expect("every node outputs").distance,
            dist[v.index()].expect("grid is connected") as u64,
            "node {v}"
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-mode smoke test; debug engines are too slow")]
fn synchronized_bfs_on_64x64_grid_completes_within_event_budget() {
    let graph = Graph::grid(64, 64);
    // The refactored engine processes ~1.12M delivery events on this scenario; a
    // 4M budget leaves headroom for schedule jitter while still catching message
    // blowups and livelocks. The round budget guards the ground-truth run.
    let limits = SimLimits { max_events: 4_000_000, max_rounds: 10_000 };
    let run = Session::on(&graph)
        .delay(DelayModel::jitter(1))
        .synchronizer(SyncKind::DetAuto)
        .limits(limits)
        .run(|v| BfsAlgorithm::new(&graph, v, &[NodeId(0)]))
        .expect("64x64 synchronized BFS within the event budget");
    assert_eq!(run.ordering_violations, 0);
    let dist = metrics::bfs_distances(&graph, NodeId(0));
    for v in graph.nodes() {
        assert_eq!(
            run.outputs[v.index()].expect("every node outputs").distance,
            dist[v.index()].expect("grid is connected") as u64,
            "node {v}"
        );
    }
}
