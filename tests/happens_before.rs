//! The happens-before checker over the scheduler-equivalence matrix: every
//! scenario `tests/scheduler_equiv.rs` pins by example is re-run here with
//! delivery tracing on, and the recorded trace is *verified* against the
//! ordering model of the shard/merge contract (DESIGN.md §6 and §8):
//!
//! * `ds_verify::check_trace` — seq/tick monotonicity, the one-tick minimum
//!   delay on every cause edge, shard consistency, and vector-clock
//!   incomparability of same-tick cross-shard deliveries (no cross-shard
//!   order is forced by anything but `seq`);
//! * `ds_verify::check_equivalence` — the serial and sharded traces of one
//!   scenario agree record for record on everything but the shard assignment;
//! * zero overhead when off — a traced run's report is bit-identical to the
//!   untraced run's.

use det_synchronizer::algos::bfs::BfsAlgorithm;
use det_synchronizer::netsim::protocol::{Ctx, Protocol};
use det_synchronizer::netsim::{run_async_traced, run_async_with, MessageClass, SimLimits};
use det_synchronizer::prelude::*;
use ds_verify::{check_equivalence, check_trace};

/// The sharded challengers: degenerate single shard, real cross-shard
/// layouts, and a non-dividing shard/worker split (`workers: 0` means one
/// pool worker per shard).
const SHARDED: [SchedulerKind; 4] = [
    SchedulerKind::Sharded { shards: 1, workers: 0 },
    SchedulerKind::Sharded { shards: 2, workers: 1 },
    SchedulerKind::Sharded { shards: 4, workers: 4 },
    SchedulerKind::Sharded { shards: 7, workers: 2 },
];

/// Chatty flood keeping several waves of traffic flowing with mixed per-link
/// priorities — the same workload shape the equivalence suite uses.
#[derive(Debug)]
struct Chatter<'g> {
    me: NodeId,
    neighbors: &'g [NodeId],
    arrivals: Vec<(NodeId, u64)>,
    waves_left: u64,
}

impl<'g> Chatter<'g> {
    fn new(graph: &'g Graph, me: NodeId) -> Self {
        Chatter { me, neighbors: graph.neighbors(me), arrivals: Vec::new(), waves_left: 3 }
    }
}

impl Protocol for Chatter<'_> {
    type Message = u64;

    fn on_start(&mut self, ctx: &mut Ctx<u64>) {
        if self.me.index().is_multiple_of(7) {
            for (i, &u) in self.neighbors.iter().enumerate() {
                ctx.send_with(u, 1, (i % 3) as u64, MessageClass::Algorithm);
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<u64>) {
        self.arrivals.push((from, msg));
        if self.waves_left > 0 {
            self.waves_left -= 1;
            for (i, &u) in self.neighbors.iter().enumerate() {
                ctx.send_with(u, msg + 1, (msg + i as u64) % 4, MessageClass::Algorithm);
            }
        }
    }

    fn is_done(&self) -> bool {
        true
    }
}

/// Runs the scenario traced on the wheel and on every sharded layout,
/// verifies each trace, verifies serial/sharded trace agreement, and returns
/// the serial record count (so callers can assert the scenario was
/// non-trivial).
fn verify_scenario(graph: &Graph, delay: &DelayModel, context: &str) -> usize {
    let (wheel_report, wheel_trace) = run_async_traced(
        graph,
        delay.clone(),
        |v| Chatter::new(graph, v),
        SimLimits::default(),
        SchedulerKind::TimingWheel,
    )
    .unwrap_or_else(|e| panic!("wheel run failed ({context}): {e}"));
    let report = check_trace(&wheel_trace).unwrap_or_else(|violations| {
        panic!("wheel trace violates HB ({context}):\n{}", render(&violations))
    });
    assert_eq!(report.records, wheel_trace.records.len());

    for scheduler in SHARDED {
        let (sharded_report, sharded_trace) = run_async_traced(
            graph,
            delay.clone(),
            |v| Chatter::new(graph, v),
            SimLimits::default(),
            scheduler,
        )
        .unwrap_or_else(|e| panic!("{scheduler:?} run failed ({context}): {e}"));
        check_trace(&sharded_trace).unwrap_or_else(|violations| {
            panic!("{scheduler:?} trace violates HB ({context}):\n{}", render(&violations))
        });
        check_equivalence(&wheel_trace, &sharded_trace).unwrap_or_else(|violations| {
            panic!(
                "{scheduler:?} trace diverged from the wheel ({context}):\n{}",
                render(&violations)
            )
        });
        assert_eq!(
            sharded_report.metrics, wheel_report.metrics,
            "metrics diverged ({scheduler:?}, {context})"
        );
    }
    wheel_trace.records.len()
}

fn render(violations: &[ds_verify::HbViolation]) -> String {
    violations.iter().map(|v| format!("  {v}")).collect::<Vec<_>>().join("\n")
}

#[test]
fn hb_holds_across_random_graphs_and_jitter_seeds() {
    for graph_seed in [3u64, 17, 40] {
        let graph = Graph::random_connected(28, 0.12, graph_seed);
        for delay_seed in [1u64, 9, 23] {
            let records = verify_scenario(
                &graph,
                &DelayModel::jitter(delay_seed),
                &format!("graph seed {graph_seed}, delay seed {delay_seed}"),
            );
            assert!(records > 0, "scenario delivered nothing");
        }
    }
}

#[test]
fn hb_holds_under_every_standard_adversary() {
    let graph = Graph::random_connected(24, 0.15, 5);
    let mut adversaries = DelayModel::standard_suite(13);
    adversaries.push(DelayModel::outage(13, 5, 2));
    for delay in adversaries {
        verify_scenario(&graph, &delay, &format!("{delay:?}"));
    }
}

#[test]
fn overflow_parked_events_keep_the_hb_contract() {
    // The outage adversary's multi-τ delays exceed the wheel horizon
    // (`max_delay_ticks` = one τ) by design, so events provably park in the
    // overflow heap — `overflow_events` counts them. The HB contract must
    // survive the park-and-replay path on every engine: overflow entries
    // re-enter the wheel in seq order, and the trace must not show it.
    let graph = Graph::random_connected(24, 0.15, 5);
    let delay = DelayModel::outage(13, 5, 2);
    let (report, trace) = run_async_traced(
        &graph,
        delay.clone(),
        |v| Chatter::new(&graph, v),
        SimLimits::default(),
        SchedulerKind::TimingWheel,
    )
    .expect("outage wheel run");
    assert!(
        report.overflow_events > 0,
        "outage adversary failed to reach the overflow heap — the scenario proves nothing"
    );
    check_trace(&trace).expect("overflow path broke the HB contract on the wheel");

    for scheduler in SHARDED {
        let (sharded_report, sharded_trace) = run_async_traced(
            &graph,
            delay.clone(),
            |v| Chatter::new(&graph, v),
            SimLimits::default(),
            scheduler,
        )
        .expect("outage sharded run");
        assert!(sharded_report.overflow_events > 0, "sharded overflow heaps unused");
        assert_eq!(sharded_report.overflow_events, report.overflow_events);
        check_trace(&sharded_trace)
            .expect("overflow path broke the HB contract on the sharded engine");
        check_equivalence(&trace, &sharded_trace).expect("overflow traces diverged");
    }
}

#[test]
fn tracing_is_zero_overhead_when_off() {
    // Bit-identity of the *report* between a traced and an untraced run, on
    // both engines: tracing must not draw a sequence number or perturb a
    // queue. (The netsim unit tests additionally pin per-node arrivals.)
    let graph = Graph::random_connected(26, 0.14, 11);
    let delay = DelayModel::jitter(8);
    for scheduler in
        [SchedulerKind::TimingWheel, SchedulerKind::BinaryHeap].into_iter().chain(SHARDED)
    {
        let untraced = run_async_with(
            &graph,
            delay.clone(),
            |v| Chatter::new(&graph, v),
            SimLimits::default(),
            scheduler,
        )
        .expect("untraced run");
        let (traced, trace) = run_async_traced(
            &graph,
            delay.clone(),
            |v| Chatter::new(&graph, v),
            SimLimits::default(),
            scheduler,
        )
        .expect("traced run");
        assert_eq!(traced.metrics, untraced.metrics, "{scheduler:?} metrics diverged");
        assert_eq!(traced.overflow_events, untraced.overflow_events);
        assert_eq!(traced.batched_ticks, untraced.batched_ticks);
        assert_eq!(traced.pool_dispatches, untraced.pool_dispatches);
        let arrivals =
            |r: &det_synchronizer::netsim::AsyncReport<Chatter<'_>>| -> Vec<Vec<(NodeId, u64)>> {
                r.nodes.iter().map(|n| n.arrivals.clone()).collect()
            };
        assert_eq!(arrivals(&traced), arrivals(&untraced), "{scheduler:?} schedules diverged");
        assert_eq!(trace.records.len() as u64, traced.metrics.events);
    }
}

#[test]
fn every_sync_kind_produces_a_clean_trace_through_session() {
    // Full stack: Session → executors → engines, every synchronizer × jitter
    // seed × scheduler. The recorded traces must verify and agree across
    // schedulers, and requesting a trace must not change outputs or metrics.
    let graph = Graph::grid(5, 5);
    for kind in SyncKind::standard_suite() {
        if matches!(kind, SyncKind::Direct) {
            continue; // lock-step execution has no deliveries to trace
        }
        for delay_seed in [2u64, 31] {
            let run = |scheduler: SchedulerKind, trace: bool| {
                Session::on(&graph)
                    .delay(DelayModel::jitter(delay_seed))
                    .synchronizer(kind.clone())
                    .scheduler(scheduler)
                    .record_trace(trace)
                    .run(|v| BfsAlgorithm::new(&graph, v, &[NodeId(0), NodeId(12)]))
                    .unwrap_or_else(|e| panic!("{}: {e}", kind.label()))
            };
            let plain = run(SchedulerKind::TimingWheel, false);
            assert!(plain.trace.is_none());
            let wheel = run(SchedulerKind::TimingWheel, true);
            assert_eq!(wheel.outputs, plain.outputs, "{} trace changed outputs", kind.label());
            assert_eq!(wheel.metrics, plain.metrics, "{} trace changed metrics", kind.label());
            let wheel_trace = wheel.trace.expect("trace requested");
            check_trace(&wheel_trace).unwrap_or_else(|v| {
                panic!("{} wheel trace violates HB:\n{}", kind.label(), render(&v))
            });
            for scheduler in SHARDED {
                let got = run(scheduler, true);
                assert_eq!(got.outputs, wheel.outputs);
                assert_eq!(got.metrics, wheel.metrics);
                let got_trace = got.trace.expect("trace requested");
                check_trace(&got_trace).unwrap_or_else(|v| {
                    panic!("{} {scheduler:?} trace violates HB:\n{}", kind.label(), render(&v))
                });
                check_equivalence(&wheel_trace, &got_trace).unwrap_or_else(|v| {
                    panic!("{} {scheduler:?} trace diverged:\n{}", kind.label(), render(&v))
                });
            }
        }
    }
}
