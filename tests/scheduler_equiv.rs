//! Scheduler equivalence: the timing-wheel scheduler, the binary-heap
//! reference, and the sharded engine must produce **identical** executions on
//! every workload, graph and adversary.
//!
//! Two levels of "identical" are pinned, matching each engine's contract:
//!
//! * **Wheel vs. heap** — the wheel is a pure representation change of the one
//!   global event queue, so even the *global interleaving* of activations must
//!   match event for event (the shared `DeliveryLog` below observes it).
//! * **Sharded vs. wheel** — the shard/merge contract (`ds-netsim::sharded`)
//!   guarantees the *schedule*: every per-node arrival stream, every sequence
//!   draw, every metric is bit-identical, while the intra-tick activation
//!   interleaving **across different nodes** is shard order rather than global
//!   seq order (activations within one tick are causally independent, so no
//!   protocol can tell — except one that shares mutable state between node
//!   instances, which is exactly what the global log does). Sharded runs are
//!   therefore compared on the full per-node view plus byte-identical
//!   `RunMetrics`.
//!
//! Any real divergence (a slot drained out of seq order, a mis-rotated horizon,
//! an overflow entry served late, a cross-shard event merged out of order)
//! shows up in both views as a diff against the wheel.

use det_synchronizer::algos::bfs::BfsAlgorithm;
use det_synchronizer::netsim::protocol::{Ctx, Protocol};
use det_synchronizer::netsim::{
    run_async_sharded_with, run_async_with, MessageClass, ShardedOptions, SimLimits, ThreadMode,
};
use det_synchronizer::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// The sharded challengers, each compared against the wheel reference run.
/// `shards: 1` pins the degenerate single-shard layout; 2 and 4 exercise
/// cross-shard links on every test graph; 7 shards over 2 pool workers pins a
/// non-dividing shard/worker split (`workers: 0` means one worker per shard).
const SHARDED: [SchedulerKind; 4] = [
    SchedulerKind::Sharded { shards: 1, workers: 0 },
    SchedulerKind::Sharded { shards: 2, workers: 1 },
    SchedulerKind::Sharded { shards: 4, workers: 4 },
    SchedulerKind::Sharded { shards: 7, workers: 2 },
];

/// A shared log of every delivery, in engine order: `(from, to, payload)`.
type DeliveryLog = Rc<RefCell<Vec<(NodeId, NodeId, u64)>>>;

/// A chatty protocol that records both the global delivery order (through the
/// shared log) and its own arrival stream, and keeps traffic flowing for a few
/// waves, with mixed per-message priorities so the per-link stage queues are
/// exercised too.
#[derive(Debug)]
struct Recorder<'g> {
    me: NodeId,
    neighbors: &'g [NodeId],
    log: DeliveryLog,
    arrivals: Vec<(NodeId, u64)>,
    waves_left: u64,
}

impl Protocol for Recorder<'_> {
    type Message = u64;

    fn on_start(&mut self, ctx: &mut Ctx<u64>) {
        if self.me.index().is_multiple_of(7) {
            for (i, &u) in self.neighbors.iter().enumerate() {
                ctx.send_with(u, 1, (i % 3) as u64, MessageClass::Algorithm);
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<u64>) {
        self.log.borrow_mut().push((from, self.me, msg));
        self.arrivals.push((from, msg));
        if self.waves_left > 0 {
            self.waves_left -= 1;
            for (i, &u) in self.neighbors.iter().enumerate() {
                ctx.send_with(u, msg + 1, (msg + i as u64) % 4, MessageClass::Algorithm);
            }
        }
    }

    fn is_done(&self) -> bool {
        true
    }
}

/// Global delivery interleaving, per-node arrival streams, metrics.
type RecorderView = (Vec<(NodeId, NodeId, u64)>, Vec<Vec<(NodeId, u64)>>, RunMetrics);

fn run_recorder(graph: &Graph, delay: DelayModel, scheduler: SchedulerKind) -> RecorderView {
    // The Recorder's shared `Rc` log is deliberately not `Send`:
    // `run_async_with` runs `Sharded` kinds on the coordinator thread
    // (sequentially, same execution), so the global interleaving stays
    // observable; the threaded hand-off is pinned by the `ds-netsim` unit
    // tests and the `Session`-level matrix below.
    let log: DeliveryLog = Rc::new(RefCell::new(Vec::new()));
    let report = run_async_with(
        graph,
        delay,
        |v| Recorder {
            me: v,
            neighbors: graph.neighbors(v),
            log: Rc::clone(&log),
            arrivals: Vec::new(),
            waves_left: 3,
        },
        SimLimits::default(),
        scheduler,
    )
    .expect("recorder run");
    let metrics = report.metrics;
    let arrivals = report.nodes.into_iter().map(|n| n.arrivals).collect();
    (Rc::try_unwrap(log).expect("engine dropped its clones").into_inner(), arrivals, metrics)
}

/// Asserts `got` equals the wheel reference at the level `scheduler`'s contract
/// promises: everything for the heap, everything but the global intra-tick
/// interleaving for the sharded engine.
fn assert_schedule_eq(
    wheel: &RecorderView,
    got: &RecorderView,
    scheduler: SchedulerKind,
    context: &dyn Fn() -> String,
) {
    if matches!(scheduler, SchedulerKind::BinaryHeap) {
        assert_eq!(wheel.0, got.0, "global delivery order diverged ({})", context());
    }
    assert_eq!(wheel.1, got.1, "per-node arrival streams diverged ({})", context());
    assert_eq!(wheel.2, got.2, "metrics diverged ({})", context());
    // Same multiset of deliveries in both logs regardless of engine: the
    // sharded log is a permutation of the wheel's within each tick.
    let sort = |mut v: Vec<(NodeId, NodeId, u64)>| {
        v.sort_unstable();
        v
    };
    assert_eq!(
        sort(wheel.0.clone()),
        sort(got.0.clone()),
        "delivery multiset diverged ({})",
        context()
    );
}

#[test]
fn all_schedulers_produce_identical_schedules_on_random_graphs() {
    // Random graphs × jitter seeds: the externally visible schedule must match
    // event for event.
    for graph_seed in [3u64, 17, 40] {
        let graph = Graph::random_connected(28, 0.12, graph_seed);
        for delay_seed in [1u64, 9, 23] {
            let delay = DelayModel::jitter(delay_seed);
            let wheel = run_recorder(&graph, delay.clone(), SchedulerKind::TimingWheel);
            for scheduler in [SchedulerKind::BinaryHeap].into_iter().chain(SHARDED) {
                let got = run_recorder(&graph, delay.clone(), scheduler);
                assert_schedule_eq(&wheel, &got, scheduler, &|| {
                    format!("{scheduler:?}, graph seed {graph_seed}, delay seed {delay_seed}")
                });
            }
        }
    }
}

#[test]
fn all_schedulers_agree_under_every_standard_adversary() {
    // The composite outage model rides along: it is the only shipped adversary
    // whose multi-τ delays reach the wheel's overflow heap, so it pins the
    // overflow path of the equivalence argument too — for the sharded engine,
    // that each shard's overflow heap drains in the same global order.
    let graph = Graph::random_connected(24, 0.15, 5);
    let mut adversaries = DelayModel::standard_suite(13);
    adversaries.push(DelayModel::outage(13, 5, 2));
    for delay in adversaries {
        let wheel = run_recorder(&graph, delay.clone(), SchedulerKind::TimingWheel);
        for scheduler in [SchedulerKind::BinaryHeap].into_iter().chain(SHARDED) {
            let got = run_recorder(&graph, delay.clone(), scheduler);
            assert_schedule_eq(&wheel, &got, scheduler, &|| format!("{scheduler:?}, {delay:?}"));
        }
    }
}

/// Like [`Recorder`] but without the shared `Rc` log, so it is `Send` and can
/// go through [`run_async_sharded_with`] — the only public surface that
/// exposes the batching knob. The per-node arrival streams plus byte-identical
/// `RunMetrics` are exactly what the sharded contract promises.
#[derive(Debug)]
struct SendRecorder<'g> {
    me: NodeId,
    neighbors: &'g [NodeId],
    arrivals: Vec<(NodeId, u64)>,
    waves_left: u64,
}

impl Protocol for SendRecorder<'_> {
    type Message = u64;

    fn on_start(&mut self, ctx: &mut Ctx<u64>) {
        if self.me.index().is_multiple_of(7) {
            for (i, &u) in self.neighbors.iter().enumerate() {
                ctx.send_with(u, 1, (i % 3) as u64, MessageClass::Algorithm);
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<u64>) {
        self.arrivals.push((from, msg));
        if self.waves_left > 0 {
            self.waves_left -= 1;
            for (i, &u) in self.neighbors.iter().enumerate() {
                ctx.send_with(u, msg + 1, (msg + i as u64) % 4, MessageClass::Algorithm);
            }
        }
    }

    fn is_done(&self) -> bool {
        true
    }
}

#[test]
fn batching_on_and_off_produce_bit_identical_schedules() {
    // The dynamic batching gate only widens barriers over causally independent
    // ticks, so flipping it must not move a single event: per-node arrival
    // streams and RunMetrics are pinned against the serial wheel reference for
    // both settings, across shard counts and adversaries (including the outage
    // model, whose multi-τ delays exercise the hierarchical wheel's coarse
    // tier inside the window-cap computation).
    let graph = Graph::random_connected(26, 0.14, 11);
    let mut adversaries = vec![DelayModel::jitter(7), DelayModel::uniform()];
    adversaries.push(DelayModel::outage(7, 5, 2));
    let run_sharded = |delay: &DelayModel, shards: usize, batching: bool| {
        let report = run_async_sharded_with(
            &graph,
            delay.clone(),
            |v| SendRecorder {
                me: v,
                neighbors: graph.neighbors(v),
                arrivals: Vec::new(),
                waves_left: 3,
            },
            SimLimits::default(),
            ShardedOptions { batching, threads: ThreadMode::Off, ..ShardedOptions::new(shards) },
        )
        .expect("sharded recorder run");
        let metrics = report.metrics;
        let arrivals: Vec<Vec<(NodeId, u64)>> =
            report.nodes.into_iter().map(|n| n.arrivals).collect();
        (arrivals, metrics)
    };
    for delay in &adversaries {
        let wheel = run_recorder(&graph, delay.clone(), SchedulerKind::TimingWheel);
        for shards in [1usize, 2, 4, 7] {
            let on = run_sharded(delay, shards, true);
            let off = run_sharded(delay, shards, false);
            assert_eq!(on, off, "batching flipped the schedule (shards={shards}, {delay:?})");
            assert_eq!(
                wheel.1, on.0,
                "per-node arrivals diverged from the wheel (shards={shards}, {delay:?})"
            );
            assert_eq!(
                wheel.2, on.1,
                "metrics diverged from the wheel (shards={shards}, {delay:?})"
            );
        }
    }
}

#[test]
fn every_sync_kind_is_scheduler_independent_on_bfs() {
    // Full stack: the synchronizers' executions (outputs *and* byte-identical
    // RunMetrics) must not depend on the scheduler choice. The `Sharded` kinds
    // here go through `Session` → the executors → `run_async_sharded`, which
    // engages worker threads when the host has spare cores — on multi-core CI
    // this pins the cross-thread hand-off end to end.
    let graph = Graph::grid(5, 5);
    for kind in SyncKind::standard_suite() {
        for delay_seed in [2u64, 31] {
            let run = |scheduler: SchedulerKind| {
                Session::on(&graph)
                    .delay(DelayModel::jitter(delay_seed))
                    .synchronizer(kind.clone())
                    .scheduler(scheduler)
                    .run(|v| BfsAlgorithm::new(&graph, v, &[NodeId(0), NodeId(12)]))
                    .unwrap_or_else(|e| panic!("{}: {e}", kind.label()))
            };
            let wheel = run(SchedulerKind::TimingWheel);
            for scheduler in [SchedulerKind::BinaryHeap].into_iter().chain(SHARDED) {
                let got = run(scheduler);
                assert_eq!(
                    wheel.outputs,
                    got.outputs,
                    "{} outputs diverged ({scheduler:?})",
                    kind.label()
                );
                assert_eq!(
                    wheel.metrics,
                    got.metrics,
                    "{} metrics diverged ({scheduler:?})",
                    kind.label()
                );
                assert_eq!(wheel.ordering_violations, got.ordering_violations);
            }
        }
    }
}
