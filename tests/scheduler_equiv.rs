//! Scheduler equivalence: the timing-wheel scheduler and the binary-heap
//! reference must produce **identical** executions — same delivery order, same
//! outputs, byte-identical metrics — on every workload, graph and adversary.
//!
//! This pins the tentpole property of the timing-wheel refactor: the wheel is a
//! pure representation change of the event queue, and any divergence (a slot
//! drained out of seq order, a mis-rotated horizon, an overflow entry served
//! late) shows up here as a diff between the two engines.

use det_synchronizer::algos::bfs::BfsAlgorithm;
use det_synchronizer::netsim::protocol::{Ctx, Protocol};
use det_synchronizer::netsim::{run_async_with, MessageClass, SimLimits};
use det_synchronizer::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// A shared log of every delivery, in engine order: `(from, to, payload)`.
type DeliveryLog = Rc<RefCell<Vec<(NodeId, NodeId, u64)>>>;

/// A chatty protocol that records the global delivery order and keeps traffic
/// flowing for a few waves, with mixed per-message priorities so the per-link
/// stage queues are exercised too.
#[derive(Debug)]
struct Recorder<'g> {
    me: NodeId,
    neighbors: &'g [NodeId],
    log: DeliveryLog,
    waves_left: u64,
}

impl Protocol for Recorder<'_> {
    type Message = u64;

    fn on_start(&mut self, ctx: &mut Ctx<u64>) {
        if self.me.index().is_multiple_of(7) {
            for (i, &u) in self.neighbors.iter().enumerate() {
                ctx.send_with(u, 1, (i % 3) as u64, MessageClass::Algorithm);
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<u64>) {
        self.log.borrow_mut().push((from, self.me, msg));
        if self.waves_left > 0 {
            self.waves_left -= 1;
            for (i, &u) in self.neighbors.iter().enumerate() {
                ctx.send_with(u, msg + 1, (msg + i as u64) % 4, MessageClass::Algorithm);
            }
        }
    }

    fn is_done(&self) -> bool {
        true
    }
}

fn run_recorder(
    graph: &Graph,
    delay: DelayModel,
    scheduler: SchedulerKind,
) -> (Vec<(NodeId, NodeId, u64)>, RunMetrics) {
    let log: DeliveryLog = Rc::new(RefCell::new(Vec::new()));
    let report = run_async_with(
        graph,
        delay,
        |v| Recorder { me: v, neighbors: graph.neighbors(v), log: Rc::clone(&log), waves_left: 3 },
        SimLimits::default(),
        scheduler,
    )
    .expect("recorder run");
    let metrics = report.metrics;
    drop(report.nodes); // release the per-node Rc clones before unwrapping the log
    (Rc::try_unwrap(log).expect("engine dropped its clones").into_inner(), metrics)
}

#[test]
fn wheel_and_heap_produce_identical_delivery_orders_on_random_graphs() {
    // Random graphs × jitter seeds: the delivery log (the engine's externally
    // visible schedule) must match event for event.
    for graph_seed in [3u64, 17, 40] {
        let graph = Graph::random_connected(28, 0.12, graph_seed);
        for delay_seed in [1u64, 9, 23] {
            let delay = DelayModel::jitter(delay_seed);
            let (wheel_log, wheel_metrics) =
                run_recorder(&graph, delay.clone(), SchedulerKind::TimingWheel);
            let (heap_log, heap_metrics) =
                run_recorder(&graph, delay.clone(), SchedulerKind::BinaryHeap);
            assert_eq!(
                wheel_log, heap_log,
                "delivery order diverged (graph seed {graph_seed}, delay seed {delay_seed})"
            );
            assert_eq!(wheel_metrics, heap_metrics, "metrics diverged");
        }
    }
}

#[test]
fn wheel_and_heap_agree_under_every_standard_adversary() {
    // The composite outage model rides along: it is the only shipped adversary
    // whose multi-τ delays reach the wheel's overflow heap, so it pins the
    // overflow path of the equivalence argument too.
    let graph = Graph::random_connected(24, 0.15, 5);
    let mut adversaries = DelayModel::standard_suite(13);
    adversaries.push(DelayModel::outage(13, 5, 2));
    for delay in adversaries {
        let (wheel_log, wheel_metrics) =
            run_recorder(&graph, delay.clone(), SchedulerKind::TimingWheel);
        let (heap_log, heap_metrics) =
            run_recorder(&graph, delay.clone(), SchedulerKind::BinaryHeap);
        assert_eq!(wheel_log, heap_log, "delivery order diverged under {delay:?}");
        assert_eq!(wheel_metrics, heap_metrics, "metrics diverged under {delay:?}");
    }
}

#[test]
fn every_sync_kind_is_scheduler_independent_on_bfs() {
    // Full stack: the synchronizers' executions (outputs *and* byte-identical
    // RunMetrics) must not depend on the scheduler choice.
    let graph = Graph::grid(5, 5);
    for kind in SyncKind::standard_suite() {
        for delay_seed in [2u64, 31] {
            let run = |scheduler: SchedulerKind| {
                Session::on(&graph)
                    .delay(DelayModel::jitter(delay_seed))
                    .synchronizer(kind.clone())
                    .scheduler(scheduler)
                    .run(|v| BfsAlgorithm::new(&graph, v, &[NodeId(0), NodeId(12)]))
                    .unwrap_or_else(|e| panic!("{}: {e}", kind.label()))
            };
            let wheel = run(SchedulerKind::TimingWheel);
            let heap = run(SchedulerKind::BinaryHeap);
            assert_eq!(wheel.outputs, heap.outputs, "{} outputs diverged", kind.label());
            assert_eq!(wheel.metrics, heap.metrics, "{} metrics diverged", kind.label());
            assert_eq!(wheel.ordering_violations, heap.ordering_violations);
        }
    }
}
