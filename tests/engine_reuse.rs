//! Engine-reuse hygiene: recycled engine state must start every run
//! indistinguishable from cold state — the reset contract of
//! `ds-netsim::recycle`.
//!
//! The recycled entry point promotes the engine's finished-run
//! "every arena handle returned" `debug_assert` into a hard assertion on
//! every run; here the same invariant is additionally *test-visible* through
//! [`EngineSlab::is_clean`], checked back-to-back across reuse, cross-graph
//! adoption and error-run discard.

use det_synchronizer::netsim::protocol::{Ctx, Protocol};
use det_synchronizer::netsim::{
    run_async, run_async_recycled, AsyncReport, EngineSlab, MessageClass, SlabBank,
};
use det_synchronizer::prelude::*;

/// Multi-wave flood with per-hop payload, owned adjacency (recycled slabs are
/// keyed by message `TypeId`, so protocols own their data).
#[derive(Debug)]
struct Flood {
    neighbors: Vec<NodeId>,
    arrivals: Vec<(NodeId, u64)>,
    waves_left: u64,
}

impl Flood {
    fn new(graph: &Graph, me: NodeId) -> Self {
        Flood { neighbors: graph.neighbors(me).to_vec(), arrivals: Vec::new(), waves_left: 3 }
    }
}

impl Protocol for Flood {
    type Message = u64;

    fn on_start(&mut self, ctx: &mut Ctx<u64>) {
        for (i, &u) in self.neighbors.iter().enumerate() {
            ctx.send_with(u, 1, (i % 3) as u64, MessageClass::Algorithm);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<u64>) {
        self.arrivals.push((from, msg));
        if self.waves_left > 0 {
            self.waves_left -= 1;
            for (i, &u) in self.neighbors.iter().enumerate() {
                ctx.send_with(u, msg + 1, (msg + i as u64) % 4, MessageClass::Algorithm);
            }
        }
    }

    fn is_done(&self) -> bool {
        true
    }
}

fn arrivals(report: &AsyncReport<Flood>) -> Vec<Vec<(NodeId, u64)>> {
    report.nodes.iter().map(|n| n.arrivals.clone()).collect()
}

/// Asserts a recycled run equals a cold run on everything but arena capacity.
fn assert_matches_cold(recycled: &AsyncReport<Flood>, cold: &AsyncReport<Flood>, what: &str) {
    assert_eq!(recycled.metrics, cold.metrics, "{what}: metrics");
    assert_eq!(arrivals(recycled), arrivals(cold), "{what}: per-node schedules");
    assert_eq!(recycled.peak_live_handles, cold.peak_live_handles, "{what}: arena high-water");
    assert_eq!(recycled.max_batch, cold.max_batch, "{what}: max due batch");
    assert_eq!(recycled.batched_ticks, cold.batched_ticks, "{what}: batched ticks");
    // `arena_bytes` is excluded by design: recycled capacity may exceed cold.
}

#[test]
fn recycled_state_starts_every_run_empty_and_matches_cold_runs() {
    let graph = Graph::grid(8, 8);
    let mut slab = EngineSlab::new();
    assert!(slab.is_clean(), "a fresh slab is trivially clean");
    for (round, delay) in
        [DelayModel::jitter(5), DelayModel::uniform(), DelayModel::jitter_at_least(9, 0.5)]
            .into_iter()
            .enumerate()
    {
        let cold =
            run_async(&graph, delay.clone(), |v| Flood::new(&graph, v), SimLimits::default())
                .expect("cold run");
        let recycled = run_async_recycled(
            &graph,
            delay,
            None,
            |v| Flood::new(&graph, v),
            SimLimits::default(),
            &mut slab,
        )
        .expect("recycled run");
        assert_matches_cold(&recycled, &cold, &format!("round {round}"));
        // The test-visible reset invariant: after every finished run the slab
        // holds no live arena handles and no queued link traffic.
        assert!(slab.is_clean(), "round {round}: slab not clean after a finished run");
        assert_eq!(slab.runs(), round as u64 + 1);
    }
}

#[test]
fn one_slab_serves_different_graphs_back_to_back() {
    // Adoption rewrites the link table for the new topology (growing or
    // shrinking it) — a slab is not pinned to the graph it first ran.
    let graphs = [
        Graph::grid(7, 7),
        Graph::path(9),
        Graph::torus(5, 5),
        Graph::cycle(20),
        Graph::grid(3, 3),
    ];
    let mut slab = EngineSlab::new();
    for (i, graph) in graphs.iter().enumerate() {
        let delay = DelayModel::jitter(3 + i as u64);
        let cold = run_async(graph, delay.clone(), |v| Flood::new(graph, v), SimLimits::default())
            .expect("cold run");
        let recycled = run_async_recycled(
            graph,
            delay,
            None,
            |v| Flood::new(graph, v),
            SimLimits::default(),
            &mut slab,
        )
        .expect("recycled run");
        assert_matches_cold(&recycled, &cold, &format!("graph {i}"));
        assert!(slab.is_clean(), "graph {i}");
    }
    assert_eq!(slab.runs(), graphs.len() as u64);
}

#[test]
fn faulted_runs_recycle_cleanly_too() {
    // Fault-dropped deliveries still return their arena handles; the reset
    // contract holds for partial runs exactly like for complete ones.
    let graph = Graph::grid(6, 6);
    let plan = FaultPlan::new()
        .node_crash(0, NodeId(0))
        .link_down(0, NodeId(7), NodeId(8))
        .link_up(5000, NodeId(7), NodeId(8));
    let mut slab = EngineSlab::new();
    for round in 0..2 {
        let cold = det_synchronizer::netsim::run_async_faulted(
            &graph,
            DelayModel::jitter(4),
            Some(&plan),
            |v| Flood::new(&graph, v),
            SimLimits::default(),
            SchedulerKind::TimingWheel,
        )
        .expect("cold faulted run");
        let recycled = run_async_recycled(
            &graph,
            DelayModel::jitter(4),
            Some(&plan),
            |v| Flood::new(&graph, v),
            SimLimits::default(),
            &mut slab,
        )
        .expect("recycled faulted run");
        assert_matches_cold(&recycled, &cold, &format!("faulted round {round}"));
        assert!(cold.dropped_events > 0, "the plan must actually drop deliveries");
        assert_eq!(recycled.dropped_events, cold.dropped_events);
        assert_eq!(recycled.fault_transitions, cold.fault_transitions);
        assert!(slab.is_clean(), "faulted round {round}");
    }
}

#[test]
fn error_runs_discard_slab_state_without_poisoning_later_runs() {
    let graph = Graph::grid(6, 6);
    let mut slab = EngineSlab::new();
    // A successful run first, so the slab actually holds recycled state.
    run_async_recycled(
        &graph,
        DelayModel::jitter(5),
        None,
        |v| Flood::new(&graph, v),
        SimLimits::default(),
        &mut slab,
    )
    .expect("warmup run");
    assert_eq!(slab.runs(), 1);

    // Starve the event budget mid-run: the engine errors with live handles.
    let starved = SimLimits { max_events: 10, ..SimLimits::default() };
    let err = run_async_recycled(
        &graph,
        DelayModel::jitter(5),
        None,
        |v| Flood::new(&graph, v),
        starved,
        &mut slab,
    );
    assert!(err.is_err(), "the starved budget must abort the run");
    // The slab discarded the aborted engine state wholesale: still clean
    // (degraded to cold capacity), never poisoned, run count unchanged.
    assert!(slab.is_clean(), "an error run must leave the slab clean");
    assert_eq!(slab.runs(), 1, "an aborted run does not count");

    // And the next run through the same slab matches a cold run exactly.
    let cold =
        run_async(&graph, DelayModel::jitter(5), |v| Flood::new(&graph, v), SimLimits::default())
            .expect("cold run");
    let after = run_async_recycled(
        &graph,
        DelayModel::jitter(5),
        None,
        |v| Flood::new(&graph, v),
        SimLimits::default(),
        &mut slab,
    )
    .expect("post-error run");
    assert_matches_cold(&after, &cold, "post-error");
    assert!(slab.is_clean());
}

#[test]
fn bank_recycles_across_checkouts_and_keeps_slabs_clean() {
    let graph = Graph::grid(5, 5);
    let bank = SlabBank::new();
    let mut last_events = None;
    for round in 0..4 {
        let mut slab = bank.checkout::<u64>();
        let report = run_async_recycled(
            &graph,
            DelayModel::jitter(7),
            None,
            |v| Flood::new(&graph, v),
            SimLimits::default(),
            &mut slab,
        )
        .expect("bank run");
        // check_in asserts cleanliness itself; the explicit check keeps the
        // invariant visible in the test.
        assert!(slab.is_clean(), "round {round}");
        bank.check_in(slab);
        if let Some(events) = last_events {
            assert_eq!(report.metrics.events, events, "round {round}: schedule drifted");
        }
        last_events = Some(report.metrics.events);
    }
    assert_eq!(bank.checkouts(), 4);
    assert_eq!(bank.reuses(), 3, "every checkout after the first reuses the pooled slab");
}
