//! Cover-cache correctness: a cache hit must be *bit-identical* to a cold
//! `SynchronizerConfig::build`, and any change to the topology or the build
//! parameters — including graphs produced by dynamic-topology repair — must
//! miss rather than alias a stale entry.
//!
//! `SynchronizerConfig` derives full structural equality exactly for these
//! assertions: `*cached == *cold` compares the pulse bound, every cover layer,
//! every cluster tree and every precomputed stage table.

use det_synchronizer::algos::bfs::BfsAlgorithm;
use det_synchronizer::covers::builder::build_layered_sparse_cover;
use det_synchronizer::covers::repair::{repair_sparse_cover, without_edge};
use det_synchronizer::prelude::*;
use det_synchronizer::sync::service::{
    CoverCache, ServiceRequest, SessionPool, SynchronizerParams,
};
use std::sync::Arc;

#[test]
fn cache_hit_is_bit_identical_to_a_cold_build_across_families() {
    let cache = CoverCache::new();
    for (label, graph) in [
        ("grid", Graph::grid(6, 6)),
        ("torus", Graph::torus(4, 5)),
        ("random-regular", Graph::random_regular(40, 4, 11)),
    ] {
        for max_pulse in [4u64, 9] {
            let params = SynchronizerParams { max_pulse };
            let cold = SynchronizerConfig::build(&graph, max_pulse);
            let first = cache.get_or_build(&graph, params);
            let hit = cache.get_or_build(&graph, params);
            assert!(Arc::ptr_eq(&first, &hit), "{label}/{max_pulse}: second lookup must hit");
            assert_eq!(*hit, *cold, "{label}/{max_pulse}: cached config differs from cold build");
        }
    }
    // 3 families × 2 bounds: every (graph, params) pair is its own entry.
    assert_eq!(cache.len(), 6);
    assert_eq!(cache.misses(), 6);
    assert_eq!(cache.hits(), 6);
}

#[test]
fn parameter_changes_miss_instead_of_aliasing() {
    let cache = CoverCache::new();
    let graph = Graph::grid(5, 5);
    let a = cache.get_or_build(&graph, SynchronizerParams { max_pulse: 6 });
    let b = cache.get_or_build(&graph, SynchronizerParams { max_pulse: 7 });
    assert!(!Arc::ptr_eq(&a, &b), "a changed bound must not serve the old config");
    assert_ne!(*a, *b);
    assert_eq!((a.max_pulse, b.max_pulse), (6, 7));
    assert_eq!(cache.misses(), 2);
    assert_eq!(cache.hits(), 0);
}

#[test]
fn topology_changes_including_repaired_graphs_miss() {
    // The dynamic-topology pipeline repairs covers across edge removals; the
    // post-repair graph is a distinct topology and must get a distinct config.
    let graph = Graph::grid(5, 5);
    let repaired_graph = without_edge(&graph, NodeId(6), NodeId(7));
    // Sanity: the repair machinery itself accepts this topology change (the
    // repaired cover stays valid), so caching it is a realistic workload.
    let layered = build_layered_sparse_cover(&graph, 8);
    let (repaired_cover, _) = repair_sparse_cover(layered.level(1), &graph, &repaired_graph);
    repaired_cover.validate(&repaired_graph).expect("repaired cover stays valid");

    let cache = CoverCache::new();
    let params = SynchronizerParams { max_pulse: 8 };
    let before = cache.get_or_build(&graph, params);
    let after = cache.get_or_build(&repaired_graph, params);
    assert!(!Arc::ptr_eq(&before, &after), "the repaired topology must not alias");
    assert_ne!(*before, *after, "a removed edge must change the built config");
    assert_eq!(cache.misses(), 2, "both topologies built");
    assert_eq!(cache.len(), 2, "both topologies cached side by side");
    // Each topology keeps serving its own config.
    assert!(Arc::ptr_eq(&before, &cache.get_or_build(&graph, params)));
    assert!(Arc::ptr_eq(&after, &cache.get_or_build(&repaired_graph, params)));
    // And the cached post-repair config equals its cold build.
    assert_eq!(*after, *SynchronizerConfig::build(&repaired_graph, 8));
}

#[test]
fn same_size_different_structure_graphs_never_alias() {
    // Equal node and edge counts, different wiring: the structural hash keys
    // them apart, and even under a hypothetical hash collision the cache's
    // verify-on-hit (full graph equality) would keep them separate.
    let path = Graph::path(6); // 6 nodes, 5 edges, a line
    let mut star = Graph::new(6); // 6 nodes, 5 edges, a hub
    for i in 1..6 {
        star.add_edge(NodeId(0), NodeId(i)).expect("star edge");
    }
    assert_eq!(path.edge_count(), star.edge_count());
    assert_ne!(path.structural_hash(), star.structural_hash());

    let cache = CoverCache::new();
    let params = SynchronizerParams { max_pulse: 5 };
    let on_path = cache.get_or_build(&path, params);
    let on_star = cache.get_or_build(&star, params);
    assert_ne!(*on_path, *on_star);
    assert!(Arc::ptr_eq(&on_path, &cache.get_or_build(&path, params)));
    assert!(Arc::ptr_eq(&on_star, &cache.get_or_build(&star, params)));
}

#[test]
fn eviction_then_rebuild_matches_the_original_build() {
    let g1 = Graph::grid(4, 4);
    let g2 = Graph::cycle(12);
    let cache = CoverCache::with_capacity(1);
    let params = SynchronizerParams { max_pulse: 7 };

    let first = cache.get_or_build(&g1, params);
    cache.get_or_build(&g2, params); // capacity 1: evicts g1
    assert_eq!(cache.evictions(), 1);
    assert_eq!(cache.len(), 1);
    let rebuilt = cache.get_or_build(&g1, params); // miss again, rebuild
    assert_eq!(cache.evictions(), 2, "g2 evicted in turn");
    assert!(!Arc::ptr_eq(&first, &rebuilt), "the evicted entry is gone; this is a fresh build");
    assert_eq!(*first, *rebuilt, "a rebuild after eviction must be bit-identical");
    assert_eq!(*rebuilt, *SynchronizerConfig::build(&g1, 7));
}

#[test]
fn capacity_one_pool_still_runs_every_request_correctly() {
    // End to end: a pool whose cache thrashes (capacity 1, two alternating
    // topologies) must still produce bit-identical runs — eviction costs
    // rebuild time, never correctness.
    let g1 = Graph::grid(4, 4);
    let g2 = Graph::cycle(10);
    let requests = vec![
        ServiceRequest::on(&g1).delay(DelayModel::jitter(3)),
        ServiceRequest::on(&g2).delay(DelayModel::jitter(4)),
        ServiceRequest::on(&g1).delay(DelayModel::jitter(5)),
        ServiceRequest::on(&g2).delay(DelayModel::jitter(6)),
    ];
    let pool = SessionPool::with_cache(1, CoverCache::with_capacity(1));
    let results = pool.run_batch::<BfsAlgorithm, _>(&requests, |i, v| {
        BfsAlgorithm::new(requests[i].graph, v, &[NodeId(0)])
    });
    for (i, (req, result)) in requests.iter().zip(&results).enumerate() {
        let pooled = result.as_ref().unwrap_or_else(|e| panic!("req {i}: {e}"));
        let solo = Session::on(req.graph)
            .delay(req.delay.clone())
            .synchronizer(SyncKind::DetAuto)
            .run(|v| BfsAlgorithm::new(req.graph, v, &[NodeId(0)]))
            .expect("standalone");
        assert_eq!(pooled.outputs, solo.outputs, "req {i}");
        assert_eq!(pooled.metrics, solo.metrics, "req {i}");
    }
    assert_eq!(pool.cache().capacity(), 1);
    assert!(pool.cache().evictions() > 0, "alternating topologies must thrash a capacity-1 cache");
}
