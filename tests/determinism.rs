//! Determinism regression tests: the simulators are fully deterministic, so the
//! same graph and the same seeded `DelayModel` must produce *identical* results on
//! repeated runs — same per-node outputs and byte-identical `RunMetrics` — for
//! every `SyncKind`. This pins down the engine representation refactors (flat link
//! tables, inline event heaps, recycled buffers): any hidden dependence on map
//! iteration order or allocation state would show up here as run-to-run drift.

use det_synchronizer::algos::bfs::BfsAlgorithm;
use det_synchronizer::algos::flood::FloodAlgorithm;
use det_synchronizer::prelude::*;

fn run_twice_and_compare<A, F>(name: &str, graph: &Graph, delay: DelayModel, mut make: F)
where
    A: EventDriven,
    F: FnMut(NodeId) -> A,
{
    for kind in SyncKind::standard_suite() {
        let first = Session::on(graph)
            .delay(delay.clone())
            .synchronizer(kind.clone())
            .run(&mut make)
            .unwrap_or_else(|e| panic!("{name}/{}: {e}", kind.label()));
        let second = Session::on(graph)
            .delay(delay.clone())
            .synchronizer(kind.clone())
            .run(&mut make)
            .unwrap_or_else(|e| panic!("{name}/{}: {e}", kind.label()));
        assert_eq!(
            first.outputs,
            second.outputs,
            "{name}/{}: outputs drifted between identical runs",
            kind.label()
        );
        assert_eq!(
            first.metrics,
            second.metrics,
            "{name}/{}: metrics drifted between identical runs under {delay:?}",
            kind.label()
        );
        assert_eq!(first.ordering_violations, second.ordering_violations);
    }
}

#[test]
fn every_sync_kind_is_deterministic_on_bfs() {
    let graph = Graph::grid(5, 5);
    for delay in DelayModel::standard_suite(23) {
        run_twice_and_compare("grid-bfs", &graph, delay, |v| {
            BfsAlgorithm::new(&graph, v, &[NodeId(0), NodeId(13)])
        });
    }
}

#[test]
fn every_sync_kind_is_deterministic_on_flooding() {
    let graph = Graph::random_connected(24, 0.12, 7);
    run_twice_and_compare("random-flood", &graph, DelayModel::jitter(41), |v| {
        FloodAlgorithm::new(&graph, v, NodeId(0), 9)
    });
}

#[test]
fn sharded_runs_are_deterministic_and_shard_count_independent() {
    // The sharded engine must be a pure execution-strategy choice: for every
    // SyncKind × adversary (the outage model included — its multi-τ delays park
    // events in the per-shard overflow heaps), reports are byte-identical
    // across shard counts (1, 2, 4, 7 — including counts that split the graph
    // unevenly), across worker-pool sizes (1, 2, 4 — including pools smaller
    // than, equal to and larger than the shard count) *and* across repeat
    // runs. On multi-core hosts the shards round-robin over real worker
    // threads, so this also pins freedom from thread-interleaving
    // nondeterminism.
    let graph = Graph::grid(5, 5);
    let mut adversaries = DelayModel::standard_suite(17);
    adversaries.push(DelayModel::outage(17, 5, 2));
    for kind in SyncKind::standard_suite() {
        for delay in &adversaries {
            let run = |shards: usize, workers: usize| {
                Session::on(&graph)
                    .delay(delay.clone())
                    .synchronizer(kind.clone())
                    .scheduler(SchedulerKind::Sharded { shards, workers })
                    .run(|v| BfsAlgorithm::new(&graph, v, &[NodeId(0), NodeId(13)]))
                    .unwrap_or_else(|e| {
                        panic!("{}/shards={shards}/workers={workers}: {e}", kind.label())
                    })
            };
            let reference = run(1, 0);
            for shards in [2usize, 4, 7] {
                for workers in [1usize, 2, 4] {
                    let got = run(shards, workers);
                    assert_eq!(
                        reference.outputs,
                        got.outputs,
                        "{}: outputs depend on shards={shards}/workers={workers} under {delay:?}",
                        kind.label()
                    );
                    assert_eq!(
                        reference.metrics,
                        got.metrics,
                        "{}: metrics depend on shards={shards}/workers={workers} under {delay:?}",
                        kind.label()
                    );
                    assert_eq!(reference.ordering_violations, got.ordering_violations);
                }
            }
            let repeat = run(4, 2);
            assert_eq!(reference.outputs, repeat.outputs, "{}: repeat drift", kind.label());
            assert_eq!(reference.metrics, repeat.metrics, "{}: repeat drift", kind.label());
        }
    }
}

#[test]
fn distinct_seeds_actually_change_the_schedule() {
    // Guard against a vacuous determinism test: different jitter seeds must
    // produce different (while still correct) asynchronous schedules.
    let graph = Graph::grid(5, 5);
    let run = |seed: u64| {
        Session::on(&graph)
            .delay(DelayModel::jitter(seed))
            .synchronizer(SyncKind::DetAuto)
            .run(|v| BfsAlgorithm::new(&graph, v, &[NodeId(0)]))
            .expect("run")
    };
    let a = run(1);
    let b = run(2);
    assert_eq!(a.outputs, b.outputs, "outputs are schedule-independent");
    assert_ne!(
        a.metrics.time_to_quiescence, b.metrics.time_to_quiescence,
        "different adversaries should yield different completion times"
    );
}
