//! Pooled determinism: every run dispatched through a
//! [`SessionPool`] is bit-identical to the same request run through a
//! standalone [`Session`] — the service layer's headline guarantee.
//!
//! The matrix mixes graphs, delay adversaries, synchronizer kinds (direct, α,
//! β, det with and without a shared config), schedulers (serial wheel and
//! sharded with batching live) and fault plans, and checks every comparable
//! field of [`SynchronizedRun`]. The single deliberate exclusion is
//! `arena_bytes`: a recycled payload arena may carry more *capacity* than a
//! cold run ever allocated, and capacity is an engine internal that never
//! influences a schedule (like `AsyncReport::overflow_events`).

use det_synchronizer::algos::bfs::BfsAlgorithm;
use det_synchronizer::prelude::*;
use det_synchronizer::sync::service::{ServiceRequest, SessionPool};

/// Runs one request through a standalone `Session` — the reference execution.
fn run_standalone(
    req: &ServiceRequest<'_>,
) -> SynchronizedRun<det_synchronizer::algos::bfs::BfsOutput> {
    let mut session = Session::on(req.graph)
        .delay(req.delay.clone())
        .limits(req.limits)
        .scheduler(req.scheduler)
        .synchronizer(req.kind.clone());
    if let Some(bound) = req.pulse_bound {
        session = session.pulse_bound(bound);
    }
    if let Some(plan) = &req.faults {
        session = session.faults(plan.clone());
    }
    session.run(|v| BfsAlgorithm::new(req.graph, v, &[NodeId(0)])).expect("standalone run")
}

/// Asserts a pooled result equals its standalone reference on every field a
/// schedule determines. `arena_bytes` is excluded — see the module docs.
fn assert_bit_identical<O: std::fmt::Debug + PartialEq>(
    pooled: &SynchronizedRun<O>,
    solo: &SynchronizedRun<O>,
    what: &str,
) {
    assert_eq!(pooled.outputs, solo.outputs, "{what}: outputs");
    assert_eq!(pooled.metrics, solo.metrics, "{what}: metrics");
    assert_eq!(pooled.ordering_violations, solo.ordering_violations, "{what}: violations");
    assert_eq!(pooled.dropped_events, solo.dropped_events, "{what}: dropped events");
    assert_eq!(pooled.fault_transitions, solo.fault_transitions, "{what}: fault transitions");
    assert_eq!(pooled.health, solo.health, "{what}: health");
    assert_eq!(pooled.batched_ticks, solo.batched_ticks, "{what}: batched ticks");
    assert_eq!(pooled.peak_live_handles, solo.peak_live_handles, "{what}: arena high-water");
    assert_eq!(pooled.max_batch, solo.max_batch, "{what}: max due batch");
}

#[test]
fn mixed_matrix_is_bit_identical_across_worker_counts() {
    let grid = Graph::grid(6, 6);
    let torus = Graph::torus(4, 4);
    let rr = Graph::random_regular(48, 4, 9);
    let path = Graph::path(12);
    let shared_cfg = SynchronizerConfig::build(&grid, 12);
    let crash_plan = FaultPlan::new().node_crash(0, NodeId(0));
    let churn_plan =
        FaultPlan::new().link_down(0, NodeId(3), NodeId(4)).link_up(4000, NodeId(3), NodeId(4));

    let requests: Vec<ServiceRequest<'_>> = vec![
        // 0: the cacheable default — DetAuto, auto-resolved bound.
        ServiceRequest::on(&grid).delay(DelayModel::jitter(3)),
        // 1: α with the bound resolved from the ground truth inside the pool.
        ServiceRequest::on(&torus).delay(DelayModel::jitter(5)).synchronizer(SyncKind::Alpha),
        // 2: β on an irregular topology, uniform delays.
        ServiceRequest::on(&rr).synchronizer(SyncKind::Beta { root: NodeId(0) }),
        // 3: det under a crash fault plan with an explicit bound.
        ServiceRequest::on(&path).delay(DelayModel::jitter(7)).pulse_bound(10).faults(crash_plan),
        // 4: an explicitly shared config (the Theorem 5.3 setting) — bypasses
        // the cache entirely.
        ServiceRequest::on(&grid)
            .delay(DelayModel::slow_cut(2))
            .synchronizer(SyncKind::Det(shared_cfg))
            .pulse_bound(12),
        // 5: request 0 repeated verbatim — must reproduce it exactly.
        ServiceRequest::on(&grid).delay(DelayModel::jitter(3)),
        // 6: the lock-step ground truth itself, pooled.
        ServiceRequest::on(&torus).synchronizer(SyncKind::Direct),
        // 7: the sharded engine inside a pooled request, link churn live.
        ServiceRequest::on(&rr)
            .delay(DelayModel::jitter(11))
            .scheduler(SchedulerKind::Sharded { shards: 2, workers: 2 })
            .pulse_bound(14)
            .faults(churn_plan),
    ];

    let standalone: Vec<_> = requests.iter().map(run_standalone).collect();
    let make = |i: usize, v: NodeId| BfsAlgorithm::new(requests[i].graph, v, &[NodeId(0)]);
    for workers in [0usize, 1, 2, 4] {
        let pool = SessionPool::new(workers);
        let results = pool.run_batch::<BfsAlgorithm, _>(&requests, make);
        assert_eq!(results.len(), requests.len());
        for (i, (pooled, solo)) in results.iter().zip(&standalone).enumerate() {
            let pooled = pooled.as_ref().unwrap_or_else(|e| panic!("req {i}: {e}"));
            assert_bit_identical(pooled, solo, &format!("workers={workers}, req {i}"));
        }
        // The repeated request reproduced the original inside the same batch.
        let (a, b) = (results[0].as_ref().unwrap(), results[5].as_ref().unwrap());
        assert_eq!(a.outputs, b.outputs, "repeat submission diverged");
        assert_eq!(a.metrics, b.metrics, "repeat submission diverged");
    }
}

#[test]
fn resubmitting_a_batch_to_a_warm_pool_is_identical() {
    // Second submission runs against a warm cover cache and recycled engine
    // slabs — both must be invisible to the schedules.
    let grid = Graph::grid(5, 5);
    let cycle = Graph::cycle(14);
    let requests = vec![
        ServiceRequest::on(&grid).delay(DelayModel::jitter(3)),
        ServiceRequest::on(&cycle).delay(DelayModel::jitter(5)),
        ServiceRequest::on(&grid).delay(DelayModel::jitter(8)),
    ];
    let make = |i: usize, v: NodeId| BfsAlgorithm::new(requests[i].graph, v, &[NodeId(0)]);
    let pool = SessionPool::new(2);
    let first = pool.run_batch::<BfsAlgorithm, _>(&requests, make);
    // Both grid requests land on the same worker (dispatch is by submission
    // index), so the grid config is built exactly once; the cycle topology is
    // the second build.
    assert_eq!(pool.cache().misses(), 2, "one build per distinct topology");
    let misses_after_first = pool.cache().misses();
    let second = pool.run_batch::<BfsAlgorithm, _>(&requests, make);
    assert_eq!(
        pool.cache().misses(),
        misses_after_first,
        "the resubmitted batch must be served entirely from the cache"
    );
    assert!(pool.bank().reuses() > 0, "the second batch must recycle engine slabs");
    for (i, (a, b)) in first.iter().zip(&second).enumerate() {
        let (a, b) = (a.as_ref().expect("first"), b.as_ref().expect("second"));
        assert_bit_identical(b, a, &format!("resubmission req {i}"));
    }
}

#[test]
fn out_of_order_completion_reassembles_by_submission_index() {
    // Request 0 is far larger than the rest: with several workers the small
    // requests complete long before it, so results genuinely arrive out of
    // submission order — and must still come back reassembled by index.
    let big = Graph::grid(10, 10);
    let tiny: Vec<Graph> = (0..6).map(|i| Graph::path(3 + i)).collect();
    let mut requests = vec![ServiceRequest::on(&big).delay(DelayModel::jitter(2))];
    for g in &tiny {
        requests.push(ServiceRequest::on(g).delay(DelayModel::jitter(4)));
    }
    let standalone: Vec<_> = requests.iter().map(run_standalone).collect();
    let make = |i: usize, v: NodeId| BfsAlgorithm::new(requests[i].graph, v, &[NodeId(0)]);
    let results = SessionPool::new(3).run_batch::<BfsAlgorithm, _>(&requests, make);
    for (i, (pooled, solo)) in results.iter().zip(&standalone).enumerate() {
        let pooled = pooled.as_ref().unwrap_or_else(|e| panic!("req {i}: {e}"));
        // Output lengths differ per request (distinct graphs), so a single
        // misrouted slot would fail loudly here.
        assert_eq!(pooled.outputs.len(), requests[i].graph.node_count(), "req {i} misrouted");
        assert_bit_identical(pooled, solo, &format!("req {i}"));
    }
}

#[test]
fn mixed_success_and_failure_slots_stay_independent() {
    let grid = Graph::grid(4, 4);
    let requests = vec![
        ServiceRequest::on(&grid).delay(DelayModel::jitter(3)),
        // An unusable event budget: fails validation in its own slot.
        ServiceRequest::on(&grid).limits(SimLimits { max_events: 0, ..SimLimits::default() }),
        // A starved event budget: fails inside the simulation.
        ServiceRequest::on(&grid)
            .delay(DelayModel::jitter(3))
            .pulse_bound(8)
            .limits(SimLimits { max_events: 5, ..SimLimits::default() }),
        ServiceRequest::on(&grid).delay(DelayModel::jitter(3)),
    ];
    let standalone = run_standalone(&requests[0]);
    let results = SessionPool::new(2).run_batch::<BfsAlgorithm, _>(&requests, |i, v| {
        BfsAlgorithm::new(requests[i].graph, v, &[NodeId(0)])
    });
    assert_bit_identical(results[0].as_ref().expect("req 0"), &standalone, "req 0");
    assert!(
        matches!(results[1], Err(SessionError::InvalidLimits { what: "max_events" })),
        "{:?}",
        results[1].as_ref().err()
    );
    assert!(matches!(results[2], Err(SessionError::Sim(_))), "{:?}", results[2].as_ref().err());
    // The failing slots must not have disturbed the succeeding ones — nor can
    // a failed run's engine state ever re-enter the recycling bank.
    assert_bit_identical(results[3].as_ref().expect("req 3"), &standalone, "req 3");
}
