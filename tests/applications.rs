//! Cross-crate integration tests: the Section 6 applications, run end to end through
//! the deterministic synchronizer (via the `Session` API) under every delay
//! adversary.

use det_synchronizer::algos::bfs::BfsAlgorithm;
use det_synchronizer::algos::flood::FloodAlgorithm;
use det_synchronizer::graph::metrics;
use det_synchronizer::graph::weights::{minimum_spanning_tree, EdgeWeights};
use det_synchronizer::prelude::*;

fn workloads() -> Vec<(&'static str, Graph)> {
    vec![
        ("path", Graph::path(16)),
        ("cycle", Graph::cycle(14)),
        ("grid", Graph::grid(5, 5)),
        ("caterpillar", Graph::caterpillar(6, 2)),
        ("random", Graph::random_connected(28, 0.1, 13)),
        ("clustered-ring", Graph::clustered_ring(4, 4)),
    ]
}

#[test]
fn flooding_matches_synchronous_execution_under_every_adversary() {
    for (name, graph) in workloads() {
        for delay in DelayModel::standard_suite(3) {
            let report = Session::on(&graph)
                .delay(delay.clone())
                .synchronizer(SyncKind::DetAuto)
                .compare(|v| FloodAlgorithm::new(&graph, v, NodeId(0), 5))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(report.outputs_match(), "{name} under {delay:?}");
        }
    }
}

#[test]
fn single_source_bfs_distances_are_exact_on_all_workloads() {
    for (name, graph) in workloads() {
        let run = Session::on(&graph)
            .delay(DelayModel::jitter(17))
            .synchronizer(SyncKind::DetAuto)
            .run(|v| BfsAlgorithm::new(&graph, v, &[NodeId(0)]))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let dist = metrics::bfs_distances(&graph, NodeId(0));
        for v in graph.nodes() {
            assert_eq!(
                run.outputs[v.index()].unwrap().distance,
                dist[v.index()].unwrap() as u64,
                "{name}, node {v}"
            );
        }
    }
}

#[test]
fn multi_source_bfs_matches_closest_source_distances() {
    let graph = Graph::grid(6, 6);
    let sources = [NodeId(0), NodeId(35), NodeId(17)];
    for delay in DelayModel::standard_suite(5) {
        let report = run_synchronized_multi_bfs(&graph, &sources, delay.clone()).unwrap();
        let dist = metrics::multi_source_distances(&graph, &sources);
        for v in graph.nodes() {
            assert_eq!(report.outputs[&v].distance, dist[v.index()].unwrap() as u64);
        }
    }
}

#[test]
fn leader_election_elects_global_minimum_on_all_workloads() {
    for (name, graph) in workloads() {
        let report = run_synchronized_leader_election(&graph, DelayModel::bursty(2))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(report.leader, Some(NodeId(0)), "{name}");
        assert!(report.outputs.iter().all(|o| *o == Some(NodeId(0))), "{name}");
    }
}

#[test]
fn mst_matches_kruskal_on_weighted_workloads() {
    for (name, graph) in [
        ("random", Graph::random_connected(20, 0.15, 21)),
        ("grid", Graph::grid(4, 5)),
        ("clustered-ring", Graph::clustered_ring(3, 4)),
    ] {
        let weights = EdgeWeights::random_distinct(&graph, 31);
        let report = run_synchronized_mst(&graph, &weights, DelayModel::slow_cut(5))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut expected: Vec<(NodeId, NodeId)> = minimum_spanning_tree(&graph, &weights)
            .into_iter()
            .map(|e| graph.endpoints(e))
            .collect();
        expected.sort();
        assert_eq!(report.tree_edges, expected, "{name}");
    }
}

#[test]
fn bfs_message_complexity_stays_near_linear_in_edges() {
    // Corollary 1.2: Õ(m) messages. The polylog factor on these sizes stays well
    // below log²(n)·64; the precise scaling is reported by the experiment harness.
    let graph = Graph::random_connected(48, 0.08, 8);
    let report = run_synchronized_bfs(&graph, NodeId(0), DelayModel::uniform()).unwrap();
    let m = graph.edge_count() as f64;
    let n = graph.node_count() as f64;
    let bound = 64.0 * m * n.log2().powi(2);
    assert!(
        (report.metrics.total_messages() as f64) < bound,
        "messages {} exceed Õ(m) budget {}",
        report.metrics.total_messages(),
        bound
    );
}
