//! Dynamic-topology fault injection, end to end (DESIGN.md §9).
//!
//! Three contracts are pinned here:
//!
//! * **Determinism under faults** — for every [`FaultPlan`] the schedule is
//!   bit-identical across repeat runs, across the wheel/heap serial engines,
//!   and across the sharded engine's whole configuration matrix
//!   (shards × workers × batching). Faults change *what* happens, never make
//!   it nondeterministic.
//! * **Happens-before soundness under churn** — every faulted trace still
//!   passes the `ds-verify` happens-before checker: drops remove deliveries,
//!   they never reorder the survivors.
//! * **Graceful degradation** — workloads (flood via `Session`, BFS and
//!   leader election via their `ds-algos` wrappers) terminate under crash-stop
//!   failures with an explicit partial-result status ([`RunHealth`]) instead
//!   of hanging or fabricating outputs.

use det_synchronizer::netsim::protocol::{Ctx, Protocol};
use det_synchronizer::netsim::{
    run_async_faulted_traced, run_async_sharded_faulted_traced_with, MessageClass, ShardedOptions,
    ThreadMode, TICKS_PER_UNIT,
};
use det_synchronizer::prelude::*;
use det_synchronizer::sync::session::{Session, SyncKind};
use ds_verify::{check_equivalence, check_trace};

/// Multi-wave flood (the `threaded_equiv` workload): every node seeds its
/// neighborhood and echoes a few waves, so barriers stay busy while the fault
/// plan flips links and nodes under them.
#[derive(Debug)]
struct Flood<'g> {
    neighbors: &'g [NodeId],
    arrivals: Vec<(NodeId, u64)>,
    waves_left: u64,
}

impl<'g> Flood<'g> {
    fn new(graph: &'g Graph, me: NodeId) -> Self {
        Flood { neighbors: graph.neighbors(me), arrivals: Vec::new(), waves_left: 3 }
    }
}

impl Protocol for Flood<'_> {
    type Message = u64;

    fn on_start(&mut self, ctx: &mut Ctx<u64>) {
        for (i, &u) in self.neighbors.iter().enumerate() {
            ctx.send_with(u, 1, (i % 3) as u64, MessageClass::Algorithm);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<u64>) {
        self.arrivals.push((from, msg));
        if self.waves_left > 0 {
            self.waves_left -= 1;
            for (i, &u) in self.neighbors.iter().enumerate() {
                ctx.send_with(u, msg + 1, (msg + i as u64) % 4, MessageClass::Algorithm);
            }
        }
    }

    fn is_done(&self) -> bool {
        true
    }
}

fn fault_plans(graph: &Graph) -> Vec<(&'static str, FaultPlan)> {
    let (_, u, v) = graph.edges().next().expect("non-empty graph");
    vec![
        (
            "hand-written mixed churn",
            FaultPlan::new()
                .link_down(TICKS_PER_UNIT / 4, u, v)
                .node_crash(TICKS_PER_UNIT / 2, NodeId(7))
                .link_up(2 * TICKS_PER_UNIT, u, v)
                .node_recover(3 * TICKS_PER_UNIT, NodeId(7)),
        ),
        ("random churn", FaultPlan::random_churn(graph, 33, 5, 2, 4 * TICKS_PER_UNIT)),
        ("permanent crash", FaultPlan::new().node_crash(0, NodeId(0)).node_crash(1, NodeId(13))),
    ]
}

/// The acceptance matrix: under every fault plan, the wheel, the heap and the
/// sharded engine over shards {1, 2, 4, 7} × workers {0, 2, 4} × batching
/// on/off all produce the same schedule, drop the same deliveries and apply
/// the same fault transitions — and a repeat run reproduces it bit for bit.
#[test]
fn every_fault_plan_is_bit_identical_across_the_engine_matrix() {
    let graph = Graph::grid(6, 6);
    for (plan_name, plan) in fault_plans(&graph) {
        for delay in [DelayModel::jitter(5), DelayModel::outage(7, 5, 2)] {
            let run_serial = |kind: SchedulerKind| {
                run_async_faulted_traced(
                    &graph,
                    delay.clone(),
                    Some(&plan),
                    |v| Flood::new(&graph, v),
                    SimLimits::default(),
                    kind,
                )
                .unwrap_or_else(|e| panic!("{plan_name}: {e}"))
            };
            let (reference, ref_trace) = run_serial(SchedulerKind::TimingWheel);
            check_trace(&ref_trace).expect("faulted wheel trace violates happens-before");
            let ref_arrivals: Vec<_> = reference.nodes.iter().map(|n| n.arrivals.clone()).collect();

            // Repeat-run determinism on the same engine.
            let (again, again_trace) = run_serial(SchedulerKind::TimingWheel);
            let again_arrivals: Vec<_> = again.nodes.iter().map(|n| n.arrivals.clone()).collect();
            assert_eq!(again_arrivals, ref_arrivals, "{plan_name}: repeat run diverged");
            assert_eq!(again.metrics, reference.metrics, "{plan_name}");
            check_equivalence(&ref_trace, &again_trace)
                .expect("repeat run recorded a different trace");

            // The heap scheduler is the serial reference's reference.
            let (heap, heap_trace) = run_serial(SchedulerKind::BinaryHeap);
            let heap_arrivals: Vec<_> = heap.nodes.iter().map(|n| n.arrivals.clone()).collect();
            assert_eq!(heap_arrivals, ref_arrivals, "{plan_name}: heap diverged");
            assert_eq!(heap.metrics, reference.metrics, "{plan_name}");
            assert_eq!(heap.dropped_events, reference.dropped_events, "{plan_name}");
            assert_eq!(heap.fault_transitions, reference.fault_transitions, "{plan_name}");
            check_equivalence(&ref_trace, &heap_trace).expect("heap trace diverged");

            for shards in [1usize, 2, 4, 7] {
                for workers in [0usize, 2, 4] {
                    for batching in [true, false] {
                        let label = format!(
                            "{plan_name}: shards={shards} workers={workers} batching={batching}"
                        );
                        let (sharded, sharded_trace) = run_async_sharded_faulted_traced_with(
                            &graph,
                            delay.clone(),
                            Some(&plan),
                            |v| Flood::new(&graph, v),
                            SimLimits::default(),
                            ShardedOptions {
                                workers,
                                threads: ThreadMode::ForceOn,
                                batching,
                                ..ShardedOptions::new(shards)
                            },
                        )
                        .unwrap_or_else(|e| panic!("{label}: {e}"));
                        check_trace(&sharded_trace)
                            .expect("faulted sharded trace violates happens-before");
                        check_equivalence(&ref_trace, &sharded_trace)
                            .unwrap_or_else(|v| panic!("{label}: trace diverged: {v:?}"));
                        let arrivals: Vec<_> =
                            sharded.nodes.iter().map(|n| n.arrivals.clone()).collect();
                        assert_eq!(arrivals, ref_arrivals, "{label}");
                        assert_eq!(sharded.metrics, reference.metrics, "{label}");
                        assert_eq!(sharded.overflow_events, reference.overflow_events, "{label}");
                        assert_eq!(sharded.dropped_events, reference.dropped_events, "{label}");
                        assert_eq!(
                            sharded.fault_transitions, reference.fault_transitions,
                            "{label}"
                        );
                    }
                }
            }
        }
    }
}

/// A flood whose source survives but whose path is cut: the run terminates and
/// the health status names exactly the nodes the partition starved.
#[test]
fn severed_flood_terminates_with_explicit_partial_status() {
    use det_synchronizer::sync::event_driven::{EventDriven, PulseCtx};

    #[derive(Debug)]
    struct PulseFlood {
        me: NodeId,
        neighbors: Vec<NodeId>,
        hops: Option<u64>,
    }
    impl EventDriven for PulseFlood {
        type Msg = u64;
        type Output = u64;
        fn on_init(&mut self, ctx: &mut PulseCtx<u64>) {
            if self.me == NodeId(0) {
                self.hops = Some(0);
                for &u in &self.neighbors {
                    ctx.send(u, 1);
                }
            }
        }
        fn on_pulse(&mut self, received: &[(NodeId, u64)], ctx: &mut PulseCtx<u64>) {
            if self.hops.is_none() {
                if let Some(&(_, h)) = received.first() {
                    self.hops = Some(h);
                    for &u in &self.neighbors {
                        ctx.send(u, h + 1);
                    }
                }
            }
        }
        fn output(&self) -> Option<u64> {
            self.hops
        }
    }

    // Path 0-1-2-3-4-5 with node 2 crashed from the start: nothing can cross.
    let graph = Graph::path(6);
    let plan = FaultPlan::new().node_crash(0, NodeId(2));
    for kind in [SyncKind::Alpha, SyncKind::DetAuto] {
        let run = Session::on(&graph)
            .delay(DelayModel::jitter(9))
            .synchronizer(kind.clone())
            .pulse_bound(12)
            .faults(plan.clone())
            .run(|v| PulseFlood { me: v, neighbors: graph.neighbors(v).to_vec(), hops: None })
            .unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
        assert_eq!(run.outputs[0], Some(0), "{}: the source still outputs", kind.label());
        for far in 2..6 {
            assert_eq!(run.outputs[far], None, "{}: node {far} is unreachable", kind.label());
        }
        assert!(run.health.is_partial(), "{}", kind.label());
        assert_eq!(run.health.crashed, vec![NodeId(2)], "{}", kind.label());
        for far in 2..6 {
            assert!(run.health.missing.contains(&NodeId(far)), "{}", kind.label());
        }
        assert!(run.fault_transitions >= 1, "{}", kind.label());
    }
}

/// BFS under a crash: terminates, reports health, and every distance it does
/// report is the length of a real path — never shorter than the true distance.
#[test]
fn faulted_bfs_terminates_and_never_underestimates_distances() {
    let graph = Graph::grid(4, 4);
    let crashed = NodeId(5);
    let plan = FaultPlan::new().node_crash(0, crashed);
    let report = run_synchronized_multi_bfs_faulted(
        &graph,
        &[NodeId(0)],
        DelayModel::jitter(3),
        Some(&plan),
    )
    .expect("faulted BFS terminates");
    assert_eq!(report.health.crashed, vec![crashed]);
    assert!(report.health.missing.contains(&crashed), "a crashed node cannot adopt a distance");
    assert_eq!(report.outputs[&NodeId(0)].distance, 0, "the source knows itself");
    let dist = det_synchronizer::graph::metrics::bfs_distances(&graph, NodeId(0));
    for (&v, out) in &report.outputs {
        assert!(
            out.distance >= dist[v.index()].unwrap() as u64,
            "node {v} reported {} below its true distance",
            out.distance
        );
    }
    // Same plan, same seed: the degraded result is deterministic too.
    let again = run_synchronized_multi_bfs_faulted(
        &graph,
        &[NodeId(0)],
        DelayModel::jitter(3),
        Some(&plan),
    )
    .expect("repeat faulted BFS");
    assert_eq!(again.outputs, report.outputs);
    assert_eq!(again.health, report.health);
}

/// Leader election with the minimum-id node crashed: the run terminates with an
/// explicit status, and whatever nodes do produce an output agree on it.
#[test]
fn faulted_leader_election_terminates_and_survivors_agree() {
    let graph = Graph::clustered_ring(3, 3);
    let plan = FaultPlan::new().node_crash(0, NodeId(0));
    let report =
        run_synchronized_leader_election_faulted(&graph, DelayModel::jitter(8), Some(&plan))
            .expect("faulted election terminates");
    assert_eq!(report.health.crashed, vec![NodeId(0)]);
    assert!(report.health.is_partial());
    let elected: Vec<NodeId> = report.outputs.iter().flatten().copied().collect();
    match report.leader {
        Some(leader) => assert!(elected.iter().all(|&l| l == leader), "survivors disagree"),
        None => assert!(elected.is_empty(), "leader is None only when nobody elected"),
    }
    // Fault-free baseline on the same graph still elects the global minimum.
    let clean = run_synchronized_leader_election(&graph, DelayModel::jitter(8)).expect("clean run");
    assert_eq!(clean.leader, Some(NodeId(0)));
    assert!(!clean.health.is_partial());
}
