//! # det-synchronizer
//!
//! Façade crate for the reproduction of *"A Near-Optimal Deterministic Distributed
//! Synchronizer"* (Ghaffari & Trygub, PODC 2023).
//!
//! The workspace implements, from scratch:
//!
//! * a discrete-event simulator of the asynchronous CONGEST message-passing model
//!   with adversarial message delays and the acknowledgment discipline the paper
//!   assumes ([`netsim`]),
//! * a synchronous round-based executor for event-driven algorithms ([`netsim`]),
//! * deterministic sparse covers and network decompositions ([`covers`]),
//! * the paper's core contribution: a deterministic synchronizer with polylogarithmic
//!   time and message overheads, together with the α/β/γ baselines ([`sync`]),
//! * the applications of Section 6: asynchronous deterministic BFS, leader election
//!   and MST ([`algos`]).
//!
//! ## Quickstart
//!
//! ```
//! use det_synchronizer::prelude::*;
//!
//! // Build a small network and a single-source BFS algorithm.
//! let graph = Graph::grid(4, 4);
//! let report = run_synchronized_bfs(&graph, NodeId(0), DelayModel::uniform())
//!     .expect("bfs run");
//! assert_eq!(report.outputs[&NodeId(15)].distance, 6);
//! ```
//!
//! See `examples/` for complete programs and `DESIGN.md` / `EXPERIMENTS.md` for the
//! mapping from the paper's theorems to code and measurements.

pub use ds_algos as algos;
pub use ds_covers as covers;
pub use ds_graph as graph;
pub use ds_netsim as netsim;
pub use ds_sync as sync;

pub mod prelude {
    //! Convenient re-exports for examples and downstream users.
    pub use ds_algos::bfs::{run_synchronized_bfs, run_synchronized_multi_bfs, BfsOutput};
    pub use ds_algos::leader::run_synchronized_leader_election;
    pub use ds_algos::mst::run_synchronized_mst;
    pub use ds_covers::{LayeredSparseCover, SparseCover};
    pub use ds_graph::{Graph, NodeId};
    pub use ds_netsim::delay::DelayModel;
    pub use ds_netsim::metrics::RunMetrics;
    pub use ds_sync::event_driven::EventDriven;
    pub use ds_sync::synchronizer::{DetSynchronizer, SynchronizerConfig};
}
