//! # det-synchronizer
//!
//! Façade crate for the reproduction of *"A Near-Optimal Deterministic Distributed
//! Synchronizer"* (Ghaffari & Trygub, PODC 2023).
//!
//! The workspace implements, from scratch:
//!
//! * a discrete-event simulator of the asynchronous CONGEST message-passing model
//!   with adversarial message delays and the acknowledgment discipline the paper
//!   assumes ([`netsim`]),
//! * a synchronous round-based executor for event-driven algorithms ([`netsim`]),
//! * deterministic sparse covers and network decompositions ([`covers`]),
//! * the paper's core contribution: a deterministic synchronizer with polylogarithmic
//!   time and message overheads, together with the α/β baselines, all behind one
//!   [`Synchronizer`](sync::executor::Synchronizer) trait and driven by the
//!   [`Session`](sync::session::Session) builder ([`sync`]),
//! * the applications of Section 6: asynchronous deterministic BFS, leader election
//!   and MST ([`algos`]).
//!
//! ## Quickstart
//!
//! The [`Session`](sync::session::Session) builder is the single entry point: name a
//! graph, a delay adversary and a synchronizer, then run any event-driven algorithm
//! through it.
//!
//! ```
//! use det_synchronizer::algos::bfs::BfsAlgorithm;
//! use det_synchronizer::prelude::*;
//!
//! let graph = Graph::grid(4, 4);
//! let report = Session::on(&graph)
//!     .delay(DelayModel::jitter(7))
//!     .synchronizer(SyncKind::DetAuto)
//!     .compare(|v| BfsAlgorithm::new(&graph, v, &[NodeId(0)]))
//!     .expect("bfs run");
//! // The synchronized asynchronous execution reproduces the synchronous one exactly.
//! assert!(report.outputs_match());
//! assert_eq!(report.async_outputs[15].unwrap().distance, 6);
//! ```
//!
//! The application wrappers are thin `Session` shims with friendlier outputs:
//!
//! ```
//! use det_synchronizer::prelude::*;
//!
//! let graph = Graph::grid(4, 4);
//! let report = run_synchronized_bfs(&graph, NodeId(0), DelayModel::uniform())
//!     .expect("bfs run");
//! assert_eq!(report.outputs[&NodeId(15)].distance, 6);
//! ```
//!
//! See `examples/` for complete programs and `DESIGN.md` for the mapping from the
//! paper's theorems to code and for the experiment harness.

#![forbid(unsafe_code)]

pub use ds_algos as algos;
pub use ds_covers as covers;
pub use ds_graph as graph;
pub use ds_netsim as netsim;
pub use ds_sync as sync;

pub mod prelude {
    //! Convenient re-exports for examples and downstream users.
    pub use ds_algos::bfs::{
        run_synchronized_bfs, run_synchronized_multi_bfs, run_synchronized_multi_bfs_faulted,
        BfsOutput,
    };
    pub use ds_algos::leader::{
        run_synchronized_leader_election, run_synchronized_leader_election_faulted,
    };
    pub use ds_algos::mst::run_synchronized_mst;
    pub use ds_covers::{LayeredSparseCover, SparseCover};
    pub use ds_graph::{Graph, NodeId};
    pub use ds_netsim::async_engine::SimLimits;
    pub use ds_netsim::delay::DelayModel;
    pub use ds_netsim::metrics::RunMetrics;
    pub use ds_netsim::{FaultPlan, SchedulerKind};
    pub use ds_sync::event_driven::EventDriven;
    pub use ds_sync::executor::{RunHealth, SynchronizedRun, Synchronizer};
    pub use ds_sync::session::{ComparisonReport, Session, SessionError, SyncKind};
    pub use ds_sync::synchronizer::{DetSynchronizer, SynchronizerConfig};
}
