//! Graph substrate for the synchronizer reproduction.
//!
//! The network of the CONGEST model is an undirected, connected graph `G = (V, E)`.
//! This crate provides:
//!
//! * [`Graph`] — an adjacency-list representation with stable edge indices,
//! * [`generators`] — deterministic graph families used throughout the experiments,
//! * [`metrics`] — distances, eccentricities, diameter, connectivity,
//! * [`weights`] — edge weights and a reference (centralized) minimum spanning tree,
//!   used to validate the distributed MST application.
//!
//! Everything here is *centralized* helper code: the distributed algorithms
//! themselves live in `ds-sync` / `ds-algos` and only ever access local
//! information, as the model requires. The centralized code is used to construct
//! inputs and to check outputs.

#![forbid(unsafe_code)]

pub mod generators;
pub mod metrics;
pub mod rng;
pub mod weights;

use std::fmt;

/// Identifier of a node (processor) in the network.
///
/// Node identifiers are dense indices `0..n`. The paper assumes `O(log n)`-bit unique
/// identifiers; dense indices satisfy that and keep the simulator simple. Algorithms
/// that need *arbitrary* comparable identifiers (e.g. leader election) treat the
/// numeric value as the identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId(value)
    }
}

/// Index of an undirected edge in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// Returns the underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Dense identifier of a *directed* edge (an ordered neighbor pair).
///
/// Every undirected edge `e = {u, v}` (with `u < v`) induces two directed edges:
/// `u → v` with id `2·e` and `v → u` with id `2·e + 1`. Directed edge ids are thus
/// dense in `0 .. Graph::directed_edge_count()`, resolvable from a `(from, to)` pair
/// in `O(deg(from))` via [`Graph::edge_id`], and stable under edge insertion — the
/// flat per-link tables of the simulation engines are indexed by them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DirectedEdgeId(pub u32);

impl DirectedEdgeId {
    /// Returns the underlying dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The directed edge in the opposite direction over the same undirected edge.
    pub fn reversed(self) -> DirectedEdgeId {
        DirectedEdgeId(self.0 ^ 1)
    }

    /// The undirected edge this directed edge runs over.
    pub fn undirected(self) -> EdgeId {
        EdgeId((self.0 >> 1) as usize)
    }
}

/// An undirected graph with `n` nodes and a stable list of edges.
///
/// Nodes are `NodeId(0) .. NodeId(n-1)`. Edges are stored once (with endpoints in
/// ascending order) and also expanded into per-node adjacency lists. Self-loops and
/// parallel edges are rejected.
///
/// ```
/// use ds_graph::{Graph, NodeId};
/// let g = Graph::path(4);
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 3);
/// assert!(g.has_edge(NodeId(1), NodeId(2)));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Graph {
    adjacency: Vec<Vec<NodeId>>,
    /// Undirected edge id of each adjacency slot, aligned with `adjacency`: the
    /// per-node half of the directed-edge index (see [`DirectedEdgeId`]).
    adjacency_edges: Vec<Vec<EdgeId>>,
    edges: Vec<(NodeId, NodeId)>,
}

/// Error returned by [`Graph::add_edge`] and the checked constructors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint was `>= node_count`.
    NodeOutOfRange { node: NodeId, node_count: usize },
    /// The two endpoints are equal.
    SelfLoop { node: NodeId },
    /// The edge already exists.
    DuplicateEdge { u: NodeId, v: NodeId },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range for graph with {node_count} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u}, {v})"),
        }
    }
}

impl std::error::Error for GraphError {}

impl Graph {
    /// Creates an edgeless graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); n],
            adjacency_edges: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range, an edge is a self-loop, or an
    /// edge appears twice.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Adds an undirected edge, returning its new [`EdgeId`].
    ///
    /// # Errors
    ///
    /// See [`GraphError`].
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeId, GraphError> {
        let n = self.node_count();
        for node in [u, v] {
            if node.index() >= n {
                return Err(GraphError::NodeOutOfRange { node, node_count: n });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if self.has_edge(u, v) {
            return Err(GraphError::DuplicateEdge { u, v });
        }
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        let id = EdgeId(self.edges.len());
        assert!(self.edges.len() < (u32::MAX / 2) as usize, "directed edge ids must fit in u32");
        self.edges.push((a, b));
        self.adjacency[a.index()].push(b);
        self.adjacency[b.index()].push(a);
        self.adjacency_edges[a.index()].push(id);
        self.adjacency_edges[b.index()].push(id);
        Ok(id)
    }

    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges `m`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId)
    }

    /// Iterator over all undirected edges, endpoints in ascending order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.edges.iter().enumerate().map(|(i, &(u, v))| (EdgeId(i), u, v))
    }

    /// Endpoints of an edge.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e.index()]
    }

    /// Neighbors of a node, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adjacency[v.index()]
    }

    /// Degree of a node.
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Returns `true` if the undirected edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u.index() >= self.node_count() || v.index() >= self.node_count() {
            return false;
        }
        let (small, other) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.adjacency[small.index()].contains(&other)
    }

    /// Finds the edge index of `{u, v}`, if present. `O(min(deg(u), deg(v)))`.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        if u.index() >= self.node_count() || v.index() >= self.node_count() {
            return None;
        }
        let (small, other) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        let slot = self.adjacency[small.index()].iter().position(|&w| w == other)?;
        Some(self.adjacency_edges[small.index()][slot])
    }

    /// Number of directed edges (ordered neighbor pairs): `2·edge_count()`.
    pub fn directed_edge_count(&self) -> usize {
        2 * self.edges.len()
    }

    /// Resolves the directed edge `from → to` to its dense [`DirectedEdgeId`], or
    /// `None` if `to` is not a neighbor of `from`. `O(deg(from))`.
    pub fn edge_id(&self, from: NodeId, to: NodeId) -> Option<DirectedEdgeId> {
        if from.index() >= self.node_count() {
            return None;
        }
        let slot = self.adjacency[from.index()].iter().position(|&w| w == to)?;
        let e = self.adjacency_edges[from.index()][slot];
        Some(Self::directed_id(e, from, to))
    }

    /// `(from, to)` endpoints of a directed edge. `O(1)`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn directed_endpoints(&self, e: DirectedEdgeId) -> (NodeId, NodeId) {
        let (a, b) = self.edges[e.undirected().index()];
        if e.0 & 1 == 0 {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Neighbors of `v` paired with the directed edge `v → neighbor`, in insertion
    /// order — the per-node slice of the directed-edge index, `O(1)` per neighbor.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbor_links(&self, v: NodeId) -> impl Iterator<Item = (NodeId, DirectedEdgeId)> + '_ {
        self.adjacency[v.index()]
            .iter()
            .zip(&self.adjacency_edges[v.index()])
            .map(move |(&to, &e)| (to, Self::directed_id(e, v, to)))
    }

    /// The directed id of `from → to` over undirected edge `e` (endpoint order is
    /// normalized ascending in `edges`, so the parity bit is the direction).
    fn directed_id(e: EdgeId, from: NodeId, to: NodeId) -> DirectedEdgeId {
        DirectedEdgeId(2 * e.index() as u32 + u32::from(from > to))
    }

    /// A stable structural hash: node count plus the ordered edge list, folded
    /// through a splitmix64-style mixer (the same dependency-free mixer the
    /// delay models use). The adjacency lists — whose insertion order the
    /// engines observe through [`Graph::neighbor_links`] — are derived from
    /// the edge sequence by `add_edge`, so the ordered edge list determines
    /// the full structure and two graphs built by the same edge sequence hash
    /// identically across processes and runs.
    ///
    /// This is a cache *discriminator*, not a proof of equality: callers that
    /// key caches by it must verify hits with full `==` (`Graph` is `Eq`) so a
    /// 64-bit collision can never alias two topologies.
    pub fn structural_hash(&self) -> u64 {
        fn mix(state: &mut u64, value: u64) {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15).wrapping_add(value);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *state = z ^ (z >> 31);
        }
        let mut h = 0x5d5_70de_7e97_0a6d_u64;
        mix(&mut h, self.node_count() as u64);
        mix(&mut h, self.edges.len() as u64);
        for &(u, v) in &self.edges {
            mix(&mut h, u.index() as u64);
            mix(&mut h, v.index() as u64);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::new(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.nodes().count(), 5);
    }

    #[test]
    fn add_edge_updates_adjacency_both_ways() {
        let mut g = Graph::new(3);
        let e = g.add_edge(NodeId(2), NodeId(0)).unwrap();
        assert_eq!(e, EdgeId(0));
        assert_eq!(g.endpoints(e), (NodeId(0), NodeId(2)));
        assert_eq!(g.neighbors(NodeId(0)), &[NodeId(2)]);
        assert_eq!(g.neighbors(NodeId(2)), &[NodeId(0)]);
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(g.has_edge(NodeId(2), NodeId(0)));
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::new(2);
        assert_eq!(g.add_edge(NodeId(1), NodeId(1)), Err(GraphError::SelfLoop { node: NodeId(1) }));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = Graph::new(2);
        assert!(matches!(g.add_edge(NodeId(0), NodeId(5)), Err(GraphError::NodeOutOfRange { .. })));
    }

    #[test]
    fn rejects_duplicate_edge_in_either_direction() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1)).unwrap();
        assert!(matches!(g.add_edge(NodeId(1), NodeId(0)), Err(GraphError::DuplicateEdge { .. })));
    }

    #[test]
    fn edge_between_finds_edges_regardless_of_order() {
        let g = Graph::path(4);
        assert_eq!(g.edge_between(NodeId(2), NodeId(1)), g.edge_between(NodeId(1), NodeId(2)));
        assert!(g.edge_between(NodeId(0), NodeId(3)).is_none());
    }

    #[test]
    fn directed_edge_ids_are_dense_and_consistent() {
        let g = Graph::grid(3, 3);
        assert_eq!(g.directed_edge_count(), 2 * g.edge_count());
        let mut seen = vec![false; g.directed_edge_count()];
        for v in g.nodes() {
            for (to, link) in g.neighbor_links(v) {
                assert!(g.has_edge(v, to));
                // neighbor_links agrees with the pairwise resolver.
                assert_eq!(g.edge_id(v, to), Some(link));
                assert_eq!(g.directed_endpoints(link), (v, to));
                assert_eq!(link.reversed().reversed(), link);
                assert_eq!(g.directed_endpoints(link.reversed()), (to, v));
                assert_eq!(link.undirected(), g.edge_between(v, to).unwrap());
                assert!(!seen[link.index()], "duplicate directed id {link:?}");
                seen[link.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "directed ids cover 0..2m");
        assert_eq!(g.edge_id(NodeId(0), NodeId(8)), None);
        assert_eq!(g.edge_id(NodeId(42), NodeId(0)), None);
    }

    #[test]
    fn structural_hash_discriminates_topologies() {
        // Same construction → same hash, across independent builds.
        assert_eq!(Graph::grid(4, 4).structural_hash(), Graph::grid(4, 4).structural_hash());
        // Different families and different sizes diverge.
        let hashes = [
            Graph::path(4).structural_hash(),
            Graph::cycle(4).structural_hash(),
            Graph::grid(2, 2).structural_hash(),
            Graph::grid(4, 4).structural_hash(),
            Graph::path(5).structural_hash(),
        ];
        for (i, a) in hashes.iter().enumerate() {
            for b in &hashes[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Dropping a single edge changes the hash (the repair-path case).
        let full = Graph::cycle(6);
        let trimmed =
            Graph::from_edges(6, full.edges().take(full.edge_count() - 1).map(|(_, u, v)| (u, v)))
                .unwrap();
        assert_ne!(full.structural_hash(), trimmed.structural_hash());
        // Edge *insertion order* is structural: the engines observe adjacency
        // order, so a reordered edge list must not alias.
        let ab_first =
            Graph::from_edges(3, [(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]).unwrap();
        let bc_first =
            Graph::from_edges(3, [(NodeId(1), NodeId(2)), (NodeId(0), NodeId(1))]).unwrap();
        assert_ne!(ab_first.structural_hash(), bc_first.structural_hash());
    }

    #[test]
    fn from_edges_builds_expected_graph() {
        let g = Graph::from_edges(3, [(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(NodeId(1)), 2);
    }
}
