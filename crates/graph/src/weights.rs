//! Edge weights and a centralized reference MST (Kruskal).
//!
//! The distributed MST application (Corollary 1.4) is checked against
//! [`minimum_spanning_tree`]. Weights are unique by construction in the generators so
//! that the MST is unique and the comparison is exact.

use crate::rng::Prng;
use crate::{EdgeId, Graph, NodeId};

/// Edge weights indexed by [`EdgeId`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeWeights {
    weights: Vec<u64>,
}

impl EdgeWeights {
    /// Creates weights from a vector aligned with the graph's edge list.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the number of edges.
    pub fn from_vec(graph: &Graph, weights: Vec<u64>) -> Self {
        assert_eq!(weights.len(), graph.edge_count(), "one weight per edge is required");
        EdgeWeights { weights }
    }

    /// Assigns *distinct* pseudo-random weights (a random permutation of `1..=m`),
    /// guaranteeing a unique MST. Deterministic for a fixed seed.
    pub fn random_distinct(graph: &Graph, seed: u64) -> Self {
        let mut rng = Prng::new(seed);
        let mut weights: Vec<u64> = (1..=graph.edge_count() as u64).collect();
        rng.shuffle(&mut weights);
        EdgeWeights { weights }
    }

    /// Weight of an edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge id is out of range.
    pub fn weight(&self, e: EdgeId) -> u64 {
        self.weights[e.index()]
    }

    /// Number of weighted edges.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether there are no weights.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

/// Union-find (disjoint set union) over node indices, used by Kruskal and by tests.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect(), rank: vec![0; n] }
    }

    /// Representative of the set containing `x`.
    pub fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    /// Merges the sets containing `a` and `b`; returns `false` if already merged.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }
}

/// Kruskal's MST. Returns the set of edge ids in the minimum spanning forest,
/// sorted ascending. For a connected graph this is a spanning tree of `n - 1` edges.
pub fn minimum_spanning_tree(graph: &Graph, weights: &EdgeWeights) -> Vec<EdgeId> {
    let mut order: Vec<EdgeId> = graph.edges().map(|(e, _, _)| e).collect();
    order.sort_by_key(|&e| (weights.weight(e), e.index()));
    let mut uf = UnionFind::new(graph.node_count());
    let mut tree = Vec::new();
    for e in order {
        let (u, v) = graph.endpoints(e);
        if uf.union(u.index(), v.index()) {
            tree.push(e);
        }
    }
    tree.sort_by_key(|e| e.index());
    tree
}

/// Total weight of a set of edges.
pub fn total_weight(weights: &EdgeWeights, edges: &[EdgeId]) -> u64 {
    edges.iter().map(|&e| weights.weight(e)).sum()
}

/// Checks that `edges` forms a spanning tree of the (connected) graph.
pub fn is_spanning_tree(graph: &Graph, edges: &[EdgeId]) -> bool {
    if graph.node_count() == 0 {
        return edges.is_empty();
    }
    if edges.len() != graph.node_count() - 1 {
        return false;
    }
    let mut uf = UnionFind::new(graph.node_count());
    let mut merges = 0;
    for &e in edges {
        let (u, v) = graph.endpoints(e);
        if uf.union(u.index(), v.index()) {
            merges += 1;
        } else {
            return false; // cycle
        }
    }
    merges == graph.node_count() - 1
}

/// Convenience: which endpoint of edge `e` is `v`'s counterpart.
///
/// # Panics
///
/// Panics if `v` is not an endpoint of `e`.
pub fn other_endpoint(graph: &Graph, e: EdgeId, v: NodeId) -> NodeId {
    let (a, b) = graph.endpoints(e);
    if v == a {
        b
    } else if v == b {
        a
    } else {
        panic!("{v} is not an endpoint of edge {e:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kruskal_on_square_with_diagonal() {
        // Square 0-1-2-3 with diagonal 0-2; weights make the diagonal cheap.
        let mut g = Graph::new(4);
        let e01 = g.add_edge(NodeId(0), NodeId(1)).unwrap();
        let e12 = g.add_edge(NodeId(1), NodeId(2)).unwrap();
        let e23 = g.add_edge(NodeId(2), NodeId(3)).unwrap();
        let e30 = g.add_edge(NodeId(3), NodeId(0)).unwrap();
        let e02 = g.add_edge(NodeId(0), NodeId(2)).unwrap();
        let w = EdgeWeights::from_vec(&g, vec![5, 4, 3, 2, 1]);
        let mst = minimum_spanning_tree(&g, &w);
        // Kruskal picks 0-2 (w=1), 3-0 (w=2), then skips 2-3 (cycle) and takes 1-2 (w=4).
        assert_eq!(mst, vec![e12, e30, e02]);
        assert!(is_spanning_tree(&g, &mst));
        assert_eq!(total_weight(&w, &mst), 7);
        assert!(!is_spanning_tree(&g, &[e01, e12, e02]));
        let _ = e23;
    }

    #[test]
    fn mst_of_tree_is_the_tree_itself() {
        let g = Graph::binary_tree(10);
        let w = EdgeWeights::random_distinct(&g, 3);
        let mst = minimum_spanning_tree(&g, &w);
        assert_eq!(mst.len(), 9);
        assert!(is_spanning_tree(&g, &mst));
    }

    #[test]
    fn random_distinct_weights_are_a_permutation() {
        let g = Graph::complete(6);
        let w = EdgeWeights::random_distinct(&g, 11);
        let mut seen: Vec<u64> = (0..w.len()).map(|i| w.weight(EdgeId(i))).collect();
        seen.sort_unstable();
        assert_eq!(seen, (1..=15).collect::<Vec<_>>());
    }

    #[test]
    fn union_find_merges_and_detects_cycles() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 3));
        assert_eq!(uf.find(0), uf.find(3));
    }

    #[test]
    fn other_endpoint_returns_counterpart() {
        let g = Graph::path(3);
        let e = g.edge_between(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(other_endpoint(&g, e, NodeId(1)), NodeId(2));
        assert_eq!(other_endpoint(&g, e, NodeId(2)), NodeId(1));
    }
}
