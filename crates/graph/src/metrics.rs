//! Centralized graph metrics: BFS distances, eccentricity, diameter, connectivity.
//!
//! These are reference computations used to construct experiment inputs and to check
//! the outputs of the distributed algorithms; they are not part of the distributed
//! model.

use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// Distances (in hops) from `source` to every node; `None` for unreachable nodes.
pub fn bfs_distances(graph: &Graph, source: NodeId) -> Vec<Option<usize>> {
    multi_source_distances(graph, std::slice::from_ref(&source))
}

/// Distances (in hops) from the *closest* node of `sources`; `None` if unreachable.
///
/// # Panics
///
/// Panics if `sources` is empty or contains an out-of-range node.
pub fn multi_source_distances(graph: &Graph, sources: &[NodeId]) -> Vec<Option<usize>> {
    assert!(!sources.is_empty(), "at least one source is required");
    let mut dist = vec![None; graph.node_count()];
    let mut queue = VecDeque::new();
    for &s in sources {
        assert!(s.index() < graph.node_count(), "source out of range");
        if dist[s.index()].is_none() {
            dist[s.index()] = Some(0);
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()].expect("queued nodes have distances");
        for &u in graph.neighbors(v) {
            if dist[u.index()].is_none() {
                dist[u.index()] = Some(d + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Hop distance between two nodes, if connected.
pub fn distance(graph: &Graph, u: NodeId, v: NodeId) -> Option<usize> {
    bfs_distances(graph, u)[v.index()]
}

/// Eccentricity of a node: the largest distance from it, if the graph is connected.
pub fn eccentricity(graph: &Graph, v: NodeId) -> Option<usize> {
    bfs_distances(graph, v).into_iter().try_fold(0, |acc, d| d.map(|d| acc.max(d)))
}

/// Diameter of the graph (`None` if disconnected or empty).
///
/// Exact, via one BFS per node — `O(n·m)`. Callers that only need an *upper bound*
/// (e.g. to size a cover) should use [`diameter_bounds`], which costs two BFS runs.
pub fn diameter(graph: &Graph) -> Option<usize> {
    if graph.node_count() == 0 {
        return None;
    }
    let mut best = 0;
    for v in graph.nodes() {
        best = best.max(eccentricity(graph, v)?);
    }
    Some(best)
}

/// Double-sweep diameter estimate: `(lower, upper)` bounds on the diameter from two
/// BFS runs (`None` if the graph is disconnected or empty).
///
/// The first sweep runs BFS from node 0 and picks a farthest node `u`; the second
/// runs BFS from `u`. Then `ecc(u) ≤ diameter ≤ 2·min(ecc(0), ecc(u))`: the lower
/// bound is an eccentricity, and for any node `v` the triangle inequality gives
/// `diameter ≤ 2·ecc(v)`. On the experiment families (grids, tori, cycles, paths,
/// random graphs) the lower bound is the exact diameter or within a few hops of it.
pub fn diameter_bounds(graph: &Graph) -> Option<(usize, usize)> {
    if graph.node_count() == 0 {
        return None;
    }
    let from_start = bfs_distances(graph, NodeId(0));
    let mut ecc_start = 0;
    let mut farthest = NodeId(0);
    for (i, d) in from_start.iter().enumerate() {
        let d = (*d)?; // disconnected
        if d > ecc_start {
            ecc_start = d;
            farthest = NodeId(i);
        }
    }
    let ecc_far =
        bfs_distances(graph, farthest).into_iter().try_fold(0, |acc, d| d.map(|d| acc.max(d)))?;
    Some((ecc_far.max(ecc_start), 2 * ecc_start.min(ecc_far)))
}

/// Largest distance from the closest source, over all nodes (the paper's `D_1`).
///
/// Returns `None` if some node is unreachable from every source.
pub fn max_distance_to_sources(graph: &Graph, sources: &[NodeId]) -> Option<usize> {
    multi_source_distances(graph, sources).into_iter().try_fold(0, |acc, d| d.map(|d| acc.max(d)))
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(graph: &Graph) -> bool {
    if graph.node_count() == 0 {
        return true;
    }
    bfs_distances(graph, NodeId(0)).iter().all(Option::is_some)
}

/// A BFS tree: for each node, its parent towards the source (`None` for the source
/// itself and for unreachable nodes).
pub fn bfs_tree(graph: &Graph, source: NodeId) -> Vec<Option<NodeId>> {
    let mut parent = vec![None; graph.node_count()];
    let mut visited = vec![false; graph.node_count()];
    let mut queue = VecDeque::new();
    visited[source.index()] = true;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        for &u in graph.neighbors(v) {
            if !visited[u.index()] {
                visited[u.index()] = true;
                parent[u.index()] = Some(v);
                queue.push_back(u);
            }
        }
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_on_a_path() {
        let g = Graph::path(5);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn multi_source_takes_closest() {
        let g = Graph::path(6);
        let d = multi_source_distances(&g, &[NodeId(0), NodeId(5)]);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(2), Some(1), Some(0)]);
        assert_eq!(max_distance_to_sources(&g, &[NodeId(0), NodeId(5)]), Some(2));
    }

    #[test]
    fn diameter_of_grid() {
        assert_eq!(diameter(&Graph::grid(4, 4)), Some(6));
    }

    #[test]
    fn disconnected_graph_has_no_diameter() {
        let g = Graph::new(3);
        assert!(!is_connected(&g));
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn bfs_tree_parents_point_towards_source() {
        let g = Graph::grid(3, 3);
        let parent = bfs_tree(&g, NodeId(0));
        let dist = bfs_distances(&g, NodeId(0));
        assert_eq!(parent[0], None);
        for v in g.nodes().skip(1) {
            let p = parent[v.index()].expect("connected");
            assert_eq!(dist[p.index()].unwrap() + 1, dist[v.index()].unwrap());
            assert!(g.has_edge(p, v));
        }
    }

    #[test]
    fn diameter_bounds_bracket_the_exact_diameter() {
        for g in [
            Graph::path(9),
            Graph::cycle(12),
            Graph::grid(5, 7),
            Graph::star(6),
            Graph::complete(5),
            Graph::random_connected(40, 0.08, 3),
            Graph::new(1),
        ] {
            let exact = diameter(&g).expect("connected");
            let (lower, upper) = diameter_bounds(&g).expect("connected");
            assert!(lower <= exact, "lower {lower} > exact {exact}");
            assert!(exact <= upper, "exact {exact} > upper {upper}");
            assert!(lower <= upper);
        }
        // On a path the double sweep is exact: the first sweep finds an endpoint.
        assert_eq!(diameter_bounds(&Graph::path(9)).unwrap().0, 8);
    }

    #[test]
    fn diameter_bounds_detect_disconnection() {
        assert_eq!(diameter_bounds(&Graph::new(3)), None);
        assert_eq!(diameter_bounds(&Graph::new(0)), None);
    }

    #[test]
    fn eccentricity_matches_diameter_on_path_endpoints() {
        let g = Graph::path(7);
        assert_eq!(eccentricity(&g, NodeId(0)), Some(6));
        assert_eq!(eccentricity(&g, NodeId(3)), Some(3));
    }
}
