//! A small, dependency-free deterministic pseudo-random number generator.
//!
//! The generators and weight assignments promise bit-for-bit reproducibility for a
//! fixed seed, and the workspace builds without external crates; this SplitMix64
//! stream (Steele, Lea & Flood 2014) provides exactly the operations they need.
//! It is *not* cryptographic and is not meant to be.

/// A SplitMix64 pseudo-random stream.
#[derive(Clone, Debug)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Prng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift reduction (the bias
    /// is at most `bound / 2^64`, negligible for the graph sizes involved).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform index in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn index_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.next_below((hi - lo) as u64) as usize
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        // 53 uniform mantissa bits, the standard [0, 1) double construction.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Prng::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Prng::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Prng::new(8);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Prng::new(1);
        for bound in [1u64, 2, 3, 7, 100] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn index_in_covers_the_range() {
        let mut r = Prng::new(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.index_in(0, 5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_is_monotone_in_p() {
        let mut r = Prng::new(3);
        let hits_low = (0..2000).filter(|_| r.chance(0.1)).count();
        let mut r = Prng::new(3);
        let hits_high = (0..2000).filter(|_| r.chance(0.9)).count();
        assert!(hits_low < hits_high);
        let mut r = Prng::new(4);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Prng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle is almost surely nontrivial");
    }
}
