//! Deterministic graph generators.
//!
//! Every generator is deterministic: the random families take an explicit seed and use
//! a local PRNG, so experiments are reproducible bit-for-bit. All generated graphs are
//! connected (the model assumes a connected network).

use crate::rng::Prng;
use crate::{Graph, NodeId};

impl Graph {
    /// Path graph `0 - 1 - ... - (n-1)`. Diameter `n - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn path(n: usize) -> Graph {
        assert!(n > 0, "path requires at least one node");
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(NodeId(i - 1), NodeId(i)).expect("path edges are simple");
        }
        g
    }

    /// Cycle graph on `n >= 3` nodes. Diameter `n / 2`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn cycle(n: usize) -> Graph {
        assert!(n >= 3, "cycle requires at least three nodes");
        let mut g = Graph::path(n);
        g.add_edge(NodeId(n - 1), NodeId(0)).expect("closing edge is new");
        g
    }

    /// Star graph: node 0 connected to all others. Diameter 2.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn star(n: usize) -> Graph {
        assert!(n > 0, "star requires at least one node");
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(NodeId(0), NodeId(i)).expect("star edges are simple");
        }
        g
    }

    /// Complete graph on `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn complete(n: usize) -> Graph {
        assert!(n > 0, "complete graph requires at least one node");
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(NodeId(i), NodeId(j)).expect("complete edges are simple");
            }
        }
        g
    }

    /// `rows x cols` grid graph. Diameter `rows + cols - 2`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn grid(rows: usize, cols: usize) -> Graph {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        let idx = |r: usize, c: usize| NodeId(r * cols + c);
        let mut g = Graph::new(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    g.add_edge(idx(r, c), idx(r, c + 1)).expect("grid edge");
                }
                if r + 1 < rows {
                    g.add_edge(idx(r, c), idx(r + 1, c)).expect("grid edge");
                }
            }
        }
        g
    }

    /// `rows x cols` torus: the grid with wrap-around edges in both dimensions, so
    /// every node has degree 4. Diameter `rows / 2 + cols / 2` — half the grid's —
    /// which makes it the vertex-transitive counterpart of the grid in the
    /// benchmark matrix (no boundary effects).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is less than 3 (smaller wrap-arounds would
    /// produce parallel edges).
    pub fn torus(rows: usize, cols: usize) -> Graph {
        assert!(rows >= 3 && cols >= 3, "torus dimensions must be at least 3");
        let idx = |r: usize, c: usize| NodeId(r * cols + c);
        let mut g = Graph::new(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                g.add_edge(idx(r, c), idx(r, (c + 1) % cols)).expect("torus ring edge");
                g.add_edge(idx(r, c), idx((r + 1) % rows, c)).expect("torus ring edge");
            }
        }
        g
    }

    /// Complete binary tree with `n` nodes (node `i` has children `2i+1`, `2i+2`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn binary_tree(n: usize) -> Graph {
        assert!(n > 0, "binary tree requires at least one node");
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(NodeId((i - 1) / 2), NodeId(i)).expect("tree edge");
        }
        g
    }

    /// Barbell graph: two cliques of size `k` joined by a path of `bridge` extra nodes.
    ///
    /// Useful as a low-conductance instance: the bridge is a message bottleneck.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn barbell(k: usize, bridge: usize) -> Graph {
        assert!(k >= 2, "barbell cliques need at least two nodes");
        let n = 2 * k + bridge;
        let mut g = Graph::new(n);
        for i in 0..k {
            for j in (i + 1)..k {
                g.add_edge(NodeId(i), NodeId(j)).expect("clique edge");
                g.add_edge(NodeId(k + bridge + i), NodeId(k + bridge + j)).expect("clique edge");
            }
        }
        // Path through the bridge nodes, connecting node k-1 to node k+bridge.
        let mut prev = NodeId(k - 1);
        for b in 0..bridge {
            let cur = NodeId(k + b);
            g.add_edge(prev, cur).expect("bridge edge");
            prev = cur;
        }
        g.add_edge(prev, NodeId(k + bridge)).expect("bridge edge");
        g
    }

    /// Connected Erdős–Rényi-style random graph: a random spanning tree plus each
    /// remaining pair independently with probability `p`.
    ///
    /// Deterministic for a fixed `(n, p, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `p` is not in `[0, 1]`.
    pub fn random_connected(n: usize, p: f64, seed: u64) -> Graph {
        assert!(n > 0, "random graph requires at least one node");
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        let mut rng = Prng::new(seed);
        let mut g = Graph::new(n);
        // Random spanning tree: attach node i to a uniformly random earlier node.
        for i in 1..n {
            let parent = rng.index_in(0, i);
            g.add_edge(NodeId(parent), NodeId(i)).expect("tree edge");
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if !g.has_edge(NodeId(i), NodeId(j)) && rng.chance(p) {
                    g.add_edge(NodeId(i), NodeId(j)).expect("extra edge");
                }
            }
        }
        g
    }

    /// Connected random `degree`-regular-style graph: the union of `degree / 2`
    /// pseudo-random Hamiltonian cycles (plus one random perfect-matching pass when
    /// `degree` is odd). The first cycle guarantees connectivity; duplicate edges
    /// between cycles are skipped, so high-degree corner cases may fall slightly
    /// short of exact regularity. Deterministic for a fixed `(n, degree, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or `degree < 2`.
    pub fn random_regular(n: usize, degree: usize, seed: u64) -> Graph {
        assert!(n >= 3, "random regular graph requires at least three nodes");
        assert!(degree >= 2, "degree must be at least two");
        let mut rng = Prng::new(seed);
        let mut g = Graph::new(n);
        let mut order: Vec<usize> = (0..n).collect();
        for cycle in 0..degree / 2 {
            if cycle > 0 {
                // Fisher–Yates shuffle driven by the deterministic PRNG.
                for i in (1..n).rev() {
                    order.swap(i, rng.index_in(0, i + 1));
                }
            }
            for i in 0..n {
                let u = NodeId(order[i]);
                let v = NodeId(order[(i + 1) % n]);
                // Later cycles may repeat an existing edge; skip it.
                let _ = g.add_edge(u, v);
            }
        }
        if degree % 2 == 1 {
            for i in (1..n).rev() {
                order.swap(i, rng.index_in(0, i + 1));
            }
            for pair in order.chunks_exact(2) {
                let _ = g.add_edge(NodeId(pair[0]), NodeId(pair[1]));
            }
        }
        g
    }

    /// Caterpillar graph: a spine path of `spine` nodes, each with `legs` pendant
    /// nodes. Large diameter with many low-degree leaves.
    ///
    /// # Panics
    ///
    /// Panics if `spine == 0`.
    pub fn caterpillar(spine: usize, legs: usize) -> Graph {
        assert!(spine > 0, "caterpillar requires a non-empty spine");
        let n = spine * (1 + legs);
        let mut g = Graph::new(n);
        for s in 1..spine {
            g.add_edge(NodeId(s - 1), NodeId(s)).expect("spine edge");
        }
        let mut next = spine;
        for s in 0..spine {
            for _ in 0..legs {
                g.add_edge(NodeId(s), NodeId(next)).expect("leg edge");
                next += 1;
            }
        }
        g
    }

    /// A ring of `clusters` cliques of size `k`, adjacent cliques joined by one edge.
    ///
    /// Models a "γ-synchronizer friendly" topology: small-diameter clusters connected
    /// by sparse inter-cluster edges.
    ///
    /// # Panics
    ///
    /// Panics if `clusters < 3` or `k == 0`.
    pub fn clustered_ring(clusters: usize, k: usize) -> Graph {
        assert!(clusters >= 3, "clustered ring requires at least three clusters");
        assert!(k > 0, "cluster size must be positive");
        let n = clusters * k;
        let mut g = Graph::new(n);
        for c in 0..clusters {
            let base = c * k;
            for i in 0..k {
                for j in (i + 1)..k {
                    g.add_edge(NodeId(base + i), NodeId(base + j)).expect("clique edge");
                }
            }
            let next_base = ((c + 1) % clusters) * k;
            g.add_edge(NodeId(base), NodeId(next_base)).expect("ring edge");
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn path_shape() {
        let g = Graph::path(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(metrics::diameter(&g), Some(4));
    }

    #[test]
    fn cycle_shape() {
        let g = Graph::cycle(6);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(metrics::diameter(&g), Some(3));
    }

    #[test]
    fn star_diameter_is_two() {
        let g = Graph::star(7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(metrics::diameter(&g), Some(2));
    }

    #[test]
    fn complete_edge_count() {
        let g = Graph::complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(metrics::diameter(&g), Some(1));
    }

    #[test]
    fn grid_shape() {
        let g = Graph::grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert_eq!(metrics::diameter(&g), Some(5));
    }

    #[test]
    fn torus_is_four_regular_with_half_the_grid_diameter() {
        let g = Graph::torus(4, 6);
        assert_eq!(g.node_count(), 24);
        assert_eq!(g.edge_count(), 2 * 24);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert!(metrics::is_connected(&g));
        assert_eq!(metrics::diameter(&g), Some(2 + 3));
    }

    #[test]
    #[should_panic(expected = "torus dimensions")]
    fn torus_rejects_degenerate_dimensions() {
        let _ = Graph::torus(2, 5);
    }

    #[test]
    fn binary_tree_is_a_tree() {
        let g = Graph::binary_tree(15);
        assert_eq!(g.edge_count(), 14);
        assert!(metrics::is_connected(&g));
        assert_eq!(metrics::diameter(&g), Some(6));
    }

    #[test]
    fn barbell_is_connected_with_bottleneck() {
        let g = Graph::barbell(4, 3);
        assert!(metrics::is_connected(&g));
        assert_eq!(g.node_count(), 11);
        // clique edges: 2 * C(4,2) = 12, bridge edges: 4
        assert_eq!(g.edge_count(), 16);
    }

    #[test]
    fn random_connected_is_connected_and_deterministic() {
        let a = Graph::random_connected(40, 0.05, 7);
        let b = Graph::random_connected(40, 0.05, 7);
        let c = Graph::random_connected(40, 0.05, 8);
        assert_eq!(a, b);
        assert!(metrics::is_connected(&a));
        assert!(a.edge_count() >= 39);
        // Different seeds almost surely differ.
        assert_ne!(a, c);
    }

    #[test]
    fn random_regular_is_connected_regular_and_deterministic() {
        let a = Graph::random_regular(64, 4, 3);
        let b = Graph::random_regular(64, 4, 3);
        assert_eq!(a, b);
        assert!(metrics::is_connected(&a));
        // Duplicate-edge skips can only lose a handful of edges.
        assert!(a.edge_count() >= 2 * 64 - 4, "edge count {}", a.edge_count());
        assert!(a.nodes().all(|v| a.degree(v) <= 4));
        let odd = Graph::random_regular(50, 3, 9);
        assert!(metrics::is_connected(&odd));
        assert!(odd.nodes().all(|v| odd.degree(v) <= 3));
    }

    #[test]
    fn caterpillar_counts() {
        let g = Graph::caterpillar(5, 2);
        assert_eq!(g.node_count(), 15);
        assert_eq!(g.edge_count(), 14);
        assert!(metrics::is_connected(&g));
    }

    #[test]
    fn clustered_ring_counts() {
        let g = Graph::clustered_ring(4, 3);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 4 * 3 + 4);
        assert!(metrics::is_connected(&g));
    }
}
