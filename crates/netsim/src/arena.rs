//! Recycled event arena: payload slots behind `u32` handles, and the SoA
//! batch the engines group one tick's due events into.
//!
//! The delivery hot path used to move an owned `Pending<M>` struct — link id
//! plus an inline message — through wheel slot, link queue and outbox, one
//! event at a time. The arena splits that into two cheap parts:
//!
//! * [`PayloadArena`]: a free-list slab owning every in-flight message.
//!   `alloc` hands out a `u32` handle (recycling freed slots, so steady state
//!   never allocates), `take` moves the message back out. Everything else —
//!   wheel slots, `StageQueue` buckets, captured outboxes — stores the 4-byte
//!   handle instead of the message. A live-handle counter makes leaks
//!   checkable: after a drained batch, `live()` must return to the number of
//!   messages still genuinely in flight.
//! * [`EventBatch`]: struct-of-arrays columns (`(seq, link, payload, tag)`)
//!   holding one tick's classified due events in ascending `seq` order, plus
//!   a grouping of the live deliveries by destination node in first-seen
//!   order. The engines activate each destination **once** over its group
//!   (arrivals stay in `seq` order within a group, because the columns are
//!   filled in `seq` order and the grouping is a stable counting sort), then
//!   replay delivery effects in exact global `seq` order via
//!   [`EventBatch::slot`] — so batch-at-a-time processing draws sequence
//!   numbers in precisely the order the one-at-a-time engine did, keeping
//!   schedules bit-identical (the argument mirrors the sharded engine's
//!   phase-1/phase-2 contract, DESIGN.md §6.2 and §10).
//!
//! Handles are engine-local: the sharded engine keeps one arena per shard and
//! never ships a handle across a shard boundary — only the serial merge, which
//! owns every shard's tables between barriers, moves payloads between arenas.

/// Reserved handle meaning "no payload" (acknowledgment events carry none).
pub const NONE: u32 = u32::MAX;

/// A scheduled event as the event schedulers store it: the directed link the
/// event travels on and the payload handle ([`NONE`] for acknowledgments,
/// which carry no message). Two packed `u32`s — the `(tick, seq)` columns are
/// supplied by the scheduler itself — so a wheel slot entry is 16 bytes
/// regardless of the protocol's message type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvRef {
    /// Directed-edge index of the link the event belongs to.
    pub link: u32,
    /// Payload handle into the engine's [`PayloadArena`], or [`NONE`].
    pub payload: u32,
}

impl EvRef {
    /// A delivery event carrying the message behind `payload`.
    pub fn deliver(link: u32, payload: u32) -> Self {
        debug_assert_ne!(payload, NONE, "deliveries carry a payload");
        EvRef { link, payload }
    }

    /// An acknowledgment event (no payload).
    pub fn ack(link: u32) -> Self {
        EvRef { link, payload: NONE }
    }

    /// Whether this is an acknowledgment (no payload handle).
    pub fn is_ack(&self) -> bool {
        self.payload == NONE
    }
}

/// One slot of the payload arena: either a live message or a link in the
/// free list.
#[derive(Debug)]
enum Slot<M> {
    Occupied(M),
    /// Next free slot index, or [`NONE`] for the list tail.
    Free(u32),
}

/// Free-list slab of in-flight message payloads, indexed by `u32` handles.
///
/// `alloc` pops the free list (growing the slot vector only when it is
/// empty), `take` pushes the freed slot back, so a steady-state run allocates
/// exactly once per distinct high-water mark of simultaneously in-flight
/// messages. The `live`/`peak_live` counters feed both the leak assertions in
/// the test suite (a drained batch must return every handle) and the bench
/// artifact's arena statistics.
#[derive(Debug)]
pub struct PayloadArena<M> {
    slots: Vec<Slot<M>>,
    /// Head of the free list ([`NONE`] when every slot is occupied).
    free_head: u32,
    /// Currently outstanding handles.
    live: usize,
    /// High-water mark of `live` over the arena's lifetime.
    peak_live: usize,
}

impl<M> PayloadArena<M> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        PayloadArena { slots: Vec::new(), free_head: NONE, live: 0, peak_live: 0 }
    }

    /// Stores `msg` and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` payloads are simultaneously live.
    pub fn alloc(&mut self, msg: M) -> u32 {
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        if self.free_head != NONE {
            let h = self.free_head;
            let slot = &mut self.slots[h as usize];
            let Slot::Free(next) = *slot else {
                unreachable!("free list points at an occupied slot");
            };
            self.free_head = next;
            *slot = Slot::Occupied(msg);
            h
        } else {
            let h = u32::try_from(self.slots.len()).expect("fewer than u32::MAX live payloads");
            assert_ne!(h, NONE, "arena handle space exhausted");
            self.slots.push(Slot::Occupied(msg));
            h
        }
    }

    /// Moves the message behind `handle` out, freeing the slot for reuse.
    ///
    /// # Panics
    ///
    /// Panics if `handle` is not a live handle from this arena (stale, freed,
    /// or foreign handles are a bug in the caller).
    pub fn take(&mut self, handle: u32) -> M {
        let slot = &mut self.slots[handle as usize];
        let prev = std::mem::replace(slot, Slot::Free(self.free_head));
        let Slot::Occupied(msg) = prev else {
            panic!("double free or stale arena handle {handle}");
        };
        self.free_head = handle;
        self.live -= 1;
        msg
    }

    /// Currently outstanding handles.
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of simultaneously live handles.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Resets the high-water mark to the current live count. Engine recycling
    /// calls this between runs so `peak_live` reports a per-run watermark —
    /// identical to a cold arena's — rather than a lifetime one.
    pub fn reset_peak(&mut self) {
        self.peak_live = self.live;
    }

    /// Bytes backing the slot vector (capacity, not just live slots) — the
    /// arena's memory footprint as reported in the bench artifact.
    pub fn bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot<M>>()
    }
}

impl<M> Default for PayloadArena<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// Classification of one due event within an [`EventBatch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tag {
    /// A live delivery: activates its destination, then replays effects.
    Deliver,
    /// A link-level acknowledgment (no payload, no activation).
    Ack,
    /// A delivery the fault adversary eats: frees the link and the payload
    /// handle, draws no activation.
    Drop,
}

/// Struct-of-arrays batch of one tick's classified due events, with the live
/// deliveries grouped by destination node.
///
/// Events are pushed in ascending `seq` order (the order `take_due` hands
/// them over). [`EventBatch::seal`] then builds a stable counting sort of the
/// deliveries by destination: groups appear in first-seen order, members of a
/// group stay in `seq` order, and [`EventBatch::slot`] maps an event index
/// back to its position in that activation order so the effects pass can find
/// each delivery's captured outbox range.
#[derive(Debug, Default)]
pub struct EventBatch {
    // Columns, one entry per classified event, in ascending seq order.
    seqs: Vec<u64>,
    links: Vec<u32>,
    payloads: Vec<u32>,
    tags: Vec<Tag>,
    /// Per event: the delivery's group index, or `NONE` for acks/drops.
    group_of: Vec<u32>,
    // Per group, in first-seen order.
    group_dst: Vec<u32>,
    group_count: Vec<u32>,
    group_start: Vec<u32>,
    /// Delivery event indices laid out contiguously by group (activation
    /// order): group `g` owns `perm[group_start[g]..group_start[g] + group_count[g]]`.
    perm: Vec<u32>,
    /// Per event: its activation-order slot (index into `perm`), or `NONE`.
    slot_of: Vec<u32>,
    // Destination-node scratch for the grouping: `node_group[v]` is valid iff
    // `stamp[v] == epoch`. Grown on demand, never cleared — the epoch bump in
    // `begin` invalidates every stale entry at once.
    stamp: Vec<u64>,
    node_group: Vec<u32>,
    epoch: u64,
    /// Per-group write cursors, reused across ticks by `seal`.
    cursor: Vec<u32>,
}

impl EventBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the batch for a new tick. Buffers are retained.
    pub fn begin(&mut self) {
        self.seqs.clear();
        self.links.clear();
        self.payloads.clear();
        self.tags.clear();
        self.group_of.clear();
        self.group_dst.clear();
        self.group_count.clear();
        self.group_start.clear();
        self.perm.clear();
        self.slot_of.clear();
        self.epoch += 1;
    }

    fn push(&mut self, seq: u64, link: u32, payload: u32, tag: Tag, group: u32) {
        self.seqs.push(seq);
        self.links.push(link);
        self.payloads.push(payload);
        self.tags.push(tag);
        self.group_of.push(group);
        self.slot_of.push(NONE);
    }

    /// Appends an acknowledgment event.
    pub fn push_ack(&mut self, seq: u64, link: u32) {
        self.push(seq, link, NONE, Tag::Ack, NONE);
    }

    /// Appends a delivery the fault adversary will eat (its payload handle
    /// still needs freeing in the effects pass).
    pub fn push_drop(&mut self, seq: u64, link: u32, payload: u32) {
        self.push(seq, link, payload, Tag::Drop, NONE);
    }

    /// Appends a live delivery addressed to node `dst`, assigning it to
    /// `dst`'s group (created in first-seen order).
    pub fn push_deliver(&mut self, seq: u64, link: u32, payload: u32, dst: u32) {
        let v = dst as usize;
        if v >= self.stamp.len() {
            self.stamp.resize(v + 1, 0);
            self.node_group.resize(v + 1, NONE);
        }
        let g = if self.stamp[v] == self.epoch {
            self.node_group[v]
        } else {
            let g = u32::try_from(self.group_dst.len()).expect("group count fits u32");
            self.stamp[v] = self.epoch;
            self.node_group[v] = g;
            self.group_dst.push(dst);
            self.group_count.push(0);
            g
        };
        self.group_count[g as usize] += 1;
        self.push(seq, link, payload, Tag::Deliver, g);
    }

    /// Finalizes the grouping: computes group offsets and the stable
    /// activation-order permutation. Call once, after the last push.
    pub fn seal(&mut self) {
        let mut start = 0u32;
        self.group_start.reserve(self.group_count.len());
        for &c in &self.group_count {
            self.group_start.push(start);
            start += c;
        }
        self.perm.resize(start as usize, NONE);
        // Scatter delivery indices to their group's span; walking events in
        // index (= seq) order keeps each group's members in seq order.
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.group_start);
        for (i, &g) in self.group_of.iter().enumerate() {
            if g == NONE {
                continue;
            }
            let k = self.cursor[g as usize];
            self.cursor[g as usize] += 1;
            self.perm[k as usize] = i as u32;
            self.slot_of[i] = k;
        }
    }

    /// Number of classified events.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// Whether the batch holds no events.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// The event at index `i` as `(seq, tag, link, payload)`.
    pub fn event(&self, i: usize) -> (u64, Tag, u32, u32) {
        (self.seqs[i], self.tags[i], self.links[i], self.payloads[i])
    }

    /// Number of destination groups (node activations this tick).
    pub fn groups(&self) -> usize {
        self.group_dst.len()
    }

    /// Group `g` as `(destination node, event indices in seq order)`. Only
    /// valid after [`EventBatch::seal`].
    pub fn group(&self, g: usize) -> (u32, &[u32]) {
        let start = self.group_start[g] as usize;
        let count = self.group_count[g] as usize;
        (self.group_dst[g], &self.perm[start..start + count])
    }

    /// The activation-order slot of delivery event `i` (its index within the
    /// concatenated group spans). Only valid after [`EventBatch::seal`] and
    /// only for `Tag::Deliver` events.
    pub fn slot(&self, i: usize) -> usize {
        debug_assert_ne!(self.slot_of[i], NONE, "only deliveries have activation slots");
        self.slot_of[i] as usize
    }

    /// Size of the largest destination group in this batch.
    pub fn max_group(&self) -> usize {
        self.group_count.iter().copied().max().unwrap_or(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_roundtrips_and_recycles_slots() {
        let mut a: PayloadArena<String> = PayloadArena::new();
        let h1 = a.alloc("one".into());
        let h2 = a.alloc("two".into());
        assert_ne!(h1, h2);
        assert_eq!(a.live(), 2);
        assert_eq!(a.take(h1), "one");
        assert_eq!(a.live(), 1);
        // The freed slot is reused before the slab grows.
        let h3 = a.alloc("three".into());
        assert_eq!(h3, h1, "freed slot must be recycled");
        assert_eq!(a.take(h3), "three");
        assert_eq!(a.take(h2), "two");
        assert_eq!(a.live(), 0);
        assert_eq!(a.peak_live(), 2);
    }

    #[test]
    fn arena_free_list_is_lifo_across_many_handles() {
        let mut a: PayloadArena<u64> = PayloadArena::new();
        let handles: Vec<u32> = (0..100).map(|i| a.alloc(i)).collect();
        assert_eq!(a.live(), 100);
        for &h in handles.iter().rev() {
            a.take(h);
        }
        assert_eq!(a.live(), 0);
        // Refilling reuses all 100 slots without growing the slab.
        let bytes = a.bytes();
        let again: Vec<u32> = (0..100).map(|i| a.alloc(i + 1000)).collect();
        assert_eq!(a.bytes(), bytes, "steady-state alloc must not grow the slab");
        let mut seen: Vec<u32> = again.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 100, "handles must be distinct");
        for &h in &again {
            a.take(h);
        }
        assert_eq!(a.peak_live(), 100);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn taking_a_freed_handle_panics() {
        let mut a: PayloadArena<u8> = PayloadArena::new();
        let h = a.alloc(1);
        a.take(h);
        let _ = a.take(h);
    }

    #[test]
    fn batch_groups_by_destination_in_first_seen_order() {
        let mut b = EventBatch::new();
        b.begin();
        // seq order: deliver to 7, ack, deliver to 3, deliver to 7, drop.
        b.push_deliver(10, 0, 100, 7);
        b.push_ack(11, 1);
        b.push_deliver(12, 2, 101, 3);
        b.push_deliver(13, 3, 102, 7);
        b.push_drop(14, 4, 103);
        b.seal();
        assert_eq!(b.len(), 5);
        assert_eq!(b.groups(), 2);
        let (dst0, members0) = b.group(0);
        assert_eq!(dst0, 7, "groups appear in first-seen order");
        assert_eq!(members0, &[0, 3], "members stay in seq order");
        let (dst1, members1) = b.group(1);
        assert_eq!((dst1, members1), (3, &[2u32][..]));
        // Activation slots: group 7 owns slots 0..2, group 3 owns slot 2.
        assert_eq!(b.slot(0), 0);
        assert_eq!(b.slot(3), 1);
        assert_eq!(b.slot(2), 2);
        assert_eq!(b.max_group(), 2);
        assert_eq!(b.event(1), (11, Tag::Ack, 1, NONE));
        assert_eq!(b.event(4), (14, Tag::Drop, 4, 103));
    }

    #[test]
    fn batch_reuse_across_ticks_resets_the_grouping() {
        let mut b = EventBatch::new();
        b.begin();
        b.push_deliver(0, 0, 0, 5);
        b.seal();
        assert_eq!(b.groups(), 1);
        // Next tick: the epoch bump must invalidate node 5's stale group.
        b.begin();
        b.push_deliver(1, 0, 1, 9);
        b.push_deliver(2, 1, 2, 5);
        b.seal();
        assert_eq!(b.groups(), 2);
        assert_eq!(b.group(0).0, 9);
        assert_eq!(b.group(1).0, 5);
        assert_eq!(b.group(1).1, &[1]);
    }

    #[test]
    fn a_drained_batch_returns_every_handle() {
        // The leak invariant the engines rely on: allocate a tick's worth of
        // payloads, classify them into a batch, drain every group plus the
        // drop lane, and the live-handle counter must return to zero.
        let mut arena: PayloadArena<Vec<u8>> = PayloadArena::new();
        let mut b = EventBatch::new();
        b.begin();
        for i in 0..50u64 {
            let h = arena.alloc(vec![i as u8; 3]);
            if i % 7 == 0 {
                b.push_drop(i, i as u32, h);
            } else {
                b.push_deliver(i, i as u32, h, (i % 5) as u32);
            }
        }
        b.seal();
        assert_eq!(arena.live(), 50);
        for g in 0..b.groups() {
            let (_, members) = b.group(g);
            for &i in members {
                let (_, tag, _, payload) = b.event(i as usize);
                assert_eq!(tag, Tag::Deliver);
                arena.take(payload);
            }
        }
        for i in 0..b.len() {
            let (_, tag, _, payload) = b.event(i);
            if tag == Tag::Drop {
                arena.take(payload);
            }
        }
        assert_eq!(arena.live(), 0, "drained batch leaked handles");
        assert_eq!(arena.peak_live(), 50);
    }

    #[test]
    fn evref_packs_acks_without_a_payload() {
        let d = EvRef::deliver(4, 9);
        assert!(!d.is_ack());
        let a = EvRef::ack(4);
        assert!(a.is_ack());
        assert_eq!(a.link, 4);
        assert_eq!(std::mem::size_of::<EvRef>(), 8, "scheduler payloads stay two packed u32s");
    }
}
