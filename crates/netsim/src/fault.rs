//! Dynamic-topology fault injection: link churn and crash-stop node failures.
//!
//! A [`FaultPlan`] is a scriptable schedule of [`FaultEvent`]s — links going
//! down and coming back, nodes crashing and recovering — pinned to absolute
//! simulation ticks. Every engine (serial wheel, binary heap, sharded)
//! consults the same compiled [`FaultState`] at dispatch and delivery time:
//!
//! * A message whose delivery tick finds the link down, the sender crashed or
//!   the receiver crashed is **dropped** (counted in
//!   [`AsyncReport::dropped_events`](crate::AsyncReport::dropped_events)) and
//!   the link is freed for the next injection. Crash-stop semantics: a
//!   crashed node's in-flight messages are lost too.
//! * Injecting onto a blocked link drains and drops the link's entire queue —
//!   messages "sent into the void" are lost, not buffered for recovery.
//! * Acknowledgments are engine bookkeeping, not payload traffic: they are
//!   never dropped, so the one-in-flight ack discipline survives churn and a
//!   recovered link re-admits traffic immediately.
//! * A node crashed at tick 0 never runs `on_start`; a crashed node is never
//!   activated, so it emits nothing until (and unless) it recovers.
//!
//! Determinism is load-bearing: fault transitions are applied at fixed ticks,
//! the drop paths draw **no** sequence numbers from the global stream, and the
//! batching window probe treats the next fault transition as a hard window
//! boundary (`ds-netsim::sharded` §Batched windows). Schedules under any
//! `FaultPlan` are therefore bit-identical across engines, shard counts,
//! worker counts and batching modes — pinned by `tests/fault_injection.rs`.

use ds_graph::{DirectedEdgeId, Graph, NodeId};

/// One scripted topology transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// The undirected link `{u, v}` fails (both directions stop delivering).
    LinkDown {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// The undirected link `{u, v}` recovers.
    LinkUp {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// Node `v` crashes (crash-stop: receives nothing, emits nothing).
    NodeCrash(NodeId),
    /// Node `v` recovers and resumes receiving and responding. A node crashed
    /// at tick 0 missed `on_start` and only ever reacts to incoming traffic.
    NodeRecover(NodeId),
}

/// A deterministic, tick-stamped schedule of [`FaultEvent`]s.
///
/// Build one explicitly with the chainable [`at`](FaultPlan::at) method, or
/// seed a churn adversary with [`random_churn`](FaultPlan::random_churn).
/// Events are applied in tick order; same-tick events apply in insertion
/// order. Events naming edges or nodes absent from the graph are ignored
/// (and not counted as transitions).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<(u64, FaultEvent)>,
}

impl FaultPlan {
    /// An empty plan (no faults — engines behave exactly as without one).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds one event at an absolute tick. Chainable.
    #[must_use]
    pub fn at(mut self, tick: u64, event: FaultEvent) -> Self {
        self.events.push((tick, event));
        self
    }

    /// Convenience: link `{u, v}` down at `tick`.
    #[must_use]
    pub fn link_down(self, tick: u64, u: NodeId, v: NodeId) -> Self {
        self.at(tick, FaultEvent::LinkDown { u, v })
    }

    /// Convenience: link `{u, v}` up at `tick`.
    #[must_use]
    pub fn link_up(self, tick: u64, u: NodeId, v: NodeId) -> Self {
        self.at(tick, FaultEvent::LinkUp { u, v })
    }

    /// Convenience: node `v` crashes at `tick`.
    #[must_use]
    pub fn node_crash(self, tick: u64, v: NodeId) -> Self {
        self.at(tick, FaultEvent::NodeCrash(v))
    }

    /// Convenience: node `v` recovers at `tick`.
    #[must_use]
    pub fn node_recover(self, tick: u64, v: NodeId) -> Self {
        self.at(tick, FaultEvent::NodeRecover(v))
    }

    /// A seeded churn adversary: `episodes` link outages and `crashes` node
    /// outages, each a `Down`/`Up` (or `Crash`/`Recover`) pair at
    /// deterministic ticks within `[0, span_ticks)`. The same
    /// `(graph, seed, ...)` always yields the same plan. Episode targets are
    /// drawn from the graph's edge and node lists; an empty graph yields an
    /// empty plan.
    #[must_use]
    pub fn random_churn(
        graph: &Graph,
        seed: u64,
        episodes: usize,
        crashes: usize,
        span_ticks: u64,
    ) -> Self {
        let mut plan = FaultPlan::new();
        let span = span_ticks.max(2);
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut draw = move |bound: u64| -> u64 {
            state = splitmix(state);
            state % bound.max(1)
        };
        let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(_, u, v)| (u, v)).collect();
        if !edges.is_empty() {
            for _ in 0..episodes {
                let (u, v) = edges[draw(edges.len() as u64) as usize];
                let down = draw(span - 1);
                let up = down + 1 + draw(span - down - 1);
                plan = plan.link_down(down, u, v).link_up(up, u, v);
            }
        }
        if graph.node_count() > 0 {
            for _ in 0..crashes {
                let v = NodeId(draw(graph.node_count() as u64) as usize);
                let down = draw(span - 1);
                let up = down + 1 + draw(span - down - 1);
                plan = plan.node_crash(down, v).node_recover(up, v);
            }
        }
        plan
    }

    /// Whether the plan schedules no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled `(tick, event)` pairs in insertion order.
    pub fn events(&self) -> &[(u64, FaultEvent)] {
        &self.events
    }

    /// The nodes still crashed after every event in the plan has been applied
    /// (sorted by id). Nodes outside `0..n` are ignored, mirroring how the
    /// engines compile the plan. This is the "these nodes never answered"
    /// status a degraded workload reports alongside its partial outputs.
    pub fn crashed_at_end(&self, n: usize) -> Vec<NodeId> {
        let mut crashed = vec![false; n];
        let mut order = self.application_order();
        order.sort_by_key(|&i| (self.events[i].0, i));
        for i in order {
            match self.events[i].1 {
                FaultEvent::NodeCrash(v) if v.index() < n => crashed[v.index()] = true,
                FaultEvent::NodeRecover(v) if v.index() < n => crashed[v.index()] = false,
                _ => {}
            }
        }
        (0..n).filter(|&i| crashed[i]).map(NodeId).collect()
    }

    /// Event indices in application order (tick, then insertion order).
    fn application_order(&self) -> Vec<usize> {
        (0..self.events.len()).collect()
    }
}

/// One compiled topology transition: flip a link or node flag.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Set both directions of an undirected link down (`true`) or up.
    Link(DirectedEdgeId, DirectedEdgeId, bool),
    /// Set a node crashed (`true`) or recovered.
    Node(NodeId, bool),
}

/// A [`FaultPlan`] compiled against a graph, with the current link/node flags.
///
/// Engines advance it monotonically ([`advance_to`](FaultState::advance_to))
/// as simulated time passes and consult [`blocks`](FaultState::blocks) on the
/// delivery/injection paths. The compile step drops events naming nonexistent
/// edges or out-of-range nodes, so invalid plan entries are inert rather than
/// panics, and never inflate the transition count.
#[derive(Clone, Debug)]
pub struct FaultState {
    /// `(tick, op)` sorted by tick (stable: same-tick in plan order).
    ops: Vec<(u64, Op)>,
    /// Next op to apply.
    cursor: usize,
    /// Per-directed-edge "link down" flag.
    link_down: Vec<bool>,
    /// Per-node "crashed" flag.
    crashed: Vec<bool>,
    /// Transitions applied so far (one per applied op, redundant or not).
    transitions: u64,
}

impl FaultState {
    /// Compiles `plan` against `graph`. Invalid events are silently dropped.
    pub fn new(graph: &Graph, plan: &FaultPlan) -> Self {
        let n = graph.node_count();
        let mut ops = Vec::with_capacity(plan.events.len());
        for &(tick, event) in &plan.events {
            let op = match event {
                FaultEvent::LinkDown { u, v } => {
                    graph.edge_id(u, v).map(|e| Op::Link(e, e.reversed(), true))
                }
                FaultEvent::LinkUp { u, v } => {
                    graph.edge_id(u, v).map(|e| Op::Link(e, e.reversed(), false))
                }
                FaultEvent::NodeCrash(v) => (v.index() < n).then_some(Op::Node(v, true)),
                FaultEvent::NodeRecover(v) => (v.index() < n).then_some(Op::Node(v, false)),
            };
            if let Some(op) = op {
                ops.push((tick, op));
            }
        }
        ops.sort_by_key(|&(tick, _)| tick);
        FaultState {
            ops,
            cursor: 0,
            link_down: vec![false; graph.directed_edge_count()],
            crashed: vec![false; n],
            transitions: 0,
        }
    }

    /// Applies every op scheduled at or before `now`. Monotone: engines call
    /// this with non-decreasing ticks, and each op is applied (and counted)
    /// exactly once.
    pub fn advance_to(&mut self, now: u64) {
        while let Some(&(tick, op)) = self.ops.get(self.cursor) {
            if tick > now {
                break;
            }
            match op {
                Op::Link(a, b, down) => {
                    self.link_down[a.index()] = down;
                    self.link_down[b.index()] = down;
                }
                Op::Node(v, crashed) => self.crashed[v.index()] = crashed,
            }
            self.transitions += 1;
            self.cursor += 1;
        }
    }

    /// The tick of the first unapplied op strictly after `now`, if any. The
    /// batched window probe treats this as a hard window boundary so the
    /// fault flags are constant across every tick of a window.
    pub fn next_transition_after(&self, now: u64) -> Option<u64> {
        self.ops[self.cursor..].iter().map(|&(tick, _)| tick).find(|&tick| tick > now)
    }

    /// Whether a delivery on `link` (`from → to`) is blocked under the current
    /// flags: the link is down, the sender crashed, or the receiver crashed.
    pub fn blocks(&self, link: DirectedEdgeId, from: NodeId, to: NodeId) -> bool {
        self.link_down[link.index()] || self.crashed[from.index()] || self.crashed[to.index()]
    }

    /// Whether `v` is currently crashed.
    pub fn is_crashed(&self, v: NodeId) -> bool {
        self.crashed[v.index()]
    }

    /// Transitions applied so far (surfaced as
    /// [`AsyncReport::fault_transitions`](crate::AsyncReport::fault_transitions)).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

/// The same split-mix step the delay adversary uses (`delay.rs`); duplicated
/// locally so the two modules stay independently readable and their streams
/// never entangle.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_compile_in_tick_order_and_flip_flags() {
        let graph = Graph::path(4);
        let plan = FaultPlan::new()
            .link_down(10, NodeId(1), NodeId(2))
            .node_crash(5, NodeId(3))
            .link_up(20, NodeId(2), NodeId(1))
            .node_recover(15, NodeId(3));
        let mut state = FaultState::new(&graph, &plan);
        let fwd = graph.edge_id(NodeId(1), NodeId(2)).expect("edge");

        state.advance_to(4);
        assert_eq!(state.transitions(), 0);
        assert!(!state.blocks(fwd, NodeId(1), NodeId(2)));
        assert_eq!(state.next_transition_after(4), Some(5));

        state.advance_to(10);
        assert_eq!(state.transitions(), 2);
        assert!(state.is_crashed(NodeId(3)));
        assert!(state.blocks(fwd, NodeId(1), NodeId(2)));
        assert!(state.blocks(fwd.reversed(), NodeId(2), NodeId(1)));
        assert_eq!(state.next_transition_after(10), Some(15));

        state.advance_to(30);
        assert_eq!(state.transitions(), 4);
        assert!(!state.is_crashed(NodeId(3)));
        assert!(!state.blocks(fwd, NodeId(1), NodeId(2)));
        assert_eq!(state.next_transition_after(30), None);
    }

    #[test]
    fn crashed_endpoints_block_every_incident_link() {
        let graph = Graph::star(4);
        let plan = FaultPlan::new().node_crash(1, NodeId(0));
        let mut state = FaultState::new(&graph, &plan);
        state.advance_to(1);
        for leaf in 1..4 {
            let to_hub = graph.edge_id(NodeId(leaf), NodeId(0)).expect("edge");
            assert!(state.blocks(to_hub, NodeId(leaf), NodeId(0)), "crashed receiver");
            assert!(state.blocks(to_hub.reversed(), NodeId(0), NodeId(leaf)), "crashed sender");
        }
    }

    #[test]
    fn invalid_events_are_dropped_and_never_counted() {
        let graph = Graph::path(3);
        let plan = FaultPlan::new()
            .link_down(1, NodeId(0), NodeId(2)) // not an edge of the path
            .node_crash(1, NodeId(99)) // out of range
            .link_down(2, NodeId(0), NodeId(1));
        let mut state = FaultState::new(&graph, &plan);
        state.advance_to(100);
        assert_eq!(state.transitions(), 1);
        assert!(!state.is_crashed(NodeId(0)));
    }

    #[test]
    fn same_tick_events_apply_in_insertion_order() {
        let graph = Graph::path(2);
        let up_then_down =
            FaultPlan::new().link_up(3, NodeId(0), NodeId(1)).link_down(3, NodeId(0), NodeId(1));
        let mut state = FaultState::new(&graph, &up_then_down);
        state.advance_to(3);
        let e = graph.edge_id(NodeId(0), NodeId(1)).expect("edge");
        assert!(state.blocks(e, NodeId(0), NodeId(1)), "last same-tick event wins");
        assert_eq!(state.transitions(), 2);
    }

    #[test]
    fn random_churn_is_deterministic_and_well_formed() {
        let graph = Graph::grid(4, 4);
        let a = FaultPlan::random_churn(&graph, 7, 5, 2, 5_000);
        let b = FaultPlan::random_churn(&graph, 7, 5, 2, 5_000);
        assert_eq!(a, b, "same seed, same plan");
        let c = FaultPlan::random_churn(&graph, 8, 5, 2, 5_000);
        assert_ne!(a, c, "different seed actually varies the plan");
        assert_eq!(a.events().len(), 2 * (5 + 2), "every episode is a paired down/up");
        // Every episode recovers: nothing is left crashed at the end.
        assert!(a.crashed_at_end(graph.node_count()).is_empty());
        // All events compile (targets drawn from the graph itself).
        let mut state = FaultState::new(&graph, &a);
        state.advance_to(u64::MAX);
        assert_eq!(state.transitions(), a.events().len() as u64);
    }

    #[test]
    fn crashed_at_end_replays_in_tick_order() {
        let plan = FaultPlan::new()
            .node_recover(9, NodeId(1)) // inserted first, applies last among ticks < 10
            .node_crash(2, NodeId(1))
            .node_crash(10, NodeId(0))
            .node_crash(3, NodeId(7)); // out of range for n = 4: ignored
        assert_eq!(plan.crashed_at_end(4), vec![NodeId(0)]);
    }
}
