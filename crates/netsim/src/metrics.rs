//! Time and message accounting shared by both engines.

use std::collections::BTreeMap;
use std::fmt;

/// Classification of a message for accounting purposes.
///
/// The paper distinguishes the messages of the original synchronous algorithm `A`
/// from the extra messages spent by the synchronizer; the complexity theorems bound
/// the two separately (`M(A')` ≤ init + overhead · `M(A)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MessageClass {
    /// A message of the underlying algorithm `A` (possibly wrapped in an envelope).
    Algorithm,
    /// A synchronizer / control message (safety reports, registrations, Go-Aheads,
    /// cluster convergecasts, pulse-readiness messages of α/β/γ, ...).
    Control,
}

/// Aggregated counters for one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunMetrics {
    /// Messages sent, per class (transport acknowledgments excluded).
    pub messages: BTreeMap<MessageClass, u64>,
    /// Link-level acknowledgments sent (asynchronous engine only).
    pub acks: u64,
    /// Normalized time (in units of `τ`) until every node has produced its output;
    /// `None` if some node never produced an output.
    pub time_to_output: Option<f64>,
    /// Normalized time until the network is quiescent (no more events). For the
    /// synchronous engine this is the number of rounds.
    pub time_to_quiescence: f64,
    /// Total number of delivery events processed.
    pub events: u64,
}

impl RunMetrics {
    /// Total messages across all classes (excluding acknowledgments).
    pub fn total_messages(&self) -> u64 {
        self.messages.values().sum()
    }

    /// Messages of the given class.
    pub fn class_messages(&self, class: MessageClass) -> u64 {
        self.messages.get(&class).copied().unwrap_or(0)
    }

    /// Records one sent message of the given class.
    pub fn record_message(&mut self, class: MessageClass) {
        *self.messages.entry(class).or_insert(0) += 1;
    }
}

impl fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "time_to_output={:?} time_to_quiescence={:.2} msgs[alg]={} msgs[ctl]={} acks={}",
            self.time_to_output,
            self.time_to_quiescence,
            self.class_messages(MessageClass::Algorithm),
            self.class_messages(MessageClass::Control),
            self.acks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_classes() {
        let mut m = RunMetrics::default();
        m.record_message(MessageClass::Algorithm);
        m.record_message(MessageClass::Algorithm);
        m.record_message(MessageClass::Control);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.class_messages(MessageClass::Algorithm), 2);
        assert_eq!(m.class_messages(MessageClass::Control), 1);
    }

    #[test]
    fn display_is_nonempty() {
        let m = RunMetrics::default();
        assert!(!format!("{m}").is_empty());
    }
}
