//! Word-indexed occupancy-bitset helpers shared by the engine's dense
//! structures ([`crate::scheduler::TimingWheel`]'s slot map and `StageQueue`'s
//! bucket window), so the bit-twiddling lives in exactly one place.

/// Sets bit `idx`.
pub(crate) fn set(words: &mut [u64], idx: usize) {
    words[idx / 64] |= 1u64 << (idx % 64);
}

/// Clears bit `idx`.
pub(crate) fn clear(words: &mut [u64], idx: usize) {
    words[idx / 64] &= !(1u64 << (idx % 64));
}

/// Index of the first set bit at position `>= start`, or `None`.
pub(crate) fn find_set_from(words: &[u64], start: usize) -> Option<usize> {
    let mut w = start / 64;
    if w >= words.len() {
        return None;
    }
    let mut word = words[w] & (!0u64 << (start % 64));
    loop {
        if word != 0 {
            return Some(w * 64 + word.trailing_zeros() as usize);
        }
        w += 1;
        if w >= words.len() {
            return None;
        }
        word = words[w];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_find_clear_roundtrip() {
        let mut words = vec![0u64; 3];
        for idx in [0, 1, 63, 64, 65, 127, 128, 191] {
            set(&mut words, idx);
            assert_eq!(find_set_from(&words, 0), Some(idx));
            assert_eq!(find_set_from(&words, idx), Some(idx));
            clear(&mut words, idx);
        }
        assert_eq!(find_set_from(&words, 0), None);
    }

    #[test]
    fn find_respects_the_start_offset() {
        let mut words = vec![0u64; 2];
        set(&mut words, 3);
        set(&mut words, 70);
        assert_eq!(find_set_from(&words, 0), Some(3));
        assert_eq!(find_set_from(&words, 3), Some(3));
        assert_eq!(find_set_from(&words, 4), Some(70));
        assert_eq!(find_set_from(&words, 71), None);
        assert_eq!(find_set_from(&words, 500), None);
    }
}
