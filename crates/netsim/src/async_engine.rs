//! Discrete-event simulator of the asynchronous message-passing model.
//!
//! The engine implements the model of Section 1.1 and Appendix B:
//!
//! * every message injected into a link is delivered after an adversarially chosen
//!   delay of at most one time unit `τ` ([`crate::delay::DelayModel`]; the
//!   composite [`Outage`](crate::delay::DelayModel::Outage) stress adversary may
//!   exceed it, parking deliveries in the scheduler's overflow heap),
//! * a node may have at most one un-acknowledged message per outgoing link; further
//!   messages queue locally and are injected when the acknowledgment returns (the
//!   acknowledgment discipline of Appendix B, which removes simultaneous-injection
//!   ambiguity and lets congestion cost time, as Lemma 2.2 requires),
//! * when several messages are queued on the same link they are transmitted in order
//!   of ascending priority (lowest stage first, Lemma 2.5), ties broken FIFO,
//! * time complexity is the completion time divided by `τ`; message complexity counts
//!   every injected message, with link acknowledgments reported separately.
//!
//! The engine's bookkeeping is flat and dense: per-link state lives in a `Vec`
//! indexed by [`DirectedEdgeId`] (every send resolves `(from, to)` through the
//! graph's directed-edge index), message payloads live in a recycled
//! [`PayloadArena`] — wheel slots, link queues and captured outboxes all move
//! 4-byte handles, never the messages — and one outbox buffer is recycled
//! across activations, so there are no map lookups or per-event allocations on
//! the hot path.
//!
//! Scheduling exploits the bounded delay horizon twice (see
//! [`crate::scheduler`] and [`crate::stage_queue`] for the data structures and
//! the determinism argument):
//!
//! * the global event queue is a bounded-horizon **hierarchical timing
//!   wheel** — `O(1)` per event instead of the `O(log n)` of the reference
//!   binary heap, with beyond-horizon events staged through coarser tiers
//!   instead of a heap (selectable via [`SchedulerKind`]; both produce
//!   bit-identical schedules),
//! * per-link queues are **per-stage FIFO buckets** keyed by the small stage
//!   priorities of Lemma 2.5, with a dense occupancy bitset,
//! * each tick is processed **batch-at-a-time** over an [`EventBatch`]: one
//!   pass classifies the tick's due events into struct-of-arrays columns
//!   grouped by destination, each destination then activates *once* over its
//!   arrivals (capturing outgoings as arena handles), and a final pass replays
//!   every delivery's effects — sends, acknowledgments, drops — in exact
//!   global `(tick, seq)` order, so the schedule equals the one-at-a-time
//!   engine's bit for bit (the determinism argument is DESIGN.md §10).

use crate::arena::{EvRef, EventBatch, PayloadArena, Tag};
use crate::delay::DelayModel;
use crate::fault::{FaultPlan, FaultState};
use crate::metrics::{MessageClass, RunMetrics};
use crate::protocol::{Ctx, Outgoing, Protocol};
use crate::scheduler::{EventScheduler, HeapScheduler, TimingWheel};
use crate::stage_queue::StageQueue;
use crate::trace::{DeliveryTrace, TraceState};
use crate::SchedulerKind;
use crate::TICKS_PER_UNIT;
use ds_graph::{DirectedEdgeId, Graph, NodeId};
use std::fmt;

/// Errors reported by the simulation engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A protocol attempted to send to a node that is not its neighbor.
    NotNeighbor { from: NodeId, to: NodeId },
    /// The asynchronous run exceeded the configured event budget (likely livelock).
    EventLimitExceeded { limit: u64 },
    /// The synchronous run exceeded the configured round budget.
    RoundLimitExceeded { limit: u64 },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotNeighbor { from, to } => {
                write!(f, "node {from} attempted to send to non-neighbor {to}")
            }
            SimError::EventLimitExceeded { limit } => {
                write!(f, "asynchronous run exceeded the event limit of {limit}")
            }
            SimError::RoundLimitExceeded { limit } => {
                write!(f, "synchronous run exceeded the round limit of {limit}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Safety limits for a simulation run (either engine).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimLimits {
    /// Maximum number of message-delivery events before an asynchronous run is
    /// aborted.
    pub max_events: u64,
    /// Maximum number of rounds before a synchronous run is aborted.
    pub max_rounds: u64,
}

impl Default for SimLimits {
    fn default() -> Self {
        SimLimits { max_events: 50_000_000, max_rounds: 1_000_000 }
    }
}

/// Result of an asynchronous run.
#[derive(Debug)]
pub struct AsyncReport<P> {
    /// Time and message accounting.
    pub metrics: RunMetrics,
    /// The per-node protocol instances after the run (holding outputs and state).
    pub nodes: Vec<P>,
    /// Events scheduled beyond the timing wheel's horizon and staged through
    /// its coarser overflow tiers (0 for single-`τ` delay models and for the
    /// heap scheduler, which has no horizon). Kept out of [`RunMetrics`]
    /// deliberately: it describes the scheduler's internals, not the simulated
    /// execution, and so may differ between schedulers whose runs are
    /// otherwise bit-identical.
    pub overflow_events: u64,
    /// High-water mark of simultaneously live payload-arena handles (summed
    /// over the per-shard arenas for the sharded engine). An engine internal
    /// like [`overflow_events`](AsyncReport::overflow_events): the arena's
    /// footprint, not the simulated execution.
    pub peak_live_handles: u64,
    /// Bytes backing the payload arena's slot storage at the end of the run
    /// (capacity, summed over shards). An engine internal.
    pub arena_bytes: u64,
    /// Size of the largest one-tick due batch the engine processed. An engine
    /// internal (the sharded engine reports the largest per-shard batch).
    pub max_batch: u64,
    /// Extra ticks the sharded engine processed inside batched windows (window
    /// length minus one, summed over all barriers; 0 for the serial engines,
    /// when batching is off, or when every occupied tick already sits on the
    /// delay grid — e.g. the uniform model, whose events all land `τ` apart, so
    /// each window holds a single tick). Like
    /// [`overflow_events`](AsyncReport::overflow_events), this describes the
    /// engine's internals, not the simulated execution, so it lives outside
    /// [`RunMetrics`].
    pub batched_ticks: u64,
    /// Barriers whose phase 1 the sharded engine shipped to its worker pool
    /// (0 for the serial engines and for runs without worker threads). Also an
    /// engine internal, kept outside [`RunMetrics`] for the same reason.
    pub pool_dispatches: u64,
    /// Messages dropped by the fault adversary ([`crate::fault`]): deliveries
    /// whose tick found the link down or an endpoint crashed, plus queued
    /// messages drained when injecting onto a dead link. Always 0 without a
    /// [`FaultPlan`]. Unlike the scheduler internals above this *does*
    /// describe the simulated execution, and is identical across engines,
    /// shard counts and batching modes.
    pub dropped_events: u64,
    /// Fault-plan transitions applied during the run (one per link/node flip
    /// whose tick was reached; identical across engines). Always 0 without a
    /// [`FaultPlan`].
    pub fault_transitions: u64,
}

/// Per-directed-edge link state, indexed flat by [`DirectedEdgeId`] (shared with
/// the sharded engine, which keeps one such table per shard).
#[derive(Debug)]
pub(crate) struct LinkState<M> {
    /// Cached endpoints of the directed edge — the hot path reads them from the
    /// link record it touches anyway instead of chasing the graph's edge table.
    pub(crate) from: NodeId,
    pub(crate) to: NodeId,
    /// Whether a message is currently in flight (awaiting acknowledgment).
    pub(crate) in_flight: bool,
    /// Single-entry fast path: the first queued `(priority, seq, msg)` waits here
    /// and only further arrivals spill into the bucket queue, so the common case —
    /// one message waiting per link — never touches `StageQueue` at all.
    head: Option<(u64, u64, M)>,
    /// Spilled messages, lowest `(priority, seq)` first (Lemma 2.5: lowest stage
    /// first, FIFO within a stage).
    queue: StageQueue<M>,
}

impl<M> LinkState<M> {
    pub(crate) fn new(from: NodeId, to: NodeId) -> Self {
        LinkState { from, to, in_flight: false, head: None, queue: StageQueue::new() }
    }

    /// Whether the link holds no transient state: nothing in flight, nothing
    /// queued. At quiescence every link is idle (a queued message always has
    /// an ack or drop pending to release it), which is what lets a finished
    /// run's link table be recycled into the next run ([`crate::recycle`]).
    pub(crate) fn is_idle(&self) -> bool {
        !self.in_flight && self.head.is_none() && self.queue.is_empty()
    }

    pub(crate) fn push(&mut self, priority: u64, seq: u64, msg: M) {
        if self.head.is_none() {
            self.head = Some((priority, seq, msg));
        } else {
            self.queue.push(priority, seq, msg);
        }
    }

    /// Pops the waiting message with the minimum `(priority, seq)` as
    /// `(seq, msg)`. The head entry and the bucket queue each yield their own
    /// minimum; the smaller key wins, so the order equals the unsplit queue's.
    pub(crate) fn pop(&mut self) -> Option<(u64, M)> {
        match self.head.take() {
            Some((hp, hs, hmsg)) => match self.queue.min_key() {
                Some(qkey) if qkey < (hp, hs) => {
                    self.head = Some((hp, hs, hmsg));
                    self.queue.pop()
                }
                _ => Some((hs, hmsg)),
            },
            None => self.queue.pop(),
        }
    }
}

/// The reusable, allocation-heavy halves of a serial engine: everything
/// `run_engine` builds per run except the protocol instances and the event
/// scheduler. [`crate::recycle::EngineSlab`] keeps one of these (plus a
/// [`TimingWheel`]) across runs so link tables, stage queues, the payload
/// arena and the outbox buffer are reshaped rather than reallocated.
///
/// None of the retained state can influence a schedule: between runs the
/// queues are empty, the arena holds no live handles (capacity and free-list
/// shape are invisible — handles are opaque and never feed a scheduling
/// decision), and [`EngineParts::adopt`] rewrites every field the next run
/// reads (link endpoints, done flags, the peak-live watermark) to exactly its
/// cold-start value.
pub(crate) struct EngineParts<M> {
    pub(crate) links: Vec<LinkState<u32>>,
    pub(crate) arena: PayloadArena<M>,
    pub(crate) done_flags: Vec<bool>,
    pub(crate) outbox_pool: Vec<Outgoing<M>>,
    pub(crate) touched: Vec<DirectedEdgeId>,
}

// Manual impl: `derive` would demand `M: Default`, but empty parts need no
// message value.
impl<M> Default for EngineParts<M> {
    fn default() -> Self {
        EngineParts {
            links: Vec::new(),
            arena: PayloadArena::new(),
            done_flags: Vec::new(),
            outbox_pool: Vec::new(),
            touched: Vec::new(),
        }
    }
}

impl<M> EngineParts<M> {
    /// Reshapes the parts for a run on `graph`, asserting the previous run
    /// left them clean. Endpoints are rewritten unconditionally — adoption
    /// never trusts a hash to decide the link table still matches the
    /// topology — and the arena's watermark restarts at zero, so every field
    /// the engine reads equals a cold build's.
    ///
    /// # Panics
    ///
    /// Panics if the previous run left transient state behind (a non-idle
    /// link or a live arena handle).
    pub(crate) fn adopt(&mut self, graph: &Graph) {
        assert_eq!(self.arena.live(), 0, "recycled parts must hold no live arena handles");
        self.arena.reset_peak();
        let m = graph.directed_edge_count();
        self.links.truncate(m);
        for (e, link) in self.links.iter_mut().enumerate() {
            assert!(link.is_idle(), "recycled parts must hold no queued or in-flight messages");
            let (from, to) = graph.directed_endpoints(DirectedEdgeId(e as u32));
            link.from = from;
            link.to = to;
        }
        for e in self.links.len()..m {
            let (from, to) = graph.directed_endpoints(DirectedEdgeId(e as u32));
            self.links.push(LinkState::new(from, to));
        }
        self.done_flags.clear();
        self.done_flags.resize(graph.node_count(), false);
        self.touched.clear();
    }

    /// Whether the parts hold no transient state — the recycling hygiene
    /// invariant ([`crate::recycle::EngineSlab::is_clean`]): every link idle,
    /// every arena handle returned.
    pub(crate) fn is_clean(&self) -> bool {
        self.arena.live() == 0 && self.links.iter().all(LinkState::is_idle)
    }
}

struct Engine<'a, P: Protocol, S> {
    graph: &'a Graph,
    delay: DelayModel,
    nodes: Vec<P>,
    /// Link state per directed edge, indexed by [`DirectedEdgeId`]. The
    /// queued entries are payload-arena handles, not messages.
    links: Vec<LinkState<u32>>,
    /// Every in-flight message payload, behind the `u32` handles the link
    /// queues and the scheduler's [`EvRef`]s carry.
    arena: PayloadArena<P::Message>,
    sched: S,
    now: u64,
    seq: u64,
    /// Deliveries processed so far, checked against `max_events`.
    deliveries: u64,
    /// The run's delivery budget (`SimLimits::max_events`).
    max_events: u64,
    metrics: RunMetrics,
    done_flags: Vec<bool>,
    done_count: usize,
    time_all_done: Option<u64>,
    /// Recycled outbox buffer, threaded through every activation.
    outbox_pool: Vec<Outgoing<P::Message>>,
    /// Recycled scratch list of links touched by one outbox dispatch.
    touched: Vec<DirectedEdgeId>,
    /// Delivery tracing for the happens-before checker ([`crate::trace`]).
    /// `None` (the default) makes every hook a dead branch: schedules are
    /// bit-identical with tracing on or off.
    trace: Option<TraceState>,
    /// The compiled fault adversary, advanced to `now` before events of a tick
    /// are processed. `None` (the default) makes every check a dead branch.
    faults: Option<FaultState>,
    /// Messages dropped by the fault adversary ([`AsyncReport::dropped_events`]).
    dropped: u64,
    /// Size of the largest one-tick due batch ([`AsyncReport::max_batch`]).
    max_batch: u64,
}

impl<'a, P: Protocol, S: EventScheduler<EvRef>> Engine<'a, P, S> {
    // ds-lint: hot-path (per-delivery: no owned-container allocation tokens)
    fn schedule(&mut self, at: u64, ev: EvRef) {
        let seq = self.next_seq();
        if let Some(tr) = self.trace.as_mut() {
            tr.on_scheduled(seq);
        }
        self.sched.schedule(at, seq, ev);
    }

    fn next_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    // ds-lint: hot-path (per-delivery: no owned-container allocation tokens)
    fn try_inject(&mut self, link: DirectedEdgeId) {
        let state = &mut self.links[link.index()];
        if state.in_flight {
            return;
        }
        let (from, to) = (state.from, state.to);
        if self.faults.as_ref().is_some_and(|f| f.blocks(link, from, to)) {
            // The link is dead right now: everything queued behind it is lost.
            // The drain draws no sequence numbers — so the schedule of live
            // traffic is untouched by how many messages die here — but every
            // drained handle is freed back into the arena.
            while let Some((_, handle)) = self.links[link.index()].pop() {
                self.arena.take(handle);
                self.dropped += 1;
            }
            return;
        }
        let state = &mut self.links[link.index()];
        let Some((msg_seq, handle)) = state.pop() else { return };
        state.in_flight = true;
        let delay = self.delay.delay_ticks_at(from, to, msg_seq, self.now);
        let at = self.now + delay;
        self.schedule(at, EvRef::deliver(link.0, handle));
    }

    /// Dispatches a start-wave activation's outbox: each message moves into
    /// the payload arena and its handle queues on the link, then injection is
    /// attempted. Tick-time deliveries use the capture/replay split of the
    /// batch passes instead; this direct path serves only `on_start`.
    fn dispatch_outbox(&mut self, from: NodeId, ctx: &mut Ctx<P::Message>) -> Result<(), SimError> {
        if ctx.queued() == 0 {
            return Ok(());
        }
        let mut touched = std::mem::take(&mut self.touched);
        for out in ctx.drain_outbox() {
            let Some(link) = self.graph.edge_id(from, out.to) else {
                return Err(SimError::NotNeighbor { from, to: out.to });
            };
            self.metrics.record_message(out.class);
            let seq = self.seq;
            self.seq += 1;
            let handle = self.arena.alloc(out.msg);
            self.links[link.index()].push(out.priority, seq, handle);
            touched.push(link);
        }
        for link in touched.drain(..) {
            self.try_inject(link);
        }
        self.touched = touched;
        Ok(())
    }

    /// Replays one delivery's effects — trace record, event accounting, the
    /// sends its activation captured (each drawing its seq here, in exact
    /// global `seq` order), and the acknowledgment back to the sender. The
    /// protocol activation itself already ran in the batch's activation pass;
    /// splitting the two keeps the seq stream identical to the historical
    /// one-at-a-time engine's (the ack draws one seq for its delay and a
    /// second inside `schedule`, mirroring it exactly — the seq stream feeds
    /// the delay adversary).
    // ds-lint: hot-path (per-delivery: no owned-container allocation tokens)
    fn delivery_effects(
        &mut self,
        seq: u64,
        link: DirectedEdgeId,
        rows: &[(NodeId, u64, MessageClass, u32)],
    ) -> Result<(), SimError> {
        let state = &self.links[link.index()];
        let (from, to) = (state.from, state.to);
        if let Some(tr) = self.trace.as_mut() {
            tr.on_delivery(seq, self.now, 0, from, to);
        }
        self.deliveries += 1;
        if self.deliveries > self.max_events {
            return Err(SimError::EventLimitExceeded { limit: self.max_events });
        }
        self.metrics.events += 1;
        let mut touched = std::mem::take(&mut self.touched);
        for &(out_to, priority, class, handle) in rows {
            let Some(l) = self.graph.edge_id(to, out_to) else {
                return Err(SimError::NotNeighbor { from: to, to: out_to });
            };
            self.metrics.record_message(class);
            let mseq = self.seq;
            self.seq += 1;
            self.links[l.index()].push(priority, mseq, handle);
            touched.push(l);
        }
        for l in touched.drain(..) {
            self.try_inject(l);
        }
        self.touched = touched;
        self.metrics.acks += 1;
        let ack_seq = self.next_seq();
        let ack_delay = self.delay.delay_ticks_at(to, from, ack_seq, self.now);
        let at = self.now + ack_delay;
        self.schedule(at, EvRef::ack(link.0));
        Ok(())
    }

    fn update_done(&mut self, node: NodeId) {
        if !self.done_flags[node.index()] && self.nodes[node.index()].is_done() {
            self.done_flags[node.index()] = true;
            self.done_count += 1;
            if self.done_count == self.nodes.len() && self.time_all_done.is_none() {
                self.time_all_done = Some(self.now);
            }
        }
    }
}

/// Runs an asynchronous protocol on `graph` under the delay adversary `delay`,
/// scheduling with the default [`SchedulerKind::TimingWheel`].
///
/// `make` constructs the per-node protocol instance.
///
/// # Errors
///
/// * [`SimError::NotNeighbor`] if a protocol sends to a non-neighbor.
/// * [`SimError::EventLimitExceeded`] if the run exceeds `limits.max_events`
///   deliveries (protection against livelocked protocols).
pub fn run_async<P, F>(
    graph: &Graph,
    delay: DelayModel,
    make: F,
    limits: SimLimits,
) -> Result<AsyncReport<P>, SimError>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
{
    run_async_with(graph, delay, make, limits, SchedulerKind::default())
}

/// [`run_async`] with an explicit event-scheduler choice. All kinds produce
/// bit-identical runs (asserted by `tests/scheduler_equiv.rs`); the heap is kept
/// as the executable reference for the timing wheel.
///
/// [`SchedulerKind::Sharded`] runs the sharded engine *sequentially* here (one
/// coordinator, no worker threads), because this signature does not require
/// `P: Send`. The execution is bit-identical either way; to actually spawn
/// worker threads use [`crate::sharded::run_async_sharded`] (or drive it through
/// `Session::scheduler`, whose protocols are `Send`).
///
/// # Errors
///
/// Same as [`run_async`].
pub fn run_async_with<P, F>(
    graph: &Graph,
    delay: DelayModel,
    make: F,
    limits: SimLimits,
    scheduler: SchedulerKind,
) -> Result<AsyncReport<P>, SimError>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
{
    run_async_faulted(graph, delay, None, make, limits, scheduler)
}

/// [`run_async_with`] under a [`FaultPlan`]: the engine consults the compiled
/// fault state at dispatch and delivery time (drop semantics in
/// [`crate::fault`]). `None` behaves exactly like [`run_async_with`]. Like it,
/// [`SchedulerKind::Sharded`] runs sequentially here; use
/// [`crate::sharded::run_async_sharded_faulted_with`] for worker threads.
///
/// # Errors
///
/// Same as [`run_async`].
pub fn run_async_faulted<P, F>(
    graph: &Graph,
    delay: DelayModel,
    faults: Option<&FaultPlan>,
    make: F,
    limits: SimLimits,
    scheduler: SchedulerKind,
) -> Result<AsyncReport<P>, SimError>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
{
    let state = faults.map(|plan| FaultState::new(graph, plan));
    match scheduler {
        SchedulerKind::TimingWheel => {
            let horizon = delay.max_delay_ticks();
            run_engine(graph, delay, make, limits, TimingWheel::new(horizon), None, state)
                .map(|(report, _)| report)
        }
        SchedulerKind::BinaryHeap => {
            run_engine(graph, delay, make, limits, HeapScheduler::new(), None, state)
                .map(|(report, _)| report)
        }
        SchedulerKind::Sharded { shards, workers: _ } => {
            crate::sharded::run_sequential_faulted(graph, delay, faults, make, limits, shards)
        }
    }
}

/// [`run_async_with`] with delivery tracing enabled: returns the report plus
/// the [`DeliveryTrace`] the happens-before checker (`ds-verify`) consumes.
///
/// The traced run is **bit-identical** to the untraced one — tracing only
/// appends to a side buffer and never draws a sequence number or touches a
/// queue (asserted by the module tests and `tests/happens_before.rs`).
/// [`SchedulerKind::Sharded`] runs sequentially here, like [`run_async_with`];
/// use [`crate::sharded::run_async_sharded_traced_with`] for worker threads.
///
/// # Errors
///
/// Same as [`run_async`].
pub fn run_async_traced<P, F>(
    graph: &Graph,
    delay: DelayModel,
    make: F,
    limits: SimLimits,
    scheduler: SchedulerKind,
) -> Result<(AsyncReport<P>, DeliveryTrace), SimError>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
{
    run_async_faulted_traced(graph, delay, None, make, limits, scheduler)
}

/// [`run_async_faulted`] with delivery tracing enabled. Dropped deliveries
/// leave no trace record (they never happened, causally), so the
/// happens-before checker works unchanged under churn.
///
/// # Errors
///
/// Same as [`run_async`].
pub fn run_async_faulted_traced<P, F>(
    graph: &Graph,
    delay: DelayModel,
    faults: Option<&FaultPlan>,
    make: F,
    limits: SimLimits,
    scheduler: SchedulerKind,
) -> Result<(AsyncReport<P>, DeliveryTrace), SimError>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
{
    let state = faults.map(|plan| FaultState::new(graph, plan));
    let trace = Some(TraceState::new(1));
    let (report, trace) = match scheduler {
        SchedulerKind::TimingWheel => {
            let horizon = delay.max_delay_ticks();
            run_engine(graph, delay, make, limits, TimingWheel::new(horizon), trace, state)?
        }
        SchedulerKind::BinaryHeap => {
            run_engine(graph, delay, make, limits, HeapScheduler::new(), trace, state)?
        }
        SchedulerKind::Sharded { shards, workers: _ } => {
            return crate::sharded::run_sequential_faulted_traced(
                graph, delay, faults, make, limits, shards,
            );
        }
    };
    Ok((report, trace.expect("tracing was enabled")))
}

fn run_engine<P, F, S>(
    graph: &Graph,
    delay: DelayModel,
    make: F,
    limits: SimLimits,
    sched: S,
    trace: Option<TraceState>,
    faults: Option<FaultState>,
) -> Result<(AsyncReport<P>, Option<DeliveryTrace>), SimError>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
    S: EventScheduler<EvRef>,
{
    let mut parts = EngineParts::default();
    parts.adopt(graph);
    run_engine_parts(graph, delay, make, limits, sched, trace, faults, &mut parts)
        .map(|(report, trace, _sched)| (report, trace))
}

/// [`run_engine`] over caller-owned [`EngineParts`]: the engine's recyclable
/// state is moved out of `parts` for the run and moved back on success (with
/// the scheduler returned for the same reason). On error the parts are left
/// in their default (empty) state — a failed run's transient state is
/// discarded wholesale rather than cleaned, so recycling degrades to cold
/// allocation instead of risking a poisoned slab.
///
/// The caller must have called [`EngineParts::adopt`] for `graph` first.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_engine_parts<P, F, S>(
    graph: &Graph,
    delay: DelayModel,
    mut make: F,
    limits: SimLimits,
    sched: S,
    trace: Option<TraceState>,
    faults: Option<FaultState>,
    parts: &mut EngineParts<P::Message>,
) -> Result<(AsyncReport<P>, Option<DeliveryTrace>, S), SimError>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
    S: EventScheduler<EvRef>,
{
    debug_assert_eq!(parts.links.len(), graph.directed_edge_count(), "adopt() must run first");
    debug_assert_eq!(parts.done_flags.len(), graph.node_count(), "adopt() must run first");
    let mut engine = Engine {
        graph,
        delay,
        nodes: graph.nodes().map(&mut make).collect(),
        links: std::mem::take(&mut parts.links),
        arena: std::mem::take(&mut parts.arena),
        sched,
        now: 0,
        seq: 0,
        deliveries: 0,
        max_events: limits.max_events,
        metrics: RunMetrics::default(),
        done_flags: std::mem::take(&mut parts.done_flags),
        done_count: 0,
        time_all_done: None,
        outbox_pool: std::mem::take(&mut parts.outbox_pool),
        touched: std::mem::take(&mut parts.touched),
        trace,
        faults,
        dropped: 0,
        max_batch: 0,
    };

    // Time 0: start every node. A node crashed at tick 0 misses its `on_start`
    // (crash-stop: it emits nothing) but still gets the done-check, so "never
    // participated" nodes count as done only if their protocol says so.
    if let Some(f) = engine.faults.as_mut() {
        f.advance_to(0);
    }
    for v in graph.nodes() {
        if engine.faults.as_ref().is_some_and(|f| f.is_crashed(v)) {
            engine.update_done(v);
            continue;
        }
        let mut ctx = Ctx::with_buffer(v, std::mem::take(&mut engine.outbox_pool));
        engine.nodes[v.index()].on_start(&mut ctx);
        engine.dispatch_outbox(v, &mut ctx)?;
        engine.outbox_pool = ctx.into_buffer();
        engine.update_done(v);
    }

    // One tick per iteration: `take_due` hands over every event of the earliest
    // pending tick in ascending seq order (events scheduled while processing the
    // tick land strictly later, so the batch is complete). Ticks with at most
    // `SMALL_TICK` events are processed one at a time; larger ticks run three
    // passes over the batch (DESIGN.md §10): classify, activate by destination
    // group, replay effects in seq order. Both orders produce the identical
    // schedule.
    const SMALL_TICK: usize = 32;
    let mut due: Vec<(u64, EvRef)> = Vec::new();
    let mut batch = EventBatch::new();
    // Outgoings captured by the activation pass, and each delivery's span in
    // that row buffer (`out_span[i]` is `(start, count)` for batch event `i`).
    let mut out_rows: Vec<(NodeId, u64, MessageClass, u32)> = Vec::new();
    let mut out_span: Vec<(u32, u32)> = Vec::new();
    while let Some(t) = engine.sched.take_due(&mut due) {
        engine.now = t;
        if let Some(f) = engine.faults.as_mut() {
            f.advance_to(t);
        }
        engine.max_batch = engine.max_batch.max(due.len() as u64);

        // Small ticks skip the batch machinery: spread-delay adversaries
        // (jitter) make most ticks carry a handful of events to distinct
        // destinations, where grouping cannot amortize its classify/seal
        // cost. Processing them one event at a time in ascending seq order
        // interleaves each event's activation with its effects — which is
        // exactly the three-pass order collapsed per event: activations draw
        // no seqs, effects of event `i` all precede effects of event `i+1`,
        // and nothing an effect mutates (link state, scheduler) feeds the
        // fault classification or a later activation's input. The schedule
        // is bit-identical either way (pinned by `tests/scheduler_equiv.rs`).
        if due.len() <= SMALL_TICK {
            for &(seq, ev) in &due {
                let edge = DirectedEdgeId(ev.link);
                let state = &engine.links[ev.link as usize];
                let (from, to) = (state.from, state.to);
                if ev.is_ack() {
                    if let Some(tr) = engine.trace.as_mut() {
                        tr.on_ack(seq);
                    }
                    engine.links[ev.link as usize].in_flight = false;
                    engine.try_inject(edge);
                } else if engine.faults.as_ref().is_some_and(|f| f.blocks(edge, from, to)) {
                    engine.arena.take(ev.payload);
                    engine.dropped += 1;
                    engine.links[ev.link as usize].in_flight = false;
                    engine.try_inject(edge);
                } else {
                    let msg = engine.arena.take(ev.payload);
                    let mut ctx = Ctx::with_buffer(to, std::mem::take(&mut engine.outbox_pool));
                    engine.nodes[to.index()].on_message(from, msg, &mut ctx);
                    out_rows.clear();
                    for out in ctx.drain_outbox() {
                        out_rows.push((
                            out.to,
                            out.priority,
                            out.class,
                            engine.arena.alloc(out.msg),
                        ));
                    }
                    engine.outbox_pool = ctx.into_buffer();
                    engine.update_done(to);
                    engine.delivery_effects(seq, edge, &out_rows)?;
                }
            }
            due.clear();
            continue;
        }

        // Pass 1 — classify: acks, fault-blocked deliveries (the adversary
        // eats them: no activation, no ack, no trace record, no sequence
        // draws — but their payload handle still needs freeing, which pass 3
        // does), and live deliveries grouped by destination.
        batch.begin();
        for &(seq, ev) in &due {
            if ev.is_ack() {
                batch.push_ack(seq, ev.link);
            } else {
                let state = &engine.links[ev.link as usize];
                let (from, to) = (state.from, state.to);
                if engine
                    .faults
                    .as_ref()
                    .is_some_and(|f| f.blocks(DirectedEdgeId(ev.link), from, to))
                {
                    batch.push_drop(seq, ev.link, ev.payload);
                } else {
                    batch.push_deliver(seq, ev.link, ev.payload, to.0 as u32);
                }
            }
        }
        due.clear();
        batch.seal();

        // Pass 2 — activate: each destination node runs once over all its
        // arrivals this tick (in seq order within the group), with one
        // borrowed outbox buffer and one done-check. Outgoings move straight
        // into the arena; no sequence numbers are drawn here, so the
        // activation order (group order, not seq order) cannot leak into the
        // schedule.
        out_rows.clear();
        out_span.clear();
        out_span.resize(batch.len(), (0, 0));
        for g in 0..batch.groups() {
            let (dst, members) = batch.group(g);
            let dst = NodeId(dst as usize);
            let mut ctx = Ctx::with_buffer(dst, std::mem::take(&mut engine.outbox_pool));
            for &i in members {
                let i = i as usize;
                let (_, _, link, payload) = batch.event(i);
                let from = engine.links[link as usize].from;
                let msg = engine.arena.take(payload);
                engine.nodes[dst.index()].on_message(from, msg, &mut ctx);
                let start = out_rows.len() as u32;
                for out in ctx.drain_outbox() {
                    out_rows.push((out.to, out.priority, out.class, engine.arena.alloc(out.msg)));
                }
                out_span[i] = (start, out_rows.len() as u32 - start);
            }
            engine.outbox_pool = ctx.into_buffer();
            engine.update_done(dst);
        }

        // Pass 3 — effects, in exact global seq order: every send and ack
        // draws its seq at precisely the position the one-at-a-time engine
        // drew it, so the schedule is bit-identical.
        for (i, &(start, count)) in out_span.iter().enumerate() {
            let (seq, tag, link, payload) = batch.event(i);
            let edge = DirectedEdgeId(link);
            match tag {
                Tag::Deliver => {
                    let rows = &out_rows[start as usize..(start + count) as usize];
                    engine.delivery_effects(seq, edge, rows)?;
                }
                Tag::Ack => {
                    if let Some(tr) = engine.trace.as_mut() {
                        tr.on_ack(seq);
                    }
                    engine.links[link as usize].in_flight = false;
                    engine.try_inject(edge);
                }
                Tag::Drop => {
                    engine.arena.take(payload);
                    engine.dropped += 1;
                    engine.links[link as usize].in_flight = false;
                    engine.try_inject(edge);
                }
            }
        }
    }

    // Quiescence means no event is scheduled and no link queue is non-empty
    // (a queued message always has an ack or drop pending to release it), so
    // every arena handle must have been taken back — the engine-level leak
    // check behind the unit-level one in `arena::tests`. The recycled entry
    // point promotes this into a hard assertion on every run
    // ([`crate::recycle::run_async_recycled`]).
    debug_assert_eq!(engine.arena.live(), 0, "a finished run must return every arena handle");

    engine.metrics.time_to_output = engine.time_all_done.map(|t| t as f64 / TICKS_PER_UNIT as f64);
    engine.metrics.time_to_quiescence = engine.now as f64 / TICKS_PER_UNIT as f64;

    let trace = engine.trace.map(TraceState::finish);
    let report = AsyncReport {
        metrics: engine.metrics,
        nodes: engine.nodes,
        overflow_events: engine.sched.overflow_scheduled(),
        peak_live_handles: engine.arena.peak_live() as u64,
        arena_bytes: engine.arena.bytes() as u64,
        max_batch: engine.max_batch,
        batched_ticks: 0,
        pool_dispatches: 0,
        dropped_events: engine.dropped,
        fault_transitions: engine.faults.as_ref().map_or(0, FaultState::transitions),
    };
    // Hand the recyclable halves back for the next run.
    parts.links = engine.links;
    parts.arena = engine.arena;
    parts.done_flags = engine.done_flags;
    parts.outbox_pool = engine.outbox_pool;
    parts.touched = engine.touched;
    Ok((report, trace, engine.sched))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MessageClass;

    /// Asynchronous flooding: node 0 floods a token; each node records the hop count
    /// of the first copy it receives (which may exceed the true distance under
    /// adversarial delays — flooding is not a correct BFS, which is the point of the
    /// synchronizer). Borrows its neighbor slice from the graph.
    #[derive(Debug)]
    struct Flood<'g> {
        me: NodeId,
        neighbors: &'g [NodeId],
        hops: Option<u64>,
    }

    impl<'g> Flood<'g> {
        fn new(graph: &'g Graph, me: NodeId) -> Self {
            Flood { me, neighbors: graph.neighbors(me), hops: None }
        }
    }

    impl Protocol for Flood<'_> {
        type Message = u64;

        fn on_start(&mut self, ctx: &mut Ctx<u64>) {
            if self.me == NodeId(0) {
                self.hops = Some(0);
                for &u in self.neighbors {
                    ctx.send(u, 1);
                }
            }
        }

        fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Ctx<u64>) {
            if self.hops.is_none() {
                self.hops = Some(msg);
                for &u in self.neighbors {
                    ctx.send(u, msg + 1);
                }
            }
        }

        fn is_done(&self) -> bool {
            self.hops.is_some()
        }
    }

    #[test]
    fn flood_reaches_every_node_under_every_adversary() {
        let g = Graph::grid(4, 4);
        for delay in DelayModel::standard_suite(5) {
            let report =
                run_async(&g, delay.clone(), |v| Flood::new(&g, v), SimLimits::default()).unwrap();
            assert!(
                report.nodes.iter().all(|n| n.hops.is_some()),
                "all nodes reached under {delay:?}"
            );
            assert!(report.metrics.time_to_output.is_some());
            assert!(report.metrics.total_messages() > 0);
            assert_eq!(report.metrics.acks, report.metrics.events);
        }
    }

    #[test]
    fn uniform_delay_flood_time_matches_distance_bound() {
        let g = Graph::path(8);
        let report =
            run_async(&g, DelayModel::uniform(), |v| Flood::new(&g, v), SimLimits::default())
                .unwrap();
        // Under uniform unit delays every hop costs exactly one unit, so the last
        // node (distance 7) is done at time 7.
        let t = report.metrics.time_to_output.unwrap();
        assert!((t - 7.0).abs() < 1e-9, "time was {t}");
    }

    #[test]
    fn adversarial_delays_can_mislead_naive_flooding() {
        // On a cycle, make links incident to low-index nodes slow: the token then
        // reaches the far side the "long way around" first, giving wrong hop counts.
        // This demonstrates why a synchronizer is needed at all.
        let g = Graph::cycle(8);
        let report =
            run_async(&g, DelayModel::slow_cut(4), |v| Flood::new(&g, v), SimLimits::default())
                .unwrap();
        let hops: Vec<u64> = report.nodes.iter().map(|n| n.hops.unwrap()).collect();
        let true_dist = ds_graph::metrics::bfs_distances(&g, NodeId(0));
        let mismatches =
            hops.iter().zip(true_dist.iter()).filter(|(h, d)| **h != d.unwrap() as u64).count();
        assert!(mismatches > 0, "expected the adversary to distort naive flooding");
    }

    #[test]
    fn ack_discipline_serializes_a_link() {
        /// Node 0 sends `k` messages to node 1 at start; node 1 counts arrivals.
        #[derive(Debug)]
        struct Burst {
            me: NodeId,
            received: u64,
        }
        impl Protocol for Burst {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                if self.me == NodeId(0) {
                    for _ in 0..5 {
                        ctx.send(NodeId(1), ());
                    }
                }
            }
            fn on_message(&mut self, _from: NodeId, _msg: (), _ctx: &mut Ctx<()>) {
                self.received += 1;
            }
            fn is_done(&self) -> bool {
                self.me == NodeId(0) || self.received == 5
            }
        }
        let g = Graph::path(2);
        let report = run_async(
            &g,
            DelayModel::uniform(),
            |me| Burst { me, received: 0 },
            SimLimits::default(),
        )
        .unwrap();
        // Each of the 5 messages must wait for the previous message's ack: delivery i
        // completes at time 2i+1, so the last arrives at time 9.
        let t = report.metrics.time_to_output.unwrap();
        assert!((t - 9.0).abs() < 1e-9, "time was {t}");
        assert_eq!(report.metrics.total_messages(), 5);
    }

    #[test]
    fn priorities_order_queued_messages() {
        /// Node 0 queues a low-priority then a high-priority message; node 1 records
        /// the arrival order.
        #[derive(Debug)]
        struct Prio {
            me: NodeId,
            order: Vec<u8>,
        }
        impl Protocol for Prio {
            type Message = u8;
            fn on_start(&mut self, ctx: &mut Ctx<u8>) {
                if self.me == NodeId(0) {
                    ctx.send_with(NodeId(1), 9, 9, MessageClass::Algorithm);
                    ctx.send_with(NodeId(1), 1, 1, MessageClass::Algorithm);
                    ctx.send_with(NodeId(1), 5, 5, MessageClass::Algorithm);
                }
            }
            fn on_message(&mut self, _from: NodeId, msg: u8, _ctx: &mut Ctx<u8>) {
                self.order.push(msg);
            }
            fn is_done(&self) -> bool {
                self.me == NodeId(0) || self.order.len() == 3
            }
        }
        let g = Graph::path(2);
        let report = run_async(
            &g,
            DelayModel::uniform(),
            |me| Prio { me, order: Vec::new() },
            SimLimits::default(),
        )
        .unwrap();
        // All three messages are queued before the link transmits, so they are
        // delivered in ascending priority order regardless of send order.
        assert_eq!(report.nodes[1].order, vec![1, 5, 9]);
    }

    #[test]
    fn outage_model_exercises_the_overflow_heap_deterministically() {
        // The composite outage adversary assigns multi-τ delays, so deliveries
        // land beyond the wheel's one-τ horizon and must park in the overflow
        // heap — which no single-τ model ever reaches. The schedule must stay
        // byte-identical across repeat runs and across schedulers.
        let g = Graph::grid(6, 6);
        let delay = DelayModel::outage(11, 4, 2);
        let run = |scheduler: SchedulerKind| {
            let report = run_async_with(
                &g,
                delay.clone(),
                |v| Flood::new(&g, v),
                SimLimits::default(),
                scheduler,
            )
            .expect("outage run");
            let hops: Vec<Option<u64>> = report.nodes.iter().map(|n| n.hops).collect();
            (hops, report.metrics, report.overflow_events)
        };
        let (hops_a, metrics_a, overflow_a) = run(SchedulerKind::TimingWheel);
        assert!(hops_a.iter().all(Option::is_some), "flood completes despite outages");
        assert!(overflow_a > 0, "multi-τ delays must park events beyond the horizon");
        // Repeat run: bit-identical.
        let (hops_b, metrics_b, overflow_b) = run(SchedulerKind::TimingWheel);
        assert_eq!(hops_a, hops_b);
        assert_eq!(metrics_a, metrics_b);
        assert_eq!(overflow_a, overflow_b);
        // The heap scheduler has no horizon (overflow 0) but must produce the
        // exact same simulated execution.
        let (hops_h, metrics_h, overflow_h) = run(SchedulerKind::BinaryHeap);
        assert_eq!(hops_a, hops_h);
        assert_eq!(metrics_a, metrics_h);
        assert_eq!(overflow_h, 0);
    }

    #[test]
    fn single_unit_models_never_overflow() {
        let g = Graph::grid(4, 4);
        for delay in DelayModel::standard_suite(3) {
            let report =
                run_async(&g, delay.clone(), |v| Flood::new(&g, v), SimLimits::default()).unwrap();
            assert_eq!(report.overflow_events, 0, "{delay:?} stayed within one τ");
        }
    }

    #[test]
    fn serial_engines_report_zero_batching_and_pool_counters() {
        // `batched_ticks` and `pool_dispatches` are sharded-engine internals;
        // the wheel and heap engines must pin them at exactly zero so bench
        // consumers can rely on "0 means the feature was off or inapplicable".
        let g = Graph::grid(4, 4);
        for scheduler in [SchedulerKind::TimingWheel, SchedulerKind::BinaryHeap] {
            let report = run_async_with(
                &g,
                DelayModel::uniform(),
                |v| Flood::new(&g, v),
                SimLimits::default(),
                scheduler,
            )
            .unwrap();
            assert_eq!(report.batched_ticks, 0, "{scheduler:?}");
            assert_eq!(report.pool_dispatches, 0, "{scheduler:?}");
            assert_eq!(report.dropped_events, 0, "{scheduler:?}: no fault plan, no drops");
            assert_eq!(report.fault_transitions, 0, "{scheduler:?}");
        }
    }

    #[test]
    fn a_severed_link_drops_in_flight_messages_and_recovery_readmits() {
        use crate::fault::FaultPlan;
        // Node 0 floods a path of 3. Cutting link {0,1} just after start kills
        // the first hop mid-flight, so nodes 1 and 2 never learn anything ...
        let g = Graph::path(3);
        let cut = FaultPlan::new().link_down(1, NodeId(0), NodeId(1));
        let report = run_async_faulted(
            &g,
            DelayModel::uniform(),
            Some(&cut),
            |v| Flood::new(&g, v),
            SimLimits::default(),
            SchedulerKind::TimingWheel,
        )
        .unwrap();
        assert_eq!(report.nodes[1].hops, None);
        assert_eq!(report.nodes[2].hops, None);
        assert!(report.dropped_events > 0);
        assert_eq!(report.fault_transitions, 1);
        assert!(report.metrics.time_to_output.is_none(), "partial run has no completion time");
        // ... while a cut that heals within the first hop's flight time only
        // delays nothing: uniform delay is a full τ, the link is back at half
        // of it, and retransmission is not modeled — the dropped copy is lost
        // for good, but traffic injected after recovery flows again.
        let heal =
            FaultPlan::new().link_down(1, NodeId(1), NodeId(2)).link_up(2500, NodeId(1), NodeId(2));
        let report = run_async_faulted(
            &g,
            DelayModel::uniform(),
            Some(&heal),
            |v| Flood::new(&g, v),
            SimLimits::default(),
            SchedulerKind::TimingWheel,
        )
        .unwrap();
        // Node 1 still hears from node 0 (that link was never cut)...
        assert_eq!(report.nodes[1].hops, Some(1));
        // ...but its relay died on the severed link, and Flood never resends.
        assert_eq!(report.nodes[2].hops, None);
        assert_eq!(report.fault_transitions, 2);
    }

    #[test]
    fn a_node_crashed_at_tick_zero_never_starts() {
        use crate::fault::FaultPlan;
        let g = Graph::path(3);
        let plan = FaultPlan::new().node_crash(0, NodeId(0));
        let report = run_async_faulted(
            &g,
            DelayModel::uniform(),
            Some(&plan),
            |v| Flood::new(&g, v),
            SimLimits::default(),
            SchedulerKind::TimingWheel,
        )
        .unwrap();
        // The source never ran `on_start`: nothing was ever sent.
        assert!(report.nodes.iter().all(|n| n.hops.is_none()));
        assert_eq!(report.metrics.total_messages(), 0);
        assert_eq!(report.dropped_events, 0);
    }

    #[test]
    fn an_empty_fault_plan_changes_nothing() {
        use crate::fault::FaultPlan;
        let g = Graph::grid(4, 4);
        for delay in DelayModel::standard_suite(9) {
            let plain =
                run_async(&g, delay.clone(), |v| Flood::new(&g, v), SimLimits::default()).unwrap();
            let empty = FaultPlan::new();
            let faulted = run_async_faulted(
                &g,
                delay.clone(),
                Some(&empty),
                |v| Flood::new(&g, v),
                SimLimits::default(),
                SchedulerKind::TimingWheel,
            )
            .unwrap();
            let plain_hops: Vec<_> = plain.nodes.iter().map(|n| n.hops).collect();
            let faulted_hops: Vec<_> = faulted.nodes.iter().map(|n| n.hops).collect();
            assert_eq!(plain_hops, faulted_hops, "{delay:?}");
            assert_eq!(plain.metrics, faulted.metrics, "{delay:?}");
            assert_eq!(faulted.dropped_events, 0);
        }
    }

    #[test]
    fn event_limit_aborts_livelock() {
        #[derive(Debug)]
        struct PingPong {
            me: NodeId,
        }
        impl Protocol for PingPong {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                if self.me == NodeId(0) {
                    ctx.send(NodeId(1), ());
                }
            }
            fn on_message(&mut self, from: NodeId, _msg: (), ctx: &mut Ctx<()>) {
                ctx.send(from, ());
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = Graph::path(2);
        let err = run_async(
            &g,
            DelayModel::uniform(),
            |me| PingPong { me },
            SimLimits { max_events: 100, ..SimLimits::default() },
        )
        .unwrap_err();
        assert_eq!(err, SimError::EventLimitExceeded { limit: 100 });
    }

    #[test]
    fn sending_to_non_neighbor_is_rejected() {
        #[derive(Debug)]
        struct Bad {
            me: NodeId,
        }
        impl Protocol for Bad {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                if self.me == NodeId(0) {
                    ctx.send(NodeId(2), ());
                }
            }
            fn on_message(&mut self, _: NodeId, _: (), _: &mut Ctx<()>) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = Graph::path(3);
        let err = run_async(&g, DelayModel::uniform(), |me| Bad { me }, SimLimits::default())
            .unwrap_err();
        assert_eq!(err, SimError::NotNeighbor { from: NodeId(0), to: NodeId(2) });
    }
}
