//! Discrete-event simulator of the asynchronous message-passing model.
//!
//! The engine implements the model of Section 1.1 and Appendix B:
//!
//! * every message injected into a link is delivered after an adversarially chosen
//!   delay of at most one time unit `τ` ([`crate::delay::DelayModel`]; the
//!   composite [`Outage`](crate::delay::DelayModel::Outage) stress adversary may
//!   exceed it, parking deliveries in the scheduler's overflow heap),
//! * a node may have at most one un-acknowledged message per outgoing link; further
//!   messages queue locally and are injected when the acknowledgment returns (the
//!   acknowledgment discipline of Appendix B, which removes simultaneous-injection
//!   ambiguity and lets congestion cost time, as Lemma 2.2 requires),
//! * when several messages are queued on the same link they are transmitted in order
//!   of ascending priority (lowest stage first, Lemma 2.5), ties broken FIFO,
//! * time complexity is the completion time divided by `τ`; message complexity counts
//!   every injected message, with link acknowledgments reported separately.
//!
//! The engine's bookkeeping is flat and dense: per-link state lives in a `Vec`
//! indexed by [`DirectedEdgeId`] (every send resolves `(from, to)` through the
//! graph's directed-edge index), events carry payloads inline, and one outbox
//! buffer is recycled across activations — there are no map lookups or per-event
//! allocations on the hot path.
//!
//! Scheduling exploits the bounded delay horizon twice (see
//! [`crate::scheduler`] and [`crate::stage_queue`] for the data structures and
//! the determinism argument):
//!
//! * the global event queue is a bounded-horizon **timing wheel** — `O(1)` per
//!   event instead of the `O(log n)` of the reference binary heap (selectable via
//!   [`SchedulerKind`]; both produce bit-identical schedules),
//! * per-link queues are **per-stage FIFO buckets** keyed by the small stage
//!   priorities of Lemma 2.5, with a dense occupancy bitset,
//! * all deliveries of one tick to the same node are **batched**: the node
//!   activates once with one borrowed outbox buffer, and its arrivals, outbox
//!   dispatches and acknowledgment scheduling are processed in exact global
//!   `(tick, seq)` order, so the schedule is unchanged.

use crate::delay::DelayModel;
use crate::fault::{FaultPlan, FaultState};
use crate::metrics::RunMetrics;
use crate::protocol::{Ctx, Outgoing, Protocol};
use crate::scheduler::{EventScheduler, HeapScheduler, TimingWheel};
use crate::stage_queue::StageQueue;
use crate::trace::{DeliveryTrace, TraceState};
use crate::SchedulerKind;
use crate::TICKS_PER_UNIT;
use ds_graph::{DirectedEdgeId, Graph, NodeId};
use std::fmt;

/// Errors reported by the simulation engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A protocol attempted to send to a node that is not its neighbor.
    NotNeighbor { from: NodeId, to: NodeId },
    /// The asynchronous run exceeded the configured event budget (likely livelock).
    EventLimitExceeded { limit: u64 },
    /// The synchronous run exceeded the configured round budget.
    RoundLimitExceeded { limit: u64 },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotNeighbor { from, to } => {
                write!(f, "node {from} attempted to send to non-neighbor {to}")
            }
            SimError::EventLimitExceeded { limit } => {
                write!(f, "asynchronous run exceeded the event limit of {limit}")
            }
            SimError::RoundLimitExceeded { limit } => {
                write!(f, "synchronous run exceeded the round limit of {limit}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Safety limits for a simulation run (either engine).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimLimits {
    /// Maximum number of message-delivery events before an asynchronous run is
    /// aborted.
    pub max_events: u64,
    /// Maximum number of rounds before a synchronous run is aborted.
    pub max_rounds: u64,
}

impl Default for SimLimits {
    fn default() -> Self {
        SimLimits { max_events: 50_000_000, max_rounds: 1_000_000 }
    }
}

/// Result of an asynchronous run.
#[derive(Debug)]
pub struct AsyncReport<P> {
    /// Time and message accounting.
    pub metrics: RunMetrics,
    /// The per-node protocol instances after the run (holding outputs and state).
    pub nodes: Vec<P>,
    /// Events scheduled beyond the timing wheel's horizon (0 for single-`τ`
    /// delay models and for the heap scheduler, which has no horizon). Kept out
    /// of [`RunMetrics`] deliberately: it describes the scheduler's internals,
    /// not the simulated execution, and so may differ between schedulers whose
    /// runs are otherwise bit-identical.
    pub overflow_events: u64,
    /// Extra ticks the sharded engine processed inside batched windows (window
    /// length minus one, summed over all barriers; 0 for the serial engines,
    /// when batching is off, or when every occupied tick already sits on the
    /// delay grid — e.g. the uniform model, whose events all land `τ` apart, so
    /// each window holds a single tick). Like
    /// [`overflow_events`](AsyncReport::overflow_events), this describes the
    /// engine's internals, not the simulated execution, so it lives outside
    /// [`RunMetrics`].
    pub batched_ticks: u64,
    /// Barriers whose phase 1 the sharded engine shipped to its worker pool
    /// (0 for the serial engines and for runs without worker threads). Also an
    /// engine internal, kept outside [`RunMetrics`] for the same reason.
    pub pool_dispatches: u64,
    /// Messages dropped by the fault adversary ([`crate::fault`]): deliveries
    /// whose tick found the link down or an endpoint crashed, plus queued
    /// messages drained when injecting onto a dead link. Always 0 without a
    /// [`FaultPlan`]. Unlike the scheduler internals above this *does*
    /// describe the simulated execution, and is identical across engines,
    /// shard counts and batching modes.
    pub dropped_events: u64,
    /// Fault-plan transitions applied during the run (one per link/node flip
    /// whose tick was reached; identical across engines). Always 0 without a
    /// [`FaultPlan`].
    pub fault_transitions: u64,
}

/// Per-directed-edge link state, indexed flat by [`DirectedEdgeId`] (shared with
/// the sharded engine, which keeps one such table per shard).
#[derive(Debug)]
pub(crate) struct LinkState<M> {
    /// Cached endpoints of the directed edge — the hot path reads them from the
    /// link record it touches anyway instead of chasing the graph's edge table.
    pub(crate) from: NodeId,
    pub(crate) to: NodeId,
    /// Whether a message is currently in flight (awaiting acknowledgment).
    pub(crate) in_flight: bool,
    /// Single-entry fast path: the first queued `(priority, seq, msg)` waits here
    /// and only further arrivals spill into the bucket queue, so the common case —
    /// one message waiting per link — never touches `StageQueue` at all.
    head: Option<(u64, u64, M)>,
    /// Spilled messages, lowest `(priority, seq)` first (Lemma 2.5: lowest stage
    /// first, FIFO within a stage).
    queue: StageQueue<M>,
}

impl<M> LinkState<M> {
    pub(crate) fn new(from: NodeId, to: NodeId) -> Self {
        LinkState { from, to, in_flight: false, head: None, queue: StageQueue::new() }
    }

    pub(crate) fn push(&mut self, priority: u64, seq: u64, msg: M) {
        if self.head.is_none() {
            self.head = Some((priority, seq, msg));
        } else {
            self.queue.push(priority, seq, msg);
        }
    }

    /// Pops the waiting message with the minimum `(priority, seq)` as
    /// `(seq, msg)`. The head entry and the bucket queue each yield their own
    /// minimum; the smaller key wins, so the order equals the unsplit queue's.
    pub(crate) fn pop(&mut self) -> Option<(u64, M)> {
        match self.head.take() {
            Some((hp, hs, hmsg)) => match self.queue.min_key() {
                Some(qkey) if qkey < (hp, hs) => {
                    self.head = Some((hp, hs, hmsg));
                    self.queue.pop()
                }
                _ => Some((hs, hmsg)),
            },
            None => self.queue.pop(),
        }
    }
}

#[derive(Debug)]
enum EventKind<M> {
    Deliver { msg: M },
    Ack,
}

/// The inline payload of a scheduled event; the scheduler supplies `(at, seq)`.
#[derive(Debug)]
struct Pending<M> {
    link: DirectedEdgeId,
    kind: EventKind<M>,
}

struct Engine<'a, P: Protocol, S> {
    graph: &'a Graph,
    delay: DelayModel,
    nodes: Vec<P>,
    /// Link state per directed edge, indexed by [`DirectedEdgeId`].
    links: Vec<LinkState<P::Message>>,
    sched: S,
    now: u64,
    seq: u64,
    /// Deliveries processed so far, checked against `max_events`.
    deliveries: u64,
    /// The run's delivery budget (`SimLimits::max_events`).
    max_events: u64,
    metrics: RunMetrics,
    done_flags: Vec<bool>,
    done_count: usize,
    time_all_done: Option<u64>,
    /// Recycled outbox buffer, threaded through every activation.
    outbox_pool: Vec<Outgoing<P::Message>>,
    /// Recycled scratch list of links touched by one outbox dispatch.
    touched: Vec<DirectedEdgeId>,
    /// Delivery tracing for the happens-before checker ([`crate::trace`]).
    /// `None` (the default) makes every hook a dead branch: schedules are
    /// bit-identical with tracing on or off.
    trace: Option<TraceState>,
    /// The compiled fault adversary, advanced to `now` before events of a tick
    /// are processed. `None` (the default) makes every check a dead branch.
    faults: Option<FaultState>,
    /// Messages dropped by the fault adversary ([`AsyncReport::dropped_events`]).
    dropped: u64,
}

impl<'a, P: Protocol, S: EventScheduler<Pending<P::Message>>> Engine<'a, P, S> {
    fn schedule(&mut self, at: u64, link: DirectedEdgeId, kind: EventKind<P::Message>) {
        let seq = self.next_seq();
        if let Some(tr) = self.trace.as_mut() {
            tr.on_scheduled(seq);
        }
        self.sched.schedule(at, seq, Pending { link, kind });
    }

    fn next_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    fn try_inject(&mut self, link: DirectedEdgeId) {
        let state = &mut self.links[link.index()];
        if state.in_flight {
            return;
        }
        let (from, to) = (state.from, state.to);
        if self.faults.as_ref().is_some_and(|f| f.blocks(link, from, to)) {
            // The link is dead right now: everything queued behind it is lost.
            // The drain draws no sequence numbers, so the schedule of live
            // traffic is untouched by how many messages die here.
            let state = &mut self.links[link.index()];
            let mut lost = 0;
            while state.pop().is_some() {
                lost += 1;
            }
            self.dropped += lost;
            return;
        }
        let state = &mut self.links[link.index()];
        let Some((msg_seq, msg)) = state.pop() else { return };
        state.in_flight = true;
        let delay = self.delay.delay_ticks_at(from, to, msg_seq, self.now);
        let at = self.now + delay;
        self.schedule(at, link, EventKind::Deliver { msg });
    }

    fn dispatch_outbox(&mut self, from: NodeId, ctx: &mut Ctx<P::Message>) -> Result<(), SimError> {
        if ctx.queued() == 0 {
            return Ok(());
        }
        let mut touched = std::mem::take(&mut self.touched);
        for out in ctx.drain_outbox() {
            let Some(link) = self.graph.edge_id(from, out.to) else {
                return Err(SimError::NotNeighbor { from, to: out.to });
            };
            self.metrics.record_message(out.class);
            let seq = self.seq;
            self.seq += 1;
            self.links[link.index()].push(out.priority, seq, out.msg);
            touched.push(link);
        }
        for link in touched.drain(..) {
            self.try_inject(link);
        }
        self.touched = touched;
        Ok(())
    }

    /// Processes one delivery: the protocol activation, its outbox dispatch, and
    /// the acknowledgment back to the sender — in exact global `seq` order, so
    /// batched and unbatched processing yield identical schedules.
    fn deliver(
        &mut self,
        seq: u64,
        from: NodeId,
        to: NodeId,
        link: DirectedEdgeId,
        msg: P::Message,
        ctx: &mut Ctx<P::Message>,
    ) -> Result<(), SimError> {
        if let Some(tr) = self.trace.as_mut() {
            tr.on_delivery(seq, self.now, 0, from, to);
        }
        self.deliveries += 1;
        if self.deliveries > self.max_events {
            return Err(SimError::EventLimitExceeded { limit: self.max_events });
        }
        self.metrics.events += 1;
        self.nodes[to.index()].on_message(from, msg, ctx);
        self.dispatch_outbox(to, ctx)?;
        // Send the link-level acknowledgment back to the sender. (The ack draws
        // one seq for its delay and a second inside `schedule`, mirroring the
        // historical engine exactly — the seq stream feeds the delay adversary.)
        self.metrics.acks += 1;
        let ack_seq = self.next_seq();
        let ack_delay = self.delay.delay_ticks_at(to, from, ack_seq, self.now);
        let at = self.now + ack_delay;
        self.schedule(at, link, EventKind::Ack);
        Ok(())
    }

    fn update_done(&mut self, node: NodeId) {
        if !self.done_flags[node.index()] && self.nodes[node.index()].is_done() {
            self.done_flags[node.index()] = true;
            self.done_count += 1;
            if self.done_count == self.nodes.len() && self.time_all_done.is_none() {
                self.time_all_done = Some(self.now);
            }
        }
    }
}

/// Runs an asynchronous protocol on `graph` under the delay adversary `delay`,
/// scheduling with the default [`SchedulerKind::TimingWheel`].
///
/// `make` constructs the per-node protocol instance.
///
/// # Errors
///
/// * [`SimError::NotNeighbor`] if a protocol sends to a non-neighbor.
/// * [`SimError::EventLimitExceeded`] if the run exceeds `limits.max_events`
///   deliveries (protection against livelocked protocols).
pub fn run_async<P, F>(
    graph: &Graph,
    delay: DelayModel,
    make: F,
    limits: SimLimits,
) -> Result<AsyncReport<P>, SimError>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
{
    run_async_with(graph, delay, make, limits, SchedulerKind::default())
}

/// [`run_async`] with an explicit event-scheduler choice. All kinds produce
/// bit-identical runs (asserted by `tests/scheduler_equiv.rs`); the heap is kept
/// as the executable reference for the timing wheel.
///
/// [`SchedulerKind::Sharded`] runs the sharded engine *sequentially* here (one
/// coordinator, no worker threads), because this signature does not require
/// `P: Send`. The execution is bit-identical either way; to actually spawn
/// worker threads use [`crate::sharded::run_async_sharded`] (or drive it through
/// `Session::scheduler`, whose protocols are `Send`).
///
/// # Errors
///
/// Same as [`run_async`].
pub fn run_async_with<P, F>(
    graph: &Graph,
    delay: DelayModel,
    make: F,
    limits: SimLimits,
    scheduler: SchedulerKind,
) -> Result<AsyncReport<P>, SimError>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
{
    run_async_faulted(graph, delay, None, make, limits, scheduler)
}

/// [`run_async_with`] under a [`FaultPlan`]: the engine consults the compiled
/// fault state at dispatch and delivery time (drop semantics in
/// [`crate::fault`]). `None` behaves exactly like [`run_async_with`]. Like it,
/// [`SchedulerKind::Sharded`] runs sequentially here; use
/// [`crate::sharded::run_async_sharded_faulted_with`] for worker threads.
///
/// # Errors
///
/// Same as [`run_async`].
pub fn run_async_faulted<P, F>(
    graph: &Graph,
    delay: DelayModel,
    faults: Option<&FaultPlan>,
    make: F,
    limits: SimLimits,
    scheduler: SchedulerKind,
) -> Result<AsyncReport<P>, SimError>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
{
    let state = faults.map(|plan| FaultState::new(graph, plan));
    match scheduler {
        SchedulerKind::TimingWheel => {
            let horizon = delay.max_delay_ticks();
            run_engine(graph, delay, make, limits, TimingWheel::new(horizon), None, state)
                .map(|(report, _)| report)
        }
        SchedulerKind::BinaryHeap => {
            run_engine(graph, delay, make, limits, HeapScheduler::new(), None, state)
                .map(|(report, _)| report)
        }
        SchedulerKind::Sharded { shards, workers: _ } => {
            crate::sharded::run_sequential_faulted(graph, delay, faults, make, limits, shards)
        }
    }
}

/// [`run_async_with`] with delivery tracing enabled: returns the report plus
/// the [`DeliveryTrace`] the happens-before checker (`ds-verify`) consumes.
///
/// The traced run is **bit-identical** to the untraced one — tracing only
/// appends to a side buffer and never draws a sequence number or touches a
/// queue (asserted by the module tests and `tests/happens_before.rs`).
/// [`SchedulerKind::Sharded`] runs sequentially here, like [`run_async_with`];
/// use [`crate::sharded::run_async_sharded_traced_with`] for worker threads.
///
/// # Errors
///
/// Same as [`run_async`].
pub fn run_async_traced<P, F>(
    graph: &Graph,
    delay: DelayModel,
    make: F,
    limits: SimLimits,
    scheduler: SchedulerKind,
) -> Result<(AsyncReport<P>, DeliveryTrace), SimError>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
{
    run_async_faulted_traced(graph, delay, None, make, limits, scheduler)
}

/// [`run_async_faulted`] with delivery tracing enabled. Dropped deliveries
/// leave no trace record (they never happened, causally), so the
/// happens-before checker works unchanged under churn.
///
/// # Errors
///
/// Same as [`run_async`].
pub fn run_async_faulted_traced<P, F>(
    graph: &Graph,
    delay: DelayModel,
    faults: Option<&FaultPlan>,
    make: F,
    limits: SimLimits,
    scheduler: SchedulerKind,
) -> Result<(AsyncReport<P>, DeliveryTrace), SimError>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
{
    let state = faults.map(|plan| FaultState::new(graph, plan));
    let trace = Some(TraceState::new(1));
    let (report, trace) = match scheduler {
        SchedulerKind::TimingWheel => {
            let horizon = delay.max_delay_ticks();
            run_engine(graph, delay, make, limits, TimingWheel::new(horizon), trace, state)?
        }
        SchedulerKind::BinaryHeap => {
            run_engine(graph, delay, make, limits, HeapScheduler::new(), trace, state)?
        }
        SchedulerKind::Sharded { shards, workers: _ } => {
            return crate::sharded::run_sequential_faulted_traced(
                graph, delay, faults, make, limits, shards,
            );
        }
    };
    Ok((report, trace.expect("tracing was enabled")))
}

fn run_engine<P, F, S>(
    graph: &Graph,
    delay: DelayModel,
    mut make: F,
    limits: SimLimits,
    sched: S,
    trace: Option<TraceState>,
    faults: Option<FaultState>,
) -> Result<(AsyncReport<P>, Option<DeliveryTrace>), SimError>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
    S: EventScheduler<Pending<P::Message>>,
{
    let n = graph.node_count();
    let mut engine = Engine {
        graph,
        delay,
        nodes: graph.nodes().map(&mut make).collect(),
        links: (0..graph.directed_edge_count())
            .map(|e| {
                let (from, to) = graph.directed_endpoints(ds_graph::DirectedEdgeId(e as u32));
                LinkState::new(from, to)
            })
            .collect(),
        sched,
        now: 0,
        seq: 0,
        deliveries: 0,
        max_events: limits.max_events,
        metrics: RunMetrics::default(),
        done_flags: vec![false; n],
        done_count: 0,
        time_all_done: None,
        outbox_pool: Vec::new(),
        touched: Vec::new(),
        trace,
        faults,
        dropped: 0,
    };

    // Time 0: start every node. A node crashed at tick 0 misses its `on_start`
    // (crash-stop: it emits nothing) but still gets the done-check, so "never
    // participated" nodes count as done only if their protocol says so.
    if let Some(f) = engine.faults.as_mut() {
        f.advance_to(0);
    }
    for v in graph.nodes() {
        if engine.faults.as_ref().is_some_and(|f| f.is_crashed(v)) {
            engine.update_done(v);
            continue;
        }
        let mut ctx = Ctx::with_buffer(v, std::mem::take(&mut engine.outbox_pool));
        engine.nodes[v.index()].on_start(&mut ctx);
        engine.dispatch_outbox(v, &mut ctx)?;
        engine.outbox_pool = ctx.into_buffer();
        engine.update_done(v);
    }

    // One tick per iteration: `take_due` hands over every event of the earliest
    // pending tick in ascending seq order (events scheduled while processing the
    // tick land strictly later, so the batch is complete).
    let mut due: Vec<(u64, Pending<P::Message>)> = Vec::new();
    while let Some(t) = engine.sched.take_due(&mut due) {
        engine.now = t;
        if let Some(f) = engine.faults.as_mut() {
            f.advance_to(t);
        }
        let mut events = due.drain(..).peekable();
        while let Some((seq, Pending { link, kind })) = events.next() {
            match kind {
                EventKind::Deliver { msg } => {
                    let state = &engine.links[link.index()];
                    let (from, to) = (state.from, state.to);
                    if engine.faults.as_ref().is_some_and(|f| f.blocks(link, from, to)) {
                        // The fault adversary eats this delivery: no activation,
                        // no ack, no trace record, no sequence draws — the link
                        // is simply freed for whatever is queued behind it.
                        drop(msg);
                        engine.dropped += 1;
                        engine.links[link.index()].in_flight = false;
                        engine.try_inject(link);
                        continue;
                    }
                    // Batched delivery: this node activates once for the whole
                    // run of consecutive same-tick deliveries addressed to it —
                    // one borrowed outbox buffer, one done-check — while each
                    // arrival's outbox dispatch and ack keep their exact place
                    // in the global seq order.
                    let mut ctx = Ctx::with_buffer(to, std::mem::take(&mut engine.outbox_pool));
                    engine.deliver(seq, from, to, link, msg, &mut ctx)?;
                    while let Some((
                        _,
                        Pending { link: next_link, kind: EventKind::Deliver { .. } },
                    )) = events.peek()
                    {
                        let next_state = &engine.links[next_link.index()];
                        let (next_from, next_to) = (next_state.from, next_state.to);
                        if next_to != to {
                            break;
                        }
                        // A blocked delivery ends the batch: the outer loop
                        // picks it up and runs the drop path instead.
                        if engine
                            .faults
                            .as_ref()
                            .is_some_and(|f| f.blocks(*next_link, next_from, next_to))
                        {
                            break;
                        }
                        let Some((next_seq, Pending { link: l, kind: EventKind::Deliver { msg } })) =
                            events.next()
                        else {
                            unreachable!("peeked a delivery");
                        };
                        engine.deliver(next_seq, next_from, to, l, msg, &mut ctx)?;
                    }
                    engine.outbox_pool = ctx.into_buffer();
                    engine.update_done(to);
                }
                EventKind::Ack => {
                    if let Some(tr) = engine.trace.as_mut() {
                        tr.on_ack(seq);
                    }
                    engine.links[link.index()].in_flight = false;
                    engine.try_inject(link);
                }
            }
        }
    }

    engine.metrics.time_to_output = engine.time_all_done.map(|t| t as f64 / TICKS_PER_UNIT as f64);
    engine.metrics.time_to_quiescence = engine.now as f64 / TICKS_PER_UNIT as f64;

    let trace = engine.trace.map(TraceState::finish);
    Ok((
        AsyncReport {
            metrics: engine.metrics,
            nodes: engine.nodes,
            overflow_events: engine.sched.overflow_scheduled(),
            batched_ticks: 0,
            pool_dispatches: 0,
            dropped_events: engine.dropped,
            fault_transitions: engine.faults.as_ref().map_or(0, FaultState::transitions),
        },
        trace,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MessageClass;

    /// Asynchronous flooding: node 0 floods a token; each node records the hop count
    /// of the first copy it receives (which may exceed the true distance under
    /// adversarial delays — flooding is not a correct BFS, which is the point of the
    /// synchronizer). Borrows its neighbor slice from the graph.
    #[derive(Debug)]
    struct Flood<'g> {
        me: NodeId,
        neighbors: &'g [NodeId],
        hops: Option<u64>,
    }

    impl<'g> Flood<'g> {
        fn new(graph: &'g Graph, me: NodeId) -> Self {
            Flood { me, neighbors: graph.neighbors(me), hops: None }
        }
    }

    impl Protocol for Flood<'_> {
        type Message = u64;

        fn on_start(&mut self, ctx: &mut Ctx<u64>) {
            if self.me == NodeId(0) {
                self.hops = Some(0);
                for &u in self.neighbors {
                    ctx.send(u, 1);
                }
            }
        }

        fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Ctx<u64>) {
            if self.hops.is_none() {
                self.hops = Some(msg);
                for &u in self.neighbors {
                    ctx.send(u, msg + 1);
                }
            }
        }

        fn is_done(&self) -> bool {
            self.hops.is_some()
        }
    }

    #[test]
    fn flood_reaches_every_node_under_every_adversary() {
        let g = Graph::grid(4, 4);
        for delay in DelayModel::standard_suite(5) {
            let report =
                run_async(&g, delay.clone(), |v| Flood::new(&g, v), SimLimits::default()).unwrap();
            assert!(
                report.nodes.iter().all(|n| n.hops.is_some()),
                "all nodes reached under {delay:?}"
            );
            assert!(report.metrics.time_to_output.is_some());
            assert!(report.metrics.total_messages() > 0);
            assert_eq!(report.metrics.acks, report.metrics.events);
        }
    }

    #[test]
    fn uniform_delay_flood_time_matches_distance_bound() {
        let g = Graph::path(8);
        let report =
            run_async(&g, DelayModel::uniform(), |v| Flood::new(&g, v), SimLimits::default())
                .unwrap();
        // Under uniform unit delays every hop costs exactly one unit, so the last
        // node (distance 7) is done at time 7.
        let t = report.metrics.time_to_output.unwrap();
        assert!((t - 7.0).abs() < 1e-9, "time was {t}");
    }

    #[test]
    fn adversarial_delays_can_mislead_naive_flooding() {
        // On a cycle, make links incident to low-index nodes slow: the token then
        // reaches the far side the "long way around" first, giving wrong hop counts.
        // This demonstrates why a synchronizer is needed at all.
        let g = Graph::cycle(8);
        let report =
            run_async(&g, DelayModel::slow_cut(4), |v| Flood::new(&g, v), SimLimits::default())
                .unwrap();
        let hops: Vec<u64> = report.nodes.iter().map(|n| n.hops.unwrap()).collect();
        let true_dist = ds_graph::metrics::bfs_distances(&g, NodeId(0));
        let mismatches =
            hops.iter().zip(true_dist.iter()).filter(|(h, d)| **h != d.unwrap() as u64).count();
        assert!(mismatches > 0, "expected the adversary to distort naive flooding");
    }

    #[test]
    fn ack_discipline_serializes_a_link() {
        /// Node 0 sends `k` messages to node 1 at start; node 1 counts arrivals.
        #[derive(Debug)]
        struct Burst {
            me: NodeId,
            received: u64,
        }
        impl Protocol for Burst {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                if self.me == NodeId(0) {
                    for _ in 0..5 {
                        ctx.send(NodeId(1), ());
                    }
                }
            }
            fn on_message(&mut self, _from: NodeId, _msg: (), _ctx: &mut Ctx<()>) {
                self.received += 1;
            }
            fn is_done(&self) -> bool {
                self.me == NodeId(0) || self.received == 5
            }
        }
        let g = Graph::path(2);
        let report = run_async(
            &g,
            DelayModel::uniform(),
            |me| Burst { me, received: 0 },
            SimLimits::default(),
        )
        .unwrap();
        // Each of the 5 messages must wait for the previous message's ack: delivery i
        // completes at time 2i+1, so the last arrives at time 9.
        let t = report.metrics.time_to_output.unwrap();
        assert!((t - 9.0).abs() < 1e-9, "time was {t}");
        assert_eq!(report.metrics.total_messages(), 5);
    }

    #[test]
    fn priorities_order_queued_messages() {
        /// Node 0 queues a low-priority then a high-priority message; node 1 records
        /// the arrival order.
        #[derive(Debug)]
        struct Prio {
            me: NodeId,
            order: Vec<u8>,
        }
        impl Protocol for Prio {
            type Message = u8;
            fn on_start(&mut self, ctx: &mut Ctx<u8>) {
                if self.me == NodeId(0) {
                    ctx.send_with(NodeId(1), 9, 9, MessageClass::Algorithm);
                    ctx.send_with(NodeId(1), 1, 1, MessageClass::Algorithm);
                    ctx.send_with(NodeId(1), 5, 5, MessageClass::Algorithm);
                }
            }
            fn on_message(&mut self, _from: NodeId, msg: u8, _ctx: &mut Ctx<u8>) {
                self.order.push(msg);
            }
            fn is_done(&self) -> bool {
                self.me == NodeId(0) || self.order.len() == 3
            }
        }
        let g = Graph::path(2);
        let report = run_async(
            &g,
            DelayModel::uniform(),
            |me| Prio { me, order: Vec::new() },
            SimLimits::default(),
        )
        .unwrap();
        // All three messages are queued before the link transmits, so they are
        // delivered in ascending priority order regardless of send order.
        assert_eq!(report.nodes[1].order, vec![1, 5, 9]);
    }

    #[test]
    fn outage_model_exercises_the_overflow_heap_deterministically() {
        // The composite outage adversary assigns multi-τ delays, so deliveries
        // land beyond the wheel's one-τ horizon and must park in the overflow
        // heap — which no single-τ model ever reaches. The schedule must stay
        // byte-identical across repeat runs and across schedulers.
        let g = Graph::grid(6, 6);
        let delay = DelayModel::outage(11, 4, 2);
        let run = |scheduler: SchedulerKind| {
            let report = run_async_with(
                &g,
                delay.clone(),
                |v| Flood::new(&g, v),
                SimLimits::default(),
                scheduler,
            )
            .expect("outage run");
            let hops: Vec<Option<u64>> = report.nodes.iter().map(|n| n.hops).collect();
            (hops, report.metrics, report.overflow_events)
        };
        let (hops_a, metrics_a, overflow_a) = run(SchedulerKind::TimingWheel);
        assert!(hops_a.iter().all(Option::is_some), "flood completes despite outages");
        assert!(overflow_a > 0, "multi-τ delays must park events beyond the horizon");
        // Repeat run: bit-identical.
        let (hops_b, metrics_b, overflow_b) = run(SchedulerKind::TimingWheel);
        assert_eq!(hops_a, hops_b);
        assert_eq!(metrics_a, metrics_b);
        assert_eq!(overflow_a, overflow_b);
        // The heap scheduler has no horizon (overflow 0) but must produce the
        // exact same simulated execution.
        let (hops_h, metrics_h, overflow_h) = run(SchedulerKind::BinaryHeap);
        assert_eq!(hops_a, hops_h);
        assert_eq!(metrics_a, metrics_h);
        assert_eq!(overflow_h, 0);
    }

    #[test]
    fn single_unit_models_never_overflow() {
        let g = Graph::grid(4, 4);
        for delay in DelayModel::standard_suite(3) {
            let report =
                run_async(&g, delay.clone(), |v| Flood::new(&g, v), SimLimits::default()).unwrap();
            assert_eq!(report.overflow_events, 0, "{delay:?} stayed within one τ");
        }
    }

    #[test]
    fn serial_engines_report_zero_batching_and_pool_counters() {
        // `batched_ticks` and `pool_dispatches` are sharded-engine internals;
        // the wheel and heap engines must pin them at exactly zero so bench
        // consumers can rely on "0 means the feature was off or inapplicable".
        let g = Graph::grid(4, 4);
        for scheduler in [SchedulerKind::TimingWheel, SchedulerKind::BinaryHeap] {
            let report = run_async_with(
                &g,
                DelayModel::uniform(),
                |v| Flood::new(&g, v),
                SimLimits::default(),
                scheduler,
            )
            .unwrap();
            assert_eq!(report.batched_ticks, 0, "{scheduler:?}");
            assert_eq!(report.pool_dispatches, 0, "{scheduler:?}");
            assert_eq!(report.dropped_events, 0, "{scheduler:?}: no fault plan, no drops");
            assert_eq!(report.fault_transitions, 0, "{scheduler:?}");
        }
    }

    #[test]
    fn a_severed_link_drops_in_flight_messages_and_recovery_readmits() {
        use crate::fault::FaultPlan;
        // Node 0 floods a path of 3. Cutting link {0,1} just after start kills
        // the first hop mid-flight, so nodes 1 and 2 never learn anything ...
        let g = Graph::path(3);
        let cut = FaultPlan::new().link_down(1, NodeId(0), NodeId(1));
        let report = run_async_faulted(
            &g,
            DelayModel::uniform(),
            Some(&cut),
            |v| Flood::new(&g, v),
            SimLimits::default(),
            SchedulerKind::TimingWheel,
        )
        .unwrap();
        assert_eq!(report.nodes[1].hops, None);
        assert_eq!(report.nodes[2].hops, None);
        assert!(report.dropped_events > 0);
        assert_eq!(report.fault_transitions, 1);
        assert!(report.metrics.time_to_output.is_none(), "partial run has no completion time");
        // ... while a cut that heals within the first hop's flight time only
        // delays nothing: uniform delay is a full τ, the link is back at half
        // of it, and retransmission is not modeled — the dropped copy is lost
        // for good, but traffic injected after recovery flows again.
        let heal =
            FaultPlan::new().link_down(1, NodeId(1), NodeId(2)).link_up(2500, NodeId(1), NodeId(2));
        let report = run_async_faulted(
            &g,
            DelayModel::uniform(),
            Some(&heal),
            |v| Flood::new(&g, v),
            SimLimits::default(),
            SchedulerKind::TimingWheel,
        )
        .unwrap();
        // Node 1 still hears from node 0 (that link was never cut)...
        assert_eq!(report.nodes[1].hops, Some(1));
        // ...but its relay died on the severed link, and Flood never resends.
        assert_eq!(report.nodes[2].hops, None);
        assert_eq!(report.fault_transitions, 2);
    }

    #[test]
    fn a_node_crashed_at_tick_zero_never_starts() {
        use crate::fault::FaultPlan;
        let g = Graph::path(3);
        let plan = FaultPlan::new().node_crash(0, NodeId(0));
        let report = run_async_faulted(
            &g,
            DelayModel::uniform(),
            Some(&plan),
            |v| Flood::new(&g, v),
            SimLimits::default(),
            SchedulerKind::TimingWheel,
        )
        .unwrap();
        // The source never ran `on_start`: nothing was ever sent.
        assert!(report.nodes.iter().all(|n| n.hops.is_none()));
        assert_eq!(report.metrics.total_messages(), 0);
        assert_eq!(report.dropped_events, 0);
    }

    #[test]
    fn an_empty_fault_plan_changes_nothing() {
        use crate::fault::FaultPlan;
        let g = Graph::grid(4, 4);
        for delay in DelayModel::standard_suite(9) {
            let plain =
                run_async(&g, delay.clone(), |v| Flood::new(&g, v), SimLimits::default()).unwrap();
            let empty = FaultPlan::new();
            let faulted = run_async_faulted(
                &g,
                delay.clone(),
                Some(&empty),
                |v| Flood::new(&g, v),
                SimLimits::default(),
                SchedulerKind::TimingWheel,
            )
            .unwrap();
            let plain_hops: Vec<_> = plain.nodes.iter().map(|n| n.hops).collect();
            let faulted_hops: Vec<_> = faulted.nodes.iter().map(|n| n.hops).collect();
            assert_eq!(plain_hops, faulted_hops, "{delay:?}");
            assert_eq!(plain.metrics, faulted.metrics, "{delay:?}");
            assert_eq!(faulted.dropped_events, 0);
        }
    }

    #[test]
    fn event_limit_aborts_livelock() {
        #[derive(Debug)]
        struct PingPong {
            me: NodeId,
        }
        impl Protocol for PingPong {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                if self.me == NodeId(0) {
                    ctx.send(NodeId(1), ());
                }
            }
            fn on_message(&mut self, from: NodeId, _msg: (), ctx: &mut Ctx<()>) {
                ctx.send(from, ());
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = Graph::path(2);
        let err = run_async(
            &g,
            DelayModel::uniform(),
            |me| PingPong { me },
            SimLimits { max_events: 100, ..SimLimits::default() },
        )
        .unwrap_err();
        assert_eq!(err, SimError::EventLimitExceeded { limit: 100 });
    }

    #[test]
    fn sending_to_non_neighbor_is_rejected() {
        #[derive(Debug)]
        struct Bad {
            me: NodeId,
        }
        impl Protocol for Bad {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                if self.me == NodeId(0) {
                    ctx.send(NodeId(2), ());
                }
            }
            fn on_message(&mut self, _: NodeId, _: (), _: &mut Ctx<()>) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = Graph::path(3);
        let err = run_async(&g, DelayModel::uniform(), |me| Bad { me }, SimLimits::default())
            .unwrap_err();
        assert_eq!(err, SimError::NotNeighbor { from: NodeId(0), to: NodeId(2) });
    }
}
