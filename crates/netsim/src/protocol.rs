//! Interface of asynchronous protocols run by the [`crate::async_engine`].

use crate::metrics::MessageClass;
use ds_graph::NodeId;
use std::fmt;

/// A node-local asynchronous protocol.
///
/// Every node of the network runs one instance. The engine calls [`Protocol::on_start`]
/// once at time 0 and [`Protocol::on_message`] for every delivered message. The
/// protocol reacts by queueing outgoing messages on the [`Ctx`].
///
/// Protocols must be *event driven*: they cannot observe simulated time (there is no
/// clock access), matching the asynchronous model of the paper.
pub trait Protocol {
    /// The message type exchanged between nodes.
    type Message: Clone + fmt::Debug;

    /// Invoked once per node at the start of the execution.
    fn on_start(&mut self, ctx: &mut Ctx<Self::Message>);

    /// Invoked when a message from `from` is delivered to this node.
    fn on_message(&mut self, from: NodeId, msg: Self::Message, ctx: &mut Ctx<Self::Message>);

    /// Whether this node has produced its final output.
    ///
    /// Used only for the time-to-output measurement (the paper's notion of time
    /// complexity: the time until all nodes generate their output). Nodes may keep
    /// exchanging auxiliary messages afterwards.
    ///
    /// Must be **monotone**: once a node reports `true` it must keep reporting
    /// `true` (an output, once produced, is final). The engine batches same-tick
    /// deliveries per node and evaluates `is_done` once per activation batch, so a
    /// predicate that flickered back to `false` within a tick would not be
    /// observed at any intermediate point.
    fn is_done(&self) -> bool;
}

/// An outgoing message queued by a protocol.
#[derive(Clone, Debug)]
pub struct Outgoing<M> {
    /// Destination node (must be a neighbor of the sender).
    pub to: NodeId,
    /// Message payload.
    pub msg: M,
    /// Scheduling priority; when several messages are queued on the same link the
    /// engine transmits lower priorities first (Lemma 2.5: lower stages first), then
    /// FIFO. Plain protocols can leave this at 0.
    pub priority: u64,
    /// Accounting class of the message.
    pub class: MessageClass,
}

/// Per-activation context handed to a protocol: identifies the local node and
/// collects outgoing messages.
#[derive(Debug)]
pub struct Ctx<M> {
    me: NodeId,
    outbox: Vec<Outgoing<M>>,
}

impl<M> Ctx<M> {
    /// Creates a context for node `me` with an empty outbox.
    pub fn new(me: NodeId) -> Self {
        Ctx { me, outbox: Vec::new() }
    }

    /// Creates a context for node `me` reusing an already-drained outbox buffer —
    /// the engines recycle one buffer across activations so the hot path stays
    /// allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `buffer` is not empty.
    pub fn with_buffer(me: NodeId, buffer: Vec<Outgoing<M>>) -> Self {
        assert!(buffer.is_empty(), "recycled outbox buffers must be drained");
        Ctx { me, outbox: buffer }
    }

    /// Consumes the context, returning the (empty) outbox buffer for reuse.
    pub fn into_buffer(mut self) -> Vec<Outgoing<M>> {
        self.outbox.clear();
        self.outbox
    }

    /// Drains the queued messages in order, keeping the buffer's capacity.
    pub fn drain_outbox(&mut self) -> impl Iterator<Item = Outgoing<M>> + '_ {
        self.outbox.drain(..)
    }

    /// The local node's identifier.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Queues an algorithm-class message with default priority.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.send_with(to, msg, 0, MessageClass::Algorithm);
    }

    /// Queues a control-class message with default priority.
    pub fn send_control(&mut self, to: NodeId, msg: M) {
        self.send_with(to, msg, 0, MessageClass::Control);
    }

    /// Queues a message with an explicit priority and accounting class.
    pub fn send_with(&mut self, to: NodeId, msg: M, priority: u64, class: MessageClass) {
        self.outbox.push(Outgoing { to, msg, priority, class });
    }

    /// Number of messages queued so far in this activation.
    pub fn queued(&self) -> usize {
        self.outbox.len()
    }

    /// Drains the queued messages (used by the engine).
    pub fn take_outbox(&mut self) -> Vec<Outgoing<M>> {
        std::mem::take(&mut self.outbox)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_collects_messages_in_order() {
        let mut ctx: Ctx<u32> = Ctx::new(NodeId(3));
        assert_eq!(ctx.me(), NodeId(3));
        ctx.send(NodeId(1), 10);
        ctx.send_control(NodeId(2), 20);
        ctx.send_with(NodeId(1), 30, 7, MessageClass::Control);
        assert_eq!(ctx.queued(), 3);
        let out = ctx.take_outbox();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].to, NodeId(1));
        assert_eq!(out[0].class, MessageClass::Algorithm);
        assert_eq!(out[1].class, MessageClass::Control);
        assert_eq!(out[2].priority, 7);
        assert_eq!(ctx.queued(), 0);
    }
}
