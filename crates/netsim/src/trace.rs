//! Opt-in delivery tracing: the raw material of the happens-before checker.
//!
//! The determinism guarantee of the sharded engine rests on an *argument* (the
//! shard/merge contract, [`crate::sharded`] and DESIGN.md §6). Tracing turns it
//! into a *checked invariant*: with tracing enabled, every engine records one
//! [`DeliveryRecord`] per message delivery — the event's global `seq`, the tick
//! it fired at, the shard that ran the activation, the endpoints, and the
//! `cause`: the `seq` of the delivery during whose engine-effect processing
//! this delivery's event was scheduled. `ds-verify` rebuilds the
//! happens-before relation from those records (vector clocks over shards:
//! same-shard program order plus cause edges) and fails if any cross-shard
//! delivery order is not forced by `seq` — see DESIGN.md §8.
//!
//! Tracing is **off by default and zero-cost when off**: the engines carry an
//! `Option<TraceState>` and every hook is a branch on `Some`. No sequence
//! number, delay draw or container operation differs between a traced and an
//! untraced run, so schedules are bit-identical either way (pinned by the
//! module tests in [`crate::async_engine`] and `tests/happens_before.rs`).
//!
//! Causality is tracked through *acknowledgment inheritance*: a link
//! acknowledgment scheduled while processing delivery `d` carries `d` as its
//! cause, and a delivery whose injection was unblocked by that acknowledgment
//! inherits `d` too. The `cause` chain therefore closes over deliveries alone,
//! which is what lets the checker work on delivery records only.

use ds_graph::NodeId;
use std::collections::BTreeMap;

/// One message delivery, as observed by an engine running with tracing on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Global sequence number of the delivery event (drawn when the event was
    /// scheduled; the merge processes events in ascending `seq`).
    pub seq: u64,
    /// Absolute tick the delivery fired at.
    pub tick: u64,
    /// Shard whose phase 1 ran the activation — the destination node's shard.
    /// Always 0 on the serial engines (one implicit shard).
    pub shard: u32,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node (owner of the activation).
    pub dst: NodeId,
    /// `seq` of the delivery during whose engine-effect processing this
    /// delivery's event was scheduled (directly, or through the acknowledgment
    /// that unblocked the link). `None` for deliveries injected by the time-0
    /// start wave.
    pub cause: Option<u64>,
}

impl DeliveryRecord {
    /// The scheduler-independent part of the record: everything but the shard
    /// assignment. Serial and sharded runs of one scenario must agree on this
    /// exactly (`ds-verify`'s trace-equivalence check compares these).
    pub fn schedule_key(&self) -> (u64, u64, NodeId, NodeId, Option<u64>) {
        (self.seq, self.tick, self.src, self.dst, self.cause)
    }
}

/// A complete run trace: every delivery, in processing order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeliveryTrace {
    /// Delivery records in the order the engine processed them: ascending
    /// `(tick, seq)` — tick-major, with global `seq` ascending within each
    /// tick (the happens-before checker verifies this, among others).
    pub records: Vec<DeliveryRecord>,
    /// Number of shards the producing engine ran with (1 for the serial
    /// engines and the degenerate single-shard layout).
    pub shards: u32,
}

/// Engine-internal trace accumulator. The engines hold an `Option<TraceState>`
/// and call the hooks below at the three points where causality is visible:
/// event scheduling, delivery processing, and acknowledgment processing.
#[derive(Debug)]
pub(crate) struct TraceState {
    records: Vec<DeliveryRecord>,
    /// Pending event `seq` → the delivery `seq` it was caused by (`None` for
    /// start-wave effects). Holds both deliveries and acknowledgments; entries
    /// are removed when their event fires.
    cause_of: BTreeMap<u64, Option<u64>>,
    /// The delivery whose engine effects are currently being processed
    /// (`None` during the time-0 start wave).
    current: Option<u64>,
    shards: u32,
}

impl TraceState {
    pub(crate) fn new(shards: u32) -> Self {
        TraceState { records: Vec::new(), cause_of: BTreeMap::new(), current: None, shards }
    }

    /// Records that the event with sequence number `seq` was scheduled during
    /// the current processing context (a delivery, an acknowledgment carrying
    /// its delivery's cause, or the start wave).
    pub(crate) fn on_scheduled(&mut self, seq: u64) {
        self.cause_of.insert(seq, self.current);
    }

    /// Records a delivery firing and makes it the current causal context for
    /// everything its processing schedules.
    pub(crate) fn on_delivery(
        &mut self,
        seq: u64,
        tick: u64,
        shard: u32,
        src: NodeId,
        dst: NodeId,
    ) {
        let cause = self.cause_of.remove(&seq).flatten();
        self.records.push(DeliveryRecord { seq, tick, shard, src, dst, cause });
        self.current = Some(seq);
    }

    /// Records an acknowledgment firing: the causal context becomes the
    /// delivery the acknowledgment inherited, so a delivery injected because
    /// this acknowledgment freed the link points back at a real delivery.
    pub(crate) fn on_ack(&mut self, seq: u64) {
        self.current = self.cause_of.remove(&seq).flatten();
    }

    pub(crate) fn finish(self) -> DeliveryTrace {
        DeliveryTrace { records: self.records, shards: self.shards }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_inheritance_closes_the_cause_chain_over_deliveries() {
        let mut t = TraceState::new(1);
        // Start wave schedules delivery 0.
        t.on_scheduled(0);
        // Delivery 0 fires; its processing schedules ack 1 and delivery 2.
        t.on_delivery(0, 5, 0, NodeId(0), NodeId(1));
        t.on_scheduled(1);
        t.on_scheduled(2);
        // Ack 1 fires and unblocks delivery 3: cause must be delivery 0.
        t.on_ack(1);
        t.on_scheduled(3);
        t.on_delivery(3, 9, 0, NodeId(1), NodeId(0));
        // Delivery 2 fires: caused by delivery 0 directly.
        t.on_delivery(2, 10, 0, NodeId(0), NodeId(1));
        let trace = t.finish();
        assert_eq!(trace.shards, 1);
        let causes: Vec<Option<u64>> = trace.records.iter().map(|r| r.cause).collect();
        assert_eq!(causes, vec![None, Some(0), Some(0)]);
    }

    #[test]
    fn schedule_keys_drop_only_the_shard() {
        let r = DeliveryRecord {
            seq: 7,
            tick: 1000,
            shard: 3,
            src: NodeId(1),
            dst: NodeId(2),
            cause: Some(4),
        };
        assert_eq!(r.schedule_key(), (7, 1000, NodeId(1), NodeId(2), Some(4)));
    }
}
