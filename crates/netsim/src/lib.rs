//! Simulation substrate for the synchronizer reproduction.
//!
//! The paper works with two models of distributed message passing (Section 1.1 and
//! Appendix B):
//!
//! * the **synchronous** model, in which computation proceeds in lock-step rounds and
//!   all messages sent in a round arrive by its end, and
//! * the **asynchronous** model, in which every message is delayed adversarially by
//!   at most one (unknown) time unit `τ`, and time complexity is measured as the
//!   worst-case completion time divided by `τ`.
//!
//! This crate implements both as deterministic discrete-event simulators:
//!
//! * [`event_driven`] defines the interface of *event-driven synchronous algorithms*
//!   (the class of algorithms the synchronizer accepts, Appendix B's second
//!   interpretation),
//! * [`sync_engine`] runs such an algorithm in lock-step rounds and reports its
//!   synchronous time and message complexities `T(A)` and `M(A)`,
//! * [`protocol`] defines the interface of asynchronous protocols,
//! * [`arena`] holds the recycled event arena the delivery hot path runs on:
//!   a free-list payload slab behind `u32` handles plus the struct-of-arrays
//!   batch one tick's due events are grouped into for batch-at-a-time
//!   delivery,
//! * [`async_engine`] runs an asynchronous protocol under a configurable
//!   [`delay::DelayModel`], enforcing the acknowledgment discipline of Appendix B
//!   (one un-acknowledged message per link) and the lowest-stage-first scheduling of
//!   Lemma 2.5 / Corollary 2.3,
//! * [`fault`] makes the topology dynamic: a deterministic, tick-stamped
//!   [`FaultPlan`] of link churn and crash-stop node failures that every engine
//!   consults at dispatch and delivery time,
//! * [`scheduler`] holds the engine's event schedulers — the bounded-horizon
//!   timing wheel the model's one-time-unit delay bound makes possible, and the
//!   binary-heap reference it is tested against ([`SchedulerKind`] selects),
//! * [`sharded`] runs the asynchronous engine over node shards — shard-local
//!   delivery in parallel worker threads, a serial cross-shard merge in global
//!   sequence order at each tick barrier, causality-free tick windows batched
//!   into one wide parallel phase — with schedules bit-identical to the
//!   single-threaded wheel,
//! * [`pool`] holds the persistent worker pool the sharded engine round-robins
//!   its shards over (the only module in the workspace allowed to create
//!   threads),
//! * [`recycle`] checks engine state (wheel, link table, arena, outbox) out
//!   of a free pool and reuses it across runs — bit-identical to cold runs
//!   under an asserted reset contract,
//! * [`stage_queue`] holds the per-link queues as per-stage FIFO buckets,
//! * [`metrics`] collects time and message accounting for both engines,
//! * [`trace`] records per-delivery causality on demand — the raw material the
//!   `ds-verify` happens-before checker rebuilds its ordering relation from.

#![forbid(unsafe_code)]

pub mod arena;
pub mod async_engine;
mod bitset;
pub mod delay;
pub mod event_driven;
pub mod fault;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod recycle;
pub mod scheduler;
pub mod sharded;
pub mod stage_queue;
pub mod sync_engine;
pub mod trace;

pub use async_engine::{
    run_async, run_async_faulted, run_async_faulted_traced, run_async_traced, run_async_with,
    AsyncReport, SimError, SimLimits,
};
pub use delay::DelayModel;
pub use event_driven::{EventDriven, PulseCtx};
pub use fault::{FaultEvent, FaultPlan, FaultState};
pub use metrics::{MessageClass, RunMetrics};
pub use protocol::{Ctx, Protocol};
pub use recycle::{run_async_recycled, EngineSlab, SlabBank};
pub use scheduler::SchedulerKind;
pub use sharded::{
    run_async_sharded, run_async_sharded_faulted_traced_with, run_async_sharded_faulted_with,
    run_async_sharded_traced_with, run_async_sharded_with, ShardedOptions, ThreadMode,
};
pub use sync_engine::{run_sync, SyncReport};
pub use trace::{DeliveryRecord, DeliveryTrace};

/// Number of simulator ticks per asynchronous time unit `τ`.
///
/// Delays are integers in `[1, TICKS_PER_UNIT]`; reported times are normalized by
/// this constant, so a reported time of `t` means `t · τ` as in the paper.
pub const TICKS_PER_UNIT: u64 = 1000;
