//! Parallel sharded asynchronous engine: shard-local delivery over a
//! persistent worker pool, serial cross-shard merge at the tick barrier,
//! causality-free tick windows batched into one wide parallel phase —
//! schedules **bit-identical** to the single-threaded timing wheel.
//!
//! # Shard layout
//!
//! The dense node-id space `0..n` is partitioned into `K` contiguous ranges
//! ("shards"). Every shard owns
//!
//! * the protocol instances of its nodes,
//! * the outgoing links of its nodes — the per-link queues
//!   ([`crate::stage_queue::StageQueue`] plus the single-entry head fast path)
//!   of every directed edge whose *source* lies in the shard, and
//! * one bounded-horizon [`TimingWheel`] holding the events the shard
//!   processes: deliveries addressed to its nodes, and acknowledgments for its
//!   outgoing links.
//!
//! # The shard/merge contract
//!
//! The serial engine processes each tick's events in ascending global sequence
//! number (`seq`). Within one tick, the work of an event splits into two parts
//! with very different dependency structure:
//!
//! 1. the **protocol activation** (`Protocol::on_message`) reads and writes
//!    only the destination node's state and draws no sequence numbers, and
//! 2. the **engine effects** — outbox dispatch (which assigns message `seq`s),
//!    link-queue pushes and pops, delivery injection (whose adversarial delay
//!    consumes `seq`s) and acknowledgment scheduling — mutate link and
//!    scheduler state shared across nodes and *define* the `seq` stream that
//!    feeds the delay adversary.
//!
//! Deliveries of one tick are causally independent across distinct destination
//! nodes: no same-tick event can observe another's effects, because every
//! delay is at least one tick, acknowledgments never touch node state, and a
//! node's own deliveries reach it in ascending `seq` order within its shard's
//! event list. Each tick therefore runs as:
//!
//! * **Phase 1 — shard-local delivery (parallel).** Every shard drains its due
//!   events and runs the activations of its deliveries, in shard-local `seq`
//!   order, capturing each activation's outbox verbatim. No sequence numbers
//!   are drawn, no link or wheel is touched; shards share nothing, so worker
//!   threads run them concurrently.
//! * **Phase 2 — cross-shard merge (serial, at the tick barrier).** The
//!   coordinator merges the shards' event lists by **global `seq`** — a total
//!   order fixed when the events were scheduled, independent of thread
//!   interleaving — and replays each event's engine effects exactly as the
//!   serial engine would: outbox dispatch in capture order, lowest-stage-first
//!   injection, acknowledgment scheduling. Messages and acknowledgments that
//!   cross shards along cut links are handed to the destination shard's wheel
//!   here, which is what makes the next tick's phase 1 shard-local again.
//!
//! Because phase 2 draws sequence numbers in exactly the serial order and
//! phase 1 performs no operation that could observe the difference, the
//! resulting schedule — every delivery, every delay, every metric — is
//! bit-identical to [`crate::SchedulerKind::TimingWheel`]'s, for any shard count and
//! any thread interleaving (`tests/scheduler_equiv.rs` and
//! `tests/determinism.rs` pin this across the scenario matrix). The one
//! observable difference is *intra-tick activation order across different
//! nodes*: a protocol that shares mutable state between node instances (not a
//! distributed algorithm, but e.g. a test harness logging through a mutex) may
//! record interleavings in a different order; per-node observation sequences
//! are identical. On an error (`SimError`), the run aborts at the same event
//! as the serial engine, though activations of later same-tick events may
//! already have run — the API returns no nodes on error, so this too is only
//! observable through the escape hatches above (state shared across node
//! instances, or an activation that panics past the serial abort point).
//!
//! # Batched windows
//!
//! A barrier's *window* `[t0, t_last]` is every occupied tick the wheels'
//! occupancy bitsets report from the earliest pending tick `t0` up to a cap:
//! the wheels' shared horizon, the earliest overflow entry (invisible to the
//! bitsets, [`TimingWheel::window_cap`]), and — under a fault plan — the tick
//! before the next fault transition, so the fault flags are constant across
//! the whole window. The window splits at the **static boundary**
//! `t0 + min`, where `min = DelayModel::min_delay_ticks()`:
//!
//! * Ticks up to the boundary are causality-free among *drained* events —
//!   everything drained was scheduled before the barrier began — so their
//!   activations all run in one wide **phase 1** (parallel across shards).
//!   An event processed at tick `t ≥ t0` schedules its effects at
//!   `t + d ≥ t0 + min`: at or past the boundary, but always during the
//!   merge, after the boundary tick was drained — such an effect routes to
//!   the in-window heap with a merge-time seq larger than every seq drained
//!   at its tick, so the `(tick, seq)` replay still processes it in exactly
//!   the serial position (widening the boundary any further would be
//!   unsound: a drained tick past `t0 + min` could causally depend on
//!   another drained tick of the same window).
//! * Ticks past the boundary drain directly into a coordinator-local
//!   **in-window heap** ordered by `(tick, seq)`. The merge processes them
//!   inline, exactly as the serial engine would at that tick, and any effect
//!   they schedule at or before `t_last` re-enters the same heap (the wheels
//!   are already advanced past it). Because these land at or after the
//!   static boundary with post-drain seqs, every phase-1 activation of a
//!   node still precedes all of its inline activations — per-node order, and
//!   the global `(tick, seq)` replay order, are exactly serial.
//!
//! The merge therefore replays ready-list events and heap events in one
//! `(tick, seq)` order, restoring `Globals::now` per event, so every delay
//! draw and schedule target matches the serial engine tick for tick. The
//! split gate is **dynamic**: models with a 1-tick floor (`jitter`, the
//! composite `outage`) get a one-tick static part but still batch whatever
//! occupied ticks the probe finds — the old static `min > 1` gate is gone
//! (`delay.rs` documents the floor's remaining role). Uniform-style models
//! whose events all land on τ-multiples produce singleton windows and report
//! `batched_ticks = 0`, exactly as before.
//!
//! # Threads and cost
//!
//! Worker threads are `W` **long-lived** threads in a [`crate::pool`]
//! `WorkerPool`, created once per run; the `K` shards round-robin over them
//! (shard `s` is pinned to worker `s mod W`, a fixed assignment that cannot
//! depend on thread timing). The two knobs decouple: pick `shards` for
//! partition granularity and `workers` for the host's core count
//! ([`ShardedOptions::workers`]; `0` means one worker per shard). The pool is
//! engaged per barrier, and only when the tick — or batched window — carries
//! enough events to amortize the two channel hops per non-empty shard;
//! sparser barriers are processed inline by the coordinator.
//! [`ThreadMode::Auto`] also disables workers entirely on single-core hosts,
//! where sharding still helps by shrinking the per-phase working set (nodes
//! of one shard, then links), but time-slicing threads would only add
//! overhead. Phase 2 is inherently serial — it is the price of a
//! sequence-exact adversary — so speedup follows Amdahl's law in the
//! activation share of the workload; DESIGN.md §6 tabulates the costs, and
//! [`AsyncReport::batched_ticks`] / [`AsyncReport::pool_dispatches`] make the
//! batching and hand-off rates observable per run.

use crate::arena::PayloadArena;
use crate::async_engine::{AsyncReport, LinkState, SimError, SimLimits};
use crate::delay::DelayModel;
use crate::fault::{FaultPlan, FaultState};
use crate::metrics::RunMetrics;
use crate::pool::{PanicPayload, WorkerPool};
use crate::protocol::{Ctx, Outgoing, Protocol};
use crate::scheduler::{EventScheduler, TimingWheel};
use crate::trace::{DeliveryTrace, TraceState};
use crate::TICKS_PER_UNIT;
use ds_graph::{DirectedEdgeId, Graph, NodeId};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Minimum number of due events in a barrier (one tick, or one batched window)
/// before phase 1 is shipped to the worker pool; sparser barriers are
/// processed inline by the coordinator, because the hand-off (two channel
/// operations per non-empty shard) would exceed the activation work it
/// parallelizes.
const PARALLEL_TICK_THRESHOLD: usize = 128;

/// When the sharded engine engages pool worker threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ThreadMode {
    /// Spawn workers iff `shards > 1` and the host exposes more than one core
    /// (the default): on a single core, time-slicing threads only adds
    /// overhead while the execution is identical anyway. The worker count is
    /// additionally capped by `std::thread::available_parallelism`.
    #[default]
    Auto,
    /// Always spawn the requested workers when `shards > 1` (used by the
    /// equivalence tests to exercise the cross-thread path — including
    /// multi-worker rendezvous — even on single-core hosts; no core cap).
    ForceOn,
    /// Never spawn workers: the coordinator runs every phase itself. Still
    /// uses the per-shard data layout (and its cache benefits).
    Off,
}

/// Options for [`run_async_sharded_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardedOptions {
    /// Number of shards (clamped to `1..=node_count`).
    pub shards: usize,
    /// Number of persistent pool workers the shards round-robin over. `0`
    /// (the [`ShardedOptions::new`] default) means one worker per shard;
    /// other values are clamped to `1..=shards`, and [`ThreadMode::Auto`]
    /// additionally caps at the host's available parallelism. Schedules are
    /// bit-identical for every worker count.
    pub workers: usize,
    /// Worker-thread policy.
    pub threads: ThreadMode,
    /// Whether to batch windows of consecutive occupied ticks into one wide
    /// phase (see the module docs; on by default). The window splits at
    /// `t0 + min_delay`: ticks at or below run as causality-free phase 1,
    /// later occupied ticks drain through the coordinator's in-window heap.
    /// Schedules are bit-identical either way.
    pub batching: bool,
}

impl ShardedOptions {
    /// The default configuration for `shards` shards: one worker per shard,
    /// [`ThreadMode::Auto`], batching on.
    pub fn new(shards: usize) -> Self {
        ShardedOptions { shards, workers: 0, threads: ThreadMode::Auto, batching: true }
    }
}

// ---------------------------------------------------------------------------
// Shard layout
// ---------------------------------------------------------------------------

/// Contiguous partition of the dense node-id space plus the link→shard table.
struct ShardLayout {
    /// Number of shards.
    k: usize,
    /// `big` shards of size `base + 1` come first, then shards of size `base`.
    base: usize,
    big: usize,
    /// First global node id of each shard (length `k + 1`).
    bounds: Vec<usize>,
    /// Directed edge id → `(source shard << 32) | local slot` in that shard's
    /// link table.
    link_home: Vec<u64>,
}

impl ShardLayout {
    fn new(graph: &Graph, shards: usize) -> Self {
        let n = graph.node_count();
        let k = shards.clamp(1, n.max(1));
        let (base, rem) = (n / k, n % k);
        let mut bounds = Vec::with_capacity(k + 1);
        let mut start = 0;
        for i in 0..k {
            bounds.push(start);
            start += base + usize::from(i < rem);
        }
        bounds.push(n);
        let mut layout = ShardLayout { k, base, big: rem, bounds, link_home: Vec::new() };
        let mut slots = vec![0u64; k];
        let homes = (0..graph.directed_edge_count())
            .map(|e| {
                let (from, _) = graph.directed_endpoints(DirectedEdgeId(e as u32));
                let s = layout.shard_of(from);
                let slot = slots[s];
                slots[s] += 1;
                ((s as u64) << 32) | slot
            })
            .collect();
        layout.link_home = homes;
        layout
    }

    /// Shard owning node `v` (its protocol instance and outgoing links).
    fn shard_of(&self, v: NodeId) -> usize {
        let i = v.index();
        let cut = self.big * (self.base + 1);
        if i < cut {
            i / (self.base + 1)
        } else {
            self.big + (i - cut) / self.base.max(1)
        }
    }

    /// `(shard, local slot)` of a directed edge's link state.
    fn link_home(&self, link: DirectedEdgeId) -> (usize, usize) {
        let packed = self.link_home[link.index()];
        ((packed >> 32) as usize, (packed & u32::MAX as u64) as usize)
    }
}

// ---------------------------------------------------------------------------
// Events and per-shard state
// ---------------------------------------------------------------------------

/// Scheduled event. Unlike the serial engine's payload, deliveries carry their
/// endpoints inline: phase 1 runs in the *destination* shard, which does not
/// own the link state (that lives with the source shard). The message itself
/// lives in the destination shard's [`PayloadArena`] — `msg` is its handle, so
/// events are small `Copy` structs and **handles never cross shards**: a
/// handle is allocated into the destination's arena at `push_message` time
/// (coordinator-side, between barriers) and taken back out by that shard's
/// own phase 1 (or by the merge, which owns every shard's tables).
#[derive(Clone, Copy, Debug)]
enum ShardEvent {
    Deliver {
        link: DirectedEdgeId,
        from: NodeId,
        to: NodeId,
        /// Handle into the destination shard's payload arena.
        msg: u32,
    },
    Ack {
        link: DirectedEdgeId,
    },
    /// A delivery the fault adversary ate at drain time (link down or endpoint
    /// crashed; the payload handle was freed at defuse time). Phase 1 must not
    /// activate it; the merge frees the link at the event's exact
    /// `(tick, seq)` slot.
    Dropped {
        link: DirectedEdgeId,
    },
}

/// Entry of the coordinator's in-window event heap: a min-heap on
/// `(at, seq)`, holding window ticks past the static boundary and every
/// merge-time effect scheduled at or before the window's last tick.
#[derive(Debug)]
struct WindowEntry {
    at: u64,
    seq: u64,
    ev: ShardEvent,
}

impl PartialEq for WindowEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl Eq for WindowEntry {}

impl PartialOrd for WindowEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WindowEntry {
    /// Reversed, so `BinaryHeap`'s max-heap pops the minimum `(at, seq)`.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The coordinator's in-window event queue (see the module docs §Batched
/// windows). Merge-time schedule targets at or before `t_last` land here —
/// the wheels are already advanced past them — and are processed inline in
/// `(tick, seq)` order; everything later goes to the destination wheel.
struct InWindow {
    heap: BinaryHeap<WindowEntry>,
    /// Last tick of the current window (0 outside a barrier: every target is
    /// strictly later, so routing degenerates to the wheels).
    t_last: u64,
}

/// Phase-1 output for one event, consumed by the merge in `(tick, seq)`
/// order — the serial processing order (`seq` alone is not monotone across
/// the ticks of a batched window: a later tick's event may carry a smaller
/// `seq` if it was scheduled earlier).
#[derive(Clone, Copy, Debug)]
struct Ready {
    /// Absolute tick the event fired at (every tick of a batched window
    /// contributes to the same ready list).
    tick: u64,
    seq: u64,
    link: DirectedEdgeId,
    kind: ReadyKind,
}

#[derive(Clone, Copy, Debug)]
enum ReadyKind {
    /// A delivery whose activation ran in phase 1, leaving `outbox` captured
    /// messages at the front of the shard's captured-outbox queue.
    Delivered { from: NodeId, to: NodeId, outbox: u32 },
    /// A link acknowledgment (no activation; processed entirely in the merge).
    Ack,
    /// A delivery the fault adversary dropped (no activation; the merge counts
    /// it and frees the link at the event's `(tick, seq)` slot).
    Dropped,
}

/// The shard state a worker thread needs: nodes, due events, phase-1 outputs.
/// Wheels and link tables stay with the coordinator (only phases run by it
/// touch them), so this is what crosses threads.
struct ShardWork<P: Protocol> {
    /// First global node id of the shard.
    lo: usize,
    nodes: Vec<P>,
    done: Vec<bool>,
    /// Events due in the current barrier, tick run by tick run (ascending
    /// tick; ascending shard-local `seq` within a run).
    due: Vec<(u64, ShardEvent)>,
    /// Tick-run boundaries of `due`: `(tick, end)` marks that `due[..end]`
    /// covers all runs up to and including `tick`. One entry per tick the
    /// shard has events at; a plain unbatched barrier records exactly one.
    tick_runs: Vec<(u64, usize)>,
    /// Phase-1 outputs, ascending `(tick, seq)`.
    ready: Vec<Ready>,
    /// Payloads of every in-flight message addressed to this shard's nodes,
    /// behind the `u32` handles the events and link queues carry. Travels
    /// with the shard to its worker, so phase 1 takes payloads out without
    /// touching any other shard's state.
    payloads: PayloadArena<P::Message>,
    /// Captured outbox messages of this barrier's activations, in event order;
    /// the merge pops from the front as it replays the events.
    captured: VecDeque<Outgoing<P::Message>>,
    /// Recycled activation outbox buffer.
    outbox_buf: Vec<Outgoing<P::Message>>,
    /// Per-tick counts of this shard's nodes that became done during the
    /// current barrier (ascending tick, zero counts omitted); the coordinator
    /// merges these across shards in tick order so `time_all_done` lands on
    /// the same tick as the serial engine's.
    newly_done: Vec<(u64, u64)>,
}

/// Phase 1 for one shard: run this barrier's activations (every tick run of a
/// batched window), capture their outboxes. Runs on a pool worker when the
/// barrier is dense enough, inline on the coordinator otherwise — same code,
/// same effects either way.
fn phase1<P: Protocol>(w: &mut ShardWork<P>) {
    let mut runs = std::mem::take(&mut w.tick_runs);
    debug_assert_eq!(runs.last().map_or(0, |&(_, end)| end), w.due.len());
    let mut run_idx = 0usize;
    let mut newly = 0u64;
    for (i, (seq, ev)) in w.due.drain(..).enumerate() {
        while i >= runs[run_idx].1 {
            if newly > 0 {
                w.newly_done.push((runs[run_idx].0, newly));
                newly = 0;
            }
            run_idx += 1;
        }
        let tick = runs[run_idx].0;
        match ev {
            ShardEvent::Deliver { link, from, to, msg } => {
                let local = to.index() - w.lo;
                let mut ctx = Ctx::with_buffer(to, std::mem::take(&mut w.outbox_buf));
                let msg = w.payloads.take(msg);
                w.nodes[local].on_message(from, msg, &mut ctx);
                let outbox = ctx.queued() as u32;
                w.captured.extend(ctx.drain_outbox());
                w.outbox_buf = ctx.into_buffer();
                w.ready.push(Ready {
                    tick,
                    seq,
                    link,
                    kind: ReadyKind::Delivered { from, to, outbox },
                });
                if !w.done[local] && w.nodes[local].is_done() {
                    w.done[local] = true;
                    newly += 1;
                }
            }
            ShardEvent::Ack { link } => {
                w.ready.push(Ready { tick, seq, link, kind: ReadyKind::Ack });
            }
            ShardEvent::Dropped { link } => {
                w.ready.push(Ready { tick, seq, link, kind: ReadyKind::Dropped });
            }
        }
    }
    if newly > 0 {
        w.newly_done.push((runs[run_idx].0, newly));
    }
    runs.clear();
    w.tick_runs = runs;
}

/// Coordinator-owned per-shard structures: one wheel and one link table per
/// shard. Kept apart from [`ShardWork`] so the merge can hold these mutably
/// while popping captured messages and payloads from the works. The link
/// queues hold `u32` payload handles (into the destination shard's arena),
/// never messages.
struct ShardTables {
    layout: ShardLayout,
    wheels: Vec<TimingWheel<ShardEvent>>,
    links: Vec<Vec<LinkState<u32>>>,
}

/// Engine-global bookkeeping mirroring the serial engine's fields.
struct Globals {
    now: u64,
    seq: u64,
    deliveries: u64,
    max_events: u64,
    metrics: RunMetrics,
    done_count: usize,
    time_all_done: Option<u64>,
    /// Extra ticks processed inside batched windows (window length minus one,
    /// summed; 0 when batching is off or never applicable).
    batched_ticks: u64,
    /// Barriers whose phase 1 was shipped to the worker pool (0 without one).
    pool_dispatches: u64,
    /// Size of the largest per-shard due batch handed to phase 1
    /// ([`AsyncReport::max_batch`]).
    max_batch: u64,
    /// Recycled list of links touched by one outbox dispatch.
    touched: Vec<DirectedEdgeId>,
    /// Delivery tracing for the happens-before checker ([`crate::trace`]).
    /// `None` (the default) makes every hook a dead branch: schedules are
    /// bit-identical with tracing on or off.
    trace: Option<TraceState>,
    /// Compiled fault adversary ([`crate::fault`]); `None` (the default) makes
    /// every fault check a dead branch.
    faults: Option<FaultState>,
    /// Deliveries eaten by the fault adversary (mirrors the serial engine's
    /// counter; identical across engines and shard counts).
    dropped: u64,
}

impl Globals {
    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }
}

/// Pushes one outgoing message onto its link queue, drawing its message `seq`
/// exactly as the serial engine's `dispatch_outbox` does. The payload moves
/// into the *destination* shard's arena — the shard whose phase 1 will
/// eventually take it back out — and only its handle queues on the link.
/// Runs coordinator-side (start wave or merge), when every shard is home.
fn push_message<P: Protocol>(
    g: &mut Globals,
    sh: &mut ShardTables,
    works: &mut [Option<ShardWork<P>>],
    graph: &Graph,
    from: NodeId,
    out: Outgoing<P::Message>,
) -> Result<DirectedEdgeId, SimError> {
    let Some(link) = graph.edge_id(from, out.to) else {
        return Err(SimError::NotNeighbor { from, to: out.to });
    };
    g.metrics.record_message(out.class);
    let seq = g.next_seq();
    let (s, slot) = sh.layout.link_home(link);
    let dst = sh.layout.shard_of(out.to);
    let handle = works[dst].as_mut().expect("shard at home").payloads.alloc(out.msg);
    sh.links[s][slot].push(out.priority, seq, handle);
    Ok(link)
}

/// Serial-order injection: if the link is idle and has a queued message, pop
/// the lowest-stage one and schedule its delivery into the destination shard's
/// wheel — the cross-shard hand-off of the merge step. On a fault-blocked link
/// the whole queue is drained and dropped (no seq draws), exactly like the
/// serial engine. Targets at or before the current window's last tick go to
/// the in-window heap instead of a wheel (the wheels are already past them).
fn try_inject<P: Protocol>(
    g: &mut Globals,
    sh: &mut ShardTables,
    works: &mut [Option<ShardWork<P>>],
    delay: &DelayModel,
    win: &mut InWindow,
    link: DirectedEdgeId,
) {
    let (s, slot) = sh.layout.link_home(link);
    let state = &mut sh.links[s][slot];
    if state.in_flight {
        return;
    }
    let (from, to) = (state.from, state.to);
    if g.faults.as_ref().is_some_and(|f| f.blocks(link, from, to)) {
        // Drain-drop draws no seqs; each drained handle is freed back into
        // the destination shard's arena.
        let payloads = &mut works[sh.layout.shard_of(to)].as_mut().expect("shard at home").payloads;
        while let Some((_, handle)) = sh.links[s][slot].pop() {
            payloads.take(handle);
            g.dropped += 1;
        }
        return;
    }
    let Some((msg_seq, msg)) = state.pop() else { return };
    state.in_flight = true;
    let d = delay.delay_ticks_at(from, to, msg_seq, g.now);
    let at = g.now + d;
    let seq = g.next_seq();
    if let Some(tr) = g.trace.as_mut() {
        tr.on_scheduled(seq);
    }
    let ev = ShardEvent::Deliver { link, from, to, msg };
    if at <= win.t_last {
        win.heap.push(WindowEntry { at, seq, ev });
    } else {
        sh.wheels[sh.layout.shard_of(to)].schedule_from(g.now, at, seq, ev);
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Runs an asynchronous protocol on the sharded engine with `shards` shards
/// and the [`ThreadMode::Auto`] thread policy. The execution — schedule,
/// outputs, metrics — is bit-identical to
/// [`run_async`](crate::async_engine::run_async) on the timing wheel.
///
/// # Errors
///
/// Same as [`run_async`](crate::async_engine::run_async).
pub fn run_async_sharded<P, F>(
    graph: &Graph,
    delay: DelayModel,
    make: F,
    limits: SimLimits,
    shards: usize,
) -> Result<AsyncReport<P>, SimError>
where
    P: Protocol + Send,
    P::Message: Send,
    F: FnMut(NodeId) -> P,
{
    run_async_sharded_with(graph, delay, make, limits, ShardedOptions::new(shards))
}

/// [`run_async_sharded`] with an explicit worker-thread policy.
///
/// # Errors
///
/// Same as [`run_async`](crate::async_engine::run_async).
pub fn run_async_sharded_with<P, F>(
    graph: &Graph,
    delay: DelayModel,
    make: F,
    limits: SimLimits,
    opts: ShardedOptions,
) -> Result<AsyncReport<P>, SimError>
where
    P: Protocol + Send,
    P::Message: Send,
    F: FnMut(NodeId) -> P,
{
    run_sharded_inner(graph, delay, None, make, limits, opts, false).map(|(report, _)| report)
}

/// [`run_async_sharded_with`] under a [`FaultPlan`]: the adversary's link and
/// node events apply at the exact same ticks as on the serial engines, so the
/// execution — schedule, outputs, drop counts — stays bit-identical to
/// [`run_async_faulted`](crate::async_engine::run_async_faulted) for every
/// shard count, worker count, and batching mode.
///
/// # Errors
///
/// Same as [`run_async`](crate::async_engine::run_async).
pub fn run_async_sharded_faulted_with<P, F>(
    graph: &Graph,
    delay: DelayModel,
    faults: Option<&FaultPlan>,
    make: F,
    limits: SimLimits,
    opts: ShardedOptions,
) -> Result<AsyncReport<P>, SimError>
where
    P: Protocol + Send,
    P::Message: Send,
    F: FnMut(NodeId) -> P,
{
    run_sharded_inner(graph, delay, faults, make, limits, opts, false).map(|(report, _)| report)
}

/// [`run_async_sharded_with`] with delivery tracing enabled: returns the
/// report plus the [`DeliveryTrace`] the happens-before checker (`ds-verify`)
/// consumes. The traced execution is bit-identical to the untraced one —
/// tracing happens entirely on the coordinator (phase 2 and injection), so
/// worker threads never touch it.
///
/// # Errors
///
/// Same as [`run_async`](crate::async_engine::run_async).
pub fn run_async_sharded_traced_with<P, F>(
    graph: &Graph,
    delay: DelayModel,
    make: F,
    limits: SimLimits,
    opts: ShardedOptions,
) -> Result<(AsyncReport<P>, DeliveryTrace), SimError>
where
    P: Protocol + Send,
    P::Message: Send,
    F: FnMut(NodeId) -> P,
{
    let (report, trace) = run_sharded_inner(graph, delay, None, make, limits, opts, true)?;
    Ok((report, trace.expect("tracing was enabled")))
}

/// [`run_async_sharded_faulted_with`] with delivery tracing enabled. Dropped
/// deliveries leave no trace record — only the schedule draw of the doomed
/// delivery appears, exactly as on the serial engine.
///
/// # Errors
///
/// Same as [`run_async`](crate::async_engine::run_async).
pub fn run_async_sharded_faulted_traced_with<P, F>(
    graph: &Graph,
    delay: DelayModel,
    faults: Option<&FaultPlan>,
    make: F,
    limits: SimLimits,
    opts: ShardedOptions,
) -> Result<(AsyncReport<P>, DeliveryTrace), SimError>
where
    P: Protocol + Send,
    P::Message: Send,
    F: FnMut(NodeId) -> P,
{
    let (report, trace) = run_sharded_inner(graph, delay, faults, make, limits, opts, true)?;
    Ok((report, trace.expect("tracing was enabled")))
}

fn run_sharded_inner<P, F>(
    graph: &Graph,
    delay: DelayModel,
    faults: Option<&FaultPlan>,
    make: F,
    limits: SimLimits,
    opts: ShardedOptions,
    traced: bool,
) -> Result<(AsyncReport<P>, Option<DeliveryTrace>), SimError>
where
    P: Protocol + Send,
    P::Message: Send,
    F: FnMut(NodeId) -> P,
{
    let k = opts.shards.clamp(1, graph.node_count().max(1));
    let trace = traced.then(|| TraceState::new(k as u32));
    // `workers == 0` requests the pre-pool coupling: one worker per shard.
    let requested = if opts.workers == 0 { k } else { opts.workers };
    let workers = match opts.threads {
        ThreadMode::Off => 0,
        ThreadMode::ForceOn => {
            if k > 1 {
                requested.clamp(1, k)
            } else {
                0
            }
        }
        ThreadMode::Auto => {
            // ds-lint: allow(ambient-authority) — thread-count probe gates only
            // *whether* (and how many) workers spawn, never the schedule
            // (bit-identical for every worker count, pinned by
            // `worker_threads_produce_the_same_execution`).
            let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
            if k > 1 && cores > 1 {
                requested.clamp(1, k).min(cores)
            } else {
                0
            }
        }
    };
    let fstate = faults.map(|plan| FaultState::new(graph, plan));
    if workers == 0 {
        return run_core(graph, delay, make, limits, k, opts.batching, None, trace, fstate);
    }
    WorkerPool::run(
        workers,
        |w: &mut ShardWork<P>| phase1(w),
        |pool| run_core(graph, delay, make, limits, k, opts.batching, Some(pool), trace, fstate),
    )
}

/// Sequential sharded run, used by
/// [`run_async_faulted`](crate::async_engine::run_async_faulted) for
/// [`crate::SchedulerKind::Sharded`]: no `Send` bound, no threads, identical
/// execution.
pub(crate) fn run_sequential_faulted<P, F>(
    graph: &Graph,
    delay: DelayModel,
    faults: Option<&FaultPlan>,
    make: F,
    limits: SimLimits,
    shards: usize,
) -> Result<AsyncReport<P>, SimError>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
{
    let k = shards.clamp(1, graph.node_count().max(1));
    let fstate = faults.map(|plan| FaultState::new(graph, plan));
    run_core(graph, delay, make, limits, k, true, None, None, fstate).map(|(report, _)| report)
}

/// Sequential sharded run with tracing, used by
/// [`run_async_faulted_traced`](crate::async_engine::run_async_faulted_traced)
/// for [`crate::SchedulerKind::Sharded`].
pub(crate) fn run_sequential_faulted_traced<P, F>(
    graph: &Graph,
    delay: DelayModel,
    faults: Option<&FaultPlan>,
    make: F,
    limits: SimLimits,
    shards: usize,
) -> Result<(AsyncReport<P>, DeliveryTrace), SimError>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
{
    let k = shards.clamp(1, graph.node_count().max(1));
    let fstate = faults.map(|plan| FaultState::new(graph, plan));
    let (report, trace) = run_core(
        graph,
        delay,
        make,
        limits,
        k,
        true,
        None,
        Some(TraceState::new(k as u32)),
        fstate,
    )?;
    Ok((report, trace.expect("tracing was enabled")))
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

// Every entry point funnels here with its full knob set; bundling the knobs
// into a struct would only move the argument list one call deeper.
#[allow(clippy::too_many_arguments)]
fn run_core<P, F>(
    graph: &Graph,
    delay: DelayModel,
    mut make: F,
    limits: SimLimits,
    k: usize,
    batching: bool,
    mut pool: Option<&mut WorkerPool<ShardWork<P>>>,
    trace: Option<TraceState>,
    faults: Option<FaultState>,
) -> Result<(AsyncReport<P>, Option<DeliveryTrace>), SimError>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
{
    let n = graph.node_count();
    let layout = ShardLayout::new(graph, k);
    let k = layout.k;
    let horizon = delay.max_delay_ticks();

    let mut links: Vec<Vec<LinkState<u32>>> = (0..k).map(|_| Vec::new()).collect();
    for e in 0..graph.directed_edge_count() {
        let id = DirectedEdgeId(e as u32);
        let (from, to) = graph.directed_endpoints(id);
        links[layout.shard_of(from)].push(LinkState::new(from, to));
    }
    let mut works: Vec<Option<ShardWork<P>>> = (0..k)
        .map(|s| {
            let (lo, hi) = (layout.bounds[s], layout.bounds[s + 1]);
            Some(ShardWork {
                lo,
                nodes: (lo..hi).map(|i| make(NodeId(i))).collect(),
                done: vec![false; hi - lo],
                due: Vec::new(),
                tick_runs: Vec::new(),
                ready: Vec::new(),
                payloads: PayloadArena::new(),
                captured: VecDeque::new(),
                outbox_buf: Vec::new(),
                newly_done: Vec::new(),
            })
        })
        .collect();
    let mut sh =
        ShardTables { layout, wheels: (0..k).map(|_| TimingWheel::new(horizon)).collect(), links };
    let mut g = Globals {
        now: 0,
        seq: 0,
        deliveries: 0,
        max_events: limits.max_events,
        metrics: RunMetrics::default(),
        done_count: 0,
        time_all_done: None,
        batched_ticks: 0,
        pool_dispatches: 0,
        max_batch: 0,
        touched: Vec::new(),
        trace,
        faults,
        dropped: 0,
    };
    // The static part of a window is bounded by the delay floor (see the
    // module docs §Batched windows); ticks past it batch through the
    // in-window heap, so no `min_delay > 1` gate remains.
    let min_delay = delay.min_delay_ticks();
    let mut win = InWindow { heap: BinaryHeap::new(), t_last: 0 };

    // Time 0: start every node in global node order — the serial engine's
    // init order, so the initial seq draws match exactly. Nodes the fault
    // plan crashes at tick 0 never start (but still take the done check, like
    // the serial engine).
    if let Some(f) = g.faults.as_mut() {
        f.advance_to(0);
    }
    for v in graph.nodes() {
        let s = sh.layout.shard_of(v);
        let w = works[s].as_mut().expect("shard at home");
        let local = v.index() - w.lo;
        if g.faults.as_ref().is_some_and(|f| f.is_crashed(v)) {
            if !w.done[local] && w.nodes[local].is_done() {
                w.done[local] = true;
                g.done_count += 1;
                if g.done_count == n && g.time_all_done.is_none() {
                    g.time_all_done = Some(0);
                }
            }
            continue;
        }
        let mut ctx = Ctx::with_buffer(v, std::mem::take(&mut w.outbox_buf));
        w.nodes[local].on_start(&mut ctx);
        let mut touched = std::mem::take(&mut g.touched);
        for out in ctx.drain_outbox() {
            touched.push(push_message(&mut g, &mut sh, &mut works, graph, v, out)?);
        }
        for link in touched.drain(..) {
            try_inject(&mut g, &mut sh, &mut works, &delay, &mut win, link);
        }
        g.touched = touched;
        let w = works[s].as_mut().expect("shard at home");
        w.outbox_buf = ctx.into_buffer();
        if !w.done[local] && w.nodes[local].is_done() {
            w.done[local] = true;
            g.done_count += 1;
            if g.done_count == n && g.time_all_done.is_none() {
                g.time_all_done = Some(0);
            }
        }
    }

    // One barrier per iteration: find the globally earliest pending tick,
    // widen it to a causality-free window when batching applies, drain every
    // shard's events of every window tick, run phase 1 (shard-local
    // activations), then the serial phase-2 merge in `(tick, seq)` order.
    let mut pos = vec![0usize; k];
    let mut window: Vec<u64> = Vec::new();
    let mut done_scratch: Vec<(u64, u64)> = Vec::new();
    let mut ext_scratch: Vec<(u64, ShardEvent)> = Vec::new();
    while let Some(t0) = sh.wheels.iter().filter_map(TimingWheel::next_tick).min() {
        // Apply fault transitions due by t0. The window cap below keeps the
        // flags constant through t_last, so drain-time fault checks see the
        // same state the serial engine sees at each window tick.
        if let Some(f) = g.faults.as_mut() {
            f.advance_to(t0);
        }
        // The window [t0, end]: every tick the occupancy bitsets report,
        // capped per wheel by the horizon and the earliest overflow entry
        // (invisible to the bitsets), and by the next fault transition. t0
        // itself is pushed explicitly — it may be overflow-only.
        window.clear();
        window.push(t0);
        if batching {
            let mut end = u64::MAX;
            for wheel in &sh.wheels {
                end = wheel.window_cap(end);
            }
            if let Some(next) = g.faults.as_ref().and_then(|f| f.next_transition_after(t0)) {
                end = end.min(next - 1);
            }
            if end > t0 {
                for wheel in &sh.wheels {
                    wheel.occupied_ticks_within(end, &mut window);
                }
                window.sort_unstable();
                window.dedup();
            }
        }
        let t_last = *window.last().expect("window holds t0");
        g.batched_ticks += window.len() as u64 - 1;

        // Drain the window. Ticks up to the static boundary feed phase 1
        // (fault-blocked deliveries are defused to `Dropped` in place — the
        // flags cannot change before t_last, so this equals the serial
        // at-tick check); later ticks bypass phase 1 entirely and go to the
        // in-window heap for inline processing during the merge.
        //
        // The boundary sits at `t0 + min_delay` — one tick *wider* than the
        // "effects land strictly past the boundary" rule needs — because a
        // merge effect that lands exactly on the boundary is still serial-
        // exact: it is scheduled during phase 2, after the boundary tick was
        // drained and the wheels advanced, so it routes to the in-window heap
        // with a seq drawn later than every seq drained at that tick, and the
        // `(tick, seq)` merge processes it after all of them — while every
        // phase-1 activation of the boundary tick precedes the whole merge.
        // Widening past `t0 + min_delay` would be unsound: a tick that can
        // receive an effect of another *drained* tick of the same window must
        // not activate in the same parallel phase. With `min_delay == 1`
        // (jitter's per-draw floor) the static part is two ticks, not one.
        let static_end = t0 + min_delay;
        let mut total_due = 0usize;
        for &t in &window {
            if t <= static_end {
                for (wheel, work) in sh.wheels.iter_mut().zip(&mut works) {
                    if wheel.next_tick() == Some(t) {
                        let w = work.as_mut().expect("shard at home");
                        let before = w.due.len();
                        let drained = wheel.take_due(&mut w.due);
                        debug_assert_eq!(drained, Some(t));
                        if let Some(f) = g.faults.as_ref() {
                            let (due, payloads) = (&mut w.due, &mut w.payloads);
                            for (_, ev) in &mut due[before..] {
                                if let ShardEvent::Deliver { link, from, to, msg } = *ev {
                                    if f.blocks(link, from, to) {
                                        // Defused in place: the payload handle is
                                        // freed now (this shard is the destination,
                                        // so the handle is local); the drop COUNT
                                        // stays in the merge's `ReadyKind::Dropped`.
                                        payloads.take(msg);
                                        *ev = ShardEvent::Dropped { link };
                                    }
                                }
                            }
                        }
                        w.tick_runs.push((t, w.due.len()));
                        total_due += w.due.len() - before;
                    }
                }
            } else {
                for wheel in sh.wheels.iter_mut() {
                    if wheel.next_tick() == Some(t) {
                        let drained = wheel.take_due(&mut ext_scratch);
                        debug_assert_eq!(drained, Some(t));
                        for (seq, ev) in ext_scratch.drain(..) {
                            win.heap.push(WindowEntry { at: t, seq, ev });
                        }
                    }
                }
            }
        }
        // Advance every wheel to the window's end before any merge effect
        // schedules into it: the clocks stay in lock-step, and anything the
        // merge schedules at or before `t_last` is routed to the in-window
        // heap instead.
        for wheel in sh.wheels.iter_mut() {
            wheel.advance_to(t_last);
        }
        win.t_last = t_last;
        for w in &works {
            g.max_batch = g.max_batch.max(w.as_ref().expect("shard at home").due.len() as u64);
        }

        // Phase 1.
        match pool.as_deref_mut() {
            Some(pool) if total_due >= PARALLEL_TICK_THRESHOLD => {
                g.pool_dispatches += 1;
                let mut outstanding = 0usize;
                for (s, slot) in works.iter_mut().enumerate() {
                    if !slot.as_ref().expect("shard at home").due.is_empty() {
                        let work = slot.take().expect("shard at home");
                        pool.dispatch(s, work);
                        outstanding += 1;
                    }
                }
                let mut panicked: Option<PanicPayload> = None;
                for _ in 0..outstanding {
                    let (idx, work, panic) = pool.collect();
                    works[idx] = Some(work);
                    panicked = panicked.or(panic);
                }
                // Resume only after every outstanding shard answered, so no
                // worker is left sending into a dropped channel mid-barrier.
                if let Some(payload) = panicked {
                    std::panic::resume_unwind(payload);
                }
            }
            _ => {
                for w in &mut works {
                    phase1(w.as_mut().expect("shard at home"));
                }
            }
        }
        // Done accounting: merge the shards' per-tick counts in tick order so
        // the cumulative count crosses `n` at the same tick as it would have
        // serially.
        done_scratch.clear();
        for w in &mut works {
            done_scratch.append(&mut w.as_mut().expect("shard at home").newly_done);
        }
        done_scratch.sort_unstable_by_key(|&(tick, _)| tick);
        for &(tick, count) in &done_scratch {
            g.done_count += count as usize;
            if g.done_count == n && g.time_all_done.is_none() {
                g.time_all_done = Some(tick);
            }
        }

        // Phase 2: merge of the shards' ready lists AND the in-window heap by
        // global `(tick, seq)` — the serial processing order (each ready list
        // is already ascending in it; the heap pops in it). `g.now` is
        // restored per event, so every delay draw and schedule target matches
        // the serial engine's exactly. Heap deliveries run their activation
        // inline here — they sit strictly past the static boundary, so every
        // phase-1 activation of the same node already happened.
        pos.iter_mut().for_each(|p| *p = 0);
        loop {
            let mut best: Option<((u64, u64), usize)> = None;
            for s in 0..k {
                let ready = &works[s].as_ref().expect("shard at home").ready;
                if let Some(item) = ready.get(pos[s]) {
                    if best.is_none_or(|(key, _)| (item.tick, item.seq) < key) {
                        best = Some(((item.tick, item.seq), s));
                    }
                }
            }
            let from_heap =
                win.heap.peek().is_some_and(|e| best.is_none_or(|(key, _)| (e.at, e.seq) < key));
            if from_heap {
                let entry = win.heap.pop().expect("peeked above");
                g.now = entry.at;
                match entry.ev {
                    ShardEvent::Deliver { link, from, to, msg } => {
                        if g.faults.as_ref().is_some_and(|f| f.blocks(link, from, to)) {
                            let s_to = sh.layout.shard_of(to);
                            works[s_to].as_mut().expect("shard at home").payloads.take(msg);
                            g.dropped += 1;
                            let (home, slot) = sh.layout.link_home(link);
                            sh.links[home][slot].in_flight = false;
                            try_inject(&mut g, &mut sh, &mut works, &delay, &mut win, link);
                            continue;
                        }
                        if let Some(tr) = g.trace.as_mut() {
                            tr.on_delivery(
                                entry.seq,
                                g.now,
                                sh.layout.shard_of(to) as u32,
                                from,
                                to,
                            );
                        }
                        g.deliveries += 1;
                        if g.deliveries > g.max_events {
                            return Err(SimError::EventLimitExceeded { limit: g.max_events });
                        }
                        g.metrics.events += 1;
                        // Activate inline on the coordinator and dispatch the
                        // outbox — the serial engine's deliver + dispatch_outbox,
                        // verbatim.
                        let s_to = sh.layout.shard_of(to);
                        let w = works[s_to].as_mut().expect("shard at home");
                        let local = to.index() - w.lo;
                        let mut ctx = Ctx::with_buffer(to, std::mem::take(&mut w.outbox_buf));
                        let msg = w.payloads.take(msg);
                        w.nodes[local].on_message(from, msg, &mut ctx);
                        let mut touched = std::mem::take(&mut g.touched);
                        for out in ctx.drain_outbox() {
                            touched
                                .push(push_message(&mut g, &mut sh, &mut works, graph, to, out)?);
                        }
                        for l in touched.drain(..) {
                            try_inject(&mut g, &mut sh, &mut works, &delay, &mut win, l);
                        }
                        g.touched = touched;
                        // Acknowledge back to the sender (two seq draws, like
                        // the serial engine).
                        g.metrics.acks += 1;
                        let ack_seq = g.next_seq();
                        let ack_delay = delay.delay_ticks_at(to, from, ack_seq, g.now);
                        let at = g.now + ack_delay;
                        let seq = g.next_seq();
                        if let Some(tr) = g.trace.as_mut() {
                            tr.on_scheduled(seq);
                        }
                        if at <= win.t_last {
                            win.heap.push(WindowEntry { at, seq, ev: ShardEvent::Ack { link } });
                        } else {
                            let (home, _) = sh.layout.link_home(link);
                            sh.wheels[home].schedule_from(g.now, at, seq, ShardEvent::Ack { link });
                        }
                        let w = works[s_to].as_mut().expect("shard at home");
                        w.outbox_buf = ctx.into_buffer();
                        if !w.done[local] && w.nodes[local].is_done() {
                            w.done[local] = true;
                            g.done_count += 1;
                            if g.done_count == n && g.time_all_done.is_none() {
                                g.time_all_done = Some(g.now);
                            }
                        }
                    }
                    ShardEvent::Ack { link } => {
                        if let Some(tr) = g.trace.as_mut() {
                            tr.on_ack(entry.seq);
                        }
                        let (home, slot) = sh.layout.link_home(link);
                        sh.links[home][slot].in_flight = false;
                        try_inject(&mut g, &mut sh, &mut works, &delay, &mut win, link);
                    }
                    ShardEvent::Dropped { .. } => {
                        unreachable!("drops are decided at drain or processing time")
                    }
                }
                continue;
            }
            let Some((_, s)) = best else { break };
            let item = works[s].as_ref().expect("shard at home").ready[pos[s]];
            pos[s] += 1;
            g.now = item.tick;
            match item.kind {
                ReadyKind::Delivered { from, to, outbox } => {
                    if let Some(tr) = g.trace.as_mut() {
                        tr.on_delivery(item.seq, g.now, s as u32, from, to);
                    }
                    g.deliveries += 1;
                    if g.deliveries > g.max_events {
                        return Err(SimError::EventLimitExceeded { limit: g.max_events });
                    }
                    g.metrics.events += 1;
                    // Replay the captured outbox: push every message (drawing
                    // its seq), then inject the touched links in order — the
                    // serial engine's dispatch_outbox, verbatim.
                    let mut touched = std::mem::take(&mut g.touched);
                    for _ in 0..outbox {
                        let out = works[s]
                            .as_mut()
                            .expect("shard at home")
                            .captured
                            .pop_front()
                            .expect("the capture buffer holds each outbox");
                        touched.push(push_message(&mut g, &mut sh, &mut works, graph, to, out)?);
                    }
                    for link in touched.drain(..) {
                        try_inject(&mut g, &mut sh, &mut works, &delay, &mut win, link);
                    }
                    g.touched = touched;
                    // Acknowledge back to the sender (two seq draws, exactly
                    // like the serial engine: the ack's delay seq, then the
                    // scheduled event's seq).
                    g.metrics.acks += 1;
                    let ack_seq = g.next_seq();
                    let ack_delay = delay.delay_ticks_at(to, from, ack_seq, g.now);
                    let at = g.now + ack_delay;
                    let (home, _) = sh.layout.link_home(item.link);
                    let seq = g.next_seq();
                    if let Some(tr) = g.trace.as_mut() {
                        tr.on_scheduled(seq);
                    }
                    if at <= win.t_last {
                        win.heap.push(WindowEntry {
                            at,
                            seq,
                            ev: ShardEvent::Ack { link: item.link },
                        });
                    } else {
                        sh.wheels[home].schedule_from(
                            g.now,
                            at,
                            seq,
                            ShardEvent::Ack { link: item.link },
                        );
                    }
                }
                ReadyKind::Ack => {
                    if let Some(tr) = g.trace.as_mut() {
                        tr.on_ack(item.seq);
                    }
                    let (home, slot) = sh.layout.link_home(item.link);
                    sh.links[home][slot].in_flight = false;
                    try_inject(&mut g, &mut sh, &mut works, &delay, &mut win, item.link);
                }
                ReadyKind::Dropped => {
                    g.dropped += 1;
                    let (home, slot) = sh.layout.link_home(item.link);
                    sh.links[home][slot].in_flight = false;
                    try_inject(&mut g, &mut sh, &mut works, &delay, &mut win, item.link);
                }
            }
        }
        for w in &mut works {
            let w = w.as_mut().expect("shard at home");
            w.ready.clear();
            debug_assert!(w.captured.is_empty(), "merge consumed every captured message");
        }
        debug_assert!(win.heap.is_empty(), "merge drained the in-window heap");
        win.t_last = 0;
    }

    g.metrics.time_to_output = g.time_all_done.map(|t| t as f64 / TICKS_PER_UNIT as f64);
    g.metrics.time_to_quiescence = g.now as f64 / TICKS_PER_UNIT as f64;
    let overflow_events = sh.wheels.iter().map(|w| w.overflow_scheduled()).sum();
    let mut peak_live_handles = 0u64;
    let mut arena_bytes = 0u64;
    for w in &works {
        let w = w.as_ref().expect("shard at home");
        debug_assert_eq!(w.payloads.live(), 0, "a finished run must return every arena handle");
        peak_live_handles += w.payloads.peak_live() as u64;
        arena_bytes += w.payloads.bytes() as u64;
    }
    Ok((
        AsyncReport {
            metrics: g.metrics,
            nodes: works.into_iter().flat_map(|w| w.expect("shard at home").nodes).collect(),
            overflow_events,
            peak_live_handles,
            arena_bytes,
            max_batch: g.max_batch,
            batched_ticks: g.batched_ticks,
            pool_dispatches: g.pool_dispatches,
            dropped_events: g.dropped,
            fault_transitions: g.faults.as_ref().map_or(0, FaultState::transitions),
        },
        g.trace.map(TraceState::finish),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::async_engine::run_async_with;
    use crate::metrics::MessageClass;
    use crate::SchedulerKind;

    /// Chatty flood recording, per node, the exact arrival stream `(from, msg)`
    /// — the node-local view of the schedule. Mixed priorities exercise the
    /// per-link stage queues; a few waves keep traffic flowing.
    #[derive(Debug)]
    struct Chatter<'g> {
        me: NodeId,
        neighbors: &'g [NodeId],
        arrivals: Vec<(NodeId, u64)>,
        waves_left: u64,
    }

    impl<'g> Chatter<'g> {
        fn new(graph: &'g Graph, me: NodeId) -> Self {
            Chatter { me, neighbors: graph.neighbors(me), arrivals: Vec::new(), waves_left: 3 }
        }
    }

    impl Protocol for Chatter<'_> {
        type Message = u64;

        fn on_start(&mut self, ctx: &mut Ctx<u64>) {
            if self.me.index().is_multiple_of(5) {
                for (i, &u) in self.neighbors.iter().enumerate() {
                    ctx.send_with(u, 1, (i % 3) as u64, MessageClass::Algorithm);
                }
            }
        }

        fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<u64>) {
            self.arrivals.push((from, msg));
            if self.waves_left > 0 {
                self.waves_left -= 1;
                for (i, &u) in self.neighbors.iter().enumerate() {
                    ctx.send_with(u, msg + 1, (msg + i as u64) % 4, MessageClass::Algorithm);
                }
            }
        }

        fn is_done(&self) -> bool {
            !self.arrivals.is_empty() || self.me.index().is_multiple_of(5)
        }
    }

    type NodeView = (Vec<Vec<(NodeId, u64)>>, RunMetrics, u64);

    fn wheel_run(graph: &Graph, delay: &DelayModel) -> NodeView {
        let report = run_async_with(
            graph,
            delay.clone(),
            |v| Chatter::new(graph, v),
            SimLimits::default(),
            SchedulerKind::TimingWheel,
        )
        .expect("wheel run");
        (
            report.nodes.into_iter().map(|n| n.arrivals).collect(),
            report.metrics,
            report.overflow_events,
        )
    }

    fn sharded_run(graph: &Graph, delay: &DelayModel, opts: ShardedOptions) -> NodeView {
        let report = run_async_sharded_with(
            graph,
            delay.clone(),
            |v| Chatter::new(graph, v),
            SimLimits::default(),
            opts,
        )
        .expect("sharded run");
        (
            report.nodes.into_iter().map(|n| n.arrivals).collect(),
            report.metrics,
            report.overflow_events,
        )
    }

    #[test]
    fn sharded_matches_the_wheel_for_every_adversary_and_shard_count() {
        // Per-node arrival streams, metrics and overflow counts must be
        // byte-identical to the serial wheel for every shard count, including
        // the multi-τ outage adversary that exercises the overflow heaps.
        let graph = Graph::random_connected(26, 0.14, 11);
        let mut adversaries = DelayModel::standard_suite(7);
        adversaries.push(DelayModel::outage(7, 5, 2));
        for delay in adversaries {
            let reference = wheel_run(&graph, &delay);
            for shards in [1, 2, 3, 4, 7, 26, 100] {
                for batching in [true, false] {
                    let got = sharded_run(
                        &graph,
                        &delay,
                        ShardedOptions {
                            threads: ThreadMode::Off,
                            batching,
                            ..ShardedOptions::new(shards)
                        },
                    );
                    assert_eq!(
                        got, reference,
                        "shards={shards} batching={batching} diverged under {delay:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn faulted_sharded_runs_match_the_serial_wheel() {
        // Under a churn plan — link episodes plus a mid-run crash/recovery —
        // the sharded engine must reproduce the serial wheel's arrival
        // streams, drop counts and transition counts for every shard count
        // and batching mode; batching windows must stop at fault transitions.
        let graph = Graph::random_connected(26, 0.14, 11);
        let mut plan = FaultPlan::random_churn(&graph, 42, 6, 2, 5 * TICKS_PER_UNIT);
        plan = plan
            .node_crash(TICKS_PER_UNIT / 2, NodeId(5))
            .node_recover(3 * TICKS_PER_UNIT, NodeId(5));
        for delay in [DelayModel::uniform(), DelayModel::jitter(3), DelayModel::outage(7, 5, 2)] {
            let reference = crate::async_engine::run_async_faulted(
                &graph,
                delay.clone(),
                Some(&plan),
                |v| Chatter::new(&graph, v),
                SimLimits::default(),
                SchedulerKind::TimingWheel,
            )
            .expect("faulted wheel run");
            assert!(reference.fault_transitions > 0, "the plan must actually fire");
            let (ref_dropped, ref_transitions) =
                (reference.dropped_events, reference.fault_transitions);
            let reference_view: NodeView = (
                reference.nodes.into_iter().map(|n| n.arrivals).collect(),
                reference.metrics,
                reference.overflow_events,
            );
            for shards in [1, 2, 4, 7] {
                for batching in [true, false] {
                    let report = run_async_sharded_faulted_with(
                        &graph,
                        delay.clone(),
                        Some(&plan),
                        |v| Chatter::new(&graph, v),
                        SimLimits::default(),
                        ShardedOptions {
                            threads: ThreadMode::Off,
                            batching,
                            ..ShardedOptions::new(shards)
                        },
                    )
                    .expect("faulted sharded run");
                    assert_eq!(
                        report.dropped_events, ref_dropped,
                        "shards={shards} batching={batching} drop count diverged under {delay:?}"
                    );
                    assert_eq!(
                        report.fault_transitions, ref_transitions,
                        "shards={shards} batching={batching} transitions diverged under {delay:?}"
                    );
                    let got: NodeView = (
                        report.nodes.into_iter().map(|n| n.arrivals).collect(),
                        report.metrics,
                        report.overflow_events,
                    );
                    assert_eq!(
                        got, reference_view,
                        "shards={shards} batching={batching} diverged under {delay:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn worker_threads_produce_the_same_execution() {
        // ForceOn exercises the cross-thread hand-off even on single-core
        // hosts; a uniform-delay start wave on a 12×12 grid puts well over
        // PARALLEL_TICK_THRESHOLD events into one tick, so the threaded path
        // actually runs.
        let graph = Graph::grid(12, 12);
        for delay in [DelayModel::uniform(), DelayModel::jitter(3)] {
            let reference = wheel_run(&graph, &delay);
            for shards in [2, 4] {
                let forced = sharded_run(
                    &graph,
                    &delay,
                    ShardedOptions { threads: ThreadMode::ForceOn, ..ShardedOptions::new(shards) },
                );
                assert_eq!(forced, reference, "threaded shards={shards} diverged");
            }
        }
    }

    #[test]
    fn worker_count_decouples_from_shard_count() {
        // Seven shards round-robin over fewer (and non-dividing) worker
        // counts; every combination must reproduce the serial schedule, and
        // the dense uniform start wave guarantees the pool really engages.
        let graph = Graph::grid(12, 12);
        let delay = DelayModel::uniform();
        let reference = wheel_run(&graph, &delay);
        for workers in [1, 2, 3] {
            let report = run_async_sharded_with(
                &graph,
                delay.clone(),
                |v| Chatter::new(&graph, v),
                SimLimits::default(),
                ShardedOptions { workers, threads: ThreadMode::ForceOn, ..ShardedOptions::new(7) },
            )
            .expect("pooled run");
            assert!(report.pool_dispatches > 0, "workers={workers}: pool never engaged");
            let got: NodeView = (
                report.nodes.into_iter().map(|n| n.arrivals).collect(),
                report.metrics,
                report.overflow_events,
            );
            assert_eq!(got, reference, "workers={workers} diverged");
        }
    }

    #[test]
    fn batching_counters_respect_the_soundness_gate() {
        // A floored-jitter adversary (min delay 500 ticks) spreads deliveries
        // across ticks, so causality-free windows really form; the engine must
        // report them via `batched_ticks` — and report exactly zero whenever
        // batching is off. The coordinator path never ships a barrier to the
        // pool. Under the dynamic gate, 1-tick-floor models batch too: their
        // static part is a single tick, but the window probe still folds every
        // occupied tick it can see into the in-window heap.
        let graph = Graph::random_connected(26, 0.14, 11);
        let run = |delay: &DelayModel, batching: bool| {
            run_async_sharded_with(
                &graph,
                delay.clone(),
                |v| Chatter::new(&graph, v),
                SimLimits::default(),
                ShardedOptions { threads: ThreadMode::Off, batching, ..ShardedOptions::new(4) },
            )
            .expect("sharded run")
        };
        let floored = DelayModel::jitter_at_least(5, 0.5);
        let batched = run(&floored, true);
        assert!(batched.batched_ticks > 0, "floored jitter must form multi-tick windows");
        assert_eq!(batched.pool_dispatches, 0, "ThreadMode::Off must never touch the pool");
        assert_eq!(run(&floored, false).batched_ticks, 0, "batching off must report zero");
        for ungated in [DelayModel::jitter(5), DelayModel::outage(7, 5, 2)] {
            let report = run(&ungated, true);
            assert!(
                report.batched_ticks > 0,
                "{ungated:?} must batch under the dynamic occupancy gate"
            );
        }
        // Uniform delays land every event on the τ grid: each barrier's
        // occupancy probe finds nothing past t0, so windows stay singletons.
        // `bursty(1)` realizes the same all-τ schedule while advertising a
        // 1-tick floor — batching is decided by occupancy, not the floor.
        assert_eq!(run(&DelayModel::uniform(), true).batched_ticks, 0);
        assert_eq!(run(&DelayModel::bursty(1), true).batched_ticks, 0);
    }

    #[test]
    fn run_async_with_runs_sharded_sequentially() {
        let graph = Graph::grid(4, 5);
        let reference = wheel_run(&graph, &DelayModel::jitter(9));
        let report = run_async_with(
            &graph,
            DelayModel::jitter(9),
            |v| Chatter::new(&graph, v),
            SimLimits::default(),
            SchedulerKind::Sharded { shards: 3, workers: 0 },
        )
        .expect("sharded via run_async_with");
        let got: NodeView = (
            report.nodes.into_iter().map(|n| n.arrivals).collect(),
            report.metrics,
            report.overflow_events,
        );
        assert_eq!(got, reference);
    }

    #[test]
    fn event_limit_aborts_like_the_serial_engine() {
        let graph = Graph::grid(5, 5);
        let limits = SimLimits { max_events: 40, ..SimLimits::default() };
        let serial = run_async_with(
            &graph,
            DelayModel::uniform(),
            |v| Chatter::new(&graph, v),
            limits,
            SchedulerKind::TimingWheel,
        )
        .unwrap_err();
        let sharded = run_async_sharded_with(
            &graph,
            DelayModel::uniform(),
            |v| Chatter::new(&graph, v),
            limits,
            ShardedOptions { threads: ThreadMode::Off, ..ShardedOptions::new(4) },
        )
        .unwrap_err();
        assert_eq!(serial, sharded);
        assert_eq!(sharded, SimError::EventLimitExceeded { limit: 40 });
    }

    #[test]
    #[should_panic(expected = "chatter protocol failure on node 77")]
    fn worker_thread_panics_propagate_instead_of_deadlocking() {
        // A protocol panic inside a phase-1 worker must reach the caller like
        // the serial engine's would. Without the catch_unwind/resume_unwind
        // hand-off the coordinator would block forever on the completion
        // channel (idle workers keep it open), turning one bad activation
        // into a hung simulation. Same setup as the threaded test above: the
        // uniform start wave exceeds PARALLEL_TICK_THRESHOLD, so phase 1
        // really runs on workers under ForceOn.
        #[derive(Debug)]
        struct Exploding<'g> {
            inner: Chatter<'g>,
        }
        impl Protocol for Exploding<'_> {
            type Message = u64;
            fn on_start(&mut self, ctx: &mut Ctx<u64>) {
                self.inner.on_start(ctx);
            }
            fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<u64>) {
                assert_ne!(self.inner.me.index(), 77, "chatter protocol failure on node 77");
                self.inner.on_message(from, msg, ctx);
            }
            fn is_done(&self) -> bool {
                self.inner.is_done()
            }
        }
        let graph = Graph::grid(12, 12);
        let _ = run_async_sharded_with(
            &graph,
            DelayModel::uniform(),
            |v| Exploding { inner: Chatter::new(&graph, v) },
            SimLimits::default(),
            ShardedOptions { threads: ThreadMode::ForceOn, ..ShardedOptions::new(4) },
        );
    }

    #[test]
    fn tracing_is_invisible_to_the_schedule() {
        // Bit-identity with tracing off vs. on, for the serial engine and for
        // every sharded layout: the trace hooks must not draw a seq, touch a
        // queue, or otherwise perturb the execution.
        let graph = Graph::random_connected(22, 0.16, 19);
        let delay = DelayModel::jitter(4);
        let reference = wheel_run(&graph, &delay);
        let (report, serial_trace) = crate::async_engine::run_async_traced(
            &graph,
            delay.clone(),
            |v| Chatter::new(&graph, v),
            SimLimits::default(),
            crate::SchedulerKind::TimingWheel,
        )
        .expect("traced wheel run");
        let got: NodeView = (
            report.nodes.into_iter().map(|n| n.arrivals).collect(),
            report.metrics,
            report.overflow_events,
        );
        assert_eq!(got, reference, "tracing perturbed the serial schedule");
        assert!(!serial_trace.records.is_empty());
        assert_eq!(serial_trace.shards, 1);

        for shards in [1, 2, 4] {
            let (report, trace) = run_async_sharded_traced_with(
                &graph,
                delay.clone(),
                |v| Chatter::new(&graph, v),
                SimLimits::default(),
                ShardedOptions { threads: ThreadMode::Off, ..ShardedOptions::new(shards) },
            )
            .expect("traced sharded run");
            let got: NodeView = (
                report.nodes.into_iter().map(|n| n.arrivals).collect(),
                report.metrics,
                report.overflow_events,
            );
            assert_eq!(got, reference, "tracing perturbed the sharded schedule (k={shards})");
            // The scheduler-independent view of the trace matches the serial
            // engine record for record; only the shard assignment differs,
            // and it must match the layout's owner of each destination.
            assert_eq!(trace.shards, shards as u32);
            let layout = ShardLayout::new(&graph, shards);
            assert_eq!(trace.records.len(), serial_trace.records.len());
            for (sharded_rec, serial_rec) in trace.records.iter().zip(&serial_trace.records) {
                assert_eq!(sharded_rec.schedule_key(), serial_rec.schedule_key());
                assert_eq!(sharded_rec.shard as usize, layout.shard_of(sharded_rec.dst));
            }
        }
    }

    #[test]
    fn traced_runs_cross_worker_threads_unchanged() {
        // The trace lives with the coordinator; ForceOn workers must neither
        // see it nor change what it records.
        let graph = Graph::grid(12, 12);
        let delay = DelayModel::uniform();
        let (_, sequential) = run_async_sharded_traced_with(
            &graph,
            delay.clone(),
            |v| Chatter::new(&graph, v),
            SimLimits::default(),
            ShardedOptions { threads: ThreadMode::Off, ..ShardedOptions::new(4) },
        )
        .expect("sequential traced run");
        let (report, threaded) = run_async_sharded_traced_with(
            &graph,
            delay,
            |v| Chatter::new(&graph, v),
            SimLimits::default(),
            ShardedOptions { threads: ThreadMode::ForceOn, ..ShardedOptions::new(4) },
        )
        .expect("threaded traced run");
        assert_eq!(threaded, sequential);
        assert!(report.metrics.events > 0);
    }

    #[test]
    fn non_neighbor_sends_are_rejected() {
        #[derive(Debug)]
        struct Bad {
            me: NodeId,
        }
        impl Protocol for Bad {
            type Message = ();
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                if self.me == NodeId(0) {
                    ctx.send(NodeId(2), ());
                }
            }
            fn on_message(&mut self, _: NodeId, _: (), _: &mut Ctx<()>) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        let graph = Graph::path(3);
        let err = run_async_sharded(
            &graph,
            DelayModel::uniform(),
            |me| Bad { me },
            SimLimits::default(),
            2,
        )
        .unwrap_err();
        assert_eq!(err, SimError::NotNeighbor { from: NodeId(0), to: NodeId(2) });
    }

    #[test]
    fn shard_layout_partitions_nodes_and_links_consistently() {
        let graph = Graph::random_connected(23, 0.2, 3);
        for k in [1, 2, 4, 7, 23] {
            let layout = ShardLayout::new(&graph, k);
            assert_eq!(layout.k, k);
            assert_eq!(layout.bounds[0], 0);
            assert_eq!(*layout.bounds.last().unwrap(), 23);
            // Every node maps into the shard whose contiguous range holds it.
            for v in graph.nodes() {
                let s = layout.shard_of(v);
                assert!(layout.bounds[s] <= v.index() && v.index() < layout.bounds[s + 1]);
            }
            // Link slots are dense per shard, in edge-id order.
            let mut counts = vec![0usize; k];
            for e in 0..graph.directed_edge_count() {
                let id = DirectedEdgeId(e as u32);
                let (from, _) = graph.directed_endpoints(id);
                let (s, slot) = layout.link_home(id);
                assert_eq!(s, layout.shard_of(from));
                assert_eq!(slot, counts[s]);
                counts[s] += 1;
            }
        }
        // Oversized shard counts clamp to n.
        assert_eq!(ShardLayout::new(&graph, 500).k, 23);
    }
}
