//! Event schedulers for the asynchronous engine: a bounded-horizon timing wheel
//! (the default) and a binary-heap reference implementation.
//!
//! The asynchronous model bounds every link delay by one time unit `τ`
//! ([`crate::TICKS_PER_UNIT`] ticks), so every event is scheduled at most
//! `TICKS_PER_UNIT` ticks into the future. That bounded horizon makes the textbook
//! timing wheel (calendar queue) the right structure: `TICKS_PER_UNIT + 1` rotating
//! slots, each holding the events of one absolute tick, give `O(1)` insertion and
//! amortized `O(1)` extraction, against the `O(log n)` of a global binary heap.
//!
//! Both implementations expose the same [`EventScheduler`] interface (public, so
//! the `exp_sched` microbenchmarks in `ds-bench` can drive them in isolation) and
//! produce **bit-identical** schedules:
//!
//! * events are totally ordered by `(at, seq)` with a globally increasing `seq`,
//! * `EventScheduler::take_due` drains *all* events of the earliest pending tick
//!   in ascending `seq` order. Within a wheel slot, insertion order *is* `seq`
//!   order, because `seq` increases monotonically over the run and no event can be
//!   scheduled at the tick currently being drained (delays are at least one tick),
//! * entries whose delay exceeds the horizon (the composite
//!   [`crate::delay::DelayModel::Outage`] adversary produces them; the single-`τ`
//!   models never do) park in a **hierarchical** second tier instead of a wheel
//!   slot: a coarse-granularity wheel of 64 buckets, each spanning `horizon + 1`
//!   ticks, absorbs them in `O(1)`, and only entries beyond even the coarse span
//!   (63 coarse buckets ≈ 63 `τ`) fall through to a last-resort binary heap.
//!   As the clock advances, due-soon entries are *promoted* into a dedicated
//!   promoted wheel (same geometry as the fine wheel) that is drained **before**
//!   the fine slot of the same tick — an overflow-classified entry's `seq` is
//!   always smaller than any fine entry of the same tick, since it was
//!   necessarily scheduled more than a horizon earlier, so the drain order (and
//!   hence the schedule) is bit-identical to the old single-heap overflow path.
//!
//! The engine picks the implementation through [`SchedulerKind`]; the heap is kept
//! as the executable specification the wheel is tested against (see
//! `tests/scheduler_equiv.rs` and the module tests below).

use crate::bitset;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which event scheduler [`crate::async_engine::run_async_with`] drives the
/// simulation with. All kinds produce bit-identical schedules; the wheel is
/// faster than the heap, and the sharded engine adds parallelism on top of
/// per-shard wheels (see [`crate::sharded`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Bounded-horizon timing wheel: `O(1)` per event (the default).
    #[default]
    TimingWheel,
    /// Global binary heap: `O(log n)` per event. The reference implementation.
    BinaryHeap,
    /// Sharded engine: the node set is partitioned into `shards` contiguous
    /// dense-id ranges, each with its own timing wheel and link queues; each
    /// tick (or batched window of causality-free ticks) runs shard-local
    /// protocol activations — in parallel over a persistent worker pool when
    /// worker threads are available — followed by a serial cross-shard merge
    /// in global `(tick, seq)` order, so the schedule is bit-identical to
    /// [`SchedulerKind::TimingWheel`] (see [`crate::sharded`] and
    /// [`crate::pool`]).
    Sharded {
        /// Number of shards (clamped to `1..=node_count` at run time).
        shards: usize,
        /// Number of persistent worker threads the shards round-robin over.
        /// `0` means "one worker per shard" (the pre-pool behaviour); any
        /// other value is clamped to `1..=shards` and additionally capped by
        /// `std::thread::available_parallelism` under the default
        /// [`crate::sharded::ThreadMode::Auto`] policy.
        workers: usize,
    },
}

impl SchedulerKind {
    /// Short label ("wheel", "heap", "sharded") for experiment rows and test
    /// messages.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::TimingWheel => "wheel",
            SchedulerKind::BinaryHeap => "heap",
            SchedulerKind::Sharded { .. } => "sharded",
        }
    }
}

/// Common interface of the engine's event schedulers.
///
/// `T` is the inline payload (the engine stores the link id and the message).
/// Public so the scheduler microbenchmarks (`exp_sched` in `ds-bench`) can drive
/// both implementations in isolation; simulation code goes through
/// [`crate::async_engine::run_async_with`] instead.
pub trait EventScheduler<T> {
    /// Schedules `payload` at absolute tick `at` with global sequence number `seq`.
    ///
    /// Callers must only schedule into the strict future of the last tick returned
    /// by [`EventScheduler::take_due`] (the engine guarantees this: delays are at
    /// least one tick), with `seq` strictly increasing across calls.
    fn schedule(&mut self, at: u64, seq: u64, payload: T);

    /// Moves *every* event of the earliest pending tick into `due` (ascending
    /// `seq`) and returns that tick, or `None` if no events are pending.
    fn take_due(&mut self, due: &mut Vec<(u64, T)>) -> Option<u64>;

    /// How many events were scheduled beyond the in-structure horizon so far
    /// (0 for schedulers without a horizon).
    fn overflow_scheduled(&self) -> u64 {
        0
    }
}

// ---------------------------------------------------------------------------
// Timing wheel
// ---------------------------------------------------------------------------

/// A timestamped event ordered earliest `(at, seq)` first (`Ord` reversed for
/// [`BinaryHeap`]'s max-heap); shared by the wheel's overflow heap and the
/// reference [`HeapScheduler`], so their orderings can never drift apart.
#[derive(Debug)]
struct MinEntry<T> {
    at: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for MinEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl<T> Eq for MinEntry<T> {}

impl<T> PartialOrd for MinEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for MinEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Number of buckets in the coarse tier of the hierarchical wheel.
const COARSE_BUCKETS: u64 = 64;

/// Bounded-horizon timing wheel with `horizon + 1` rotating slots and a
/// hierarchical second tier for beyond-horizon events.
///
/// Slot `at % (horizon + 1)` holds the events of absolute tick `at`; because all
/// pending events lie in `(now, now + horizon]`, distinct pending ticks never
/// share a slot. A dense occupancy bitset finds the next non-empty slot in a few
/// word operations, and drained slot buffers are recycled through a free list
/// (so steady-state scheduling never allocates).
///
/// Events scheduled more than a horizon past their logical origin (overflow —
/// only multi-`τ` adversaries produce them) are spread over three tiers by
/// distance from the clock:
///
/// * **promoted wheel** (`at − now ≤ horizon`): same geometry as the fine
///   wheel, kept separate so overflow-classified entries drain *before* the
///   fine slot of the same tick (their seqs are necessarily smaller — they
///   were scheduled more than a horizon earlier),
/// * **coarse wheel** (`at − now ≤ 63 · (horizon + 1)`): 64 unordered buckets
///   of one coarse granule (`horizon + 1` ticks) each, `O(1)` insertion. The
///   63-granule span keeps bucket indices injective over the live range, so a
///   bucket never mixes two granules,
/// * **far heap** (beyond the coarse span): the last-resort binary heap; a
///   distance of 63+ `τ` is outside anything the delay adversaries produce, so
///   this tier stays empty in practice ([`TimingWheel::far_parked`] proves it).
///
/// On every clock advance, entries whose tick moved within `now + horizon` are
/// promoted inward (far → promoted, coarse → promoted; at most two coarse
/// buckets can hold promotable entries per advance). Promotions insert in
/// ascending `seq` per promoted slot, so drained batches are bit-identical to
/// the old single-overflow-heap implementation.
#[derive(Debug)]
pub struct TimingWheel<T> {
    /// One buffer of `(seq, payload)` per slot; insertion order is `seq` order.
    slots: Vec<Vec<(u64, T)>>,
    /// Occupancy bitset: bit `i` set iff `slots[i]` is non-empty.
    occupied: Vec<u64>,
    /// Current absolute tick (the last tick drained by `take_due`).
    now: u64,
    /// Number of events currently parked in fine slots (excludes the
    /// hierarchical overflow tiers).
    pending: usize,
    /// Maximum in-wheel scheduling distance, in ticks.
    horizon: u64,
    /// Promoted wheel: overflow-classified events whose tick is now within
    /// `(now, now + horizon]`, drained before the fine slot of the same tick.
    promoted: Vec<Vec<(u64, T)>>,
    /// Occupancy bitset of the promoted wheel.
    promoted_occupied: Vec<u64>,
    /// Number of events in promoted slots.
    promoted_pending: usize,
    /// Coarse wheel: bucket `(at / (horizon + 1)) % 64` holds unordered
    /// `(at, seq, payload)` entries with `at − now` in
    /// `(horizon, 63 · (horizon + 1)]`.
    coarse: Vec<Vec<(u64, u64, T)>>,
    /// Occupancy mask of the coarse buckets.
    coarse_mask: u64,
    /// Number of events in coarse buckets.
    coarse_len: usize,
    /// Cached earliest tick over all coarse entries (`u64::MAX` when empty).
    coarse_min: u64,
    /// Events beyond even the coarse span.
    far: BinaryHeap<MinEntry<T>>,
    /// Total events ever parked in the far heap ([`TimingWheel::far_parked`]).
    far_parked: u64,
    /// Total events scheduled beyond the horizon *of their logical origin*
    /// (exposed through [`EventScheduler::overflow_scheduled`]); counts every
    /// promoted/coarse/far park, so the total is independent of which tier
    /// absorbed the event.
    overflow_scheduled: u64,
    /// Recycled slot buffers: a drained fine or promoted slot's buffer
    /// returns here.
    free: Vec<Vec<(u64, T)>>,
    /// Scratch for coarse-bucket promotion (sorted by `seq` before insertion).
    promote_buf: Vec<(u64, u64, T)>,
}

impl<T> TimingWheel<T> {
    /// Creates a wheel accepting delays of up to `horizon` ticks, starting at
    /// absolute tick 0.
    ///
    /// # Panics
    ///
    /// Panics if `horizon == 0`.
    pub fn new(horizon: u64) -> Self {
        assert!(horizon > 0, "wheel horizon must be positive");
        let slot_count = usize::try_from(horizon + 1).expect("horizon fits in memory");
        TimingWheel {
            slots: (0..slot_count).map(|_| Vec::new()).collect(),
            occupied: vec![0; slot_count.div_ceil(64)],
            now: 0,
            pending: 0,
            horizon,
            promoted: (0..slot_count).map(|_| Vec::new()).collect(),
            promoted_occupied: vec![0; slot_count.div_ceil(64)],
            promoted_pending: 0,
            coarse: (0..COARSE_BUCKETS).map(|_| Vec::new()).collect(),
            coarse_mask: 0,
            coarse_len: 0,
            coarse_min: u64::MAX,
            far: BinaryHeap::new(),
            far_parked: 0,
            overflow_scheduled: 0,
            free: Vec::new(),
            promote_buf: Vec::new(),
        }
    }

    /// One coarse granule: the tick span of a single coarse bucket.
    fn granule(&self) -> u64 {
        self.horizon + 1
    }

    /// Largest `at − now` the coarse tier accepts. 63 granules (not 64): the
    /// live range `(now, now + 63·granule]` then spans at most 64 distinct
    /// granule indices, so `(at / granule) % 64` is injective over it and a
    /// bucket never mixes entries of two granules.
    fn coarse_span(&self) -> u64 {
        (COARSE_BUCKETS - 1) * self.granule()
    }

    /// Total number of pending events (fine slots plus every overflow tier).
    pub fn len(&self) -> usize {
        self.pending + self.promoted_pending + self.coarse_len + self.far.len()
    }

    /// How many events ever fell through to the last-resort far heap — the
    /// `O(log n)` tier the hierarchical coarse wheel exists to keep empty.
    /// The outage adversaries' multi-`τ` delays all land in the coarse tier
    /// (its span is ~63 `τ`), so a non-zero value here means an adversary
    /// exceeded the design envelope.
    pub fn far_parked(&self) -> u64 {
        self.far_parked
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Earliest tick held by any overflow tier (promoted, coarse or far), or
    /// `None` when all three are empty. This is exactly the set the old
    /// implementation kept in its single overflow heap, so every consumer
    /// (window caps, next-tick picks) sees the same minimum it used to.
    fn overflow_next(&self) -> Option<u64> {
        let mut next = if self.coarse_len > 0 { self.coarse_min } else { u64::MAX };
        if self.promoted_pending > 0 {
            next = next.min(self.next_time_in(&self.promoted_occupied));
        }
        if let Some(e) = self.far.peek() {
            next = next.min(e.at);
        }
        (next != u64::MAX).then_some(next)
    }

    /// Absolute tick of the earliest pending event (any tier), or `None` if
    /// the wheel is empty. The sharded engine's coordinator peeks every shard
    /// wheel through this to pick the global next tick.
    pub fn next_tick(&self) -> Option<u64> {
        let wheel_next = (self.pending > 0).then(|| self.next_occupied_time());
        match (wheel_next, self.overflow_next()) {
            (None, None) => None,
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (Some(a), Some(b)) => Some(a.min(b)),
        }
    }

    /// Advances the wheel's clock to absolute tick `t` without draining anything.
    ///
    /// The sharded engine calls this on every shard wheel that has no events at
    /// the tick being processed: keeping the clocks in lock-step keeps the
    /// in-horizon test of [`EventScheduler::schedule`] — and hence slot placement
    /// and overflow accounting — identical to a single global wheel's.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if an event at or before `t` is still pending,
    /// or if `t` is in the past.
    pub fn advance_to(&mut self, t: u64) {
        debug_assert!(t >= self.now, "the clock only moves forward");
        debug_assert!(
            self.next_tick().is_none_or(|next| next > t),
            "cannot advance past a pending event"
        );
        self.now = t;
        // Promote on every clock advance, *before* any schedule call at the
        // new time: a later schedule may direct-insert into a promoted slot,
        // and the promoted-slot seq order only holds if everything older was
        // already promoted.
        self.promote();
    }

    /// Resets an *empty* wheel to absolute tick 0, keeping every allocation
    /// (slot vectors, recycled drain buffers, heap capacity) for the next
    /// run. This is the engine-recycling reset contract (DESIGN.md §11):
    /// every field that can influence a schedule is restored to exactly its
    /// `new()` value, while capacity — which no scheduling decision ever
    /// observes — is retained.
    ///
    /// # Panics
    ///
    /// Panics if any event is still pending: a recycled wheel must start
    /// provably empty.
    pub fn reset(&mut self) {
        assert!(self.is_empty(), "only an empty wheel can be reset for reuse");
        self.now = 0;
        self.occupied.fill(0);
        self.promoted_occupied.fill(0);
        self.coarse_mask = 0;
        self.coarse_min = u64::MAX;
        self.far_parked = 0;
        self.overflow_scheduled = 0;
    }

    /// The largest window end tick (inclusive) up to which this wheel's
    /// occupancy bitset alone describes every pending event, capped by `end`.
    /// Two caps apply: ticks beyond `now + horizon` cannot hold wheel entries
    /// (so the bitset says nothing about them), and the earliest
    /// overflow-classified entry — invisible to the fine bitset, whichever
    /// tier it sits in — must stay strictly outside the window. The sharded
    /// engine's batch-window probe intersects this across all shard wheels
    /// before enumerating occupied ticks.
    pub fn window_cap(&self, end: u64) -> u64 {
        let mut cap = end.min(self.now + self.horizon);
        if let Some(at) = self.overflow_next() {
            cap = cap.min(at.saturating_sub(1));
        }
        cap
    }

    /// Appends to `out` the absolute ticks in `(now, end]` whose wheel slot is
    /// non-empty, in ascending order. Callers must first cap `end` with
    /// [`TimingWheel::window_cap`] so the bitset walk is exhaustive (no
    /// beyond-horizon slots, no overflow entries hiding inside the window).
    pub fn occupied_ticks_within(&self, end: u64, out: &mut Vec<u64>) {
        if self.pending == 0 || end <= self.now {
            return;
        }
        debug_assert!(end - self.now <= self.horizon, "cap end with window_cap first");
        let len = self.slots.len();
        let cur = (self.now % len as u64) as usize;
        // Pending events live in (now, now + horizon], i.e. every slot except
        // `cur` maps to exactly one absolute tick in that range: slots after
        // `cur` belong to this wheel revolution, slots before it to the next.
        let segments =
            [(cur + 1, len, self.now - cur as u64), (0, cur, self.now + len as u64 - cur as u64)];
        for (from, stop, base) in segments {
            let mut i = from;
            while let Some(idx) = bitset::find_set_from(&self.occupied, i) {
                if idx >= stop {
                    break;
                }
                let t = base + idx as u64;
                if t > end {
                    return;
                }
                out.push(t);
                i = idx + 1;
            }
        }
    }

    /// Absolute tick of the earliest non-empty slot. Requires `pending > 0`.
    fn next_occupied_time(&self) -> u64 {
        debug_assert!(self.pending > 0);
        self.next_time_in(&self.occupied)
    }

    /// Absolute tick of the earliest set bit in `occupied` (the fine or the
    /// promoted wheel's bitset — both wheels share the slot geometry and hold
    /// only ticks in `(now, now + horizon]`). Requires a set bit.
    fn next_time_in(&self, occupied: &[u64]) -> u64 {
        let len = self.slots.len();
        let cur = (self.now % len as u64) as usize;
        let idx = bitset::find_set_from(occupied, cur + 1)
            .or_else(|| bitset::find_set_from(occupied, 0))
            .expect("a pending entry implies an occupied slot");
        debug_assert_ne!(idx, cur, "the current slot was drained and delays are positive");
        let d = if idx > cur { idx - cur } else { idx + len - cur };
        self.now + d as u64
    }

    /// Inserts an overflow-classified entry into the promoted wheel. The
    /// caller guarantees `at` is in `[now, now + horizon]` (equality with
    /// `now` happens in `take_due`, which promotes tick `t`'s own entries
    /// just before draining them) and that `seq` exceeds every seq already in
    /// `at`'s promoted slot (promotions run oldest-first on every clock
    /// advance, and direct inserts draw monotonically increasing seqs, so
    /// insertion order is seq order).
    fn insert_promoted(&mut self, at: u64, seq: u64, payload: T) {
        debug_assert!(at >= self.now && at - self.now <= self.horizon);
        let idx = (at % self.slots.len() as u64) as usize;
        if self.promoted[idx].is_empty() {
            if self.promoted[idx].capacity() == 0 {
                if let Some(buf) = self.free.pop() {
                    self.promoted[idx] = buf;
                }
            }
            bitset::set(&mut self.promoted_occupied, idx);
        }
        debug_assert!(
            self.promoted[idx].last().is_none_or(|&(s, _)| s < seq),
            "promoted-slot insertion order must be seq order"
        );
        self.promoted[idx].push((seq, payload));
        self.promoted_pending += 1;
    }

    /// Moves every far/coarse entry whose tick is now within
    /// `(now, now + horizon]` into the promoted wheel. Runs on every clock
    /// advance, before any schedule call at the new time.
    ///
    /// Order matters twice: far entries move first (for the same tick their
    /// seqs are strictly smaller than any coarse entry's — a far park means a
    /// logical origin more than a coarse span earlier, and seq draws are
    /// monotone in logical time), and coarse candidates are sorted by `seq`
    /// before insertion (coarse buckets are unordered).
    fn promote(&mut self) {
        let bound = self.now + self.horizon;
        while self.far.peek().is_some_and(|e| e.at <= bound) {
            let e = self.far.pop().expect("peeked");
            self.insert_promoted(e.at, e.seq, e.payload);
        }
        if self.coarse_len == 0 || self.coarse_min > bound {
            return;
        }
        // Promotable coarse entries have ticks in (now, now + horizon], a
        // range shorter than one granule: at most the two buckets holding
        // granules now/granule and bound/granule can contain them. The first
        // bucket empties completely (all its ticks are ≤ bound); the second
        // may keep its later entries.
        let granule = self.granule();
        let b0 = (self.now / granule) % COARSE_BUCKETS;
        let b1 = (bound / granule) % COARSE_BUCKETS;
        let mut moved = std::mem::take(&mut self.promote_buf);
        for b in [b0, b1] {
            if self.coarse_mask & (1 << b) == 0 {
                continue;
            }
            let bucket = &mut self.coarse[b as usize];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].0 <= bound {
                    moved.push(bucket.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            if bucket.is_empty() {
                self.coarse_mask &= !(1 << b);
            }
            if b0 == b1 {
                break;
            }
        }
        if !moved.is_empty() {
            self.coarse_len -= moved.len();
            moved.sort_unstable_by_key(|&(_, seq, _)| seq);
            for (at, seq, payload) in moved.drain(..) {
                self.insert_promoted(at, seq, payload);
            }
            // Recompute the cached minimum over the surviving buckets.
            self.coarse_min = u64::MAX;
            let mut mask = self.coarse_mask;
            while mask != 0 {
                let b = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                for &(at, _, _) in &self.coarse[b] {
                    self.coarse_min = self.coarse_min.min(at);
                }
            }
        }
        self.promote_buf = moved;
    }
}

impl<T> TimingWheel<T> {
    /// [`EventScheduler::schedule`] with the slot-or-overflow decision taken
    /// against an explicit logical origin `from ≤ self.now` instead of the
    /// wheel clock. The sharded engine advances its wheels to a batched
    /// window's last tick *before* the merge replays the window's events, so
    /// a merge-time schedule must classify overflow exactly as the serial
    /// wheel did at the event's own tick, or `overflow_scheduled` (and the
    /// window cap) would depend on the batching mode. Parking a would-fit
    /// entry in the overflow heap is harmless: seq draws are monotone in
    /// logical time, so overflow entries of a tick still sort before any slot
    /// entry of the same tick.
    pub(crate) fn schedule_from(&mut self, from: u64, at: u64, seq: u64, payload: T) {
        debug_assert!(at > self.now, "events must be scheduled in the strict future");
        debug_assert!(from <= self.now, "the logical origin cannot trail the wheel clock");
        if at - from <= self.horizon {
            let idx = (at % self.slots.len() as u64) as usize;
            if self.slots[idx].is_empty() {
                if self.slots[idx].capacity() == 0 {
                    if let Some(buf) = self.free.pop() {
                        self.slots[idx] = buf;
                    }
                }
                bitset::set(&mut self.occupied, idx);
            }
            debug_assert!(
                self.slots[idx].last().is_none_or(|&(s, _)| s < seq),
                "slot insertion order must be seq order"
            );
            self.slots[idx].push((seq, payload));
            self.pending += 1;
        } else {
            self.overflow_scheduled += 1;
            // Overflow-classified: pick the innermost tier the tick fits,
            // measured from the *current* clock (the logical origin only
            // decides classification; placement is a pure internal concern
            // and every tier drains at the exact same tick in the same order).
            if at - self.now <= self.horizon {
                self.insert_promoted(at, seq, payload);
            } else if at - self.now <= self.coarse_span() {
                let b = ((at / self.granule()) % COARSE_BUCKETS) as usize;
                self.coarse[b].push((at, seq, payload));
                self.coarse_mask |= 1 << b;
                self.coarse_len += 1;
                self.coarse_min = self.coarse_min.min(at);
            } else {
                self.far_parked += 1;
                self.far.push(MinEntry { at, seq, payload });
            }
        }
    }
}

impl<T> EventScheduler<T> for TimingWheel<T> {
    fn schedule(&mut self, at: u64, seq: u64, payload: T) {
        let now = self.now;
        self.schedule_from(now, at, seq, payload);
    }

    fn take_due(&mut self, due: &mut Vec<(u64, T)>) -> Option<u64> {
        let t = self.next_tick()?;
        // Advance the clock first, then promote: tick `t`'s overflow entries
        // (wherever they were parked) all land in the promoted slot of `t`,
        // in ascending seq order.
        self.now = t;
        self.promote();
        let idx = (t % self.slots.len() as u64) as usize;
        // Overflow-classified entries of tick `t` were scheduled more than a
        // horizon before any fine entry of tick `t`, so their seqs are
        // strictly smaller: drain the promoted slot first to keep `due` in
        // ascending seq order. (A non-empty slot at `idx` can only hold tick
        // `t`: both wheels span `(now, now + horizon]`, and `t` is the
        // earliest pending tick.)
        if self.promoted_pending > 0 && !self.promoted[idx].is_empty() {
            let mut buf = std::mem::take(&mut self.promoted[idx]);
            bitset::clear(&mut self.promoted_occupied, idx);
            self.promoted_pending -= buf.len();
            due.append(&mut buf);
            self.free.push(buf);
        }
        if self.pending > 0 && !self.slots[idx].is_empty() {
            let mut buf = std::mem::take(&mut self.slots[idx]);
            bitset::clear(&mut self.occupied, idx);
            self.pending -= buf.len();
            due.append(&mut buf);
            self.free.push(buf);
        }
        Some(t)
    }

    fn overflow_scheduled(&self) -> u64 {
        self.overflow_scheduled
    }
}

// ---------------------------------------------------------------------------
// Binary-heap reference scheduler
// ---------------------------------------------------------------------------

/// The pre-wheel scheduler: one global binary heap ordered by `(at, seq)`. Kept as
/// the executable specification for equivalence tests.
#[derive(Debug)]
pub struct HeapScheduler<T> {
    heap: BinaryHeap<MinEntry<T>>,
}

impl<T> HeapScheduler<T> {
    /// Creates an empty heap scheduler.
    pub fn new() -> Self {
        HeapScheduler { heap: BinaryHeap::new() }
    }
}

impl<T> Default for HeapScheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventScheduler<T> for HeapScheduler<T> {
    fn schedule(&mut self, at: u64, seq: u64, payload: T) {
        self.heap.push(MinEntry { at, seq, payload });
    }

    fn take_due(&mut self, due: &mut Vec<(u64, T)>) -> Option<u64> {
        let first = self.heap.pop()?;
        let t = first.at;
        due.push((first.seq, first.payload));
        while self.heap.peek().is_some_and(|e| e.at == t) {
            let e = self.heap.pop().expect("peeked");
            due.push((e.seq, e.payload));
        }
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all<S: EventScheduler<u32>>(sched: &mut S) -> Vec<(u64, Vec<(u64, u32)>)> {
        let mut out = Vec::new();
        let mut due = Vec::new();
        while let Some(t) = sched.take_due(&mut due) {
            out.push((t, due.clone()));
            due.clear();
        }
        out
    }

    #[test]
    fn wheel_delivers_in_time_then_seq_order() {
        let mut w = TimingWheel::new(1000);
        w.schedule(500, 0, 10);
        w.schedule(3, 1, 11);
        w.schedule(500, 2, 12);
        w.schedule(1000, 3, 13);
        let batches = drain_all(&mut w);
        assert_eq!(
            batches,
            vec![(3, vec![(1, 11)]), (500, vec![(0, 10), (2, 12)]), (1000, vec![(3, 13)]),]
        );
    }

    #[test]
    fn wheel_skips_empty_slots() {
        let mut w = TimingWheel::new(1000);
        // Two far-apart ticks: take_due must jump straight between them without
        // visiting the ~990 empty slots in between.
        w.schedule(7, 0, 1);
        w.schedule(999, 1, 2);
        let mut due = Vec::new();
        assert_eq!(w.take_due(&mut due), Some(7));
        assert_eq!(due, vec![(0, 1)]);
        due.clear();
        assert_eq!(w.take_due(&mut due), Some(999));
        assert_eq!(due, vec![(1, 2)]);
        due.clear();
        assert_eq!(w.take_due(&mut due), None);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn wheel_rotates_across_the_horizon_boundary() {
        // Chain events so the absolute time crosses several multiples of the slot
        // count (horizon + 1): slot indices wrap but times must stay exact.
        let mut w = TimingWheel::new(10);
        let mut seq = 0;
        let mut now = 0;
        let mut seen = Vec::new();
        w.schedule(7, seq, 0);
        seq += 1;
        let mut due = Vec::new();
        while let Some(t) = w.take_due(&mut due) {
            assert!(t > now, "time must advance monotonically");
            now = t;
            seen.push(t);
            due.clear();
            if seq < 12 {
                // Re-schedule at the full horizon: exercises the slot that wraps
                // to the same index modulo (horizon + 1).
                w.schedule(now + 10, seq, seq as u32);
                seq += 1;
            }
        }
        assert_eq!(seen, (0..12).map(|i| 7 + 10 * i).collect::<Vec<u64>>());
    }

    #[test]
    fn wheel_parks_beyond_horizon_events_in_overflow() {
        let mut w = TimingWheel::new(1000);
        // 2500 is beyond the horizon from time 0: goes to overflow.
        w.schedule(2500, 0, 99);
        assert_eq!(w.len(), 1);
        w.schedule(600, 1, 1);
        let mut due = Vec::new();
        assert_eq!(w.take_due(&mut due), Some(600));
        due.clear();
        // Now 2500 is within the horizon of a *new* event: the wheel entry of the
        // same tick must come after the overflow entry (larger seq).
        w.schedule(2500, 2, 2);
        assert_eq!(w.take_due(&mut due), Some(2500));
        assert_eq!(due, vec![(0, 99), (2, 2)]);
        due.clear();
        assert_eq!(w.take_due(&mut due), None);
    }

    #[test]
    fn wheel_recycles_slot_buffers() {
        let mut w = TimingWheel::new(16);
        let mut due = Vec::new();
        for round in 0..100u64 {
            for i in 0..8 {
                w.schedule((round * 5) + 1 + (i % 3), round * 8 + i, i as u32);
            }
            while w.pending > 0 {
                w.take_due(&mut due);
                due.clear();
            }
            // The free list never grows beyond the number of simultaneously
            // occupied slots (3 distinct ticks per round here).
            assert!(w.free.len() <= 4, "free list leaked: {}", w.free.len());
        }
    }

    #[test]
    fn window_probe_enumerates_occupied_ticks_in_order() {
        let mut w = TimingWheel::new(1000);
        for (at, seq) in [(3u64, 0u64), (500, 1), (500, 2), (999, 3)] {
            w.schedule(at, seq, 0u32);
        }
        // No cap in play: every pending tick is within the horizon and there
        // is no overflow, so the probe sees all of them.
        assert_eq!(w.window_cap(900), 900);
        let mut out = Vec::new();
        w.occupied_ticks_within(w.window_cap(900), &mut out);
        assert_eq!(out, vec![3, 500]);
        out.clear();
        w.occupied_ticks_within(w.window_cap(2000), &mut out);
        assert_eq!(out, vec![3, 500, 999]);
        // end <= now and an empty wheel both yield nothing.
        out.clear();
        let empty: TimingWheel<u32> = TimingWheel::new(10);
        empty.occupied_ticks_within(5, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn window_probe_handles_slot_wraparound() {
        // Advance the wheel so `now % slot_count` sits mid-array, then schedule
        // ticks on both sides of the wrap boundary: enumeration must come back
        // in ascending absolute-tick order regardless of slot index order.
        let mut w = TimingWheel::new(10);
        w.schedule(8, 0, 0u32);
        let mut due = Vec::new();
        assert_eq!(w.take_due(&mut due), Some(8)); // now = 8, cur = 8 of 0..=10
        w.schedule(9, 1, 0); // slot 9 (this revolution)
        w.schedule(13, 2, 0); // slot 2 (next revolution)
        w.schedule(17, 3, 0); // slot 6 (next revolution)
        let mut out = Vec::new();
        w.occupied_ticks_within(w.window_cap(u64::MAX), &mut out);
        assert_eq!(out, vec![9, 13, 17]);
        out.clear();
        w.occupied_ticks_within(w.window_cap(13), &mut out);
        assert_eq!(out, vec![9, 13]);
    }

    #[test]
    fn window_cap_respects_horizon_and_overflow() {
        let mut w = TimingWheel::new(1000);
        assert_eq!(w.window_cap(5000), 1000, "no wheel entry can live past now + horizon");
        w.schedule(2500, 0, 0u32); // beyond-horizon: parks in overflow
        assert_eq!(w.window_cap(5000), 1000, "the horizon cap still binds first");
        let mut due = Vec::new();
        w.schedule(900, 1, 1);
        assert_eq!(w.take_due(&mut due), Some(900));
        due.clear();
        w.schedule(1700, 2, 2);
        assert_eq!(w.take_due(&mut due), Some(1700));
        // The overflow entry at 2500 is now inside the horizon but invisible to
        // the occupancy bitset: the cap must stop the window strictly before it.
        assert_eq!(w.window_cap(5000), 2499);
        assert_eq!(w.window_cap(2000), 2000);
        let mut out = Vec::new();
        w.occupied_ticks_within(w.window_cap(5000), &mut out);
        assert!(out.is_empty(), "the overflow entry must not appear as an occupied tick");
    }

    #[test]
    fn window_probe_is_exhaustive_up_to_the_exact_horizon_boundary() {
        // Slots span exactly (now, now + horizon]; the probe must see an event
        // sitting on the last representable tick, and the cap must refuse to
        // reach one tick further. Runs under Miri via the `scheduler::` filter.
        let mut w = TimingWheel::new(100);
        let mut due = Vec::new();
        w.schedule(40, 0, 0u32);
        assert_eq!(w.take_due(&mut due), Some(40)); // now = 40
        due.clear();
        w.schedule(140, 1, 1); // exactly now + horizon: last slot tick
        w.schedule(141, 2, 2); // one past it: must park in overflow
        assert_eq!(w.overflow_scheduled(), 1);
        // The overflow entry at 141 pins the cap to 140 — which here equals
        // the horizon cap, so the boundary tick itself stays probeable.
        assert_eq!(w.window_cap(u64::MAX), 140);
        let mut out = Vec::new();
        w.occupied_ticks_within(w.window_cap(u64::MAX), &mut out);
        assert_eq!(out, vec![140], "the boundary slot tick must be enumerated");
        // Draining both shows the overflow entry was adjacent, not lost.
        assert_eq!(w.take_due(&mut due), Some(140));
        due.clear();
        assert_eq!(w.take_due(&mut due), Some(141));
        assert_eq!(due, vec![(2, 2)]);
    }

    #[test]
    fn overflow_entries_adjacent_to_a_window_clip_its_cap() {
        // An overflow entry one tick past a probed window's last occupied tick
        // must not widen or shift the window; one tick *inside* it must clip
        // the cap below that occupied tick. Runs under Miri.
        let mut w = TimingWheel::new(1000);
        let mut due = Vec::new();
        w.schedule(1, 0, 0u32);
        assert_eq!(w.take_due(&mut due), Some(1)); // now = 1
        due.clear();
        w.schedule(300, 1, 1);
        w.schedule(500, 2, 2);
        // Adjacent overflow: an entry at 1002 parks (beyond the horizon from
        // its origin) one tick past the largest probeable tick, 1001.
        w.schedule_from(0, 1002, 3, 3);
        assert_eq!(w.overflow_scheduled(), 1);
        assert_eq!(w.window_cap(u64::MAX), 1001);
        let mut out = Vec::new();
        w.occupied_ticks_within(w.window_cap(u64::MAX), &mut out);
        assert_eq!(out, vec![300, 500]);
        // An overflow entry *between* two occupied ticks (parked long before
        // the wheel advanced into its range) clips the cap below the later
        // tick: the probe must stop at the earlier one.
        let mut w2 = TimingWheel::new(1000);
        w2.schedule(600, 0, 0u32);
        w2.schedule(1400, 1, 1); // beyond-horizon from time 0: overflow
        assert_eq!(w2.overflow_scheduled(), 1);
        assert_eq!(w2.take_due(&mut due), Some(600)); // now = 600
        due.clear();
        w2.schedule(800, 2, 2);
        w2.schedule(1500, 3, 3); // in-horizon slot past the overflow entry
        assert_eq!(w2.window_cap(u64::MAX), 1399);
        out.clear();
        w2.occupied_ticks_within(w2.window_cap(u64::MAX), &mut out);
        assert_eq!(out, vec![800], "the cap must hide ticks past the overflow entry");
    }

    #[test]
    fn schedule_from_classifies_overflow_by_the_logical_origin() {
        // The sharded merge schedules with wheels already advanced to the
        // window's last tick; the overflow decision must follow the logical
        // origin or the count would depend on the batching mode. A would-fit
        // entry parked in overflow still drains at its tick, before any slot
        // entry of that tick (its seq is necessarily smaller).
        let mut w = TimingWheel::new(1000);
        let mut due = Vec::new();
        w.schedule(5, 0, 0u32);
        assert_eq!(w.take_due(&mut due), Some(5));
        due.clear();
        w.advance_to(600); // the coordinator moved past a batched window
                           // Target 1200 fits from the wheel clock (600 + 1000) but not from the
                           // logical origin 150 the serial engine would have used.
        w.schedule_from(150, 1200, 1, 7);
        assert_eq!(w.overflow_scheduled(), 1, "classification follows the origin");
        w.schedule_from(600, 1200, 2, 8); // fits from its origin: slot entry
        assert_eq!(w.overflow_scheduled(), 1);
        assert_eq!(w.next_tick(), Some(1200));
        assert_eq!(w.take_due(&mut due), Some(1200));
        assert_eq!(due, vec![(1, 7), (2, 8)], "overflow drains before the slot at its tick");
    }

    #[test]
    fn far_tier_parks_beyond_the_coarse_span_and_drains_in_order() {
        // Horizon 10 → granule 11, coarse span 63 · 11 = 693: a delay past 693
        // must park in the far heap, count `far_parked`, and still drain at
        // its exact tick through promotion.
        let mut w = TimingWheel::new(10);
        let mut due = Vec::new();
        w.schedule(800, 0, 0u32); // 800 > 693: far
        assert_eq!(w.far_parked(), 1);
        assert_eq!(w.overflow_scheduled(), 1);
        w.schedule(400, 1, 1); // coarse (11 ≤ 400 ≤ 693)
        assert_eq!(w.far_parked(), 1);
        assert_eq!(w.len(), 2);
        assert_eq!(w.next_tick(), Some(400));
        assert_eq!(w.take_due(&mut due), Some(400));
        assert_eq!(due, vec![(1, 1)]);
        due.clear();
        // take_due jumps straight to 800: the far entry is promoted at the
        // moment the clock lands on its own tick (the `at == now` edge).
        assert_eq!(w.take_due(&mut due), Some(800));
        assert_eq!(due, vec![(0, 0)]);
        due.clear();
        assert_eq!(w.take_due(&mut due), None);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn all_tiers_merge_at_one_tick_in_seq_order() {
        // One tick fed from every tier — far park, coarse park, direct
        // promoted insert, fine slot — must drain as a single ascending-seq
        // batch. Runs under Miri via the `scheduler::` filter.
        let mut w = TimingWheel::new(10);
        let mut due = Vec::new();
        w.schedule(800, 0, 10u32); // from 0: beyond 693 → far
        w.advance_to(200);
        w.schedule(800, 1, 11); // from 200: overflow, 600 ≤ 693 → coarse
        w.advance_to(795); // promotes both into the slot of 800, far first
        assert_eq!(w.far_parked(), 1);
        w.schedule_from(300, 800, 2, 12); // overflow by origin, in-horizon → promoted
        w.schedule(800, 3, 13); // 5 ≤ horizon → fine slot
        assert_eq!(w.overflow_scheduled(), 3);
        assert_eq!(w.len(), 4);
        assert_eq!(w.take_due(&mut due), Some(800));
        assert_eq!(due, vec![(0, 10), (1, 11), (2, 12), (3, 13)]);
    }

    #[test]
    fn outage_shaped_overflow_never_reaches_the_far_heap() {
        // The 10%-overflow bench workload: delays in [1000, 5000) against a
        // 1000-tick horizon. Every overflow lands in the promoted or coarse
        // wheel (span 63 · 1001 = 63063), so the `BinaryHeap` far tier stays
        // empty — the hierarchical wheel replaces the old overflow-heap path
        // while the heap reference pins the schedule bit-identical.
        let mut state = 0xDEAD_BEEFu64;
        let mut rand = move |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let mut wheel = TimingWheel::new(1000);
        let mut heap = HeapScheduler::new();
        let (mut wd, mut hd) = (Vec::new(), Vec::new());
        let mut now = 0u64;
        for seq in 0..2000u64 {
            let delay = if rand(10) == 0 { 1000 + rand(4000) } else { 1 + rand(1000) };
            wheel.schedule(now + delay, seq, (seq % 97) as u32);
            heap.schedule(now + delay, seq, (seq % 97) as u32);
            if seq % 4 == 3 {
                let tw = wheel.take_due(&mut wd);
                assert_eq!(tw, heap.take_due(&mut hd));
                assert_eq!(wd, hd);
                now = tw.expect("events pending");
                wd.clear();
                hd.clear();
            }
        }
        assert!(wheel.overflow_scheduled() > 0, "the workload must exercise overflow");
        assert_eq!(wheel.far_parked(), 0, "outage-scale delays must stay out of the far heap");
    }

    #[test]
    #[cfg_attr(miri, ignore)] // 20×500-step fuzz loop — minutes under Miri for no extra UB coverage
    fn heap_and_wheel_agree_on_random_workloads() {
        // Deterministic pseudo-random interleaving of schedules and drains, with
        // occasional beyond-horizon delays; both schedulers must emit identical
        // (time, seq, payload) streams.
        let mut state = 0x9E37_79B9u64;
        let mut rand = move |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for _ in 0..20 {
            let mut wheel = TimingWheel::new(100);
            let mut heap = HeapScheduler::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            let mut wheel_out = Vec::new();
            let mut heap_out = Vec::new();
            let mut pending = 0i64;
            let (mut wd, mut hd) = (Vec::new(), Vec::new());
            for _ in 0..500 {
                if pending == 0 || rand(3) > 0 {
                    let burst = 1 + rand(4);
                    for _ in 0..burst {
                        // Mostly in-horizon delays, occasionally beyond the
                        // horizon (coarse tier), rarely beyond the coarse
                        // span of 63 · 101 = 6363 (far tier).
                        let delay = match rand(20) {
                            0 => 6400 + rand(8000),
                            1 | 2 => 100 + rand(400),
                            _ => 1 + rand(100),
                        };
                        wheel.schedule(now + delay, seq, (seq % 251) as u32);
                        heap.schedule(now + delay, seq, (seq % 251) as u32);
                        seq += 1;
                        pending += 1;
                    }
                } else {
                    let tw = wheel.take_due(&mut wd);
                    let th = heap.take_due(&mut hd);
                    assert_eq!(tw, th);
                    assert_eq!(wd, hd);
                    now = tw.expect("pending > 0");
                    pending -= wd.len() as i64;
                    wheel_out.extend(wd.drain(..).map(|(s, p)| (now, s, p)));
                    heap_out.extend(hd.drain(..).map(|(s, p)| (now, s, p)));
                }
            }
            assert_eq!(wheel_out, heap_out);
        }
    }
}
