//! Persistent worker pool for the sharded engine's parallel phase 1.
//!
//! The first threaded sharded engine spawned a fresh `std::thread::scope` per
//! tick — correct, but the spawn/join cost put a floor under the per-tick
//! overhead and welded the worker count to the shard count. This module
//! replaces it with N **long-lived** threads created once per run and fed work
//! over channels, so K shards can round-robin over W ≤ K workers and the two
//! knobs decouple (`ShardedOptions::shards` vs `ShardedOptions::workers`).
//!
//! The rendezvous protocol per tick (or batched window) is a strict barrier:
//!
//! 1. the coordinator moves each participating shard's [`ShardWork`] into the
//!    pool with [`WorkerPool::dispatch`] — task `slot` goes to worker
//!    `slot % workers`, a fixed assignment so no scheduling decision ever
//!    depends on thread timing;
//! 2. each worker runs the shared work function over the tasks it receives, in
//!    arrival order, catching panics so a poisoned task cannot wedge the run;
//! 3. the coordinator calls [`WorkerPool::collect`] exactly once per dispatch
//!    and does not proceed to the serial merge until every task is back.
//!
//! Workers never touch shared engine state: a task is owned exclusively by one
//! worker between `dispatch` and `collect`, and the work function only sees
//! `&mut` of that task (the shard/merge contract of [`crate::sharded`]). All
//! cross-thread communication is the two `mpsc` channel hops, which is what
//! the ThreadSanitizer CI job instruments.
//!
//! Panic discipline: a panicking work function is caught on the worker and
//! handed back as the [`PanicPayload`] of its `collect` result, so the
//! coordinator can keep collecting the remaining outstanding tasks (instead of
//! deadlocking on a dead worker) and then re-raise the first payload with
//! `std::panic::resume_unwind` — the engine's tests pin that protocol panics
//! surface with their original message.
//!
//! This module is the only place in the workspace allowed to create threads
//! (enforced by ds-lint's thread-spawn rule; see `ds-verify`).
//!
//! [`ShardWork`]: crate::sharded

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;

/// What a worker catches when the work function panics on a task: the payload
/// `std::panic::resume_unwind` re-raises.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// Handle to a running pool, valid inside the closure passed to
/// [`WorkerPool::run`]. `T` is the task type (the engine's per-shard work
/// unit); tasks move into the pool on dispatch and come back on collect.
pub struct WorkerPool<T> {
    /// One task channel per worker; task `slot` goes to `task_txs[slot % W]`.
    task_txs: Vec<mpsc::Sender<(usize, T)>>,
    /// Completed tasks, in per-worker completion order (the coordinator
    /// re-indexes by slot, so cross-worker arrival order carries no meaning).
    done_rx: mpsc::Receiver<(usize, T, Option<PanicPayload>)>,
}

impl<T> WorkerPool<T> {
    /// Spawns `workers` long-lived threads running `work` over dispatched
    /// tasks and hands a pool handle to `f`; returns `f`'s result after every
    /// worker has drained its queue and joined. The worker threads live
    /// exactly as long as the closure (they are scoped), so `work` and `T` may
    /// borrow from the caller's stack. Only this constructor needs `T: Send` —
    /// a handle that is merely mentioned (the engine's sequential path) does
    /// not.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` (a pool with no workers cannot make
    /// progress), or propagates a panic of `f` itself after joining the
    /// workers.
    pub fn run<R>(
        workers: usize,
        work: impl Fn(&mut T) + Clone + Send,
        f: impl FnOnce(&mut WorkerPool<T>) -> R,
    ) -> R
    where
        T: Send,
    {
        assert!(workers > 0, "a worker pool needs at least one worker");
        std::thread::scope(|scope| {
            let (done_tx, done_rx) = mpsc::channel();
            let mut task_txs = Vec::with_capacity(workers);
            for _ in 0..workers {
                let (task_tx, task_rx) = mpsc::channel::<(usize, T)>();
                task_txs.push(task_tx);
                let done_tx = done_tx.clone();
                let work = work.clone();
                scope.spawn(move || {
                    for (slot, mut task) in task_rx {
                        let panic = catch_unwind(AssertUnwindSafe(|| work(&mut task))).err();
                        // A send error means the coordinator is already gone
                        // (it panicked and dropped the handle); nothing left
                        // to hand the task back to.
                        let _ = done_tx.send((slot, task, panic));
                    }
                });
            }
            let mut pool = WorkerPool { task_txs, done_rx };
            let result = f(&mut pool);
            // Dropping the task senders ends every worker's receive loop; the
            // scope then joins them before `run` returns.
            drop(pool);
            result
        })
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.task_txs.len()
    }

    /// Sends `task` (identified by `slot`, typically the shard index) to
    /// worker `slot % workers`. Every dispatch must be matched by exactly one
    /// [`WorkerPool::collect`] before the barrier completes.
    pub fn dispatch(&mut self, slot: usize, task: T) {
        let w = slot % self.task_txs.len();
        self.task_txs[w].send((slot, task)).expect("worker threads outlive the handle");
    }

    /// Receives one completed task: its slot, the task itself (with the work
    /// function applied), and the panic payload if the work function panicked
    /// on it. Blocks until a worker finishes something; callers must not call
    /// it more times than they dispatched.
    pub fn collect(&mut self) -> (usize, T, Option<PanicPayload>) {
        self.done_rx.recv().expect("outstanding dispatches keep a worker alive")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_round_robin_and_come_back_transformed() {
        // 7 tasks over 3 workers: each task records which slot it was and the
        // work function doubles its value; collect must return every task
        // exactly once with the transform applied.
        let results = WorkerPool::run(
            3,
            |task: &mut (usize, u64)| task.1 *= 2,
            |pool| {
                assert_eq!(pool.workers(), 3);
                for slot in 0..7 {
                    pool.dispatch(slot, (slot, slot as u64 + 10));
                }
                let mut out = vec![None; 7];
                for _ in 0..7 {
                    let (slot, task, panic) = pool.collect();
                    assert!(panic.is_none());
                    assert_eq!(task.0, slot, "tasks must come back under their own slot");
                    out[slot] = Some(task.1);
                }
                out
            },
        );
        let expected: Vec<Option<u64>> = (0..7).map(|s| Some((s + 10) * 2)).collect();
        assert_eq!(results, expected);
    }

    #[test]
    fn a_single_worker_serves_every_slot_in_dispatch_order() {
        let order = WorkerPool::run(
            1,
            |task: &mut Vec<usize>| task.push(99),
            |pool| {
                for slot in 0..4 {
                    pool.dispatch(slot, vec![slot]);
                }
                (0..4).map(|_| pool.collect().1).collect::<Vec<_>>()
            },
        );
        // One worker processes its queue in arrival order, so completion order
        // is dispatch order.
        assert_eq!(order, vec![vec![0, 99], vec![1, 99], vec![2, 99], vec![3, 99]]);
    }

    #[test]
    fn panics_are_handed_back_not_propagated_by_workers() {
        // One of three tasks panics: the other two still come back completed,
        // and the payload carries the original message for resume_unwind.
        let payload = WorkerPool::run(
            2,
            |task: &mut u64| {
                if *task == 13 {
                    panic!("task 13 is cursed");
                }
                *task += 1;
            },
            |pool| {
                pool.dispatch(0, 13u64);
                pool.dispatch(1, 20);
                pool.dispatch(2, 30);
                let mut cursed = None;
                for _ in 0..3 {
                    let (_, task, panic) = pool.collect();
                    match panic {
                        Some(p) => cursed = Some(p),
                        None => assert!(task == 21 || task == 31),
                    }
                }
                cursed.expect("the cursed task must report its panic")
            },
        );
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "task 13 is cursed");
    }

    #[test]
    fn borrowed_work_functions_are_allowed() {
        // The scoped lifetime lets the work function close over the caller's
        // stack — the engine's work function borrows the delay model this way.
        let offset = 5u64;
        let total = WorkerPool::run(
            2,
            |task: &mut u64| *task += offset,
            |pool| {
                for slot in 0..4 {
                    pool.dispatch(slot, slot as u64);
                }
                (0..4).map(|_| pool.collect().1).sum::<u64>()
            },
        );
        assert_eq!(total, 6 + 4 * offset);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        WorkerPool::run(0, |_: &mut u64| {}, |_| {});
    }
}
