//! Adversarial message-delay models for the asynchronous engine.
//!
//! The asynchronous model bounds every message delay by an unknown time unit `τ`
//! (Section 1.1). Algorithms must be correct for *every* delay assignment; the delay
//! model plays the role of the adversary in the simulation. All models are
//! deterministic for a fixed seed, so experiments are reproducible.
//!
//! Most models assign delays within one `τ` — the timing wheel's horizon. The
//! composite [`DelayModel::Outage`] model deliberately exceeds it: links suffer
//! periodic outage windows several `τ` long, and messages injected during an
//! outage wait until it ends, producing beyond-horizon events that exercise the
//! scheduler's overflow heap (the model's delays are a worst case the paper's
//! analysis does not cover — it exists to stress the engine, not the theorems).

use crate::TICKS_PER_UNIT;
use ds_graph::NodeId;

/// A deterministic adversary assigning a delay (in ticks, `1..=TICKS_PER_UNIT`) to
/// each transmitted message.
#[derive(Clone, Debug, PartialEq)]
pub enum DelayModel {
    /// Every message takes exactly `τ` (the synchronous-looking worst case).
    Uniform,
    /// Every message takes a pseudo-random delay in `[min_ticks, τ]`, derived from a
    /// seed and the message's (source, destination, sequence number).
    Jitter { seed: u64, min_ticks: u64 },
    /// Links incident to nodes with index `< slow_below` are slow (`τ`), all other
    /// links are fast (1 tick). Models a cut of congested links.
    SlowCut { slow_below: usize },
    /// Delay alternates between fast and slow per message sequence number: messages
    /// whose sequence number is divisible by `period` take `τ`, others take 1 tick.
    /// Models bursty congestion.
    Bursty { period: u64 },
    /// Composite multi-unit adversary: every `period_units · τ` window, each
    /// undirected link goes down for `outage_units · τ` at a per-link,
    /// per-window pseudo-random offset. A message injected during an outage is
    /// delivered when the outage ends plus a jittered base delay — up to
    /// `(outage_units + 1) · τ`, i.e. *beyond* the timing wheel's one-`τ`
    /// horizon (the overflow heap absorbs these).
    Outage {
        /// Seed of the per-link window offsets and the per-message base jitter.
        seed: u64,
        /// Length of one outage period, in units of `τ` (must exceed `outage_units`).
        period_units: u64,
        /// Length of one outage window, in units of `τ` (at least 1).
        outage_units: u64,
    },
}

impl DelayModel {
    /// Adversary where every message takes the full time unit.
    pub fn uniform() -> Self {
        DelayModel::Uniform
    }

    /// Seeded pseudo-random jitter in `[1, τ]`.
    pub fn jitter(seed: u64) -> Self {
        DelayModel::Jitter { seed, min_ticks: 1 }
    }

    /// Seeded pseudo-random jitter in `[min_fraction · τ, τ]`.
    ///
    /// # Panics
    ///
    /// Panics if `min_fraction` is not in `(0, 1]`.
    pub fn jitter_at_least(seed: u64, min_fraction: f64) -> Self {
        assert!(min_fraction > 0.0 && min_fraction <= 1.0, "min_fraction must be in (0, 1]");
        DelayModel::Jitter {
            seed,
            min_ticks: ((TICKS_PER_UNIT as f64) * min_fraction).ceil().max(1.0) as u64,
        }
    }

    /// Links incident to low-index nodes are slow; the rest are fast.
    pub fn slow_cut(slow_below: usize) -> Self {
        DelayModel::SlowCut { slow_below }
    }

    /// Every `period`-th message (by global sequence number) is slow.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn bursty(period: u64) -> Self {
        assert!(period > 0, "period must be positive");
        DelayModel::Bursty { period }
    }

    /// Per-link outage windows of `outage_units · τ` every `period_units · τ`.
    ///
    /// # Panics
    ///
    /// Panics unless `period_units > outage_units >= 1`.
    pub fn outage(seed: u64, period_units: u64, outage_units: u64) -> Self {
        assert!(outage_units >= 1, "outage windows must last at least one unit");
        assert!(period_units > outage_units, "the period must exceed the outage window");
        DelayModel::Outage { seed, period_units, outage_units }
    }

    /// Delay in ticks for a message from `from` to `to` with global sequence
    /// number `seq`, injected at the start of the run. Equivalent to
    /// [`DelayModel::delay_ticks_at`] with `now == 0`; the single-`τ` models
    /// ignore the injection time entirely and always stay in
    /// `1..=TICKS_PER_UNIT`.
    pub fn delay_ticks(&self, from: NodeId, to: NodeId, seq: u64) -> u64 {
        self.delay_ticks_at(from, to, seq, 0)
    }

    /// Delay in ticks for a message from `from` to `to` with global sequence
    /// number `seq`, injected into its link at absolute tick `now` (which is part
    /// of the deterministic schedule, so delays remain reproducible).
    ///
    /// Single-`τ` models return values in `1..=TICKS_PER_UNIT`; the composite
    /// [`DelayModel::Outage`] model can return up to
    /// `(outage_units + 1) · TICKS_PER_UNIT`.
    pub fn delay_ticks_at(&self, from: NodeId, to: NodeId, seq: u64, now: u64) -> u64 {
        let d = match *self {
            DelayModel::Uniform => TICKS_PER_UNIT,
            DelayModel::Jitter { seed, min_ticks } => {
                let h = splitmix(seed ^ mix3(from.index() as u64, to.index() as u64, seq));
                min_ticks + h % (TICKS_PER_UNIT - min_ticks + 1)
            }
            DelayModel::SlowCut { slow_below } => {
                if from.index() < slow_below || to.index() < slow_below {
                    TICKS_PER_UNIT
                } else {
                    1
                }
            }
            DelayModel::Bursty { period } => {
                if seq.is_multiple_of(period) {
                    TICKS_PER_UNIT
                } else {
                    1
                }
            }
            DelayModel::Outage { seed, period_units, outage_units } => {
                // Per-message base jitter in [1, τ].
                let h = splitmix(
                    seed.wrapping_add(0xA5A5) ^ mix3(from.index() as u64, to.index() as u64, seq),
                );
                let base = 1 + h % TICKS_PER_UNIT;
                // The link's outage window within the current period: an
                // undirected per-link, per-window offset (both directions of a
                // link go down together).
                let period = period_units * TICKS_PER_UNIT;
                let outage = outage_units * TICKS_PER_UNIT;
                let (a, b) = if from <= to { (from, to) } else { (to, from) };
                let window = now / period;
                let wh = splitmix(seed ^ mix3(a.index() as u64, b.index() as u64, window));
                let start = window * period + wh % (period - outage + 1);
                return if (start..start + outage).contains(&now) {
                    (start + outage - now) + base
                } else {
                    base
                };
            }
        };
        d.clamp(1, TICKS_PER_UNIT)
    }

    /// The asynchronous engine's timing-wheel horizon, in ticks: the delay bound
    /// of the single-`τ` models. Models may exceed it — [`DelayModel::Outage`]
    /// does, by design — in which case the beyond-horizon events park in the
    /// scheduler's overflow heap rather than a wheel slot.
    pub fn max_delay_ticks(&self) -> u64 {
        TICKS_PER_UNIT
    }

    /// A lower bound on every delay this model can ever draw, in ticks (at
    /// least 1: zero-delay messages do not exist). The sharded engine's
    /// batched windows use this bound to size a window's *static* part: any
    /// stretch of consecutive ticks shorter than `min_delay_ticks()` is
    /// causality-free, because an event processed inside it cannot schedule
    /// another event that still lands inside it, so those ticks can share one
    /// parallel phase 1. Ticks past the bound still batch — the engine feeds
    /// them through its in-window heap instead (DESIGN.md §6.3) — so the
    /// floor no longer gates batching on or off, it only splits the window.
    ///
    /// The bound is a *per-draw guarantee*, which is why the composite models
    /// pin it at 1: [`DelayModel::SlowCut`]'s fast links and
    /// [`DelayModel::Bursty`]'s off-period messages take exactly 1 tick, and
    /// [`DelayModel::Outage`]'s per-message base jitter is drawn from
    /// `[1, τ]`, so each of them *can* produce a 1-tick delay even when a
    /// particular run never does. A model whose realized delays all exceed
    /// the floor (`bursty(1)` delivers every message at exactly `τ`) still
    /// advertises 1 here — whether its schedule batches is then decided
    /// per window by the wheels' actual occupancy, not by this bound.
    pub fn min_delay_ticks(&self) -> u64 {
        match *self {
            DelayModel::Uniform => TICKS_PER_UNIT,
            DelayModel::Jitter { min_ticks, .. } => min_ticks.max(1),
            DelayModel::SlowCut { .. } | DelayModel::Bursty { .. } | DelayModel::Outage { .. } => 1,
        }
    }

    /// The standard set of adversaries exercised by the integration tests and the
    /// robustness experiment (E8 in DESIGN.md).
    pub fn standard_suite(seed: u64) -> Vec<DelayModel> {
        vec![
            DelayModel::uniform(),
            DelayModel::jitter(seed),
            DelayModel::jitter_at_least(seed.wrapping_add(1), 0.5),
            DelayModel::slow_cut(3),
            DelayModel::bursty(3),
        ]
    }
}

fn mix3(a: u64, b: u64, c: u64) -> u64 {
    splitmix(a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.rotate_left(17) ^ c.rotate_left(43))
}

/// SplitMix64 finalizer: a small, dependency-free deterministic hash.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_always_max() {
        let d = DelayModel::uniform();
        for seq in 0..10 {
            assert_eq!(d.delay_ticks(NodeId(0), NodeId(1), seq), TICKS_PER_UNIT);
        }
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let d = DelayModel::jitter(42);
        for seq in 0..200 {
            let x = d.delay_ticks(NodeId(3), NodeId(7), seq);
            assert!((1..=TICKS_PER_UNIT).contains(&x));
            assert_eq!(x, d.delay_ticks(NodeId(3), NodeId(7), seq));
        }
    }

    #[test]
    fn jitter_at_least_respects_floor() {
        let d = DelayModel::jitter_at_least(1, 0.5);
        for seq in 0..200 {
            assert!(d.delay_ticks(NodeId(0), NodeId(1), seq) >= TICKS_PER_UNIT / 2);
        }
    }

    #[test]
    fn slow_cut_distinguishes_links() {
        let d = DelayModel::slow_cut(2);
        assert_eq!(d.delay_ticks(NodeId(1), NodeId(5), 0), TICKS_PER_UNIT);
        assert_eq!(d.delay_ticks(NodeId(5), NodeId(6), 0), 1);
    }

    #[test]
    fn bursty_alternates() {
        let d = DelayModel::bursty(2);
        assert_eq!(d.delay_ticks(NodeId(0), NodeId(1), 0), TICKS_PER_UNIT);
        assert_eq!(d.delay_ticks(NodeId(0), NodeId(1), 1), 1);
    }

    #[test]
    fn standard_suite_is_nonempty_and_valid() {
        for d in DelayModel::standard_suite(9) {
            let x = d.delay_ticks(NodeId(0), NodeId(1), 7);
            assert!((1..=TICKS_PER_UNIT).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "min_fraction")]
    fn jitter_at_least_rejects_zero() {
        let _ = DelayModel::jitter_at_least(0, 0.0);
    }

    #[test]
    fn min_delay_bounds_every_drawn_delay() {
        let mut models = DelayModel::standard_suite(11);
        models.push(DelayModel::outage(11, 5, 2));
        for d in models {
            let min = d.min_delay_ticks();
            assert!(min >= 1, "{d:?}: zero minimum delay");
            assert!(min <= d.max_delay_ticks(), "{d:?}");
            for seq in 0..200 {
                for now in [0u64, 137, 4 * TICKS_PER_UNIT + 3] {
                    let x = d.delay_ticks_at(NodeId(2), NodeId(5), seq, now);
                    assert!(x >= min, "{d:?}: drew {x} below the advertised minimum {min}");
                }
            }
        }
    }

    #[test]
    fn min_delay_is_the_static_window_bound_the_sharded_engine_expects() {
        // Pinned per model: uniform and floored jitter guarantee wide static
        // window parts; the 1-tick-capable adversaries (including composite
        // outage, whose base jitter is drawn from [1, τ]) pin the floor at 1
        // and rely on the dynamic occupancy probe for their batching.
        assert_eq!(DelayModel::uniform().min_delay_ticks(), TICKS_PER_UNIT);
        assert_eq!(DelayModel::jitter(9).min_delay_ticks(), 1);
        assert_eq!(DelayModel::jitter_at_least(9, 0.5).min_delay_ticks(), TICKS_PER_UNIT / 2);
        assert_eq!(DelayModel::slow_cut(3).min_delay_ticks(), 1);
        assert_eq!(DelayModel::bursty(3).min_delay_ticks(), 1);
        assert_eq!(DelayModel::outage(1, 5, 2).min_delay_ticks(), 1);
    }

    #[test]
    fn bursty_one_realizes_only_delays_above_its_floor() {
        // `bursty(1)` marks every message slow: each draw is exactly τ while
        // the advertised floor stays at the conservative 1. The floor is a
        // per-draw guarantee, not a realized minimum — the engine-level
        // consequence (such a model batches only what the dynamic occupancy
        // gate finds, here nothing, since every event sits on the τ grid) is
        // pinned by `sharded::tests::batching_counters_respect_the_soundness_gate`.
        let d = DelayModel::bursty(1);
        assert_eq!(d.min_delay_ticks(), 1);
        for seq in 0..200 {
            assert_eq!(d.delay_ticks(NodeId(3), NodeId(4), seq), TICKS_PER_UNIT);
        }
    }

    #[test]
    fn outage_delays_are_deterministic_and_can_exceed_the_horizon() {
        let d = DelayModel::outage(7, 8, 3);
        let mut beyond = 0u64;
        for link in 0..40u64 {
            for now in (0..8 * TICKS_PER_UNIT).step_by(137) {
                let x =
                    d.delay_ticks_at(NodeId(link as usize), NodeId(link as usize + 1), link, now);
                assert!(x >= 1);
                assert!(x <= 4 * TICKS_PER_UNIT, "delay {x} above (outage+1)·τ");
                assert_eq!(
                    x,
                    d.delay_ticks_at(NodeId(link as usize), NodeId(link as usize + 1), link, now)
                );
                if x > TICKS_PER_UNIT {
                    beyond += 1;
                }
            }
        }
        assert!(beyond > 0, "some injection must land in an outage window");
    }

    #[test]
    fn outage_is_symmetric_per_link() {
        // Both directions of a link share the outage window: any instant whose
        // remaining wait exceeds one τ (delay > 2τ implies wait > τ) must delay
        // the reverse direction beyond one τ too (its delay is wait + base ≥
        // wait + 1). Only the per-message base jitter may differ.
        let d = DelayModel::outage(3, 6, 2);
        let (u, v) = (NodeId(4), NodeId(9));
        let mut saw_outage = false;
        for now in 0..6 * TICKS_PER_UNIT {
            let a = d.delay_ticks_at(u, v, 0, now);
            let b = d.delay_ticks_at(v, u, 0, now);
            if a > 2 * TICKS_PER_UNIT {
                saw_outage = true;
                assert!(b > TICKS_PER_UNIT, "window not shared at {now}: a={a} b={b}");
            }
        }
        assert!(saw_outage);
    }

    #[test]
    #[should_panic(expected = "period must exceed")]
    fn outage_rejects_windows_longer_than_the_period() {
        let _ = DelayModel::outage(1, 2, 2);
    }
}
