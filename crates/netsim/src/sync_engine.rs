//! Lock-step synchronous executor for event-driven algorithms.
//!
//! This engine defines the ground-truth execution of an algorithm `A` and measures
//! its synchronous complexities: the number of rounds `T(A)` and the number of
//! messages `M(A)`.

use crate::async_engine::SimError;
use crate::event_driven::{canonical_batch, EventDriven, PulseCtx};
use crate::metrics::{MessageClass, RunMetrics};
use ds_graph::{Graph, NodeId};

/// Result of a synchronous run.
#[derive(Debug)]
pub struct SyncReport<A: EventDriven> {
    /// Round at which the last node produced its output (`T(A)` in the paper);
    /// `None` if some node never produced an output.
    pub rounds_to_output: Option<u64>,
    /// Rounds until the network became quiescent (no pending messages).
    pub rounds_to_quiescence: u64,
    /// Total number of algorithm messages (`M(A)` in the paper).
    pub messages: u64,
    /// Standardized metrics (for uniform reporting next to asynchronous runs).
    pub metrics: RunMetrics,
    /// The per-node algorithm instances after the run (holding outputs and state).
    pub nodes: Vec<A>,
}

impl<A: EventDriven> SyncReport<A> {
    /// Collects the per-node outputs, `None` where a node produced none.
    pub fn outputs(&self) -> Vec<Option<A::Output>> {
        self.nodes.iter().map(|n| n.output()).collect()
    }
}

/// Runs the event-driven algorithm synchronously.
///
/// `make` constructs the per-node instance. The run stops when no messages are in
/// flight, or fails with [`SimError::RoundLimitExceeded`] after `max_rounds`.
///
/// # Errors
///
/// * [`SimError::NotNeighbor`] if an algorithm sends to a non-neighbor.
/// * [`SimError::RoundLimitExceeded`] if the algorithm does not quiesce in time.
pub fn run_sync<A, F>(
    graph: &Graph,
    mut make: F,
    max_rounds: u64,
) -> Result<SyncReport<A>, SimError>
where
    A: EventDriven,
    F: FnMut(NodeId) -> A,
{
    let n = graph.node_count();
    let mut nodes: Vec<A> = graph.nodes().map(&mut make).collect();
    let mut metrics = RunMetrics::default();
    let mut messages: u64 = 0;

    // Messages to be delivered at the *next* pulse, per recipient; `delivered` is
    // the previous round's inbox, double-buffered so no per-round allocation.
    let mut inbox: Vec<Vec<(NodeId, A::Msg)>> = vec![Vec::new(); n];
    let mut delivered: Vec<Vec<(NodeId, A::Msg)>> = vec![Vec::new(); n];
    // Whether the node sent messages at the previous pulse (self-trigger).
    let mut sent_prev: Vec<bool> = vec![false; n];
    let mut sent_now: Vec<bool> = vec![false; n];
    // Recycled outbox buffer, threaded through every pulse evaluation.
    let mut outbox_pool: Vec<(NodeId, A::Msg)> = Vec::new();
    let mut pending: usize = 0;

    let deliver = |from: NodeId,
                   ctx: &mut PulseCtx<A::Msg>,
                   inbox: &mut Vec<Vec<(NodeId, A::Msg)>>,
                   sent_now: &mut Vec<bool>,
                   pending: &mut usize,
                   messages: &mut u64,
                   metrics: &mut RunMetrics|
     -> Result<(), SimError> {
        for (to, msg) in ctx.drain_outbox() {
            if !graph.has_edge(from, to) {
                return Err(SimError::NotNeighbor { from, to });
            }
            *messages += 1;
            *pending += 1;
            metrics.record_message(MessageClass::Algorithm);
            inbox[to.index()].push((from, msg));
            sent_now[from.index()] = true;
        }
        Ok(())
    };

    // Pulse 0: initiators inject their messages.
    for v in graph.nodes() {
        let mut ctx = PulseCtx::with_buffer(v, std::mem::take(&mut outbox_pool));
        nodes[v.index()].on_init(&mut ctx);
        deliver(v, &mut ctx, &mut inbox, &mut sent_now, &mut pending, &mut messages, &mut metrics)?;
        outbox_pool = ctx.into_buffer();
    }
    std::mem::swap(&mut sent_prev, &mut sent_now);

    let mut rounds_to_output = all_done_round(&nodes, 0);
    let mut round: u64 = 0;

    while pending > 0 || sent_prev.iter().any(|&s| s) {
        round += 1;
        if round > max_rounds {
            return Err(SimError::RoundLimitExceeded { limit: max_rounds });
        }

        std::mem::swap(&mut inbox, &mut delivered);
        pending = 0;

        for v in graph.nodes() {
            let batch = &mut delivered[v.index()];
            let triggered = !batch.is_empty() || sent_prev[v.index()];
            sent_prev[v.index()] = false;
            if !triggered {
                continue;
            }
            canonical_batch(batch);
            let mut ctx = PulseCtx::with_buffer(v, std::mem::take(&mut outbox_pool));
            nodes[v.index()].on_pulse(batch, &mut ctx);
            batch.clear();
            deliver(
                v,
                &mut ctx,
                &mut inbox,
                &mut sent_now,
                &mut pending,
                &mut messages,
                &mut metrics,
            )?;
            outbox_pool = ctx.into_buffer();
        }
        std::mem::swap(&mut sent_prev, &mut sent_now);

        if rounds_to_output.is_none() {
            rounds_to_output = all_done_round(&nodes, round);
        }
    }

    metrics.time_to_output = rounds_to_output.map(|r| r as f64);
    metrics.time_to_quiescence = round as f64;
    metrics.events = messages;

    Ok(SyncReport { rounds_to_output, rounds_to_quiescence: round, messages, metrics, nodes })
}

fn all_done_round<A: EventDriven>(nodes: &[A], round: u64) -> Option<u64> {
    if nodes.iter().all(|n| n.output().is_some()) {
        Some(round)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal flooding algorithm used to exercise the engine: node 0 floods a hop
    /// counter, every node outputs the hop count of the first copy it sees. In the
    /// synchronous model the first copy arrives along a shortest path, so the output
    /// equals the distance from node 0.
    #[derive(Debug)]
    struct Flood<'g> {
        me: NodeId,
        neighbors: &'g [NodeId],
        seen_at: Option<u64>,
    }

    impl<'g> Flood<'g> {
        fn new(graph: &'g Graph, me: NodeId) -> Self {
            Flood { me, neighbors: graph.neighbors(me), seen_at: None }
        }
    }

    impl EventDriven for Flood<'_> {
        type Msg = u64;
        type Output = u64;

        fn on_init(&mut self, ctx: &mut PulseCtx<u64>) {
            if self.me == NodeId(0) {
                self.seen_at = Some(0);
                for &u in self.neighbors {
                    ctx.send(u, 1);
                }
            }
        }

        fn on_pulse(&mut self, received: &[(NodeId, u64)], ctx: &mut PulseCtx<u64>) {
            if let Some(&(_, hops)) = received.first() {
                if self.seen_at.is_none() {
                    self.seen_at = Some(hops);
                    for &u in self.neighbors {
                        ctx.send(u, hops + 1);
                    }
                }
            }
        }

        fn output(&self) -> Option<u64> {
            self.seen_at
        }
    }

    #[test]
    fn flood_on_path_takes_diameter_rounds() {
        let g = Graph::path(6);
        let report = run_sync(&g, |v| Flood::new(&g, v), 100).unwrap();
        assert_eq!(report.rounds_to_output, Some(5));
        // Pulse numbers equal distances from node 0 on a path.
        let outputs = report.outputs();
        for (i, o) in outputs.iter().enumerate() {
            assert_eq!(*o, Some(i as u64));
        }
        // Each internal node forwards to both neighbors once: messages bounded by 2m.
        assert!(report.messages <= 2 * g.edge_count() as u64);
    }

    #[test]
    fn flood_on_star_takes_two_rounds_of_activity() {
        let g = Graph::star(5);
        let report = run_sync(&g, |v| Flood::new(&g, v), 100).unwrap();
        assert_eq!(report.rounds_to_output, Some(1));
        assert!(report.rounds_to_quiescence >= 1);
    }

    #[test]
    fn quiescence_follows_output_on_a_path() {
        // On a path of 4 nodes the last node (distance 3) outputs at round 3 and then
        // forwards once more, so the network quiesces one round later.
        let g = Graph::path(4);
        let report = run_sync(&g, |v| Flood::new(&g, v), 100).unwrap();
        assert_eq!(report.rounds_to_output, Some(3));
        assert_eq!(report.rounds_to_quiescence, 4);
    }

    #[test]
    fn round_limit_is_enforced() {
        // An algorithm that ping-pongs forever between nodes 0 and 1.
        #[derive(Debug)]
        struct PingPong {
            me: NodeId,
        }
        impl EventDriven for PingPong {
            type Msg = ();
            type Output = ();
            fn on_init(&mut self, ctx: &mut PulseCtx<()>) {
                if self.me == NodeId(0) {
                    ctx.send(NodeId(1), ());
                }
            }
            fn on_pulse(&mut self, received: &[(NodeId, ())], ctx: &mut PulseCtx<()>) {
                if let Some(&(from, _)) = received.first() {
                    ctx.send(from, ());
                }
            }
            fn output(&self) -> Option<()> {
                None
            }
        }
        let g = Graph::path(2);
        let err = run_sync(&g, |me| PingPong { me }, 10).unwrap_err();
        assert!(matches!(err, SimError::RoundLimitExceeded { limit: 10 }));
    }

    #[test]
    fn sending_to_non_neighbor_is_rejected() {
        #[derive(Debug)]
        struct Bad {
            me: NodeId,
        }
        impl EventDriven for Bad {
            type Msg = ();
            type Output = ();
            fn on_init(&mut self, ctx: &mut PulseCtx<()>) {
                if self.me == NodeId(0) {
                    ctx.send(NodeId(3), ());
                }
            }
            fn on_pulse(&mut self, _: &[(NodeId, ())], _: &mut PulseCtx<()>) {}
            fn output(&self) -> Option<()> {
                Some(())
            }
        }
        let g = Graph::path(4);
        let err = run_sync(&g, |me| Bad { me }, 10).unwrap_err();
        assert!(matches!(err, SimError::NotNeighbor { from: NodeId(0), to: NodeId(3) }));
    }
}
