//! Engine-state recycling: check allocation-heavy engine state out of a free
//! pool and reuse it across runs instead of reallocating per run.
//!
//! A serial run's setup builds five non-trivial allocations — the timing
//! wheel's slot array, the per-directed-edge link table (with its stage-queue
//! buckets), the payload arena, the recycled outbox buffer and assorted
//! scratch — all of which end every successful run *provably empty*: at
//! quiescence no event is scheduled, no link holds queued or in-flight
//! messages, and every arena handle has been returned (the engine asserts
//! this). [`EngineSlab`] keeps those allocations between runs, and
//! [`run_async_recycled`] reshapes them for the next run's graph instead of
//! building them cold.
//!
//! # Why recycling cannot change a schedule
//!
//! The reset contract (DESIGN.md §11) is: every field a run *reads* is
//! rewritten to its cold-start value before the run begins — the wheel's
//! clock and counters ([`TimingWheel::reset`]), the link endpoints and flags
//! (`EngineParts::adopt`), the arena's peak-live watermark — while only
//! *capacity* (vector allocations, free-list shape) is retained. Capacity is
//! invisible to the simulation: arena handles are opaque tokens that never
//! feed a delay draw or an ordering decision, and queue/slot buffers compare
//! equal whatever their reserve. Hence a recycled run's schedule is
//! bit-identical to a cold run's, which `tests/engine_reuse.rs` and
//! `tests/service_determinism.rs` pin.
//!
//! # Error runs
//!
//! A run that fails mid-flight (event-limit abort, non-neighbor send) leaves
//! live handles and queued messages behind. Rather than attempt a cleanup
//! pass, the slab discards that state wholesale: the failed run's parts and
//! wheel are dropped and the slab degrades to cold allocation on its next
//! use. Correctness never depends on reuse.

use crate::arena::EvRef;
use crate::async_engine::{run_engine_parts, AsyncReport, EngineParts, SimError, SimLimits};
use crate::delay::DelayModel;
use crate::fault::{FaultPlan, FaultState};
use crate::protocol::Protocol;
use crate::scheduler::TimingWheel;
use ds_graph::{Graph, NodeId};
use std::any::{Any, TypeId};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Recyclable state of one serial [`TimingWheel`] engine: the wheel plus the
/// engine's allocation-heavy parts (link table, payload arena, outbox
/// buffer). One slab serves one run at a time; a [`SlabBank`] pools idle
/// slabs across runs and sessions.
///
/// `M` is the protocol's message type — the arena and outbox buffer store
/// messages, so a slab is only reusable across runs of protocols sharing one
/// message type (the [`SlabBank`] keys its pools by exactly that).
pub struct EngineSlab<M> {
    /// The recycled wheel and the horizon it was built for, or `None` before
    /// the first run and after a discarded error run.
    wheel: Option<(u64, TimingWheel<EvRef>)>,
    parts: EngineParts<M>,
    runs: u64,
}

impl<M> EngineSlab<M> {
    /// Creates an empty slab: the first run through it allocates cold.
    pub fn new() -> Self {
        EngineSlab { wheel: None, parts: EngineParts::default(), runs: 0 }
    }

    /// Completed runs this slab's state has been recycled through.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// The recycling hygiene invariant, promoted from the engine's internal
    /// `debug_assert` to a test-visible check: the slab holds no transient
    /// state — wheel empty (or absent), every link idle, every arena handle
    /// returned. Holds before the first run, after every successful run, and
    /// after a discarded error run; [`run_async_recycled`] asserts it on
    /// every completion and [`SlabBank::check_in`] refuses a slab that
    /// violates it.
    pub fn is_clean(&self) -> bool {
        self.wheel.as_ref().is_none_or(|(_, w)| w.is_empty()) && self.parts.is_clean()
    }

    /// Takes the wheel out for a run, reset to tick 0, rebuilding it only if
    /// the horizon changed (it never does under a fixed `TICKS_PER_UNIT`).
    fn take_wheel(&mut self, horizon: u64) -> TimingWheel<EvRef> {
        match self.wheel.take() {
            Some((h, mut wheel)) if h == horizon => {
                wheel.reset();
                wheel
            }
            _ => TimingWheel::new(horizon),
        }
    }
}

impl<M> Default for EngineSlab<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> fmt::Debug for EngineSlab<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineSlab")
            .field("runs", &self.runs)
            .field("clean", &self.is_clean())
            .finish()
    }
}

/// [`crate::run_async_faulted`] on the [`TimingWheel`] scheduler, over
/// recycled engine state. The schedule is bit-identical to the cold entry
/// points' — the reset contract above — and the run additionally *hard*-
/// asserts (not `debug_assert`s) that it returned every arena handle and
/// drained the wheel, since a leak here would poison the next run through
/// the slab.
///
/// On success the slab retains the run's allocations for the next call; on
/// error it discards them (see the module docs).
///
/// # Errors
///
/// Same as [`crate::run_async`].
pub fn run_async_recycled<P, F>(
    graph: &Graph,
    delay: DelayModel,
    faults: Option<&FaultPlan>,
    make: F,
    limits: SimLimits,
    slab: &mut EngineSlab<P::Message>,
) -> Result<AsyncReport<P>, SimError>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
{
    let state = faults.map(|plan| FaultState::new(graph, plan));
    let horizon = delay.max_delay_ticks();
    let wheel = slab.take_wheel(horizon);
    slab.parts.adopt(graph);
    let (report, _trace, wheel) =
        run_engine_parts(graph, delay, make, limits, wheel, None, state, &mut slab.parts)?;
    assert!(wheel.is_empty(), "a finished run must drain its timing wheel");
    assert!(slab.parts.is_clean(), "a finished run must return every arena handle");
    slab.wheel = Some((horizon, wheel));
    slab.runs += 1;
    Ok(report)
}

/// A shared, thread-safe pool of idle [`EngineSlab`]s, keyed by message type.
///
/// Cloning is shallow: clones share one pool, so a bank handed to N
/// concurrent sessions lets a slab freed by one session serve the next —
/// regardless of which worker runs it — while each in-flight run owns its
/// slab exclusively (checkout moves it out of the bank). The bank never
/// blocks a run on another: an empty pool mints a fresh slab.
///
/// The map is keyed by [`TypeId`] of the message type and the per-type pools
/// are type-erased behind `Box<dyn Any>`; `checkout::<M>` only ever downcasts
/// the pool its own `TypeId` selected, so the downcast cannot fail.
#[derive(Clone, Default)]
pub struct SlabBank {
    inner: Arc<Mutex<BankInner>>,
}

#[derive(Default)]
struct BankInner {
    pools: BTreeMap<TypeId, Box<dyn Any + Send>>,
    checkouts: u64,
    reuses: u64,
}

impl SlabBank {
    /// Creates an empty bank.
    pub fn new() -> Self {
        SlabBank::default()
    }

    /// Takes an idle slab for message type `M` out of the bank, or mints a
    /// fresh one if none is pooled.
    pub fn checkout<M: Send + 'static>(&self) -> EngineSlab<M> {
        let mut inner = self.inner.lock().expect("slab bank poisoned");
        inner.checkouts += 1;
        let pool = inner
            .pools
            .entry(TypeId::of::<M>())
            .or_insert_with(|| Box::new(Vec::<EngineSlab<M>>::new()))
            .downcast_mut::<Vec<EngineSlab<M>>>()
            .expect("pool entry keyed by its own TypeId");
        match pool.pop() {
            Some(slab) => {
                inner.reuses += 1;
                slab
            }
            None => EngineSlab::new(),
        }
    }

    /// Returns a slab to the pool for the next checkout.
    ///
    /// # Panics
    ///
    /// Panics if the slab is not clean ([`EngineSlab::is_clean`]): only
    /// provably empty state may be recycled into another run.
    pub fn check_in<M: Send + 'static>(&self, slab: EngineSlab<M>) {
        assert!(slab.is_clean(), "only a clean engine slab may re-enter the bank");
        let mut inner = self.inner.lock().expect("slab bank poisoned");
        inner
            .pools
            .entry(TypeId::of::<M>())
            .or_insert_with(|| Box::new(Vec::<EngineSlab<M>>::new()))
            .downcast_mut::<Vec<EngineSlab<M>>>()
            .expect("pool entry keyed by its own TypeId")
            .push(slab);
    }

    /// Total checkouts served (fresh and recycled).
    pub fn checkouts(&self) -> u64 {
        self.inner.lock().expect("slab bank poisoned").checkouts
    }

    /// Checkouts served by a recycled slab rather than a fresh allocation.
    pub fn reuses(&self) -> u64 {
        self.inner.lock().expect("slab bank poisoned").reuses
    }
}

impl fmt::Debug for SlabBank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().expect("slab bank poisoned");
        f.debug_struct("SlabBank")
            .field("pools", &inner.pools.len())
            .field("checkouts", &inner.checkouts)
            .field("reuses", &inner.reuses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::async_engine::run_async;
    use crate::protocol::Ctx;
    use ds_graph::Graph;

    /// Minimal flooding protocol (owned neighbor list so the slab tests can
    /// outlive their graphs).
    #[derive(Debug)]
    struct Flood {
        me: NodeId,
        neighbors: Vec<NodeId>,
        hops: Option<u64>,
    }

    impl Flood {
        fn new(graph: &Graph, me: NodeId) -> Self {
            Flood { me, neighbors: graph.neighbors(me).to_vec(), hops: None }
        }
    }

    impl Protocol for Flood {
        type Message = u64;

        fn on_start(&mut self, ctx: &mut Ctx<u64>) {
            if self.me == NodeId(0) {
                self.hops = Some(0);
                for &u in &self.neighbors {
                    ctx.send(u, 1);
                }
            }
        }

        fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Ctx<u64>) {
            if self.hops.is_none() {
                self.hops = Some(msg);
                for &u in &self.neighbors {
                    ctx.send(u, msg + 1);
                }
            }
        }

        fn is_done(&self) -> bool {
            self.hops.is_some()
        }
    }

    fn hops(report: &AsyncReport<Flood>) -> Vec<Option<u64>> {
        report.nodes.iter().map(|n| n.hops).collect()
    }

    #[test]
    fn recycled_runs_match_cold_runs_bit_for_bit() {
        let graphs = [Graph::grid(6, 6), Graph::cycle(17), Graph::grid(3, 9)];
        let mut slab = EngineSlab::new();
        for delay in DelayModel::standard_suite(7) {
            for graph in &graphs {
                let cold =
                    run_async(graph, delay.clone(), |v| Flood::new(graph, v), SimLimits::default())
                        .unwrap();
                let warm = run_async_recycled(
                    graph,
                    delay.clone(),
                    None,
                    |v| Flood::new(graph, v),
                    SimLimits::default(),
                    &mut slab,
                )
                .unwrap();
                assert_eq!(hops(&cold), hops(&warm));
                assert_eq!(cold.metrics, warm.metrics);
                assert_eq!(cold.peak_live_handles, warm.peak_live_handles);
                assert_eq!(cold.max_batch, warm.max_batch);
                assert!(slab.is_clean(), "slab dirty after a successful run");
            }
        }
        assert!(slab.runs() > 1);
    }

    #[test]
    fn error_run_discards_slab_state_and_later_runs_still_match() {
        let graph = Graph::grid(8, 8);
        let mut slab = EngineSlab::new();
        let tight = SimLimits { max_events: 5, ..SimLimits::default() };
        let err = run_async_recycled(
            &graph,
            DelayModel::Uniform,
            None,
            |v| Flood::new(&graph, v),
            tight,
            &mut slab,
        );
        assert!(matches!(err, Err(SimError::EventLimitExceeded { .. })));
        assert!(slab.is_clean(), "discarded error state must leave the slab clean");
        let cold =
            run_async(&graph, DelayModel::Uniform, |v| Flood::new(&graph, v), SimLimits::default())
                .unwrap();
        let warm = run_async_recycled(
            &graph,
            DelayModel::Uniform,
            None,
            |v| Flood::new(&graph, v),
            SimLimits::default(),
            &mut slab,
        )
        .unwrap();
        assert_eq!(hops(&cold), hops(&warm));
    }

    #[test]
    fn bank_pools_slabs_per_message_type_and_counts_reuse() {
        let bank = SlabBank::new();
        let slab: EngineSlab<u64> = bank.checkout();
        assert_eq!((bank.checkouts(), bank.reuses()), (1, 0));
        bank.check_in(slab);
        let again: EngineSlab<u64> = bank.checkout();
        assert_eq!((bank.checkouts(), bank.reuses()), (2, 1));
        // A different message type gets its own pool — no cross-type reuse.
        let other: EngineSlab<u8> = bank.checkout();
        assert_eq!((bank.checkouts(), bank.reuses()), (3, 1));
        bank.check_in(again);
        bank.check_in(other);
        // Clones share the pool.
        let clone = bank.clone();
        let _warm: EngineSlab<u8> = clone.checkout();
        assert_eq!(bank.reuses(), 2);
    }
}
