//! Interface of *event-driven synchronous algorithms* — the class of algorithms the
//! synchronizer accepts (Appendix B, second interpretation).
//!
//! An event-driven algorithm never refers to round numbers. A node acts only when it
//! is *triggered*: at pulse `p ≥ 1` a node is triggered if it received messages sent
//! at pulse `p − 1` or itself sent messages at pulse `p − 1`. Pulse-0 messages come
//! from initiators via [`EventDriven::on_init`].
//!
//! The same object runs unchanged
//!
//! * under the synchronous engine ([`crate::sync_engine::run_sync`]), which defines
//!   the ground-truth execution and the complexities `T(A)` and `M(A)`, and
//! * inside any synchronizer from `ds-sync`, which simulates it in the asynchronous
//!   model.

use ds_graph::NodeId;
use std::fmt;

/// Context handed to an event-driven algorithm during one pulse: collects the
/// messages to be sent at this pulse.
#[derive(Debug)]
pub struct PulseCtx<M> {
    me: NodeId,
    outbox: Vec<(NodeId, M)>,
}

impl<M> PulseCtx<M> {
    /// Creates a context for node `me`.
    pub fn new(me: NodeId) -> Self {
        PulseCtx { me, outbox: Vec::new() }
    }

    /// Creates a context for node `me` reusing an already-drained outbox buffer
    /// (the engines recycle one buffer across pulses).
    ///
    /// # Panics
    ///
    /// Panics if `buffer` is not empty.
    pub fn with_buffer(me: NodeId, buffer: Vec<(NodeId, M)>) -> Self {
        assert!(buffer.is_empty(), "recycled outbox buffers must be drained");
        PulseCtx { me, outbox: buffer }
    }

    /// Consumes the context, returning the (empty) outbox buffer for reuse.
    pub fn into_buffer(mut self) -> Vec<(NodeId, M)> {
        self.outbox.clear();
        self.outbox
    }

    /// Drains the queued messages in order, keeping the buffer's capacity.
    pub fn drain_outbox(&mut self) -> impl Iterator<Item = (NodeId, M)> + '_ {
        self.outbox.drain(..)
    }

    /// The local node's identifier.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Queues a message to neighbor `to` for this pulse.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Number of messages queued during this pulse.
    pub fn queued(&self) -> usize {
        self.outbox.len()
    }

    /// Drains the queued messages (used by the engines).
    pub fn take_outbox(&mut self) -> Vec<(NodeId, M)> {
        std::mem::take(&mut self.outbox)
    }
}

/// A node-local event-driven synchronous algorithm.
///
/// Algorithms (and their messages) are `Send`: the sharded asynchronous engine
/// (`ds-netsim::sharded`, selected via `SchedulerKind::Sharded`) moves per-node
/// state to shard worker threads. Node-local state is naturally `Send`; the
/// bound only rules out thread-bound handles like `Rc`.
pub trait EventDriven: Send {
    /// Message type exchanged between nodes. `'static` because messages are
    /// owned values the engines may pool across runs: the service layer's
    /// recycled engine state (`ds-netsim::recycle`) keys its free pools by
    /// the message's `TypeId`. Message *values* never outlive a run; the
    /// bound only rules out borrowed message types, which no algorithm uses
    /// (a message crosses a simulated link, so it owns its payload).
    type Msg: Clone + fmt::Debug + Send + 'static;
    /// Per-node output type; outputs are compared between the synchronous ground
    /// truth and synchronized asynchronous runs.
    type Output: Clone + fmt::Debug + PartialEq;

    /// Invoked once at the very beginning. Initiators queue their pulse-0 messages
    /// here; non-initiators typically do nothing.
    fn on_init(&mut self, ctx: &mut PulseCtx<Self::Msg>);

    /// Invoked at pulse `p ≥ 1` when this node was triggered: `received` holds the
    /// messages sent to it at pulse `p − 1` (sorted by sender identifier; empty if
    /// the trigger was only the node's own pulse-`p − 1` sends). Messages queued on
    /// `ctx` are the node's pulse-`p` messages.
    fn on_pulse(&mut self, received: &[(NodeId, Self::Msg)], ctx: &mut PulseCtx<Self::Msg>);

    /// The node's output, once produced.
    fn output(&self) -> Option<Self::Output>;
}

/// Sorts a pulse's received batch into the canonical delivery order (by sender, then
/// by insertion order), so that synchronous and synchronized executions present the
/// same batch to the algorithm.
pub fn canonical_batch<M: Clone>(batch: &mut [(NodeId, M)]) {
    batch.sort_by_key(|(from, _)| *from);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pulse_ctx_collects_sends() {
        let mut ctx: PulseCtx<&'static str> = PulseCtx::new(NodeId(0));
        ctx.send(NodeId(1), "a");
        ctx.send(NodeId(2), "b");
        assert_eq!(ctx.queued(), 2);
        assert_eq!(ctx.take_outbox().len(), 2);
        assert_eq!(ctx.queued(), 0);
    }

    #[test]
    fn canonical_batch_sorts_by_sender() {
        let mut batch = vec![(NodeId(5), 1u8), (NodeId(2), 2), (NodeId(9), 3), (NodeId(2), 4)];
        canonical_batch(&mut batch);
        assert_eq!(batch.iter().map(|(n, _)| n.index()).collect::<Vec<_>>(), vec![2, 2, 5, 9]);
        // Stable: equal senders keep insertion order.
        assert_eq!(batch[0].1, 2);
        assert_eq!(batch[1].1, 4);
    }
}
