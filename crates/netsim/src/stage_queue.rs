//! Per-link message queues as per-stage FIFO buckets.
//!
//! Messages waiting on a link are transmitted lowest priority first, FIFO within a
//! priority (Lemma 2.5: lowest stage first). The priorities the synchronizers use
//! are small stage/pulse indices that cluster around the link's current stage, so
//! instead of a per-link binary heap the queue keeps one FIFO bucket per priority
//! *relative to a moving base*, plus a dense occupancy bitset to find the minimum
//! occupied priority in a few word operations:
//!
//! * `push` is `O(1)` (amortized: a push below the base shifts the bucket window,
//!   which is linear in the window width but only happens when priorities regress),
//! * `pop` is `O(width / 64)` for the bitset scan plus `O(1)` for the bucket pop,
//! * within a bucket, insertion order is pop order — and since the engine's global
//!   sequence numbers increase monotonically, that *is* `(priority, seq)` order,
//!   exactly the order the previous per-link `BinaryHeap` produced.
//!
//! Pathological priorities far from the base (more than `MAX_SPREAD` = 1024 apart,
//! which no shipped protocol produces) fall back to a small sorted overflow vector
//! so the bucket window stays dense and bounded.
//!
//! Since the event arena (DESIGN.md §10) the engines instantiate the queue with
//! `M = u32` **payload handles** into a [`crate::arena::PayloadArena`] rather than
//! owned message structs: a queued entry is one fixed-size `(seq, handle)` pair
//! regardless of the protocol's message type, window shifts move plain integers,
//! and defusing a
//! queued message (fault drop, crash-stop drain) frees the handle instead of
//! dropping a struct. The queue itself is payload-agnostic and unchanged.

use crate::bitset;
use std::collections::VecDeque;

/// Maximum width of the dense bucket window; priorities further than this from the
/// window base are kept in the sorted overflow vector instead.
const MAX_SPREAD: u64 = 1024;

/// A FIFO-within-priority queue of `(priority, seq, msg)` entries popping the
/// minimum `(priority, seq)` first. `seq` values must be strictly increasing
/// across pushes (the engine's global sequence numbers are).
///
/// Public so the `exp_sched` microbenchmarks in `ds-bench` can measure it in
/// isolation; the engine reaches it through its per-link state.
#[derive(Debug)]
pub struct StageQueue<M> {
    /// Priority represented by bucket 0; meaningful only while `len > 0`.
    base: u64,
    /// FIFO bucket `b` holds entries of priority `base + b`.
    buckets: Vec<VecDeque<(u64, M)>>,
    /// Occupancy bitset over `buckets`: bit `b` set iff bucket `b` is non-empty.
    occupied: Vec<u64>,
    /// Entries whose priority is too far from `base` for the dense window, sorted
    /// ascending by `(priority, seq)`.
    overflow: Vec<(u64, u64, M)>,
    /// Total queued entries (buckets + overflow).
    len: usize,
}

impl<M> Default for StageQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> StageQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        StageQueue {
            base: 0,
            buckets: Vec::new(),
            occupied: Vec::new(),
            overflow: Vec::new(),
            len: 0,
        }
    }

    /// Whether no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Grows the window so bucket `idx` exists.
    fn ensure_bucket(&mut self, idx: usize) {
        if idx >= self.buckets.len() {
            self.buckets.resize_with(idx + 1, VecDeque::new);
            let words = self.buckets.len().div_ceil(64);
            if words > self.occupied.len() {
                self.occupied.resize(words, 0);
            }
        }
    }

    /// Index of the first occupied bucket, if any.
    fn min_bucket(&self) -> Option<usize> {
        bitset::find_set_from(&self.occupied, 0)
    }

    /// Shifts the bucket window down so `new_base` becomes bucket 0. The window
    /// after the shift is at most `MAX_SPREAD` wide (checked by the caller).
    fn rebase_down(&mut self, new_base: u64) {
        let shift = (self.base - new_base) as usize;
        let old_len = self.buckets.len();
        self.buckets.resize_with(old_len + shift, VecDeque::new);
        self.buckets.rotate_right(shift);
        let words = self.buckets.len().div_ceil(64);
        self.occupied.resize(words, 0);
        // Shift the bitset up by `shift` bits, highest word first.
        let (whole, bits) = (shift / 64, (shift % 64) as u32);
        for w in (0..self.occupied.len()).rev() {
            let mut word = if w >= whole { self.occupied[w - whole] } else { 0 };
            if bits > 0 {
                word <<= bits;
                if w > whole {
                    word |= self.occupied[w - whole - 1] >> (64 - bits);
                }
            }
            self.occupied[w] = word;
        }
        self.base = new_base;
    }

    /// Queues `msg` under `(priority, seq)`.
    pub fn push(&mut self, priority: u64, seq: u64, msg: M) {
        if self.len == self.overflow.len() {
            // The bucket window is empty: restart it at this priority. (Any
            // overflow entries keep their absolute priorities.)
            self.base = priority;
        }
        if priority < self.base {
            let span = self.buckets.len() as u64 + (self.base - priority);
            if span <= MAX_SPREAD {
                self.rebase_down(priority);
            } else {
                self.push_overflow(priority, seq, msg);
                return;
            }
        } else if priority - self.base >= MAX_SPREAD {
            self.push_overflow(priority, seq, msg);
            return;
        }
        let idx = (priority - self.base) as usize;
        self.ensure_bucket(idx);
        if self.buckets[idx].is_empty() {
            bitset::set(&mut self.occupied, idx);
        }
        debug_assert!(self.buckets[idx].back().is_none_or(|&(s, _)| s < seq));
        self.buckets[idx].push_back((seq, msg));
        self.len += 1;
    }

    fn push_overflow(&mut self, priority: u64, seq: u64, msg: M) {
        // Seqs increase across pushes, so inserting by priority alone keeps the
        // vector sorted by (priority, seq).
        let pos = self.overflow.partition_point(|&(p, _, _)| p <= priority);
        self.overflow.insert(pos, (priority, seq, msg));
        self.len += 1;
    }

    /// The minimum `(priority, seq)` key currently queued, without popping it.
    pub fn min_key(&self) -> Option<(u64, u64)> {
        if self.len == 0 {
            return None;
        }
        let bucket_min = self.min_bucket().map(|idx| {
            let &(seq, _) = self.buckets[idx].front().expect("occupied bit set");
            (self.base + idx as u64, seq)
        });
        let overflow_min = self.overflow.first().map(|&(p, seq, _)| (p, seq));
        match (bucket_min, overflow_min) {
            (Some(b), Some(o)) => Some(b.min(o)),
            (b, o) => b.or(o),
        }
    }

    /// Pops the minimum-`(priority, seq)` entry as `(seq, msg)`.
    pub fn pop(&mut self) -> Option<(u64, M)> {
        if self.len == 0 {
            return None;
        }
        let bucket_min = self.min_bucket().map(|idx| {
            let &(seq, _) = self.buckets[idx].front().expect("occupied bit set");
            (self.base + idx as u64, seq, idx)
        });
        let overflow_min = self.overflow.first().map(|&(p, seq, _)| (p, seq));
        let from_bucket = match (bucket_min, overflow_min) {
            (Some((bp, bs, _)), Some((op, os))) => (bp, bs) < (op, os),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!("len > 0"),
        };
        self.len -= 1;
        if from_bucket {
            let idx = bucket_min.expect("from_bucket").2;
            let entry = self.buckets[idx].pop_front().expect("occupied bit set");
            if self.buckets[idx].is_empty() {
                bitset::clear(&mut self.occupied, idx);
            }
            Some(entry)
        } else {
            let (_, seq, msg) = self.overflow.remove(0);
            Some((seq, msg))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn drain<M>(q: &mut StageQueue<M>) -> Vec<(u64, M)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        assert!(q.is_empty());
        out
    }

    #[test]
    fn pops_lowest_priority_first_fifo_within() {
        let mut q = StageQueue::new();
        q.push(5, 0, "a");
        q.push(1, 1, "b");
        q.push(5, 2, "c");
        q.push(1, 3, "d");
        assert_eq!(drain(&mut q), vec![(1, "b"), (3, "d"), (0, "a"), (2, "c")]);
    }

    #[test]
    fn rebases_when_a_lower_priority_arrives() {
        let mut q = StageQueue::new();
        q.push(100, 0, 'x');
        q.push(97, 1, 'y');
        q.push(99, 2, 'z');
        assert_eq!(drain(&mut q), vec![(1, 'y'), (2, 'z'), (0, 'x')]);
        // After draining, the window restarts at the next pushed priority.
        q.push(3, 3, 'w');
        q.push(2, 4, 'v');
        assert_eq!(drain(&mut q), vec![(4, 'v'), (3, 'w')]);
    }

    #[test]
    fn far_priorities_use_the_overflow_path() {
        let mut q = StageQueue::new();
        q.push(10, 0, 0u8);
        q.push(10 + 2 * MAX_SPREAD, 1, 1); // far above the window
        q.push(11, 2, 2);
        q.push(0, 3, 3); // below base, still within MAX_SPREAD: rebases
        assert_eq!(drain(&mut q), vec![(3, 3), (0, 0), (2, 2), (1, 1)]);
    }

    #[test]
    fn far_low_priority_after_wide_window_overflows() {
        let mut q = StageQueue::new();
        q.push(MAX_SPREAD + 500, 0, 0u8);
        q.push(2 * MAX_SPREAD, 1, 1); // widens the window close to MAX_SPREAD
        q.push(3, 2, 2); // span would exceed MAX_SPREAD: overflow, still pops first
        assert_eq!(drain(&mut q), vec![(2, 2), (0, 0), (1, 1)]);
    }

    #[test]
    fn matches_a_binary_heap_on_random_sequences() {
        // Reference: a max-heap of Reverse((priority, seq)) — the engine's old
        // per-link queue. The bucket queue must pop the exact same sequence.
        let mut state = 42u64;
        let mut rand = move |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for round in 0..50 {
            let mut q = StageQueue::new();
            let mut reference: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            for _ in 0..400 {
                if reference.is_empty() || rand(3) > 0 {
                    // Mostly clustered priorities, occasionally extreme ones.
                    let priority = match rand(20) {
                        0 => rand(10) * MAX_SPREAD,
                        _ => 50 + round + rand(12),
                    };
                    q.push(priority, seq, ());
                    reference.push(Reverse((priority, seq)));
                    seq += 1;
                } else {
                    let Reverse((_, want_seq)) = reference.pop().expect("non-empty");
                    let (got_seq, ()) = q.pop().expect("non-empty");
                    assert_eq!(got_seq, want_seq);
                }
            }
            let mut rest = Vec::new();
            while let Some(Reverse((_, s))) = reference.pop() {
                rest.push(s);
            }
            assert_eq!(drain(&mut q).into_iter().map(|(s, ())| s).collect::<Vec<_>>(), rest);
        }
    }
}
