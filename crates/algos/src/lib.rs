//! Event-driven synchronous algorithms and their synchronized asynchronous versions:
//! the applications of Section 6 of the paper.
//!
//! * [`flood`] — single-source broadcast (the simplest event-driven workload, used by
//!   the overhead experiments).
//! * [`bfs`] — single- and multi-source breadth-first search (Corollary 1.2).
//! * [`leader`] — cover-based leader election (Corollary 1.3).
//! * [`mst`] — minimum spanning tree by filtering convergecast (Corollary 1.4; see
//!   DESIGN.md §3 for the substitution of Elkin's CONGEST algorithm).
//!
//! All execution flows through [`ds_sync::session::Session`] — the application
//! wrappers here are thin `Session` shims with friendlier outputs.

#![forbid(unsafe_code)]

pub mod bfs;
pub mod flood;
pub mod leader;
pub mod mst;
