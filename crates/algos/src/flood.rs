//! Single-source flooding/broadcast: the simplest event-driven workload.
//!
//! A designated source floods a value through the network; every node outputs the
//! value together with the hop count at which it was first reached. In the
//! synchronous execution the hop count equals the node's distance from the source.

use ds_graph::{Graph, NodeId};
use ds_netsim::event_driven::{EventDriven, PulseCtx};

/// Per-node flooding algorithm state. The neighbor list is borrowed from the graph.
#[derive(Clone, Debug)]
pub struct FloodAlgorithm<'g> {
    me: NodeId,
    source: NodeId,
    value: u64,
    neighbors: &'g [NodeId],
    output: Option<(u64, u64)>,
}

impl<'g> FloodAlgorithm<'g> {
    /// Creates the instance for node `me`; `source` floods `value`.
    pub fn new(graph: &'g Graph, me: NodeId, source: NodeId, value: u64) -> Self {
        FloodAlgorithm { me, source, value, neighbors: graph.neighbors(me), output: None }
    }
}

impl EventDriven for FloodAlgorithm<'_> {
    /// `(value, hops)`.
    type Msg = (u64, u64);
    /// `(value, hops at which it was first received)`.
    type Output = (u64, u64);

    fn on_init(&mut self, ctx: &mut PulseCtx<Self::Msg>) {
        if self.me == self.source {
            self.output = Some((self.value, 0));
            for &u in self.neighbors {
                ctx.send(u, (self.value, 1));
            }
        }
    }

    fn on_pulse(&mut self, received: &[(NodeId, Self::Msg)], ctx: &mut PulseCtx<Self::Msg>) {
        if self.output.is_some() {
            return;
        }
        if let Some(&(_, (value, hops))) = received.first() {
            self.output = Some((value, hops));
            for &u in self.neighbors {
                ctx.send(u, (value, hops + 1));
            }
        }
    }

    fn output(&self) -> Option<Self::Output> {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_graph::metrics;
    use ds_netsim::sync_engine::run_sync;

    #[test]
    fn synchronous_flood_reports_distances() {
        let graph = Graph::grid(3, 3);
        let report =
            run_sync(&graph, |v| FloodAlgorithm::new(&graph, v, NodeId(0), 7), 100).unwrap();
        let dist = metrics::bfs_distances(&graph, NodeId(0));
        for v in graph.nodes() {
            let (value, hops) = report.nodes[v.index()].output().unwrap();
            assert_eq!(value, 7);
            assert_eq!(hops, dist[v.index()].unwrap() as u64);
        }
        assert_eq!(report.rounds_to_output, Some(4));
    }

    #[test]
    fn message_complexity_is_linear_in_edges() {
        let graph = Graph::random_connected(30, 0.15, 2);
        let report =
            run_sync(&graph, |v| FloodAlgorithm::new(&graph, v, NodeId(0), 1), 100).unwrap();
        assert!(report.messages <= 2 * graph.edge_count() as u64);
    }
}
