//! Single- and multi-source breadth-first search (Corollary 1.2).
//!
//! The synchronous algorithm is the classical event-driven BFS of Section 4.1: at
//! pulse `p` the nodes at distance `p` from the closest source send "join" proposals
//! to their neighbors; a node adopts the first proposal it receives. The proposal's
//! correctness depends entirely on the synchronous schedule, which is exactly what the
//! synchronizer guarantees in the asynchronous model.

use ds_graph::{Graph, NodeId};
use ds_netsim::delay::DelayModel;
use ds_netsim::event_driven::{EventDriven, PulseCtx};
use ds_netsim::metrics::RunMetrics;
use ds_netsim::FaultPlan;
use ds_sync::executor::RunHealth;
use ds_sync::session::{Session, SessionError, SyncKind};
use ds_sync::synchronizer::SynchronizerConfig;
use std::collections::BTreeMap;

/// Per-node output of the BFS: distance to the closest source and the BFS-tree
/// parent (`None` for sources).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BfsOutput {
    /// Hop distance to the closest source.
    pub distance: u64,
    /// Parent towards the closest source (`None` for sources).
    pub parent: Option<NodeId>,
}

/// Per-node multi-source BFS algorithm state. The neighbor list is borrowed from
/// the graph — constructing an instance allocates nothing.
#[derive(Clone, Debug)]
pub struct BfsAlgorithm<'g> {
    is_source: bool,
    neighbors: &'g [NodeId],
    output: Option<BfsOutput>,
}

impl<'g> BfsAlgorithm<'g> {
    /// Creates the instance for node `me` with the given source set.
    pub fn new(graph: &'g Graph, me: NodeId, sources: &[NodeId]) -> Self {
        BfsAlgorithm {
            is_source: sources.contains(&me),
            neighbors: graph.neighbors(me),
            output: None,
        }
    }
}

impl EventDriven for BfsAlgorithm<'_> {
    /// The hop count carried by a "join" proposal.
    type Msg = u64;
    type Output = BfsOutput;

    fn on_init(&mut self, ctx: &mut PulseCtx<u64>) {
        if self.is_source {
            self.output = Some(BfsOutput { distance: 0, parent: None });
            for &u in self.neighbors {
                ctx.send(u, 1);
            }
        }
    }

    fn on_pulse(&mut self, received: &[(NodeId, u64)], ctx: &mut PulseCtx<u64>) {
        if self.output.is_some() {
            return;
        }
        if let Some(&(from, dist)) = received.first() {
            self.output = Some(BfsOutput { distance: dist, parent: Some(from) });
            for &u in self.neighbors {
                if u != from {
                    ctx.send(u, dist + 1);
                }
            }
        }
    }

    fn output(&self) -> Option<BfsOutput> {
        self.output
    }
}

/// Result of a synchronized asynchronous BFS run.
///
/// Under a fault plan the result can be *partial*: nodes the churn starved never
/// adopt a distance and are simply absent from `outputs`, with `health` naming
/// them explicitly. Every distance that **is** reported is the length of a real
/// path the messages traversed — drops can starve a node, never mislead it.
#[derive(Clone, Debug)]
pub struct BfsReport {
    /// Per-node outputs (nodes that produced no output are absent).
    pub outputs: BTreeMap<NodeId, BfsOutput>,
    /// Metrics of the asynchronous run.
    pub metrics: RunMetrics,
    /// Degradation status: crashed nodes and nodes with no output (both empty
    /// on a fault-free run).
    pub health: RunHealth,
}

/// Runs a single-source BFS asynchronously via the deterministic synchronizer
/// (Corollary 1.2: `Õ(D)` time and `Õ(m)` messages).
///
/// # Errors
///
/// Returns an error if the simulation fails or the graph is disconnected.
pub fn run_synchronized_bfs(
    graph: &Graph,
    source: NodeId,
    delay: DelayModel,
) -> Result<BfsReport, SessionError> {
    run_synchronized_multi_bfs(graph, &[source], delay)
}

/// Runs a multi-source BFS asynchronously via the deterministic synchronizer: every
/// node learns its distance to the closest source (Theorem 4.24).
///
/// # Errors
///
/// Returns an error if the simulation fails or the graph is disconnected.
pub fn run_synchronized_multi_bfs(
    graph: &Graph,
    sources: &[NodeId],
    delay: DelayModel,
) -> Result<BfsReport, SessionError> {
    run_synchronized_multi_bfs_faulted(graph, sources, delay, None)
}

/// [`run_synchronized_multi_bfs`] under a dynamic-topology [`FaultPlan`]: link
/// churn and crash-stop failures drop deliveries mid-run. The run always
/// terminates; nodes the churn starved are absent from the report's `outputs`
/// and listed on its `health`. The pulse bound is still sized from the intact
/// graph — churn can only slow the schedule down, never extend the synchronous
/// round structure past it.
///
/// # Errors
///
/// Returns an error if the simulation fails or the graph is disconnected.
pub fn run_synchronized_multi_bfs_faulted(
    graph: &Graph,
    sources: &[NodeId],
    delay: DelayModel,
    faults: Option<&FaultPlan>,
) -> Result<BfsReport, SessionError> {
    let d1 = ds_graph::metrics::max_distance_to_sources(graph, sources)
        .expect("BFS requires a connected graph");
    let cfg = SynchronizerConfig::build(graph, (d1 as u64 + 1).max(1));
    let mut session = Session::on(graph).delay(delay).synchronizer(SyncKind::Det(cfg));
    if let Some(plan) = faults {
        session = session.faults(plan.clone());
    }
    let run = session.run(|v| BfsAlgorithm::new(graph, v, sources))?;
    let outputs =
        run.outputs.iter().enumerate().filter_map(|(i, o)| o.map(|o| (NodeId(i), o))).collect();
    Ok(BfsReport { outputs, metrics: run.metrics, health: run.health })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_graph::metrics;

    #[test]
    fn synchronized_single_source_bfs_is_exact() {
        let graph = Graph::grid(4, 4);
        let report = run_synchronized_bfs(&graph, NodeId(0), DelayModel::jitter(11)).unwrap();
        let dist = metrics::bfs_distances(&graph, NodeId(0));
        for v in graph.nodes() {
            assert_eq!(report.outputs[&v].distance, dist[v.index()].unwrap() as u64);
        }
        assert_eq!(report.outputs[&NodeId(15)].distance, 6);
    }

    #[test]
    fn synchronized_multi_source_bfs_takes_closest_source() {
        let graph = Graph::path(10);
        let sources = [NodeId(0), NodeId(9)];
        let report = run_synchronized_multi_bfs(&graph, &sources, DelayModel::slow_cut(4)).unwrap();
        let dist = metrics::multi_source_distances(&graph, &sources);
        for v in graph.nodes() {
            assert_eq!(report.outputs[&v].distance, dist[v.index()].unwrap() as u64);
        }
    }

    #[test]
    fn bfs_parents_form_shortest_path_edges() {
        let graph = Graph::random_connected(20, 0.15, 9);
        let report = run_synchronized_bfs(&graph, NodeId(3), DelayModel::uniform()).unwrap();
        let dist = metrics::bfs_distances(&graph, NodeId(3));
        for v in graph.nodes() {
            let out = report.outputs[&v];
            match out.parent {
                None => assert_eq!(out.distance, 0),
                Some(p) => {
                    assert!(graph.has_edge(v, p));
                    assert_eq!(
                        dist[p.index()].unwrap() as u64 + 1,
                        dist[v.index()].unwrap() as u64
                    );
                }
            }
        }
    }
}
