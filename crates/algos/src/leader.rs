//! Deterministic leader election (Corollary 1.3).
//!
//! The Section 6 algorithm runs in epochs `i = 1, 2, …`, building a sparse
//! `2^i`-cover per epoch, convergecasting the minimum candidate identifier inside
//! every cluster, and terminating at the epoch whose clusters contain the whole
//! graph. Here the layered sparse cover is precomputed (exactly as for the
//! synchronizer itself), so the algorithm reduces to the *final* epoch: a
//! convergecast and broadcast of the minimum identifier in every cluster of a cover
//! whose radius is at least the diameter — every such cluster contains all nodes, so
//! every node learns the globally minimal identifier. This keeps the `Õ(D)` time and
//! `Õ(m)` message complexity of the corollary; DESIGN.md §3 records the
//! simplification.

use ds_covers::SparseCover;
use ds_graph::{Graph, NodeId};
use ds_netsim::delay::DelayModel;
use ds_netsim::event_driven::{EventDriven, PulseCtx};
use ds_netsim::metrics::RunMetrics;
use ds_netsim::FaultPlan;
use ds_sync::executor::RunHealth;
use ds_sync::session::{Session, SessionError, SyncKind};
use ds_sync::synchronizer::SynchronizerConfig;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Messages of the leader-election algorithm, all scoped to one cluster of the cover.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeaderMsg {
    /// Convergecast: minimum candidate identifier in the sender's cluster subtree.
    Up { cluster: u32, best: u64 },
    /// Broadcast: the cluster-wide minimum identifier.
    Down { cluster: u32, leader: u64 },
}

/// Per-cluster convergecast state.
#[derive(Clone, Debug)]
struct ClusterState {
    children_left: usize,
    best: u64,
    sent_up: bool,
}

/// Per-node leader-election algorithm state.
#[derive(Clone, Debug)]
pub struct LeaderElection {
    me: NodeId,
    cover: Arc<SparseCover>,
    clusters: BTreeMap<u32, ClusterState>,
    member_pending: usize,
    leader: Option<u64>,
    output: Option<NodeId>,
}

impl LeaderElection {
    /// Creates the instance for node `me`, using a cover whose every cluster spans the
    /// whole graph (any cover of radius at least the diameter).
    pub fn new(me: NodeId, cover: Arc<SparseCover>) -> Self {
        let mut clusters = BTreeMap::new();
        for &cid in cover.tree_clusters_of(me) {
            let cluster = cover.cluster(cid);
            let is_member = cover.clusters_of(me).contains(&cid);
            clusters.insert(
                cid.0 as u32,
                ClusterState {
                    children_left: cluster.children_of(me).len(),
                    best: if is_member { me.index() as u64 } else { u64::MAX },
                    sent_up: false,
                },
            );
        }
        let member_pending = cover.clusters_of(me).len();
        LeaderElection { me, cover, clusters, member_pending, leader: None, output: None }
    }

    fn try_advance(&mut self, cluster: u32, ctx: &mut PulseCtx<LeaderMsg>) {
        let cid = ds_covers::ClusterId(cluster as usize);
        let c = self.cover.cluster(cid);
        let Some(state) = self.clusters.get_mut(&cluster) else { return };
        if state.sent_up || state.children_left > 0 {
            return;
        }
        state.sent_up = true;
        let best = state.best;
        match c.parent_of(self.me) {
            Some(parent) => ctx.send(parent, LeaderMsg::Up { cluster, best }),
            None => self.complete_cluster(cluster, best, ctx),
        }
    }

    fn complete_cluster(&mut self, cluster: u32, leader: u64, ctx: &mut PulseCtx<LeaderMsg>) {
        let cid = ds_covers::ClusterId(cluster as usize);
        let c = self.cover.cluster(cid);
        for &child in c.children_of(self.me) {
            ctx.send(child, LeaderMsg::Down { cluster, leader });
        }
        if self.cover.clusters_of(self.me).contains(&cid) {
            self.leader = Some(self.leader.map_or(leader, |l| l.min(leader)));
            self.member_pending = self.member_pending.saturating_sub(1);
            if self.member_pending == 0 {
                self.output =
                    Some(NodeId(self.leader.expect("at least one cluster result") as usize));
            }
        }
    }
}

impl EventDriven for LeaderElection {
    type Msg = LeaderMsg;
    /// The elected leader's identifier.
    type Output = NodeId;

    fn on_init(&mut self, ctx: &mut PulseCtx<LeaderMsg>) {
        let clusters: Vec<u32> = self.clusters.keys().copied().collect();
        for cluster in clusters {
            self.try_advance(cluster, ctx);
        }
    }

    fn on_pulse(&mut self, received: &[(NodeId, LeaderMsg)], ctx: &mut PulseCtx<LeaderMsg>) {
        for &(_, msg) in received {
            match msg {
                LeaderMsg::Up { cluster, best } => {
                    if let Some(state) = self.clusters.get_mut(&cluster) {
                        state.best = state.best.min(best);
                        state.children_left = state.children_left.saturating_sub(1);
                    }
                    self.try_advance(cluster, ctx);
                }
                LeaderMsg::Down { cluster, leader } => {
                    self.complete_cluster(cluster, leader, ctx);
                }
            }
        }
    }

    fn output(&self) -> Option<NodeId> {
        self.output
    }
}

/// Result of a synchronized leader-election run.
#[derive(Clone, Debug)]
pub struct LeaderReport {
    /// The elected leader: identical at every node that produced an output. On
    /// a fault-free connected run every node elects it; under a fault plan it
    /// is `None` exactly when *no* node finished the election (the broadcast
    /// was fully starved).
    pub leader: Option<NodeId>,
    /// Per-node outputs (`None` for nodes the churn starved).
    pub outputs: Vec<Option<NodeId>>,
    /// Metrics of the asynchronous run.
    pub metrics: RunMetrics,
    /// Degradation status: crashed nodes and nodes with no output (both empty
    /// on a fault-free run).
    pub health: RunHealth,
}

/// Elects a leader asynchronously and deterministically (Corollary 1.3): every node
/// learns the minimum identifier in `Õ(D)` time using `Õ(m)` messages.
///
/// # Errors
///
/// Returns an error if the simulation fails.
///
/// # Panics
///
/// Panics if the graph is empty or disconnected.
pub fn run_synchronized_leader_election(
    graph: &Graph,
    delay: DelayModel,
) -> Result<LeaderReport, SessionError> {
    run_synchronized_leader_election_faulted(graph, delay, None)
}

/// [`run_synchronized_leader_election`] under a dynamic-topology [`FaultPlan`].
/// The election runs its convergecast/broadcast over the cover of the *intact*
/// graph while churn drops deliveries; nodes the broadcast never reached output
/// `None` and are listed on the report's `health`. Nodes that do output agree:
/// every output descends from the single root's minimum. The run terminates
/// regardless of the plan (dropped messages starve the schedule, they never
/// wedge it).
///
/// # Errors
///
/// Returns an error if the simulation fails.
///
/// # Panics
///
/// Panics if the graph is empty or disconnected.
pub fn run_synchronized_leader_election_faulted(
    graph: &Graph,
    delay: DelayModel,
    faults: Option<&FaultPlan>,
) -> Result<LeaderReport, SessionError> {
    let diameter =
        ds_graph::metrics::diameter(graph).expect("leader election requires connectivity");
    let cover = Arc::new(ds_covers::builder::build_sparse_cover(graph, diameter.max(1)));
    // The convergecast+broadcast takes at most 2 · (tree height) + 1 pulses.
    let t_bound = (2 * cover.max_height() as u64 + 2).max(1);
    let cfg = SynchronizerConfig::build(graph, t_bound);
    let mut session = Session::on(graph).delay(delay).synchronizer(SyncKind::Det(cfg));
    if let Some(plan) = faults {
        session = session.faults(plan.clone());
    }
    let run = session.run(|v| LeaderElection::new(v, cover.clone()))?;
    let leader = run.outputs.iter().flatten().copied().next();
    Ok(LeaderReport { leader, outputs: run.outputs, metrics: run.metrics, health: run.health })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_netsim::sync_engine::run_sync;

    fn universal_cover(graph: &Graph) -> Arc<SparseCover> {
        let d = ds_graph::metrics::diameter(graph).unwrap().max(1);
        Arc::new(ds_covers::builder::build_sparse_cover(graph, d))
    }

    #[test]
    fn synchronous_leader_election_elects_minimum_id() {
        let graph = Graph::random_connected(25, 0.1, 3);
        let cover = universal_cover(&graph);
        let report = run_sync(&graph, |v| LeaderElection::new(v, cover.clone()), 10_000).unwrap();
        for out in report.outputs() {
            assert_eq!(out, Some(NodeId(0)));
        }
    }

    #[test]
    fn message_complexity_is_near_linear() {
        let graph = Graph::grid(5, 5);
        let cover = universal_cover(&graph);
        let report = run_sync(&graph, |v| LeaderElection::new(v, cover.clone()), 10_000).unwrap();
        let n = graph.node_count() as u64;
        let log_n = (graph.node_count() as f64).log2().ceil() as u64 + 1;
        // Two messages per cluster-tree edge, O(log n) clusters per node.
        assert!(report.messages <= 4 * n * log_n, "messages = {}", report.messages);
    }

    #[test]
    fn asynchronous_leader_election_matches_corollary() {
        let graph = Graph::clustered_ring(3, 3);
        let report = run_synchronized_leader_election(&graph, DelayModel::jitter(8)).unwrap();
        assert_eq!(report.leader, Some(NodeId(0)));
        assert!(report.outputs.iter().all(|o| *o == Some(NodeId(0))));
    }
}
