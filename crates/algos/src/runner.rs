//! Legacy free-function runners, kept as thin deprecated shims.
//!
//! The execution API now lives in `ds-sync`: build a
//! [`Session`](ds_sync::session::Session), choose a
//! [`SyncKind`](ds_sync::session::SyncKind), and call `run`/`compare`. The types
//! these functions return ([`SynchronizedRun`], [`ComparisonReport`]) are
//! re-exported from there unchanged, so migrating is a call-site rewrite:
//!
//! ```text
//! compare_runs(&graph, delay, make)
//!     ⇒ Session::on(&graph).delay(delay).synchronizer(SyncKind::DetAuto).compare(make)
//! run_synchronized(&graph, delay, cfg, make)
//!     ⇒ Session::on(&graph).delay(delay).synchronizer(SyncKind::Det(cfg)).run(make)
//! ```

use ds_graph::{Graph, NodeId};
use ds_netsim::delay::DelayModel;
use ds_netsim::event_driven::EventDriven;
use ds_sync::session::{Session, SyncKind};
use ds_sync::synchronizer::SynchronizerConfig;
use std::sync::Arc;

pub use ds_sync::executor::SynchronizedRun;
pub use ds_sync::session::{ComparisonReport, SessionError};

/// Errors from the comparison runners. Alias of [`SessionError`], kept under the
/// name the pre-`Session` API used.
pub type RunnerError = SessionError;

/// Runs `make_alg` synchronously to obtain the ground truth and `T(A)`/`M(A)`, then
/// runs it through the deterministic synchronizer under `delay`, and returns both.
///
/// # Errors
///
/// Returns an error if either simulation fails (non-neighbor send, round or event
/// budget exceeded).
#[deprecated(
    since = "0.1.0",
    note = "use Session::on(graph)…synchronizer(SyncKind::DetAuto).compare(..)"
)]
pub fn compare_runs<A, F>(
    graph: &Graph,
    delay: DelayModel,
    make_alg: F,
) -> Result<ComparisonReport<A::Output>, RunnerError>
where
    A: EventDriven,
    F: FnMut(NodeId) -> A,
{
    Session::on(graph).delay(delay).synchronizer(SyncKind::DetAuto).compare(make_alg)
}

/// Runs an event-driven algorithm through the deterministic synchronizer under the
/// given delay adversary, with an explicit configuration.
///
/// # Errors
///
/// Returns an error if the simulation fails.
#[deprecated(
    since = "0.1.0",
    note = "use Session::on(graph)…synchronizer(SyncKind::Det(cfg)).run(..)"
)]
pub fn run_synchronized<A, F>(
    graph: &Graph,
    delay: DelayModel,
    cfg: Arc<SynchronizerConfig>,
    make_alg: F,
) -> Result<SynchronizedRun<A::Output>, RunnerError>
where
    A: EventDriven,
    F: FnMut(NodeId) -> A,
{
    Session::on(graph).delay(delay).synchronizer(SyncKind::Det(cfg)).run(make_alg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flood::FloodAlgorithm;

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_reproduce_the_session_results() {
        let graph = Graph::grid(3, 4);
        let report = compare_runs(&graph, DelayModel::jitter(3), |v| {
            FloodAlgorithm::new(&graph, v, NodeId(0), 42)
        })
        .expect("runs succeed");
        assert!(report.outputs_match());
        assert!(report.sync_rounds >= 5);
        assert!(report.message_overhead() >= 1.0);
        assert!(report.time_overhead().is_some());

        let via_session = Session::on(&graph)
            .delay(DelayModel::jitter(3))
            .synchronizer(SyncKind::DetAuto)
            .compare(|v| FloodAlgorithm::new(&graph, v, NodeId(0), 42))
            .expect("session run");
        assert_eq!(report.async_outputs, via_session.async_outputs);
        assert_eq!(report.async_metrics, via_session.async_metrics);

        let cfg = SynchronizerConfig::build(&graph, report.sync_rounds.max(1));
        let run = run_synchronized(&graph, DelayModel::jitter(3), cfg, |v| {
            FloodAlgorithm::new(&graph, v, NodeId(0), 42)
        })
        .expect("shim run");
        assert_eq!(run.outputs, report.async_outputs);
    }
}
