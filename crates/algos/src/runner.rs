//! Helpers for running an event-driven algorithm synchronously and asynchronously
//! (through the deterministic synchronizer), and comparing the two executions.

use ds_graph::{Graph, NodeId};
use ds_netsim::async_engine::{run_async, SimError, SimLimits};
use ds_netsim::delay::DelayModel;
use ds_netsim::event_driven::EventDriven;
use ds_netsim::metrics::RunMetrics;
use ds_netsim::sync_engine::run_sync;
use ds_sync::synchronizer::{collect_outputs, DetSynchronizer, SynchronizerConfig};
use std::fmt;
use std::sync::Arc;

/// Combined report of a synchronous ground-truth run and a synchronized asynchronous
/// run of the same algorithm.
#[derive(Clone, Debug)]
pub struct ComparisonReport<O> {
    /// Synchronous round complexity `T(A)` (rounds to quiescence).
    pub sync_rounds: u64,
    /// Synchronous message complexity `M(A)`.
    pub sync_messages: u64,
    /// Per-node outputs of the synchronous run.
    pub sync_outputs: Vec<Option<O>>,
    /// Per-node outputs of the synchronized asynchronous run.
    pub async_outputs: Vec<Option<O>>,
    /// Metrics of the asynchronous run (time, messages by class, acknowledgments).
    pub async_metrics: RunMetrics,
    /// Ordering violations recorded by the synchronizer (must be zero).
    pub ordering_violations: u64,
}

impl<O: PartialEq> ComparisonReport<O> {
    /// Whether the synchronized execution reproduced the synchronous outputs exactly.
    pub fn outputs_match(&self) -> bool {
        self.sync_outputs == self.async_outputs && self.ordering_violations == 0
    }

    /// Time overhead factor: asynchronous time-to-output divided by `T(A)`.
    pub fn time_overhead(&self) -> Option<f64> {
        let t = self.async_metrics.time_to_output?;
        Some(t / self.sync_rounds.max(1) as f64)
    }

    /// Message overhead factor: total asynchronous messages divided by `M(A)`.
    pub fn message_overhead(&self) -> f64 {
        self.async_metrics.total_messages() as f64 / self.sync_messages.max(1) as f64
    }
}

/// Errors from the comparison runners.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunnerError {
    /// The underlying simulation failed.
    Sim(SimError),
}

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunnerError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for RunnerError {}

impl From<SimError> for RunnerError {
    fn from(e: SimError) -> Self {
        RunnerError::Sim(e)
    }
}

/// Runs `make_alg` synchronously to obtain the ground truth and `T(A)`/`M(A)`, then
/// runs it through the deterministic synchronizer under `delay`, and returns both.
///
/// # Errors
///
/// Returns an error if either simulation fails (non-neighbor send, round or event
/// budget exceeded).
pub fn compare_runs<A, F>(
    graph: &Graph,
    delay: DelayModel,
    mut make_alg: F,
) -> Result<ComparisonReport<A::Output>, RunnerError>
where
    A: EventDriven,
    F: FnMut(NodeId) -> A,
{
    let sync = run_sync(graph, &mut make_alg, 1_000_000)?;
    let t_bound = sync.rounds_to_quiescence.max(1);
    let cfg = SynchronizerConfig::build(graph, t_bound);
    let report = run_synchronized(graph, delay, cfg, &mut make_alg)?;
    Ok(ComparisonReport {
        sync_rounds: sync.rounds_to_quiescence,
        sync_messages: sync.messages,
        sync_outputs: sync.outputs(),
        async_outputs: report.outputs,
        async_metrics: report.metrics,
        ordering_violations: report.ordering_violations,
    })
}

/// Result of running an algorithm through the deterministic synchronizer.
#[derive(Clone, Debug)]
pub struct SynchronizedRun<O> {
    /// Per-node outputs.
    pub outputs: Vec<Option<O>>,
    /// Metrics of the asynchronous run.
    pub metrics: RunMetrics,
    /// Ordering violations recorded by the synchronizer (must be zero).
    pub ordering_violations: u64,
}

/// Runs an event-driven algorithm through the deterministic synchronizer under the
/// given delay adversary, with an explicit configuration.
///
/// # Errors
///
/// Returns an error if the simulation fails.
pub fn run_synchronized<A, F>(
    graph: &Graph,
    delay: DelayModel,
    cfg: Arc<SynchronizerConfig>,
    mut make_alg: F,
) -> Result<SynchronizedRun<A::Output>, RunnerError>
where
    A: EventDriven,
    F: FnMut(NodeId) -> A,
{
    let report = run_async(
        graph,
        delay,
        |v| DetSynchronizer::new(v, make_alg(v), cfg.clone()),
        SimLimits::default(),
    )?;
    let outputs = collect_outputs(&report.nodes);
    Ok(SynchronizedRun {
        outputs: outputs.outputs,
        metrics: report.metrics,
        ordering_violations: outputs.ordering_violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flood::FloodAlgorithm;

    #[test]
    fn compare_runs_reports_matching_outputs_for_flooding() {
        let graph = Graph::grid(3, 4);
        let report =
            compare_runs(&graph, DelayModel::jitter(3), |v| FloodAlgorithm::new(&graph, v, NodeId(0), 42))
                .expect("runs succeed");
        assert!(report.outputs_match());
        assert!(report.sync_rounds >= 5);
        assert!(report.message_overhead() >= 1.0);
        assert!(report.time_overhead().is_some());
    }
}
