//! Deterministic minimum spanning tree (Corollary 1.4).
//!
//! The paper obtains its asynchronous MST by synchronizing Elkin's `Õ(D + √n)`-round,
//! `Õ(m)`-message synchronous algorithm. We substitute a simpler deterministic
//! event-driven MST — a *filtering convergecast*: every node reports its incident
//! edges up a cluster tree that spans the whole graph; internal nodes merge the
//! received edge sets and forward only the minimum spanning forest of what they have
//! seen (which provably retains every global MST edge); the root computes the MST and
//! broadcasts it. With distinct edge weights the MST is unique, so every node outputs
//! exactly its incident MST edges.
//!
//! The substitution (recorded in DESIGN.md §3) preserves what Corollary 1.4
//! exercises — a deterministic, message-frugal synchronous MST algorithm driven
//! through the synchronizer — at the cost of using messages larger than `O(log n)`
//! bits (a forwarded forest can hold up to `n − 1` edges), i.e. it is not
//! CONGEST-faithful. Message *counts*, which is what the experiments measure, remain
//! `Õ(n)` plus the synchronizer overhead.

use ds_covers::SparseCover;
use ds_graph::weights::{EdgeWeights, UnionFind};
use ds_graph::{Graph, NodeId};
use ds_netsim::delay::DelayModel;
use ds_netsim::event_driven::{EventDriven, PulseCtx};
use ds_netsim::metrics::RunMetrics;
use ds_sync::session::{Session, SessionError, SyncKind};
use ds_sync::synchronizer::SynchronizerConfig;
use std::collections::BTreeMap;
use std::sync::Arc;

/// An undirected weighted edge `(u, v, w)` with `u < v`.
pub type WeightedEdge = (u32, u32, u64);

/// Messages of the MST algorithm, scoped to one cluster of the cover.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MstMsg {
    /// Convergecast: a minimum spanning forest of the edges seen in the subtree.
    Up { cluster: u32, forest: Vec<WeightedEdge> },
    /// Broadcast: the minimum spanning tree of the whole graph.
    Down { cluster: u32, tree: Vec<WeightedEdge> },
}

/// Computes the minimum spanning forest of a set of weighted edges (Kruskal over the
/// node identifiers mentioned in the edges). Weights are assumed distinct.
fn spanning_forest(mut edges: Vec<WeightedEdge>, n: usize) -> Vec<WeightedEdge> {
    edges.sort_by_key(|&(u, v, w)| (w, u, v));
    edges.dedup();
    let mut uf = UnionFind::new(n);
    let mut forest = Vec::new();
    for (u, v, w) in edges {
        if uf.union(u as usize, v as usize) {
            forest.push((u, v, w));
        }
    }
    forest.sort_unstable();
    forest
}

/// Per-cluster convergecast state.
#[derive(Clone, Debug)]
struct ClusterState {
    children_left: usize,
    edges: Vec<WeightedEdge>,
    sent_up: bool,
}

/// Per-node MST algorithm state.
#[derive(Clone, Debug)]
pub struct MstAlgorithm {
    me: NodeId,
    n: usize,
    cover: Arc<SparseCover>,
    clusters: BTreeMap<u32, ClusterState>,
    output: Option<Vec<(NodeId, NodeId)>>,
}

impl MstAlgorithm {
    /// Creates the instance for node `me` with its incident edge weights.
    pub fn new(graph: &Graph, weights: &EdgeWeights, me: NodeId, cover: Arc<SparseCover>) -> Self {
        let incident: Vec<WeightedEdge> = graph
            .edges()
            .filter(|&(_, u, v)| u == me || v == me)
            .map(|(e, u, v)| (u.index() as u32, v.index() as u32, weights.weight(e)))
            .collect();
        let mut clusters = BTreeMap::new();
        for &cid in cover.tree_clusters_of(me) {
            let cluster = cover.cluster(cid);
            clusters.insert(
                cid.0 as u32,
                ClusterState {
                    children_left: cluster.children_of(me).len(),
                    edges: incident.clone(),
                    sent_up: false,
                },
            );
        }
        MstAlgorithm { me, n: graph.node_count(), cover, clusters, output: None }
    }

    fn try_advance(&mut self, cluster: u32, ctx: &mut PulseCtx<MstMsg>) {
        let cid = ds_covers::ClusterId(cluster as usize);
        let c = self.cover.cluster(cid);
        let forest = {
            let Some(state) = self.clusters.get_mut(&cluster) else { return };
            if state.sent_up || state.children_left > 0 {
                return;
            }
            state.sent_up = true;
            spanning_forest(std::mem::take(&mut state.edges), self.n)
        };
        match c.parent_of(self.me) {
            Some(parent) => ctx.send(parent, MstMsg::Up { cluster, forest }),
            None => self.complete_cluster(cluster, forest, ctx),
        }
    }

    fn complete_cluster(
        &mut self,
        cluster: u32,
        tree: Vec<WeightedEdge>,
        ctx: &mut PulseCtx<MstMsg>,
    ) {
        let cid = ds_covers::ClusterId(cluster as usize);
        let c = self.cover.cluster(cid);
        for &child in c.children_of(self.me) {
            ctx.send(child, MstMsg::Down { cluster, tree: tree.clone() });
        }
        if self.output.is_none() {
            let mine: Vec<(NodeId, NodeId)> = tree
                .iter()
                .filter(|&&(u, v, _)| {
                    u as usize == self.me.index() || v as usize == self.me.index()
                })
                .map(|&(u, v, _)| (NodeId(u as usize), NodeId(v as usize)))
                .collect();
            self.output = Some(mine);
        }
    }
}

impl EventDriven for MstAlgorithm {
    type Msg = MstMsg;
    /// The node's incident MST edges, endpoints in ascending order.
    type Output = Vec<(NodeId, NodeId)>;

    fn on_init(&mut self, ctx: &mut PulseCtx<MstMsg>) {
        let clusters: Vec<u32> = self.clusters.keys().copied().collect();
        for cluster in clusters {
            self.try_advance(cluster, ctx);
        }
    }

    fn on_pulse(&mut self, received: &[(NodeId, MstMsg)], ctx: &mut PulseCtx<MstMsg>) {
        for (_, msg) in received {
            match msg {
                MstMsg::Up { cluster, forest } => {
                    if let Some(state) = self.clusters.get_mut(cluster) {
                        state.edges.extend_from_slice(forest);
                        state.children_left = state.children_left.saturating_sub(1);
                    }
                    self.try_advance(*cluster, ctx);
                }
                MstMsg::Down { cluster, tree } => {
                    self.complete_cluster(*cluster, tree.clone(), ctx);
                }
            }
        }
    }

    fn output(&self) -> Option<Self::Output> {
        self.output.clone()
    }
}

/// Result of a synchronized MST run.
#[derive(Clone, Debug)]
pub struct MstReport {
    /// The MST edges, as `(u, v)` pairs with `u < v`, sorted.
    pub tree_edges: Vec<(NodeId, NodeId)>,
    /// Metrics of the asynchronous run.
    pub metrics: RunMetrics,
}

/// Computes a minimum spanning tree asynchronously and deterministically
/// (Corollary 1.4).
///
/// # Errors
///
/// Returns an error if the simulation fails.
///
/// # Panics
///
/// Panics if the graph is empty or disconnected.
pub fn run_synchronized_mst(
    graph: &Graph,
    weights: &EdgeWeights,
    delay: DelayModel,
) -> Result<MstReport, SessionError> {
    let diameter = ds_graph::metrics::diameter(graph).expect("MST requires a connected graph");
    let cover = Arc::new(ds_covers::builder::build_sparse_cover(graph, diameter.max(1)));
    let t_bound = (2 * cover.max_height() as u64 + 2).max(1);
    let cfg = SynchronizerConfig::build(graph, t_bound);
    let run = Session::on(graph)
        .delay(delay)
        .synchronizer(SyncKind::Det(cfg))
        .run(|v| MstAlgorithm::new(graph, weights, v, cover.clone()))?;
    let mut tree_edges: Vec<(NodeId, NodeId)> =
        run.outputs.iter().flatten().flat_map(|edges| edges.iter().copied()).collect();
    tree_edges.sort();
    tree_edges.dedup();
    Ok(MstReport { tree_edges, metrics: run.metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_graph::weights::{is_spanning_tree, minimum_spanning_tree};
    use ds_netsim::sync_engine::run_sync;

    fn reference_edges(graph: &Graph, weights: &EdgeWeights) -> Vec<(NodeId, NodeId)> {
        minimum_spanning_tree(graph, weights).into_iter().map(|e| graph.endpoints(e)).collect()
    }

    #[test]
    fn spanning_forest_filters_to_kruskal_result() {
        let edges = vec![(0, 1, 5), (1, 2, 1), (0, 2, 2), (2, 3, 7), (1, 3, 9)];
        let forest = spanning_forest(edges, 4);
        assert_eq!(forest, vec![(0, 2, 2), (1, 2, 1), (2, 3, 7)]);
    }

    #[test]
    fn synchronous_mst_matches_kruskal() {
        let graph = Graph::random_connected(18, 0.2, 4);
        let weights = EdgeWeights::random_distinct(&graph, 4);
        let d = ds_graph::metrics::diameter(&graph).unwrap().max(1);
        let cover = Arc::new(ds_covers::builder::build_sparse_cover(&graph, d));
        let report =
            run_sync(&graph, |v| MstAlgorithm::new(&graph, &weights, v, cover.clone()), 10_000)
                .unwrap();
        let mut got: Vec<(NodeId, NodeId)> =
            report.outputs().iter().flatten().flat_map(|e| e.iter().copied()).collect();
        got.sort();
        got.dedup();
        let mut expected = reference_edges(&graph, &weights);
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn asynchronous_mst_matches_kruskal_and_spans() {
        let graph = Graph::clustered_ring(3, 3);
        let weights = EdgeWeights::random_distinct(&graph, 7);
        let report = run_synchronized_mst(&graph, &weights, DelayModel::jitter(5)).unwrap();
        let mut expected = reference_edges(&graph, &weights);
        expected.sort();
        assert_eq!(report.tree_edges, expected);
        let ids: Vec<_> =
            report.tree_edges.iter().map(|&(u, v)| graph.edge_between(u, v).unwrap()).collect();
        assert!(is_spanning_tree(&graph, &ids));
    }
}
