//! Reusable, epoch-stamped BFS scratch buffers for the cover-construction
//! pipeline.
//!
//! Every stage of the pipeline (ball carving in the decomposition, the
//! `d`-expansion and cluster-tree extraction in the builder, ball checks in
//! `validate`) is a *bounded-radius* BFS: it only ever needs the part of the graph
//! within a known radius of its sources. [`BfsScratch`] runs such searches over
//! flat arrays that are allocated once and reused across balls and layers:
//!
//! * visited marks are epoch-stamped (`visit[v] == epoch`), so starting a new
//!   search is `O(sources)` instead of `O(n)` clearing,
//! * the discovery order doubles as the frontier (CSR-style level expansion:
//!   the current level is a range of the order array), so there is no separate
//!   queue to allocate,
//! * levels are expanded one at a time on demand — callers that grow a ball until
//!   a doubling condition fails only pay for the edges inside the final ball.

use ds_graph::{Graph, NodeId};

/// A reusable bounded-radius BFS: epoch-stamped visited marks, distances, optional
/// BFS-tree parents, and the discovery order (which doubles as the level frontier).
#[derive(Debug)]
pub(crate) struct BfsScratch {
    /// `visit[v] == epoch` iff `v` was discovered by the current search.
    visit: Vec<u32>,
    epoch: u32,
    /// Distance from the closest source; valid where `visit[v] == epoch`.
    dist: Vec<u32>,
    /// BFS-tree parent; valid where `visit[v] == epoch` and `v` is not a source.
    parent: Vec<NodeId>,
    /// Nodes in discovery order; levels are contiguous ranges.
    order: Vec<NodeId>,
    /// Start of the deepest complete level within `order`.
    level_start: usize,
    /// Depth of the deepest complete level.
    depth: u32,
}

impl BfsScratch {
    /// Creates scratch buffers for graphs of up to `n` nodes.
    pub(crate) fn new(n: usize) -> Self {
        BfsScratch {
            visit: vec![0; n],
            epoch: 0,
            dist: vec![0; n],
            parent: vec![NodeId(0); n],
            order: Vec::new(),
            level_start: 0,
            depth: 0,
        }
    }

    /// Begins a new search from `sources` (level 0, in the given order).
    ///
    /// Duplicate sources are ignored; epochs make this `O(|sources|)`.
    pub(crate) fn start(&mut self, sources: &[NodeId]) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped around: old stamps could alias the new epoch — reset them.
            self.visit.fill(0);
            self.epoch = 1;
        }
        self.order.clear();
        self.level_start = 0;
        self.depth = 0;
        for &s in sources {
            if self.visit[s.index()] != self.epoch {
                self.visit[s.index()] = self.epoch;
                self.dist[s.index()] = 0;
                self.order.push(s);
            }
        }
    }

    /// Whether `v` has been discovered by the current search.
    pub(crate) fn visited(&self, v: NodeId) -> bool {
        self.visit[v.index()] == self.epoch
    }

    /// Distance of a discovered node from the closest source.
    ///
    /// Only meaningful when [`BfsScratch::visited`] holds.
    pub(crate) fn dist(&self, v: NodeId) -> u32 {
        debug_assert!(self.visited(v));
        self.dist[v.index()]
    }

    /// BFS-tree parent of a discovered non-source node.
    ///
    /// Parents are assigned exactly as a plain full-graph BFS would (first
    /// discoverer wins; frontier processed in discovery order, neighbors in
    /// adjacency order), so bounded and unbounded searches agree on them.
    pub(crate) fn parent(&self, v: NodeId) -> NodeId {
        debug_assert!(self.visited(v) && self.dist[v.index()] > 0);
        self.parent[v.index()]
    }

    /// All nodes discovered so far, in discovery order (levels are contiguous).
    pub(crate) fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Depth of the deepest fully expanded level.
    pub(crate) fn depth_reached(&self) -> u32 {
        self.depth
    }

    /// Expands the next BFS level. Returns the `order` range of the newly
    /// discovered nodes, or `None` if the frontier was exhausted.
    pub(crate) fn expand_level(&mut self, graph: &Graph) -> Option<(usize, usize)> {
        let frontier = self.level_start..self.order.len();
        if frontier.is_empty() {
            return None;
        }
        let next_start = self.order.len();
        let next_depth = self.depth + 1;
        for i in frontier {
            let v = self.order[i];
            for &u in graph.neighbors(v) {
                if self.visit[u.index()] != self.epoch {
                    self.visit[u.index()] = self.epoch;
                    self.dist[u.index()] = next_depth;
                    self.parent[u.index()] = v;
                    self.order.push(u);
                }
            }
        }
        self.level_start = next_start;
        self.depth = next_depth;
        if self.order.len() == next_start {
            None
        } else {
            Some((next_start, self.order.len()))
        }
    }
}

/// Epoch-stamped node marks, for set membership without per-use clearing.
#[derive(Debug)]
pub(crate) struct MarkSet {
    mark: Vec<u32>,
    epoch: u32,
}

impl MarkSet {
    /// Creates marks for up to `n` nodes.
    pub(crate) fn new(n: usize) -> Self {
        MarkSet { mark: vec![0; n], epoch: 0 }
    }

    /// Clears the set in `O(1)` (or `O(n)` once every `u32::MAX` clears).
    pub(crate) fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.mark.fill(0);
            self.epoch = 1;
        }
    }

    /// Inserts `v`; returns whether it was newly inserted.
    pub(crate) fn insert(&mut self, v: NodeId) -> bool {
        let slot = &mut self.mark[v.index()];
        let fresh = *slot != self.epoch;
        *slot = self.epoch;
        fresh
    }

    /// Whether `v` is in the set.
    pub(crate) fn contains(&self, v: NodeId) -> bool {
        self.mark[v.index()] == self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_bfs_matches_full_distances_and_parents() {
        let g = Graph::grid(5, 4);
        let full_dist = ds_graph::metrics::bfs_distances(&g, NodeId(3));
        let full_parent = ds_graph::metrics::bfs_tree(&g, NodeId(3));
        let mut bfs = BfsScratch::new(g.node_count());
        bfs.start(&[NodeId(3)]);
        while bfs.expand_level(&g).is_some() {}
        for v in g.nodes() {
            assert!(bfs.visited(v));
            assert_eq!(bfs.dist(v) as usize, full_dist[v.index()].unwrap());
            if v != NodeId(3) {
                assert_eq!(Some(bfs.parent(v)), full_parent[v.index()]);
            }
        }
    }

    #[test]
    fn expansion_stops_at_the_requested_depth() {
        let g = Graph::path(10);
        let mut bfs = BfsScratch::new(g.node_count());
        bfs.start(&[NodeId(0)]);
        while bfs.depth_reached() < 3 && bfs.expand_level(&g).is_some() {}
        assert_eq!(bfs.order(), &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert!(!bfs.visited(NodeId(4)));
    }

    #[test]
    fn epochs_isolate_successive_searches() {
        let g = Graph::path(6);
        let mut bfs = BfsScratch::new(g.node_count());
        bfs.start(&[NodeId(0)]);
        while bfs.expand_level(&g).is_some() {}
        bfs.start(&[NodeId(5)]);
        assert!(bfs.visited(NodeId(5)));
        assert!(!bfs.visited(NodeId(0)));
        bfs.expand_level(&g);
        assert_eq!(bfs.dist(NodeId(4)), 1);
    }

    #[test]
    fn multi_source_level_zero_deduplicates() {
        let g = Graph::path(4);
        let mut bfs = BfsScratch::new(g.node_count());
        bfs.start(&[NodeId(2), NodeId(0), NodeId(2)]);
        assert_eq!(bfs.order(), &[NodeId(2), NodeId(0)]);
        bfs.expand_level(&g);
        assert_eq!(bfs.dist(NodeId(1)), 1);
        assert_eq!(bfs.parent(NodeId(1)), NodeId(2));
        assert_eq!(bfs.dist(NodeId(3)), 1);
    }

    #[test]
    fn mark_set_clears_in_constant_time() {
        let mut marks = MarkSet::new(4);
        marks.clear();
        assert!(marks.insert(NodeId(1)));
        assert!(!marks.insert(NodeId(1)));
        assert!(marks.contains(NodeId(1)));
        marks.clear();
        assert!(!marks.contains(NodeId(1)));
        assert!(marks.insert(NodeId(1)));
    }
}
