//! Incremental maintenance of sparse covers under dynamic topology.
//!
//! The fault layer of `ds-netsim` makes the network dynamic: links go down and
//! come back, nodes crash and recover. A synchronizer that keeps running across
//! such an event needs its cover to keep satisfying Definition 2.1 *for the new
//! graph* — but rebuilding every layer from scratch on every event is
//! `O(log n)` full carvings per flap. This module repairs a cover in place of a
//! rebuild: only the clusters the event actually touches are replaced, and the
//! replacement work is proportional to the damaged region, not to `n`.
//!
//! # What an event can break
//!
//! * **Edge removal** (including every edge of a crashed node). Distances only
//!   grow, so `B_new(v, d) ⊆ B_old(v, d)`: the *coverage* of every intact
//!   cluster survives verbatim. What breaks is cluster **trees**: a cluster
//!   whose tree uses a removed edge no longer validates. Such clusters are
//!   dropped and their members become *orphans*.
//! * **Edge addition**. Every tree edge still exists, but balls can grow. A
//!   node `w` whose ball gained a new node must have a shortest path through an
//!   added edge, so `w` is within `d − 1` of one of its endpoints. Only those
//!   nodes are rechecked (one bounded BFS each); the ones whose intact clusters
//!   no longer contain their grown ball join the orphans.
//!
//! # Repair
//!
//! The orphan set is re-carved by the same deterministic ball carving as the
//! from-scratch build ([`crate::decomposition`]), restricted so that doubling
//! counts and center selection see only orphans while balls grow through the
//! full new graph. Every orphan lands in the *carved* (inner) set of some new
//! cluster, whose `d`-expansion therefore contains its whole new ball — the
//! exact argument of the from-scratch construction. New cluster trees are built
//! by bounded BFS in the new graph, so `SparseCover::validate` holds again.
//!
//! # What degrades (gracefully)
//!
//! Patch clusters are carved without reference to the kept ones, so the
//! same-color separation between old and new clusters is lost. Membership
//! therefore degrades *additively*: at most `⌈log₂ n⌉ + 1` from the kept cover
//! plus `⌈log₂ |orphans|⌉ + 1` from each repair — still `O(log n)` per event,
//! but repeated churn accumulates. Callers that care about sparsity after heavy
//! churn should rebuild once [`RepairStats`] shows the accumulated patchwork
//! exceeding their budget; the property tests in this module and
//! `tests/cover_scale.rs` pin the per-event bound against a from-scratch
//! rebuild. DESIGN.md §9 documents the trade.

use crate::builder::{realize_cluster, CoverScratch};
use crate::decomposition::carve_decomposition_over;
use crate::{Cluster, ClusterId, LayeredSparseCover, SparseCover};
use ds_graph::{Graph, NodeId};

/// Accounting of one [`repair_sparse_cover`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Clusters of the old cover kept verbatim (their trees survive in the new graph).
    pub kept: usize,
    /// Clusters dropped because their tree used a removed edge.
    pub dropped: usize,
    /// Fresh clusters carved over the orphan set.
    pub recarved: usize,
    /// Nodes near an added edge whose ball coverage was rechecked.
    pub rechecked: usize,
    /// Nodes that lost coverage and were re-carved.
    pub orphans: usize,
}

impl RepairStats {
    /// Whether the event required any structural change at all.
    pub fn is_noop(&self) -> bool {
        self.dropped == 0 && self.orphans == 0
    }
}

/// Repairs `cover` (a valid `d`-cover of `old_graph`) into a valid `d`-cover of
/// `new_graph`, replacing only the clusters the topology change touches.
///
/// The two graphs must have the same node count; any combination of edge
/// removals and additions between them is handled in one call. A crashed node
/// is expressed as `new_graph` lacking all of its edges (see [`without_node`]);
/// the isolated node keeps a singleton cluster so its (empty-ball) coverage
/// stays well-defined.
///
/// # Panics
///
/// Panics if the node counts differ or `cover.radius == 0`.
pub fn repair_sparse_cover(
    cover: &SparseCover,
    old_graph: &Graph,
    new_graph: &Graph,
) -> (SparseCover, RepairStats) {
    let n = new_graph.node_count();
    assert_eq!(old_graph.node_count(), n, "repair requires a fixed node set");
    let d = cover.radius;
    assert!(d >= 1, "cover radius must be at least 1");
    let mut scratch = CoverScratch::new(n);

    // Clusters whose tree uses an edge missing from the new graph are broken;
    // their members lose their coverage certificate and become orphans.
    let mut broken = vec![false; cover.cluster_count()];
    let mut orphan = vec![false; n];
    let mut orphan_count = 0usize;
    for (i, c) in cover.clusters.iter().enumerate() {
        if c.tree_parents().any(|(v, p)| p.is_some_and(|p| !new_graph.has_edge(v, p))) {
            broken[i] = true;
            for &v in &c.members {
                if !orphan[v.index()] {
                    orphan[v.index()] = true;
                    orphan_count += 1;
                }
            }
        }
    }
    let dropped = broken.iter().filter(|&&b| b).count();

    // Added edges can only grow the balls of nodes within d − 1 of an endpoint
    // (a grown ball's witness path crosses an added edge). Recheck exactly those
    // against their surviving clusters.
    let mut endpoints: Vec<NodeId> = new_graph
        .edges()
        .filter(|&(_, u, v)| !old_graph.has_edge(u, v))
        .flat_map(|(_, u, v)| [u, v])
        .collect();
    endpoints.sort_unstable();
    endpoints.dedup();
    let mut rechecked = 0usize;
    if !endpoints.is_empty() {
        scratch.ball.start(&endpoints);
        while scratch.ball.depth_reached() < (d - 1) as u32
            && scratch.ball.expand_level(new_graph).is_some()
        {}
        let mut affected: Vec<NodeId> = scratch.ball.order().to_vec();
        affected.sort_unstable();
        for w in affected {
            if orphan[w.index()] {
                continue;
            }
            rechecked += 1;
            scratch.tree.start(std::slice::from_ref(&w));
            while scratch.tree.depth_reached() < d as u32
                && scratch.tree.expand_level(new_graph).is_some()
            {}
            let covered = cover.clusters_of(w).iter().any(|&cid| {
                !broken[cid.index()]
                    && scratch.tree.order().iter().all(|&x| cover.cluster(cid).contains_member(x))
            });
            if !covered {
                orphan[w.index()] = true;
                orphan_count += 1;
            }
        }
    }

    // Keep the intact clusters (renumbered densely), then carve fresh clusters
    // over the orphan set in the new graph.
    let mut clusters: Vec<Cluster> = Vec::with_capacity(cover.cluster_count());
    for (i, c) in cover.clusters.iter().enumerate() {
        if broken[i] {
            continue;
        }
        let mut kept = c.clone();
        kept.id = ClusterId(clusters.len());
        clusters.push(kept);
    }
    let kept = clusters.len();

    let mut recarved = 0usize;
    if orphan_count > 0 {
        let patch =
            carve_decomposition_over(new_graph, 2 * d, &mut scratch.ball, orphan, orphan_count);
        for (_color, dc) in patch.clusters() {
            let id = ClusterId(clusters.len());
            clusters.push(realize_cluster(new_graph, d, dc, &mut scratch, id));
            recarved += 1;
        }
    }

    let stats = RepairStats { kept, dropped, recarved, rechecked, orphans: orphan_count };
    (SparseCover::new(d, clusters, n), stats)
}

/// Repairs every layer of a layered cover for the same topology change,
/// returning the per-layer [`RepairStats`].
///
/// # Panics
///
/// Panics if the node counts differ.
pub fn repair_layered_sparse_cover(
    layered: &LayeredSparseCover,
    old_graph: &Graph,
    new_graph: &Graph,
) -> (LayeredSparseCover, Vec<RepairStats>) {
    let mut covers = Vec::with_capacity(layered.layers());
    let mut stats = Vec::with_capacity(layered.layers());
    for cover in layered.iter() {
        let (repaired, s) = repair_sparse_cover(cover, old_graph, new_graph);
        covers.push(repaired);
        stats.push(s);
    }
    (LayeredSparseCover::new(covers), stats)
}

/// The graph with one edge removed — the topology after a `LinkDown` fault.
///
/// # Panics
///
/// Panics if the edge does not exist.
pub fn without_edge(graph: &Graph, u: NodeId, v: NodeId) -> Graph {
    assert!(graph.has_edge(u, v), "cannot remove a missing edge ({u}, {v})");
    Graph::from_edges(
        graph.node_count(),
        graph.edges().map(|(_, a, b)| (a, b)).filter(|&(a, b)| (a, b) != (u.min(v), u.max(v))),
    )
    .expect("removing an edge keeps the edge list valid")
}

/// The graph with one edge added — the topology after a `LinkUp` fault.
///
/// # Panics
///
/// Panics if the edge already exists, is a self-loop, or is out of range.
pub fn with_edge(graph: &Graph, u: NodeId, v: NodeId) -> Graph {
    let mut g = graph.clone();
    g.add_edge(u, v).expect("new edge must be valid");
    g
}

/// The graph with every edge incident to `v` removed — the topology after a
/// crash-stop `NodeCrash` fault. The node itself stays (node sets are fixed);
/// it becomes isolated and a repair gives it a singleton cluster.
pub fn without_node(graph: &Graph, v: NodeId) -> Graph {
    Graph::from_edges(
        graph.node_count(),
        graph.edges().map(|(_, a, b)| (a, b)).filter(|&(a, b)| a != v && b != v),
    )
    .expect("removing a node's edges keeps the edge list valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_layered_sparse_cover, build_sparse_cover};

    /// Membership after one repair is at most the kept cover's log-bound plus
    /// the patch carving's log-bound (the documented additive degradation).
    fn membership_budget(n: usize) -> usize {
        let log_n = (n as f64).log2().ceil() as usize;
        2 * (log_n + 1)
    }

    #[test]
    fn identical_graphs_repair_to_a_noop() {
        let graph = Graph::grid(6, 6);
        let cover = build_sparse_cover(&graph, 2);
        let (repaired, stats) = repair_sparse_cover(&cover, &graph, &graph);
        assert!(stats.is_noop());
        assert_eq!(stats.kept, cover.cluster_count());
        assert_eq!(stats.dropped + stats.recarved + stats.orphans, 0);
        assert_eq!(repaired, cover, "no-op repair returns the cover unchanged");
    }

    #[test]
    fn edge_removal_repairs_to_a_valid_cover() {
        for (graph, d) in [
            (Graph::grid(6, 6), 2),
            (Graph::torus(5, 5), 2),
            (Graph::random_connected(40, 0.12, 7), 3),
        ] {
            let cover = build_sparse_cover(&graph, d);
            // Remove the middle edge of the edge list: deterministic, and on these
            // graphs guaranteed to sit inside at least one cluster tree or ball.
            let (_, u, v) = graph.edges().nth(graph.edge_count() / 2).unwrap();
            let new_graph = without_edge(&graph, u, v);
            let (repaired, stats) = repair_sparse_cover(&cover, &graph, &new_graph);
            repaired.validate(&new_graph).expect("repaired cover satisfies Definition 2.1");
            assert_eq!(stats.kept + stats.dropped, cover.cluster_count());
            assert!(
                repaired.max_membership() <= membership_budget(graph.node_count()),
                "membership {} exceeds the additive budget",
                repaired.max_membership()
            );
        }
    }

    #[test]
    fn edge_addition_repairs_to_a_valid_cover() {
        // A long cycle plus a chord: the chord shrinks distances across the ring,
        // so balls near its endpoints grow and must be rechecked.
        let graph = Graph::cycle(24);
        let cover = build_sparse_cover(&graph, 2);
        let new_graph = with_edge(&graph, NodeId(0), NodeId(12));
        let (repaired, stats) = repair_sparse_cover(&cover, &graph, &new_graph);
        repaired.validate(&new_graph).expect("repaired cover covers the grown balls");
        assert_eq!(stats.dropped, 0, "additions never break cluster trees");
        assert!(stats.rechecked > 0, "nodes near the chord must be rechecked");
    }

    #[test]
    fn node_crash_isolates_into_a_singleton_cluster() {
        let graph = Graph::grid(5, 5);
        let cover = build_sparse_cover(&graph, 2);
        let crashed = NodeId(12); // grid center: degree 4, interior
        let new_graph = without_node(&graph, crashed);
        let (repaired, stats) = repair_sparse_cover(&cover, &graph, &new_graph);
        repaired.validate(&new_graph).expect("repaired cover valid on the disconnected graph");
        assert!(stats.dropped > 0, "the crashed node's tree edges break clusters");
        let singleton = repaired
            .clusters_of(crashed)
            .iter()
            .any(|&cid| repaired.cluster(cid).contains_member(crashed));
        assert!(singleton, "the isolated node keeps a covering cluster");
    }

    #[test]
    fn crash_then_recover_round_trips_through_two_repairs() {
        let graph = Graph::torus(4, 6);
        let cover = build_sparse_cover(&graph, 2);
        let crashed = NodeId(7);
        let down = without_node(&graph, crashed);
        let (after_crash, _) = repair_sparse_cover(&cover, &graph, &down);
        after_crash.validate(&down).expect("valid after the crash");
        // Recovery restores every removed edge: repair the repaired cover back up.
        let (after_recover, stats) = repair_sparse_cover(&after_crash, &down, &graph);
        after_recover.validate(&graph).expect("valid after the recovery");
        assert!(stats.rechecked > 0, "restored edges grow balls near the node");
    }

    #[test]
    fn repair_matches_a_from_scratch_rebuild_on_the_cover_contract() {
        // The equivalence the repair owes its callers: on the same new graph,
        // repaired and rebuilt covers validate identically and cover the same
        // balls; membership stays within the documented additive budget of the
        // rebuilt optimum.
        let graph = Graph::random_connected(48, 0.1, 3);
        let d = 2;
        let cover = build_sparse_cover(&graph, d);
        let (_, u, v) = graph.edges().nth(5).unwrap();
        let new_graph = without_edge(&graph, u, v);

        let (repaired, _) = repair_sparse_cover(&cover, &graph, &new_graph);
        let rebuilt = build_sparse_cover(&new_graph, d);
        repaired.validate(&new_graph).expect("repaired validates");
        rebuilt.validate(&new_graph).expect("rebuilt validates");
        assert_eq!(repaired.radius, rebuilt.radius);
        for w in new_graph.nodes() {
            assert!(!repaired.clusters_of(w).is_empty(), "{w} uncovered after repair");
            assert!(!rebuilt.clusters_of(w).is_empty(), "{w} uncovered after rebuild");
        }
        assert!(
            repaired.max_membership() <= membership_budget(graph.node_count()),
            "repair membership {} vs rebuilt {}",
            repaired.max_membership(),
            rebuilt.max_membership()
        );
    }

    #[test]
    fn layered_repair_keeps_every_layer_valid() {
        let graph = Graph::random_connected(30, 0.14, 11);
        let layered = build_layered_sparse_cover(&graph, 8);
        let (_, u, v) = graph.edges().nth(3).unwrap();
        let new_graph = without_edge(&graph, u, v);
        let (repaired, stats) = repair_layered_sparse_cover(&layered, &graph, &new_graph);
        assert_eq!(stats.len(), layered.layers());
        for (j, cover) in repaired.iter().enumerate() {
            assert_eq!(cover.radius, 1 << j);
            cover.validate(&new_graph).unwrap_or_else(|e| panic!("layer {j}: {e}"));
        }
    }

    #[test]
    fn a_churn_sequence_of_mixed_events_stays_valid_throughout() {
        // Apply a deterministic sequence of link-down / crash / link-up events,
        // repairing incrementally after each; every intermediate cover must
        // validate against its graph.
        let mut graph = Graph::grid(5, 6);
        let d = 2;
        let mut cover = build_sparse_cover(&graph, d);
        type Step = Box<dyn Fn(&Graph) -> Graph>;
        let steps: Vec<Step> = vec![
            Box::new(|g| without_edge(g, NodeId(0), NodeId(1))),
            Box::new(|g| without_node(g, NodeId(14))),
            Box::new(|g| with_edge(g, NodeId(0), NodeId(1))),
            Box::new(|g| without_edge(g, NodeId(7), NodeId(8))),
            Box::new(|g| with_edge(g, NodeId(14), NodeId(13))),
        ];
        for (i, step) in steps.iter().enumerate() {
            let new_graph = step(&graph);
            let (repaired, _) = repair_sparse_cover(&cover, &graph, &new_graph);
            repaired.validate(&new_graph).unwrap_or_else(|e| panic!("step {i}: {e}"));
            graph = new_graph;
            cover = repaired;
        }
    }
}
