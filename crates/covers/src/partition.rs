//! Low-diameter partitions: disjoint connected clusters covering all nodes.
//!
//! These are the structures underlying Awerbuch's γ synchronizer (Appendix A): apply
//! the β scheme (convergecast/broadcast on a spanning tree) inside each cluster and
//! the α scheme between neighboring clusters, over one *preferred* edge per adjacent
//! cluster pair.
//!
//! The construction runs on flat per-node arrays (assignment, parent, depth written
//! in place during the carve) — the only ordered container left is the small
//! per-adjacent-cluster-pair map that picks preferred edges.

use ds_graph::{Graph, NodeId};
use std::collections::BTreeMap;

/// A partition of the node set into disjoint connected clusters, each with a rooted
/// spanning tree of logarithmic depth, plus one preferred edge per pair of adjacent
/// clusters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LowDiameterPartition {
    /// Cluster index of every node.
    pub cluster_of: Vec<usize>,
    /// Root of every cluster's spanning tree.
    pub roots: Vec<NodeId>,
    /// Tree parent of every node (`None` for cluster roots).
    pub parent: Vec<Option<NodeId>>,
    /// Tree children of every node.
    pub children: Vec<Vec<NodeId>>,
    /// Depth of every node in its cluster tree.
    pub depth: Vec<usize>,
    /// One preferred edge `(u, v)` for every pair of adjacent clusters, with
    /// `cluster_of[u] < cluster_of[v]`.
    pub preferred_edges: Vec<(NodeId, NodeId)>,
}

impl LowDiameterPartition {
    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.roots.len()
    }

    /// Height of the tallest cluster tree.
    pub fn max_height(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// The preferred edges incident to `v` (one per neighboring cluster pair that
    /// chose an edge at `v`).
    pub fn preferred_edges_at(&self, v: NodeId) -> Vec<NodeId> {
        self.preferred_edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == v {
                    Some(b)
                } else if b == v {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Checks the partition invariants against `graph`.
    pub fn check(&self, graph: &Graph) -> bool {
        if self.cluster_of.len() != graph.node_count() {
            return false;
        }
        // Tree edges exist and point within the same cluster.
        for v in graph.nodes() {
            if let Some(p) = self.parent[v.index()] {
                if !graph.has_edge(v, p) || self.cluster_of[v.index()] != self.cluster_of[p.index()]
                {
                    return false;
                }
            } else if self.roots[self.cluster_of[v.index()]] != v {
                return false;
            }
        }
        // Every preferred edge joins two distinct adjacent clusters.
        for &(u, v) in &self.preferred_edges {
            if !graph.has_edge(u, v) || self.cluster_of[u.index()] == self.cluster_of[v.index()] {
                return false;
            }
        }
        true
    }
}

/// Builds a low-diameter partition by deterministic ball carving in the remaining
/// graph: every cluster is connected, and its tree depth is at most `⌈log₂ n⌉` (the
/// ball stops growing once it no longer doubles).
///
/// # Panics
///
/// Panics if the graph is empty.
pub fn build_partition(graph: &Graph) -> LowDiameterPartition {
    let n = graph.node_count();
    assert!(n > 0, "partition requires a non-empty graph");
    const UNASSIGNED: usize = usize::MAX;
    let mut cluster_of = vec![UNASSIGNED; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut depth = vec![0usize; n];
    let mut roots = Vec::new();
    // Each ball carves (at least) its center, so the minimum unassigned id is
    // monotone: one forward cursor replaces the ordered set.
    let mut cursor = 0usize;
    // The BFS ball in discovery order; levels are contiguous ranges of it.
    let mut ball: Vec<NodeId> = Vec::new();

    while cursor < n {
        if cluster_of[cursor] != UNASSIGNED {
            cursor += 1;
            continue;
        }
        let center = NodeId(cursor);
        let cluster_index = roots.len();
        // Grow a BFS ball inside the unassigned subgraph while it keeps doubling.
        // Assignment happens on discovery: `cluster_of` doubles as the visited mark
        // (every explored node joins the cluster, exactly as the reference
        // layer-list construction kept all explored layers).
        ball.clear();
        ball.push(center);
        cluster_of[cursor] = cluster_index;
        let mut level_start = 0usize;
        let mut level_depth = 0usize;
        loop {
            let frontier = level_start..ball.len();
            level_start = ball.len();
            level_depth += 1;
            for i in frontier {
                let v = ball[i];
                for &u in graph.neighbors(v) {
                    if cluster_of[u.index()] == UNASSIGNED {
                        cluster_of[u.index()] = cluster_index;
                        parent[u.index()] = Some(v);
                        depth[u.index()] = level_depth;
                        ball.push(u);
                    }
                }
            }
            if ball.len() == level_start {
                break; // no next layer
            }
            let prev_size = level_start;
            // Stop once the ball no longer doubles.
            if ball.len() <= 2 * prev_size {
                break;
            }
        }
        roots.push(center);
    }

    let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for v in graph.nodes() {
        if let Some(p) = parent[v.index()] {
            children[p.index()].push(v);
        }
    }

    // One preferred edge per pair of adjacent clusters: the lexicographically smallest.
    let mut preferred: BTreeMap<(usize, usize), (NodeId, NodeId)> = BTreeMap::new();
    for (_, u, v) in graph.edges() {
        let (cu, cv) = (cluster_of[u.index()], cluster_of[v.index()]);
        if cu == cv {
            continue;
        }
        let key = (cu.min(cv), cu.max(cv));
        let candidate = if cu < cv { (u, v) } else { (v, u) };
        preferred
            .entry(key)
            .and_modify(|e| {
                if candidate < *e {
                    *e = candidate;
                }
            })
            .or_insert(candidate);
    }

    LowDiameterPartition {
        cluster_of,
        roots,
        parent,
        children,
        depth,
        preferred_edges: preferred.into_values().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_all_nodes_and_checks_out() {
        for graph in [
            Graph::path(15),
            Graph::grid(5, 4),
            Graph::cycle(11),
            Graph::random_connected(50, 0.06, 4),
            Graph::clustered_ring(4, 4),
        ] {
            let p = build_partition(&graph);
            assert!(p.check(&graph));
            assert!(p.cluster_of.iter().all(|&c| c != usize::MAX));
        }
    }

    #[test]
    fn tree_depth_is_logarithmic() {
        let graph = Graph::random_connected(100, 0.04, 8);
        let p = build_partition(&graph);
        let bound = (graph.node_count() as f64).log2().ceil() as usize + 1;
        assert!(p.max_height() <= bound, "height {} > {}", p.max_height(), bound);
    }

    #[test]
    fn complete_graph_is_one_cluster() {
        let graph = Graph::complete(8);
        let p = build_partition(&graph);
        assert_eq!(p.cluster_count(), 1);
        assert!(p.preferred_edges.is_empty());
    }

    #[test]
    fn path_partition_preferred_edges_join_adjacent_segments() {
        let graph = Graph::path(16);
        let p = build_partition(&graph);
        assert!(p.cluster_count() >= 2);
        assert_eq!(p.preferred_edges.len(), p.cluster_count() - 1);
        assert!(p.check(&graph));
    }

    #[test]
    fn preferred_edges_at_lists_counterparts() {
        let graph = Graph::path(16);
        let p = build_partition(&graph);
        let (u, v) = p.preferred_edges[0];
        assert!(p.preferred_edges_at(u).contains(&v));
        assert!(p.preferred_edges_at(v).contains(&u));
    }
}
