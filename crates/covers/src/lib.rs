//! Sparse covers, layered covers, network decompositions and low-diameter partitions.
//!
//! The synchronizer relies on the graph-theoretic notion of a *sparse `d`-cover*
//! (Definition 2.1 of the paper): a collection of clusters, each equipped with a
//! rooted low-depth cluster tree, such that
//!
//! * every node belongs to `O(log n)` clusters,
//! * every cluster tree has depth `O(d · polylog n)`, and
//! * for every node `v`, *all* of `B(v, d)` (the `d`-neighborhood of `v`) is contained
//!   in at least one cluster that contains `v`.
//!
//! The paper constructs these from the deterministic network decomposition of
//! Rozhon–Ghaffari (Theorem 4.20/4.21); this crate provides a deterministic
//! construction with the same interface and guarantees of the same flavor
//! (`O(log n)` membership, `O(d log n)` tree depth), built from a `(2d+1)`-separated
//! weak-diameter decomposition by ball carving — see [`decomposition`]. DESIGN.md §3
//! documents this substitution.
//!
//! All structures are stored densely: clusters keep their tree as sorted node
//! arrays with CSR-style children lists, and the construction pipeline runs on
//! epoch-stamped scratch buffers with bounded-radius BFS (see DESIGN.md §3.3 for
//! the complexity argument) — there are no ordered maps anywhere on the build
//! path.
//!
//! Modules:
//!
//! * [`decomposition`] — `k`-separated weak-diameter network decomposition
//!   (Definition 4.19) by deterministic ball carving.
//! * [`builder`] — sparse `d`-covers and layered covers from the decomposition
//!   (Theorem 4.21 interface).
//! * [`partition`] — low-diameter *partitions* (disjoint clusters covering all
//!   nodes) used by the γ-synchronizer baseline.
//! * [`repair`] — incremental maintenance under dynamic topology: on a link or
//!   node event, only the clusters the event touches are re-carved, with a
//!   documented additive membership degradation (DESIGN.md §9).
//! * [`stats`] — quality statistics (membership, stretch, edge load) used by the
//!   cover-quality experiment (E6).
//!
//! The pre-dense-id (`BTreeMap`-based) builder survived one release as the
//! `legacy` module, the executable reference the rewrite was pinned
//! bit-identical against; it is gone now, and the construction's contract is
//! held by property checks instead ([`SparseCover::validate`] plus the
//! sparsity bounds, in the builder unit tests and `tests/cover_scale.rs`).

#![forbid(unsafe_code)]

pub mod builder;
pub mod decomposition;
pub mod partition;
pub mod repair;
pub(crate) mod scratch;
pub mod stats;

use ds_graph::{Graph, NodeId};
use scratch::BfsScratch;
use std::fmt;

/// Identifier of a cluster within a [`SparseCover`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClusterId(pub usize);

impl ClusterId {
    /// Returns the underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One cluster of a cover: a set of *member* (terminal) nodes plus a rooted tree that
/// spans them, possibly through non-member (Steiner) nodes — the paper's cluster tree.
///
/// The tree is stored densely: tree nodes live in one sorted array, with parents,
/// depths and CSR-style children lists in parallel arrays. All lookups resolve a
/// node through one binary search over the (typically small) tree-node array.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cluster {
    /// Identifier of the cluster within its cover.
    pub id: ClusterId,
    /// Root of the cluster tree.
    pub root: NodeId,
    /// Member (terminal) nodes, sorted ascending: the nodes the cluster covers.
    pub members: Vec<NodeId>,
    /// All tree nodes (members ∪ Steiner nodes ∪ root), sorted ascending.
    tree: Vec<NodeId>,
    /// Parent of `tree[i]` in the cluster tree (`None` for the root).
    parent: Vec<Option<NodeId>>,
    /// Depth (in tree edges) of `tree[i]` below the root.
    depth: Vec<u32>,
    /// Children of `tree[i]`: `child_list[child_offsets[i]..child_offsets[i+1]]`,
    /// each slice sorted ascending.
    child_offsets: Vec<u32>,
    child_list: Vec<NodeId>,
}

impl Cluster {
    /// Builds a cluster from `(node, parent)` pairs (in any order; the root's entry
    /// has parent `None`).
    ///
    /// # Panics
    ///
    /// Panics if the pairs do not describe a tree rooted at `root` containing all
    /// `members` (this is an internal construction error, not user input).
    pub fn from_parents(
        id: ClusterId,
        root: NodeId,
        mut members: Vec<NodeId>,
        mut pairs: Vec<(NodeId, Option<NodeId>)>,
    ) -> Self {
        // Membership lookups binary-search this list, so enforce the sort here
        // rather than trusting the caller.
        members.sort_unstable();
        pairs.sort_unstable_by_key(|&(v, _)| v);
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0), "duplicate tree node");
        let tree: Vec<NodeId> = pairs.iter().map(|&(v, _)| v).collect();
        let parent: Vec<Option<NodeId>> = pairs.iter().map(|&(_, p)| p).collect();
        let slot = |v: NodeId| tree.binary_search(&v);
        assert_eq!(
            slot(root).ok().map(|i| parent[i].is_none()),
            Some(true),
            "root must be in the tree with no parent"
        );

        // CSR children lists: count per parent, then fill; iterating tree nodes in
        // ascending order keeps every child slice sorted.
        let mut counts = vec![0u32; tree.len()];
        for &p in parent.iter().flatten() {
            counts[slot(p).expect("parent is a tree node")] += 1;
        }
        let mut child_offsets = vec![0u32; tree.len() + 1];
        for i in 0..tree.len() {
            child_offsets[i + 1] = child_offsets[i] + counts[i];
        }
        let mut cursor: Vec<u32> = child_offsets[..tree.len()].to_vec();
        let mut child_list = vec![NodeId(0); child_offsets[tree.len()] as usize];
        for (i, &p) in parent.iter().enumerate() {
            if let Some(p) = p {
                let s = slot(p).expect("parent is a tree node");
                child_list[cursor[s] as usize] = tree[i];
                cursor[s] += 1;
            }
        }

        // Depths by an iterative traversal from the root.
        let mut depth = vec![u32::MAX; tree.len()];
        let mut stack = vec![(slot(root).expect("root is a tree node"), 0u32)];
        let mut reached = 0usize;
        while let Some((i, d)) = stack.pop() {
            depth[i] = d;
            reached += 1;
            for &c in &child_list[child_offsets[i] as usize..child_offsets[i + 1] as usize] {
                stack.push((slot(c).expect("child is a tree node"), d + 1));
            }
        }
        assert_eq!(reached, tree.len(), "cluster tree must be connected");
        for &m in &members {
            assert!(slot(m).is_ok(), "member {m} must be a tree node");
        }
        Cluster { id, root, members, tree, parent, depth, child_offsets, child_list }
    }

    /// Dense slot of a tree node, if present.
    fn slot(&self, v: NodeId) -> Option<usize> {
        self.tree.binary_search(&v).ok()
    }

    /// All nodes of the cluster tree (members and Steiner nodes), ascending.
    pub fn tree_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.tree.iter().copied()
    }

    /// All `(node, parent)` pairs of the cluster tree, ascending by node.
    pub fn tree_parents(&self) -> impl Iterator<Item = (NodeId, Option<NodeId>)> + '_ {
        self.tree.iter().copied().zip(self.parent.iter().copied())
    }

    /// Whether `v` participates in the cluster tree (as member or Steiner node).
    pub fn contains_tree_node(&self, v: NodeId) -> bool {
        self.slot(v).is_some()
    }

    /// Whether `v` is a member (terminal) of the cluster.
    pub fn contains_member(&self, v: NodeId) -> bool {
        self.members.binary_search(&v).is_ok()
    }

    /// Parent of `v` in the cluster tree (`None` for the root).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a tree node.
    pub fn parent_of(&self, v: NodeId) -> Option<NodeId> {
        self.parent[self.slot(v).expect("not a tree node")]
    }

    /// Children of `v` in the cluster tree.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a tree node.
    pub fn children_of(&self, v: NodeId) -> &[NodeId] {
        let i = self.slot(v).expect("not a tree node");
        &self.child_list[self.child_offsets[i] as usize..self.child_offsets[i + 1] as usize]
    }

    /// Depth of the deepest tree node.
    pub fn height(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0) as usize
    }

    /// Number of member nodes.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }
}

/// A sparse `d`-cover (Definition 2.1): clusters with cluster trees such that every
/// `d`-ball is contained in some cluster.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparseCover {
    /// The covering radius `d`.
    pub radius: usize,
    /// The clusters.
    pub clusters: Vec<Cluster>,
    membership: Vec<Vec<ClusterId>>,
    tree_membership: Vec<Vec<ClusterId>>,
}

impl SparseCover {
    /// Assembles a cover from clusters, for a graph with `n` nodes.
    pub fn new(radius: usize, clusters: Vec<Cluster>, n: usize) -> Self {
        let mut membership = vec![Vec::new(); n];
        let mut tree_membership = vec![Vec::new(); n];
        for c in &clusters {
            for &v in &c.members {
                membership[v.index()].push(c.id);
            }
            for v in c.tree_nodes() {
                tree_membership[v.index()].push(c.id);
            }
        }
        SparseCover { radius, clusters, membership, tree_membership }
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// The cluster with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.index()]
    }

    /// Clusters in which `v` is a member.
    pub fn clusters_of(&self, v: NodeId) -> &[ClusterId] {
        &self.membership[v.index()]
    }

    /// Clusters in whose tree `v` participates (as member or Steiner node).
    pub fn tree_clusters_of(&self, v: NodeId) -> &[ClusterId] {
        &self.tree_membership[v.index()]
    }

    /// Largest number of clusters any node is a member of.
    pub fn max_membership(&self) -> usize {
        self.membership.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Largest cluster-tree height.
    pub fn max_height(&self) -> usize {
        self.clusters.iter().map(Cluster::height).max().unwrap_or(0)
    }

    /// Validates the Definition 2.1 properties against `graph`.
    ///
    /// Ball coverage is checked with one bounded-radius BFS per node over a reused
    /// scratch buffer, so validation costs `O(Σ_v |B(v, d)|)` edge visits instead
    /// of `n` full-graph BFS runs — cheap enough for the 4096-node tier graphs.
    ///
    /// # Errors
    ///
    /// Returns a [`CoverError`] describing the first violated property.
    pub fn validate(&self, graph: &Graph) -> Result<(), CoverError> {
        // (a) every tree edge is a graph edge and every tree is rooted and connected
        // (checked during construction); here we re-check edges exist.
        for c in &self.clusters {
            for (v, p) in c.tree_parents() {
                if let Some(p) = p {
                    if !graph.has_edge(v, p) {
                        return Err(CoverError::TreeEdgeMissing { cluster: c.id, u: p, v });
                    }
                }
            }
            if !c.contains_tree_node(c.root) {
                return Err(CoverError::RootMissing { cluster: c.id });
            }
        }
        // (b) ball coverage: for every node v there is a cluster containing v and all
        // of B(v, d).
        let mut bfs = BfsScratch::new(graph.node_count());
        for v in graph.nodes() {
            bfs.start(std::slice::from_ref(&v));
            while bfs.depth_reached() < self.radius as u32 && bfs.expand_level(graph).is_some() {}
            let covered = self.clusters_of(v).iter().any(|&cid| {
                let c = self.cluster(cid);
                bfs.order().iter().all(|&u| c.contains_member(u))
            });
            if !covered {
                return Err(CoverError::BallNotCovered { node: v, radius: self.radius });
            }
        }
        Ok(())
    }
}

/// A layered sparse `d`-cover: sparse `2^j`-covers for all `j ∈ {0, …, ⌈log₂ d⌉}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayeredSparseCover {
    covers: Vec<SparseCover>,
}

impl LayeredSparseCover {
    /// Wraps a list of covers where `covers[j]` must be a `2^j`-cover.
    ///
    /// # Panics
    ///
    /// Panics if `covers[j].radius != 2^j` for some `j`.
    pub fn new(covers: Vec<SparseCover>) -> Self {
        for (j, c) in covers.iter().enumerate() {
            assert_eq!(c.radius, 1usize << j, "covers[{j}] must be a 2^{j}-cover");
        }
        LayeredSparseCover { covers }
    }

    /// The number of layers (largest covered radius is `2^(layers-1)`).
    pub fn layers(&self) -> usize {
        self.covers.len()
    }

    /// The `2^j`-cover.
    ///
    /// # Panics
    ///
    /// Panics if the layer does not exist.
    pub fn level(&self, j: usize) -> &SparseCover {
        &self.covers[j]
    }

    /// The smallest-level cover whose radius is at least `d`.
    ///
    /// Falls back to the largest available cover if `d` exceeds every layer (which is
    /// safe whenever that cover already spans the whole graph).
    pub fn cover_for_radius(&self, d: usize) -> &SparseCover {
        self.covers
            .iter()
            .find(|c| c.radius >= d)
            .unwrap_or_else(|| self.covers.last().expect("layered cover is non-empty"))
    }

    /// Iterates over all layers.
    pub fn iter(&self) -> impl Iterator<Item = &SparseCover> {
        self.covers.iter()
    }
}

/// Violations of the sparse-cover properties, reported by [`SparseCover::validate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoverError {
    /// A cluster-tree edge does not exist in the graph.
    TreeEdgeMissing { cluster: ClusterId, u: NodeId, v: NodeId },
    /// A cluster's root is not part of its own tree.
    RootMissing { cluster: ClusterId },
    /// Some node's `d`-ball is not fully contained in any one of its clusters.
    BallNotCovered { node: NodeId, radius: usize },
}

impl fmt::Display for CoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverError::TreeEdgeMissing { cluster, u, v } => {
                write!(f, "cluster {cluster:?} uses tree edge ({u}, {v}) missing from the graph")
            }
            CoverError::RootMissing { cluster } => {
                write!(f, "cluster {cluster:?} does not contain its own root")
            }
            CoverError::BallNotCovered { node, radius } => {
                write!(f, "the {radius}-ball of node {node} is not contained in any cluster")
            }
        }
    }
}

impl std::error::Error for CoverError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_cluster() -> Cluster {
        // Root 0 with children 1, 2; member set {0, 1, 2}.
        let pairs =
            vec![(NodeId(1), Some(NodeId(0))), (NodeId(0), None), (NodeId(2), Some(NodeId(0)))];
        Cluster::from_parents(ClusterId(0), NodeId(0), vec![NodeId(0), NodeId(1), NodeId(2)], pairs)
    }

    #[test]
    fn cluster_from_parents_builds_children_and_depths() {
        let c = star_cluster();
        assert_eq!(c.children_of(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(c.parent_of(NodeId(1)), Some(NodeId(0)));
        assert_eq!(c.height(), 1);
        assert!(c.contains_member(NodeId(2)));
        assert!(!c.contains_member(NodeId(3)));
        assert_eq!(c.tree_nodes().collect::<Vec<_>>(), vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(
            c.tree_parents().collect::<Vec<_>>(),
            vec![(NodeId(0), None), (NodeId(1), Some(NodeId(0))), (NodeId(2), Some(NodeId(0)))]
        );
    }

    #[test]
    fn sparse_cover_membership_lookup() {
        let cover = SparseCover::new(1, vec![star_cluster()], 4);
        assert_eq!(cover.clusters_of(NodeId(1)), &[ClusterId(0)]);
        assert!(cover.clusters_of(NodeId(3)).is_empty());
        assert_eq!(cover.max_membership(), 1);
        assert_eq!(cover.max_height(), 1);
    }

    #[test]
    fn validate_detects_uncovered_ball() {
        // The star cluster covers nodes 0..=2 of a 4-node star, so node 3 is in no
        // cluster at all and its 1-ball is not covered.
        let g = Graph::star(4);
        let cover = SparseCover::new(1, vec![star_cluster()], 4);
        let err = cover.validate(&g).unwrap_err();
        assert!(matches!(err, CoverError::BallNotCovered { .. }));
    }

    #[test]
    fn validate_detects_missing_tree_edge() {
        // Tree edge (0, 2) does not exist on a path graph 0-1-2.
        let g = Graph::path(3);
        let cover = SparseCover::new(0, vec![star_cluster()], 3);
        let err = cover.validate(&g).unwrap_err();
        assert_eq!(
            err,
            CoverError::TreeEdgeMissing { cluster: ClusterId(0), u: NodeId(0), v: NodeId(2) }
        );
    }

    #[test]
    fn layered_cover_selects_smallest_sufficient_radius() {
        let g = Graph::path(9);
        let layered = builder::build_layered_sparse_cover(&g, 4);
        assert_eq!(layered.layers(), 3);
        assert_eq!(layered.cover_for_radius(1).radius, 1);
        assert_eq!(layered.cover_for_radius(3).radius, 4);
        assert_eq!(layered.cover_for_radius(100).radius, 4);
        let _ = g;
    }

    #[test]
    #[should_panic(expected = "covers[1]")]
    fn layered_cover_rejects_wrong_radii() {
        let g = Graph::path(3);
        let c1 = builder::build_sparse_cover(&g, 1);
        let c4 = builder::build_sparse_cover(&g, 4);
        let _ = LayeredSparseCover::new(vec![c1, c4]);
    }
}
