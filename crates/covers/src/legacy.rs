//! The pre-dense-id cover construction, kept verbatim for one release as the
//! executable reference of the builder equivalence tests.
//!
//! This module preserves the `BTreeMap`/`BTreeSet`-based ball carving and cover
//! expansion exactly as they were before the dense-id rewrite: full-graph BFS per
//! carving center, full-graph multi-source BFS per cluster expansion, and ordered
//! maps for every keyed lookup. It exists only so the rewritten pipeline in
//! [`crate::decomposition`] / [`crate::builder`] can be pinned **bit-identical**
//! against it (same clusters, same tree parents, same children order, same layer
//! order) — see the `covers_match_the_legacy_builder_exactly` test and the
//! `tests/cover_scale.rs` tier-graph equivalence suite. It is `doc(hidden)`,
//! deprecated for external use, and scheduled for removal next release.

use crate::decomposition::{DecompCluster, NetworkDecomposition};
use crate::{Cluster, ClusterId, LayeredSparseCover, SparseCover};
use ds_graph::{metrics, Graph, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// The pre-dense-id ball-carving decomposition (one full-graph BFS per center).
pub fn build_decomposition(graph: &Graph, separation: usize) -> NetworkDecomposition {
    assert!(graph.node_count() > 0, "decomposition requires a non-empty graph");
    let step = separation.max(1);
    let mut alive: BTreeSet<NodeId> = graph.nodes().collect();
    let mut colors: Vec<Vec<DecompCluster>> = Vec::new();

    while !alive.is_empty() {
        let mut remaining: BTreeSet<NodeId> = alive.clone();
        let mut this_color: Vec<DecompCluster> = Vec::new();

        while let Some(&center) = remaining.iter().next() {
            let dist = metrics::bfs_distances(graph, center);
            // Count remaining nodes within radius j·step for growing j until the ball
            // stops doubling.
            let count_within = |r: usize, remaining: &BTreeSet<NodeId>| {
                remaining.iter().filter(|v| matches!(dist[v.index()], Some(d) if d <= r)).count()
            };
            let mut j = 0usize;
            loop {
                let inner = count_within(j * step, &remaining).max(1);
                let outer = count_within((j + 1) * step, &remaining);
                if outer <= 2 * inner {
                    break;
                }
                j += 1;
            }
            let inner_radius = j * step;
            let outer_radius = (j + 1) * step;
            let members: Vec<NodeId> = remaining
                .iter()
                .copied()
                .filter(|v| matches!(dist[v.index()], Some(d) if d <= inner_radius))
                .collect();
            let removed: Vec<NodeId> = remaining
                .iter()
                .copied()
                .filter(|v| matches!(dist[v.index()], Some(d) if d <= outer_radius))
                .collect();
            for &v in &removed {
                remaining.remove(&v);
            }
            for &v in &members {
                alive.remove(&v);
            }
            let weak_radius = members.iter().filter_map(|&v| dist[v.index()]).max().unwrap_or(0);
            this_color.push(DecompCluster { center, members, weak_radius });
        }

        colors.push(this_color);
    }

    NetworkDecomposition { separation, colors }
}

/// The pre-dense-id sparse-cover builder (full-graph BFS per cluster).
pub fn build_sparse_cover(graph: &Graph, d: usize) -> SparseCover {
    assert!(d >= 1, "cover radius must be at least 1");
    assert!(graph.node_count() > 0, "cover requires a non-empty graph");
    let decomposition = build_decomposition(graph, 2 * d);
    let mut clusters = Vec::new();

    for (_color, dc) in decomposition.clusters() {
        // Expand the carved cluster by its d-neighborhood.
        let dist_to_cluster = metrics::multi_source_distances(graph, &dc.members);
        let members: Vec<NodeId> = graph
            .nodes()
            .filter(|v| matches!(dist_to_cluster[v.index()], Some(x) if x <= d))
            .collect();

        // Cluster tree: union of BFS-tree paths from every member to the center.
        let bfs_parent = metrics::bfs_tree(graph, dc.center);
        let mut parent: BTreeMap<NodeId, Option<NodeId>> = BTreeMap::new();
        parent.insert(dc.center, None);
        for &member in &members {
            let mut v = member;
            while !parent.contains_key(&v) {
                let p = bfs_parent[v.index()]
                    .expect("members are connected to the center in a connected graph");
                parent.insert(v, Some(p));
                v = p;
            }
        }

        let id = ClusterId(clusters.len());
        clusters.push(Cluster::from_parents(id, dc.center, members, parent.into_iter().collect()));
    }

    SparseCover::new(d, clusters, graph.node_count())
}

/// The pre-dense-id layered builder.
pub fn build_layered_sparse_cover(graph: &Graph, max_radius: usize) -> LayeredSparseCover {
    assert!(max_radius >= 1, "max_radius must be at least 1");
    let top = (max_radius as f64).log2().ceil() as usize;
    let covers = (0..=top).map(|j| build_sparse_cover(graph, 1usize << j)).collect();
    LayeredSparseCover::new(covers)
}
