//! Quality statistics of covers and layered covers, used by the cover-quality
//! experiment (E6 in DESIGN.md) to reproduce the Definition 2.1 / Theorem 4.21
//! guarantees empirically.

use crate::{LayeredSparseCover, SparseCover};
use ds_graph::Graph;

/// Summary statistics of one sparse cover.
#[derive(Clone, Debug, PartialEq)]
pub struct CoverStats {
    /// The covering radius `d`.
    pub radius: usize,
    /// Number of clusters.
    pub clusters: usize,
    /// Largest number of clusters any node is a member of (paper: `O(log n)`).
    pub max_membership: usize,
    /// Average number of clusters per node.
    pub avg_membership: f64,
    /// Largest cluster-tree height (paper: `O(d · polylog n)`).
    pub max_tree_height: usize,
    /// Stretch: largest tree height divided by `d`.
    pub stretch: f64,
    /// Largest number of cluster trees sharing one graph edge (paper: `O(log^4 n)`).
    pub max_edge_load: usize,
}

/// Computes [`CoverStats`] for a cover on `graph`.
pub fn cover_stats(graph: &Graph, cover: &SparseCover) -> CoverStats {
    let n = graph.node_count().max(1);
    let total_membership: usize = graph.nodes().map(|v| cover.clusters_of(v).len()).sum();

    // Edge load, accumulated flat over the dense undirected-edge index.
    let mut edge_load = vec![0u32; graph.edge_count()];
    for cluster in &cover.clusters {
        for (v, p) in cluster.tree_parents() {
            if let Some(p) = p {
                let e = graph.edge_between(v, p).expect("tree edges are graph edges");
                edge_load[e.index()] += 1;
            }
        }
    }

    CoverStats {
        radius: cover.radius,
        clusters: cover.cluster_count(),
        max_membership: cover.max_membership(),
        avg_membership: total_membership as f64 / n as f64,
        max_tree_height: cover.max_height(),
        stretch: cover.max_height() as f64 / cover.radius.max(1) as f64,
        max_edge_load: edge_load.iter().copied().max().unwrap_or(0) as usize,
    }
}

/// Computes per-layer statistics of a layered cover.
pub fn layered_stats(graph: &Graph, layered: &LayeredSparseCover) -> Vec<CoverStats> {
    layered.iter().map(|c| cover_stats(graph, c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_layered_sparse_cover, build_sparse_cover};

    #[test]
    fn stats_reflect_definition_bounds() {
        let graph = Graph::random_connected(48, 0.08, 6);
        let cover = build_sparse_cover(&graph, 2);
        let stats = cover_stats(&graph, &cover);
        let log_n = (graph.node_count() as f64).log2().ceil();
        assert!(stats.max_membership as f64 <= log_n + 1.0);
        assert!(stats.avg_membership >= 1.0, "every node is covered at least once");
        assert!(stats.max_edge_load >= 1);
        assert!(stats.stretch >= 1.0);
    }

    #[test]
    fn layered_stats_has_one_entry_per_layer() {
        let graph = Graph::grid(4, 4);
        let layered = build_layered_sparse_cover(&graph, 4);
        let stats = layered_stats(&graph, &layered);
        assert_eq!(stats.len(), layered.layers());
        assert_eq!(stats[0].radius, 1);
        assert_eq!(stats.last().unwrap().radius, 4);
    }
}
