//! `k`-separated weak-diameter network decomposition (Definition 4.19).
//!
//! The paper uses the Rozhon–Ghaffari decomposition (Theorem 4.20). We implement a
//! deterministic *ball-carving* decomposition with the same interface and the same
//! flavor of guarantees:
//!
//! * `O(log n)` color classes,
//! * clusters of the same color are at pairwise distance `> k` in `G`,
//! * every cluster has weak radius `O(k · log n)` around its center (so weak diameter
//!   `O(k · log n)`).
//!
//! The construction is centralized (it looks at the whole graph); the synchronizer
//! consumes only the resulting structure, exactly as in the "given a layered sparse
//! cover" setting of Theorem 5.3. See DESIGN.md §3 for the substitution note.

use ds_graph::{metrics, Graph, NodeId};
use std::collections::BTreeSet;

/// One cluster of a network decomposition: a set of member nodes together with the
/// center and weak radius used to carve it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecompCluster {
    /// The carving center; all members are within `weak_radius` of it in `G`.
    pub center: NodeId,
    /// The member nodes (sorted ascending).
    pub members: Vec<NodeId>,
    /// Maximum distance (in `G`) from the center to a member.
    pub weak_radius: usize,
}

/// A `k`-separated weak-diameter network decomposition: a partition of `V` into color
/// classes, each consisting of clusters at pairwise distance `> separation`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetworkDecomposition {
    /// The separation parameter `k`.
    pub separation: usize,
    /// Clusters per color class.
    pub colors: Vec<Vec<DecompCluster>>,
}

impl NetworkDecomposition {
    /// Number of color classes.
    pub fn color_count(&self) -> usize {
        self.colors.len()
    }

    /// Iterates over `(color, cluster)` pairs.
    pub fn clusters(&self) -> impl Iterator<Item = (usize, &DecompCluster)> {
        self.colors.iter().enumerate().flat_map(|(c, list)| list.iter().map(move |cl| (c, cl)))
    }

    /// Checks the decomposition invariants: every node in exactly one cluster,
    /// same-color clusters more than `separation` apart, members within the recorded
    /// weak radius of their center.
    pub fn check(&self, graph: &Graph) -> bool {
        let mut assigned = vec![0usize; graph.node_count()];
        for (_, cluster) in self.clusters() {
            let dist = metrics::bfs_distances(graph, cluster.center);
            for &v in &cluster.members {
                assigned[v.index()] += 1;
                match dist[v.index()] {
                    Some(d) if d <= cluster.weak_radius => {}
                    _ => return false,
                }
            }
        }
        if assigned.iter().any(|&c| c != 1) {
            return false;
        }
        for color in &self.colors {
            for (i, a) in color.iter().enumerate() {
                for b in color.iter().skip(i + 1) {
                    let dist = metrics::multi_source_distances(graph, &a.members);
                    let min = b
                        .members
                        .iter()
                        .filter_map(|&v| dist[v.index()])
                        .min()
                        .unwrap_or(usize::MAX);
                    if min <= self.separation {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Builds a `separation`-separated weak-diameter network decomposition of `graph` by
/// deterministic ball carving.
///
/// The number of colors is at most `⌈log₂ n⌉ + 1` and every cluster has weak radius
/// at most `separation · ⌈log₂ n⌉` around its center.
///
/// # Panics
///
/// Panics if the graph has no nodes.
pub fn build_decomposition(graph: &Graph, separation: usize) -> NetworkDecomposition {
    assert!(graph.node_count() > 0, "decomposition requires a non-empty graph");
    let step = separation.max(1);
    let mut alive: BTreeSet<NodeId> = graph.nodes().collect();
    let mut colors: Vec<Vec<DecompCluster>> = Vec::new();

    while !alive.is_empty() {
        let mut remaining: BTreeSet<NodeId> = alive.clone();
        let mut this_color: Vec<DecompCluster> = Vec::new();

        while let Some(&center) = remaining.iter().next() {
            let dist = metrics::bfs_distances(graph, center);
            // Count remaining nodes within radius j·step for growing j until the ball
            // stops doubling.
            let count_within = |r: usize, remaining: &BTreeSet<NodeId>| {
                remaining.iter().filter(|v| matches!(dist[v.index()], Some(d) if d <= r)).count()
            };
            let mut j = 0usize;
            loop {
                let inner = count_within(j * step, &remaining).max(1);
                let outer = count_within((j + 1) * step, &remaining);
                if outer <= 2 * inner {
                    break;
                }
                j += 1;
            }
            let inner_radius = j * step;
            let outer_radius = (j + 1) * step;
            let members: Vec<NodeId> = remaining
                .iter()
                .copied()
                .filter(|v| matches!(dist[v.index()], Some(d) if d <= inner_radius))
                .collect();
            let removed: Vec<NodeId> = remaining
                .iter()
                .copied()
                .filter(|v| matches!(dist[v.index()], Some(d) if d <= outer_radius))
                .collect();
            for &v in &removed {
                remaining.remove(&v);
            }
            for &v in &members {
                alive.remove(&v);
            }
            let weak_radius = members.iter().filter_map(|&v| dist[v.index()]).max().unwrap_or(0);
            this_color.push(DecompCluster { center, members, weak_radius });
        }

        colors.push(this_color);
    }

    NetworkDecomposition { separation, colors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_covers_every_node_exactly_once() {
        for graph in [
            Graph::path(17),
            Graph::grid(5, 5),
            Graph::cycle(12),
            Graph::random_connected(40, 0.08, 3),
        ] {
            let d = build_decomposition(&graph, 2);
            assert!(d.check(&graph), "invariants hold");
            let total: usize = d.clusters().map(|(_, c)| c.members.len()).sum();
            assert_eq!(total, graph.node_count());
        }
    }

    #[test]
    fn color_count_is_logarithmic() {
        let graph = Graph::random_connected(64, 0.05, 1);
        let d = build_decomposition(&graph, 4);
        // ⌈log₂ 64⌉ + 1 = 7
        assert!(d.color_count() <= 7, "got {} colors", d.color_count());
    }

    #[test]
    fn weak_radius_is_bounded() {
        let graph = Graph::grid(6, 6);
        let sep = 3;
        let d = build_decomposition(&graph, sep);
        let log_n = (graph.node_count() as f64).log2().ceil() as usize;
        for (_, c) in d.clusters() {
            assert!(
                c.weak_radius <= sep * log_n,
                "weak radius {} exceeds {}",
                c.weak_radius,
                sep * log_n
            );
        }
    }

    #[test]
    fn separation_one_on_a_path_gives_separated_segments() {
        let graph = Graph::path(10);
        let d = build_decomposition(&graph, 1);
        assert!(d.check(&graph));
    }

    #[test]
    fn huge_separation_yields_single_cluster() {
        let graph = Graph::grid(4, 4);
        let d = build_decomposition(&graph, 100);
        assert_eq!(d.color_count(), 1);
        assert_eq!(d.colors[0].len(), 1);
        assert_eq!(d.colors[0][0].members.len(), 16);
    }
}
