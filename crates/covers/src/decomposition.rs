//! `k`-separated weak-diameter network decomposition (Definition 4.19).
//!
//! The paper uses the Rozhon–Ghaffari decomposition (Theorem 4.20). We implement a
//! deterministic *ball-carving* decomposition with the same interface and the same
//! flavor of guarantees:
//!
//! * `O(log n)` color classes,
//! * clusters of the same color are at pairwise distance `> k` in `G`,
//! * every cluster has weak radius `O(k · log n)` around its center (so weak diameter
//!   `O(k · log n)`).
//!
//! The construction is centralized (it looks at the whole graph); the synchronizer
//! consumes only the resulting structure, exactly as in the "given a layered sparse
//! cover" setting of Theorem 5.3. See DESIGN.md §3 for the substitution note.
//!
//! The carving runs on flat, epoch-stamped scratch arrays: each ball is grown by a
//! *bounded* BFS from its center that expands one level at a time while the
//! doubling condition holds, so a center only ever pays for the edges inside its
//! final (outer) ball — not for a full-graph BFS as the pre-dense-id builder did.
//! DESIGN.md §3.3 gives the resulting complexity bound.

use crate::scratch::BfsScratch;
use ds_graph::{metrics, Graph, NodeId};

/// One cluster of a network decomposition: a set of member nodes together with the
/// center and weak radius used to carve it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecompCluster {
    /// The carving center; all members are within `weak_radius` of it in `G`.
    pub center: NodeId,
    /// The member nodes (sorted ascending).
    pub members: Vec<NodeId>,
    /// Maximum distance (in `G`) from the center to a member.
    pub weak_radius: usize,
}

/// A `k`-separated weak-diameter network decomposition: a partition of `V` into color
/// classes, each consisting of clusters at pairwise distance `> separation`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetworkDecomposition {
    /// The separation parameter `k`.
    pub separation: usize,
    /// Clusters per color class.
    pub colors: Vec<Vec<DecompCluster>>,
}

impl NetworkDecomposition {
    /// Number of color classes.
    pub fn color_count(&self) -> usize {
        self.colors.len()
    }

    /// Iterates over `(color, cluster)` pairs.
    pub fn clusters(&self) -> impl Iterator<Item = (usize, &DecompCluster)> {
        self.colors.iter().enumerate().flat_map(|(c, list)| list.iter().map(move |cl| (c, cl)))
    }

    /// Checks the decomposition invariants: every node in exactly one cluster,
    /// same-color clusters more than `separation` apart, members within the recorded
    /// weak radius of their center.
    pub fn check(&self, graph: &Graph) -> bool {
        let mut assigned = vec![0usize; graph.node_count()];
        for (_, cluster) in self.clusters() {
            let dist = metrics::bfs_distances(graph, cluster.center);
            for &v in &cluster.members {
                assigned[v.index()] += 1;
                match dist[v.index()] {
                    Some(d) if d <= cluster.weak_radius => {}
                    _ => return false,
                }
            }
        }
        if assigned.iter().any(|&c| c != 1) {
            return false;
        }
        for color in &self.colors {
            for (i, a) in color.iter().enumerate() {
                for b in color.iter().skip(i + 1) {
                    let dist = metrics::multi_source_distances(graph, &a.members);
                    let min = b
                        .members
                        .iter()
                        .filter_map(|&v| dist[v.index()])
                        .min()
                        .unwrap_or(usize::MAX);
                    if min <= self.separation {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Builds a `separation`-separated weak-diameter network decomposition of `graph` by
/// deterministic ball carving.
///
/// The number of colors is at most `⌈log₂ n⌉ + 1` and every cluster has weak radius
/// at most `separation · ⌈log₂ n⌉` around its center.
///
/// # Panics
///
/// Panics if the graph has no nodes.
pub fn build_decomposition(graph: &Graph, separation: usize) -> NetworkDecomposition {
    let mut bfs = BfsScratch::new(graph.node_count());
    build_decomposition_with(graph, separation, &mut bfs)
}

/// [`build_decomposition`] over caller-provided scratch buffers (reused across the
/// layers of a layered cover build).
pub(crate) fn build_decomposition_with(
    graph: &Graph,
    separation: usize,
    bfs: &mut BfsScratch,
) -> NetworkDecomposition {
    let n = graph.node_count();
    assert!(n > 0, "decomposition requires a non-empty graph");
    carve_decomposition_over(graph, separation, bfs, vec![true; n], n)
}

/// Ball-carving restricted to a subset: partitions the `alive` nodes into
/// `separation`-separated color classes, growing every ball in the *full* graph
/// (non-alive nodes conduct distance, exactly like carved nodes in a full build).
///
/// This is the engine behind both [`build_decomposition`] (`alive` = all nodes)
/// and the incremental cover repair in [`crate::repair`], which re-carves only
/// the orphans of broken clusters. Doubling counts and center selection see only
/// alive nodes, so the color count is `O(log |alive|)` and every cluster has weak
/// radius at most `separation · ⌈log₂ |alive|⌉`.
///
/// Works on disconnected graphs: a ball stops growing at its component boundary
/// and an isolated alive node becomes a singleton cluster.
pub(crate) fn carve_decomposition_over(
    graph: &Graph,
    separation: usize,
    bfs: &mut BfsScratch,
    mut alive: Vec<bool>,
    mut alive_count: usize,
) -> NetworkDecomposition {
    let n = graph.node_count();
    assert_eq!(alive.len(), n, "alive mask must cover the graph");
    assert!(alive_count > 0, "carving requires at least one alive node");
    let step = separation.max(1);
    let mut remaining = vec![false; n];
    let mut colors: Vec<Vec<DecompCluster>> = Vec::new();
    // Cumulative count of remaining nodes by ball radius (index = BFS depth).
    let mut cum: Vec<usize> = Vec::new();

    while alive_count > 0 {
        remaining.copy_from_slice(&alive);
        let mut remaining_count = alive_count;
        let mut this_color: Vec<DecompCluster> = Vec::new();
        // Centers are carved smallest-id first and carving only removes nodes, so
        // the minimum remaining id is monotone within a round: one forward cursor
        // replaces the ordered set.
        let mut cursor = 0usize;

        while remaining_count > 0 {
            while !remaining[cursor] {
                cursor += 1;
            }
            let center = NodeId(cursor);

            // Grow the ball from the center by bounded BFS, one `step`-wide ring at
            // a time, while the count of remaining nodes keeps doubling. `cum[r]`
            // counts remaining nodes within distance `r` (in G, like the reference
            // full-BFS construction: carved nodes still conduct distance).
            bfs.start(std::slice::from_ref(&center));
            cum.clear();
            cum.push(1); // the center itself is remaining (it is the minimum)
            let within = |cum: &[usize], r: usize| cum[r.min(cum.len() - 1)];
            let mut j = 0usize;
            loop {
                let outer_radius = (j + 1) * step;
                while (cum.len() - 1) < outer_radius {
                    match bfs.expand_level(graph) {
                        Some((s, e)) => {
                            let fresh =
                                bfs.order()[s..e].iter().filter(|v| remaining[v.index()]).count();
                            cum.push(cum.last().expect("non-empty") + fresh);
                        }
                        None => break,
                    }
                }
                let inner = within(&cum, j * step).max(1);
                let outer = within(&cum, outer_radius);
                if outer <= 2 * inner {
                    break;
                }
                j += 1;
            }
            let inner_radius = j * step;
            let outer_radius = (j + 1) * step;

            let mut members: Vec<NodeId> = Vec::new();
            let mut weak_radius = 0usize;
            for &v in bfs.order() {
                let d = bfs.dist(v) as usize;
                if d > outer_radius {
                    break; // discovery order is by nondecreasing depth
                }
                if !remaining[v.index()] {
                    continue;
                }
                remaining[v.index()] = false;
                remaining_count -= 1;
                if d <= inner_radius {
                    weak_radius = weak_radius.max(d);
                    members.push(v);
                    alive[v.index()] = false;
                    alive_count -= 1;
                }
            }
            members.sort_unstable();
            this_color.push(DecompCluster { center, members, weak_radius });
        }

        colors.push(this_color);
    }

    NetworkDecomposition { separation, colors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_covers_every_node_exactly_once() {
        for graph in [
            Graph::path(17),
            Graph::grid(5, 5),
            Graph::cycle(12),
            Graph::random_connected(40, 0.08, 3),
        ] {
            let d = build_decomposition(&graph, 2);
            assert!(d.check(&graph), "invariants hold");
            let total: usize = d.clusters().map(|(_, c)| c.members.len()).sum();
            assert_eq!(total, graph.node_count());
        }
    }

    #[test]
    fn color_count_is_logarithmic() {
        let graph = Graph::random_connected(64, 0.05, 1);
        let d = build_decomposition(&graph, 4);
        // ⌈log₂ 64⌉ + 1 = 7
        assert!(d.color_count() <= 7, "got {} colors", d.color_count());
    }

    #[test]
    fn weak_radius_is_bounded() {
        let graph = Graph::grid(6, 6);
        let sep = 3;
        let d = build_decomposition(&graph, sep);
        let log_n = (graph.node_count() as f64).log2().ceil() as usize;
        for (_, c) in d.clusters() {
            assert!(
                c.weak_radius <= sep * log_n,
                "weak radius {} exceeds {}",
                c.weak_radius,
                sep * log_n
            );
        }
    }

    #[test]
    fn separation_one_on_a_path_gives_separated_segments() {
        let graph = Graph::path(10);
        let d = build_decomposition(&graph, 1);
        assert!(d.check(&graph));
    }

    #[test]
    fn huge_separation_yields_single_cluster() {
        let graph = Graph::grid(4, 4);
        let d = build_decomposition(&graph, 100);
        assert_eq!(d.color_count(), 1);
        assert_eq!(d.colors[0].len(), 1);
        assert_eq!(d.colors[0][0].members.len(), 16);
    }

    #[test]
    fn decompositions_check_out_across_graph_families() {
        // Property replacement for the retired legacy-equivalence pin: every
        // decomposition must satisfy its own invariants (`check`: full
        // coverage, disjointness, per-color separation) and stay non-trivial.
        for graph in [
            Graph::path(23),
            Graph::grid(7, 5),
            Graph::cycle(19),
            Graph::random_connected(48, 0.07, 9),
        ] {
            for sep in [1, 2, 4] {
                let d = build_decomposition(&graph, sep);
                assert!(d.check(&graph), "invalid decomposition (sep {sep})");
                assert!(d.color_count() >= 1, "sep {sep}");
                let members: usize = d.colors.iter().flatten().map(|c| c.members.len()).sum();
                assert_eq!(members, graph.node_count(), "sep {sep}: not a partition");
            }
        }
    }
}
