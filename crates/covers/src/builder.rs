//! Construction of sparse `d`-covers and layered covers (Theorem 4.21 interface).
//!
//! A sparse `d`-cover is obtained from a `(2d)`-separated weak-diameter network
//! decomposition by expanding every cluster to its `d`-neighborhood: clusters of the
//! same color stay disjoint (their pairwise distance exceeds `2d`), so every node is a
//! member of at most one cluster per color, i.e. of `O(log n)` clusters; and the
//! cluster that contains a node `v` of color `c` contains all of `B(v, d)`.
//!
//! Every cluster carries a rooted *cluster tree*: the union of shortest paths (in `G`)
//! from the members to the carving center. Nodes on those paths that are not members
//! act as Steiner nodes, exactly as in the paper's Theorem 4.20 trees.
//!
//! All BFS work here is *bounded-radius* over shared epoch-stamped scratch buffers
//! (the crate-private `scratch` module): the `d`-expansion explores only
//! `B(cluster, d)`, and the
//! cluster tree comes from a BFS tree of the center truncated at the deepest
//! member — never a full-graph traversal. The construction was pinned
//! bit-identical against the pre-dense-id (`BTreeMap`) builder for one release;
//! that reference is retired and the contract is now held by Definition 2.1
//! property checks (`validate()` + sparsity bounds). DESIGN.md §3.3 documents
//! the complexity.

use crate::decomposition::build_decomposition_with;
use crate::scratch::{BfsScratch, MarkSet};
use crate::{Cluster, ClusterId, LayeredSparseCover, SparseCover};
use ds_graph::{Graph, NodeId};

/// Scratch buffers shared by every ball, cluster and layer of one build (and by
/// the incremental repair in [`crate::repair`]).
pub(crate) struct CoverScratch {
    /// Ball growing (decomposition) and `d`-expansion of carved clusters.
    pub(crate) ball: BfsScratch,
    /// Bounded BFS tree from each cluster center.
    pub(crate) tree: BfsScratch,
    /// Nodes already added to the cluster tree under construction.
    in_tree: MarkSet,
}

impl CoverScratch {
    pub(crate) fn new(n: usize) -> Self {
        CoverScratch {
            ball: BfsScratch::new(n),
            tree: BfsScratch::new(n),
            in_tree: MarkSet::new(n),
        }
    }
}

/// Builds a sparse `d`-cover of `graph` (Definition 2.1).
///
/// # Panics
///
/// Panics if the graph is empty or `d == 0`.
pub fn build_sparse_cover(graph: &Graph, d: usize) -> SparseCover {
    let mut scratch = CoverScratch::new(graph.node_count());
    build_sparse_cover_with(graph, d, &mut scratch)
}

fn build_sparse_cover_with(graph: &Graph, d: usize, scratch: &mut CoverScratch) -> SparseCover {
    assert!(d >= 1, "cover radius must be at least 1");
    assert!(graph.node_count() > 0, "cover requires a non-empty graph");
    let decomposition = build_decomposition_with(graph, 2 * d, &mut scratch.ball);
    let mut clusters = Vec::new();

    for (_color, dc) in decomposition.clusters() {
        let id = ClusterId(clusters.len());
        clusters.push(realize_cluster(graph, d, dc, scratch, id));
    }

    SparseCover::new(d, clusters, graph.node_count())
}

/// Turns one carved decomposition cluster into a cover cluster: `d`-expansion of
/// the carved members plus the rooted cluster tree. Shared between the
/// from-scratch build and the incremental repair in [`crate::repair`].
pub(crate) fn realize_cluster(
    graph: &Graph,
    d: usize,
    dc: &crate::decomposition::DecompCluster,
    scratch: &mut CoverScratch,
    id: ClusterId,
) -> Cluster {
    // Expand the carved cluster by its d-neighborhood (bounded multi-source BFS).
    scratch.ball.start(&dc.members);
    while scratch.ball.depth_reached() < d as u32 && scratch.ball.expand_level(graph).is_some() {}
    let mut members: Vec<NodeId> = scratch.ball.order().to_vec();
    members.sort_unstable();

    // Cluster tree: union of BFS-tree paths from every member to the center.
    // Every member is within `weak_radius + d` of the center, so the BFS tree
    // only needs that depth; a bounded BFS assigns the same parents as the
    // full-graph one (first discoverer wins, same traversal order).
    let tree_depth = (dc.weak_radius + d) as u32;
    scratch.tree.start(std::slice::from_ref(&dc.center));
    while scratch.tree.depth_reached() < tree_depth && scratch.tree.expand_level(graph).is_some() {}
    scratch.in_tree.clear();
    scratch.in_tree.insert(dc.center);
    let mut pairs: Vec<(NodeId, Option<NodeId>)> = vec![(dc.center, None)];
    for &member in &members {
        let mut v = member;
        while !scratch.in_tree.contains(v) {
            scratch.in_tree.insert(v);
            debug_assert!(
                scratch.tree.visited(v),
                "members are connected to the center in the carved component"
            );
            let p = scratch.tree.parent(v);
            pairs.push((v, Some(p)));
            v = p;
        }
    }

    Cluster::from_parents(id, dc.center, members, pairs)
}

/// Builds a layered sparse cover: sparse `2^j`-covers for `j ∈ {0, …, ⌈log₂ max_radius⌉}`.
///
/// The top layer always has radius at least `max_radius`, so
/// [`LayeredSparseCover::cover_for_radius`] succeeds for every `d ≤ max_radius`.
/// One set of scratch buffers is shared across all layers.
///
/// # Panics
///
/// Panics if the graph is empty or `max_radius == 0`.
pub fn build_layered_sparse_cover(graph: &Graph, max_radius: usize) -> LayeredSparseCover {
    assert!(max_radius >= 1, "max_radius must be at least 1");
    let top = (max_radius as f64).log2().ceil() as usize;
    let mut scratch = CoverScratch::new(graph.node_count());
    let covers =
        (0..=top).map(|j| build_sparse_cover_with(graph, 1usize << j, &mut scratch)).collect();
    LayeredSparseCover::new(covers)
}

/// Builds the layered cover a synchronizer needs for an algorithm whose time
/// complexity is at most `time_bound` on a graph of diameter at most `diameter_bound`:
/// layers up to radius `2^6 · max(time_bound, 1)`, but never less than the diameter
/// (so the top layer always has a cluster containing the whole graph).
pub fn build_synchronizer_cover(
    graph: &Graph,
    time_bound: usize,
    diameter_bound: usize,
) -> LayeredSparseCover {
    let needed = 64 * time_bound.max(1);
    build_layered_sparse_cover(graph, needed.max(diameter_bound).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_satisfies_definition_on_varied_graphs() {
        for graph in [
            Graph::path(12),
            Graph::cycle(9),
            Graph::grid(4, 5),
            Graph::random_connected(30, 0.1, 5),
        ] {
            for d in [1, 2, 4] {
                let cover = build_sparse_cover(&graph, d);
                cover.validate(&graph).expect("definition 2.1 holds");
            }
        }
    }

    #[test]
    fn membership_is_logarithmic() {
        let graph = Graph::random_connected(60, 0.07, 2);
        let cover = build_sparse_cover(&graph, 2);
        let log_n = (graph.node_count() as f64).log2().ceil() as usize;
        assert!(
            cover.max_membership() <= log_n + 1,
            "membership {} exceeds {}",
            cover.max_membership(),
            log_n + 1
        );
    }

    #[test]
    fn tree_height_is_bounded_by_radius_times_log() {
        let graph = Graph::grid(6, 6);
        let d = 2;
        let cover = build_sparse_cover(&graph, d);
        let log_n = (graph.node_count() as f64).log2().ceil() as usize;
        // Carving radius ≤ 2d·log n plus the d-expansion.
        let bound = 2 * d * log_n + d;
        assert!(cover.max_height() <= bound, "height {} > {}", cover.max_height(), bound);
    }

    #[test]
    fn cover_with_radius_at_least_diameter_has_a_universal_cluster() {
        let graph = Graph::grid(4, 4);
        let d = ds_graph::metrics::diameter(&graph).unwrap();
        let cover = build_sparse_cover(&graph, d);
        assert!(cover.clusters.iter().any(|c| c.member_count() == graph.node_count()));
    }

    #[test]
    fn layered_cover_levels_all_validate() {
        let graph = Graph::random_connected(24, 0.12, 9);
        let layered = build_layered_sparse_cover(&graph, 8);
        assert_eq!(layered.layers(), 4);
        for cover in layered.iter() {
            cover.validate(&graph).expect("every layer is a valid cover");
        }
    }

    #[test]
    fn synchronizer_cover_reaches_the_diameter() {
        let graph = Graph::path(20);
        let diameter = ds_graph::metrics::diameter(&graph).unwrap();
        let layered = build_synchronizer_cover(&graph, 1, diameter);
        assert!(layered.cover_for_radius(diameter).radius >= diameter);
    }

    #[test]
    fn single_node_graph_has_trivial_cover() {
        let graph = Graph::new(1);
        let cover = build_sparse_cover(&graph, 1);
        assert_eq!(cover.cluster_count(), 1);
        cover.validate(&graph).unwrap();
    }

    #[test]
    fn covers_satisfy_definition_2_1_across_graph_families() {
        // The former executable reference (the pre-dense-id `legacy` builder)
        // is gone; what the construction owes its callers is Definition 2.1
        // plus the sparsity bounds, checked directly: `validate()` (tree edges
        // exist, trees rooted and connected, every `d`-ball covered), the
        // `O(log n)` membership bound, and non-trivial clusters.
        for graph in [
            Graph::path(18),
            Graph::cycle(14),
            Graph::grid(6, 5),
            Graph::random_connected(42, 0.08, 7),
            Graph::clustered_ring(4, 5),
        ] {
            let log_n = (graph.node_count() as f64).log2().ceil() as usize;
            for d in [1, 2, 4] {
                let cover = build_sparse_cover(&graph, d);
                cover.validate(&graph).unwrap_or_else(|e| panic!("d={d}: {e}"));
                assert!(cover.max_membership() <= log_n + 1, "d={d}: membership too large");
                assert!(cover.clusters.iter().all(|c| c.member_count() > 0), "d={d}");
            }
            let layered = build_layered_sparse_cover(&graph, 8);
            assert_eq!(layered.layers(), 4, "radii 1, 2, 4, 8");
            for (j, cover) in layered.iter().enumerate() {
                assert_eq!(cover.radius, 1 << j);
                cover.validate(&graph).unwrap_or_else(|e| panic!("layer {j}: {e}"));
            }
        }
    }
}
