//! The [`Session`] builder: the single entry point for executing event-driven
//! algorithms under any synchronizer.
//!
//! A session names a graph, a delay adversary, simulation budgets and a
//! [`SyncKind`]; [`Session::run`] executes the algorithm once through the chosen
//! [`Synchronizer`] implementation, and [`Session::compare`] additionally runs the
//! lock-step ground truth and reports the overhead factors the paper's theorems
//! bound.
//!
//! ```
//! use ds_graph::{Graph, NodeId};
//! use ds_netsim::delay::DelayModel;
//! use ds_sync::session::{Session, SyncKind};
//! # use ds_netsim::event_driven::{EventDriven, PulseCtx};
//! # #[derive(Debug)]
//! # struct Flood { me: NodeId, neighbors: Vec<NodeId>, hops: Option<u64> }
//! # impl Flood {
//! #     fn new(g: &Graph, me: NodeId) -> Self {
//! #         Flood { me, neighbors: g.neighbors(me).to_vec(), hops: None }
//! #     }
//! # }
//! # impl EventDriven for Flood {
//! #     type Msg = u64;
//! #     type Output = u64;
//! #     fn on_init(&mut self, ctx: &mut PulseCtx<u64>) {
//! #         if self.me == NodeId(0) {
//! #             self.hops = Some(0);
//! #             for &u in &self.neighbors { ctx.send(u, 1); }
//! #         }
//! #     }
//! #     fn on_pulse(&mut self, r: &[(NodeId, u64)], ctx: &mut PulseCtx<u64>) {
//! #         if self.hops.is_none() {
//! #             if let Some(&(_, h)) = r.first() {
//! #                 self.hops = Some(h);
//! #                 for &u in &self.neighbors { ctx.send(u, h + 1); }
//! #             }
//! #         }
//! #     }
//! #     fn output(&self) -> Option<u64> { self.hops }
//! # }
//! let graph = Graph::grid(4, 4);
//! let report = Session::on(&graph)
//!     .delay(DelayModel::jitter(7))
//!     .synchronizer(SyncKind::DetAuto)
//!     .compare(|v| Flood::new(&graph, v))
//!     .expect("session run");
//! assert!(report.outputs_match());
//! ```

use crate::beta::SpanningTree;
use crate::executor::{
    AlphaExecutor, BetaExecutor, DetExecutor, DirectExecutor, ExecutionEnv, SynchronizedRun,
    Synchronizer,
};
use crate::synchronizer::SynchronizerConfig;
use ds_graph::{Graph, NodeId};
use ds_netsim::async_engine::{SimError, SimLimits};
use ds_netsim::delay::DelayModel;
use ds_netsim::event_driven::EventDriven;
use ds_netsim::metrics::RunMetrics;
use ds_netsim::sync_engine::run_sync;
use ds_netsim::{FaultPlan, SchedulerKind, SlabBank};
use std::fmt;
use std::sync::Arc;

/// Which synchronizer a [`Session`] drives the algorithm with.
#[derive(Clone, Debug)]
pub enum SyncKind {
    /// Lock-step synchronous execution — the ground truth, no synchronizer at all.
    Direct,
    /// Awerbuch's α synchronizer (Appendix A).
    Alpha,
    /// Awerbuch's β synchronizer (Appendix A) with its BFS spanning tree rooted at
    /// the given node.
    Beta {
        /// Root of the spanning tree.
        root: NodeId,
    },
    /// The paper's deterministic synchronizer with an explicit, possibly shared
    /// configuration (the Theorem 5.3 "given a cover" setting).
    Det(Arc<SynchronizerConfig>),
    /// The paper's deterministic synchronizer with a configuration built internally
    /// from the session's resolved pulse bound (the Theorem 1.1 setting).
    DetAuto,
}

impl SyncKind {
    /// The full sweep of execution strategies, for parametrized experiments:
    /// direct, α, β (rooted at node 0), deterministic.
    pub fn standard_suite() -> Vec<SyncKind> {
        vec![
            SyncKind::Direct,
            SyncKind::Alpha,
            SyncKind::Beta { root: NodeId(0) },
            SyncKind::DetAuto,
        ]
    }

    /// Short label ("direct", "alpha", "beta", "det"), matching
    /// [`Synchronizer::name`].
    pub fn label(&self) -> &'static str {
        match self {
            SyncKind::Direct => "direct",
            SyncKind::Alpha => "alpha",
            SyncKind::Beta { .. } => "beta",
            SyncKind::Det(_) | SyncKind::DetAuto => "det",
        }
    }

    /// Whether resolving this kind requires a pulse bound `T(A)` (also used by
    /// [`crate::service`], whose requests resolve bounds exactly like a
    /// standalone session).
    pub(crate) fn needs_pulse_bound(&self) -> bool {
        matches!(self, SyncKind::Alpha | SyncKind::Beta { .. } | SyncKind::DetAuto)
    }

    /// Builds the executor for this kind on `graph`, simulating at most
    /// `pulse_bound` pulses where a bound is needed.
    fn instantiate<A: EventDriven>(
        &self,
        graph: &Graph,
        pulse_bound: u64,
    ) -> Box<dyn Synchronizer<A>> {
        match self {
            SyncKind::Direct => Box::new(DirectExecutor),
            SyncKind::Alpha => Box::new(AlphaExecutor { max_pulse: pulse_bound }),
            SyncKind::Beta { root } => Box::new(BetaExecutor {
                tree: SpanningTree::bfs(graph, *root),
                max_pulse: pulse_bound,
            }),
            SyncKind::Det(cfg) => Box::new(DetExecutor { cfg: Arc::clone(cfg) }),
            SyncKind::DetAuto => {
                Box::new(DetExecutor { cfg: SynchronizerConfig::build(graph, pulse_bound) })
            }
        }
    }
}

/// Errors from [`Session::run`] / [`Session::compare`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// `run`/`compare` was called without [`Session::synchronizer`].
    MissingSynchronizer,
    /// The configured [`SimLimits`] are unusable (a zero budget).
    InvalidLimits {
        /// Description of the offending field.
        what: &'static str,
    },
    /// The underlying simulation failed.
    Sim(SimError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::MissingSynchronizer => {
                write!(f, "no synchronizer configured: call Session::synchronizer(..) first")
            }
            SessionError::InvalidLimits { what } => {
                write!(f, "invalid simulation limits: {what} must be positive")
            }
            SessionError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<SimError> for SessionError {
    fn from(e: SimError) -> Self {
        SessionError::Sim(e)
    }
}

/// Combined report of a synchronous ground-truth run and a synchronized run of the
/// same algorithm, produced by [`Session::compare`].
#[derive(Clone, Debug)]
pub struct ComparisonReport<O> {
    /// Synchronous round complexity `T(A)` (rounds to quiescence).
    pub sync_rounds: u64,
    /// Synchronous message complexity `M(A)`.
    pub sync_messages: u64,
    /// Per-node outputs of the synchronous run.
    pub sync_outputs: Vec<Option<O>>,
    /// Per-node outputs of the synchronized run.
    pub async_outputs: Vec<Option<O>>,
    /// Metrics of the synchronized run (time, messages by class, acknowledgments).
    pub async_metrics: RunMetrics,
    /// Ordering violations recorded by the synchronizer (must be zero).
    pub ordering_violations: u64,
}

impl<O: PartialEq> ComparisonReport<O> {
    /// Whether the synchronized execution reproduced the synchronous outputs exactly.
    pub fn outputs_match(&self) -> bool {
        self.sync_outputs == self.async_outputs && self.ordering_violations == 0
    }

    /// Time overhead factor: synchronized time-to-output divided by `T(A)`.
    pub fn time_overhead(&self) -> Option<f64> {
        let t = self.async_metrics.time_to_output?;
        Some(t / self.sync_rounds.max(1) as f64)
    }

    /// Message overhead factor: total synchronized messages divided by `M(A)`.
    pub fn message_overhead(&self) -> f64 {
        self.async_metrics.total_messages() as f64 / self.sync_messages.max(1) as f64
    }
}

/// A configured execution of event-driven algorithms on one graph.
///
/// Construct with [`Session::on`], chain the builder methods, then call
/// [`Session::run`] or [`Session::compare`] (repeatedly, with any algorithm). See
/// the module docs for a complete example and `DESIGN.md` for the theorem map.
#[derive(Clone, Debug)]
pub struct Session<'g> {
    graph: &'g Graph,
    delay: DelayModel,
    limits: SimLimits,
    kind: Option<SyncKind>,
    pulse_bound: Option<u64>,
    scheduler: SchedulerKind,
    trace: bool,
    faults: Option<FaultPlan>,
    recycle: Option<SlabBank>,
}

impl<'g> Session<'g> {
    /// Starts building a session on `graph`. Defaults: uniform delays, default
    /// [`SimLimits`], no synchronizer (one must be chosen before running), pulse
    /// bound resolved automatically from the synchronous ground truth, timing-wheel
    /// event scheduler.
    pub fn on(graph: &'g Graph) -> Self {
        Session {
            graph,
            delay: DelayModel::uniform(),
            limits: SimLimits::default(),
            kind: None,
            pulse_bound: None,
            scheduler: SchedulerKind::default(),
            trace: false,
            faults: None,
            recycle: None,
        }
    }

    /// Draws the asynchronous engine's allocation-heavy state (timing wheel,
    /// link table, payload arena) from a shared recycling [`SlabBank`]
    /// instead of allocating it cold, returning it after the run. Hand the
    /// same bank to many sessions — e.g. every request of a
    /// [`crate::service::SessionPool`] — to amortize engine setup across
    /// them. The schedule is bit-identical with or without a bank (the reset
    /// contract of `ds-netsim::recycle`, asserted by the engine on every
    /// run); only serial [`SchedulerKind::TimingWheel`] runs without tracing
    /// use the bank, all other configurations silently allocate cold.
    #[must_use]
    pub fn recycle(mut self, bank: SlabBank) -> Self {
        self.recycle = Some(bank);
        self
    }

    /// Injects a dynamic-topology [`FaultPlan`] (link churn, crash-stop node
    /// failures): the asynchronous engines consult it at dispatch and delivery
    /// time, dropping deliveries over downed links and crashed nodes. The run
    /// still terminates — dropped messages starve the schedule — and reports
    /// how partial it was on
    /// [`SynchronizedRun::health`](crate::executor::SynchronizedRun), along
    /// with [`dropped_events`](crate::executor::SynchronizedRun::dropped_events)
    /// and [`fault_transitions`](crate::executor::SynchronizedRun::fault_transitions)
    /// counters. Ignored by [`SyncKind::Direct`] (the fault-free ground truth)
    /// — and note that [`Session::compare`] against a faulted run will report
    /// mismatched outputs for exactly the nodes `health.missing` lists. When a
    /// plan is set, pair it with an explicit [`Session::pulse_bound`] if the
    /// synchronous ground truth would be too optimistic about `T(A)` on the
    /// intact graph.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Records a per-delivery [`trace`](ds_netsim::DeliveryTrace) during the
    /// asynchronous run, surfaced on
    /// [`SynchronizedRun::trace`](crate::executor::SynchronizedRun). The traced
    /// execution is bit-identical to the untraced one; the cost is the trace
    /// buffer itself (one record per delivery). Used by the `ds-verify`
    /// happens-before checker; ignored by [`SyncKind::Direct`].
    #[must_use]
    pub fn record_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Selects the asynchronous engine's event scheduler (ignored by
    /// [`SyncKind::Direct`]). Defaults to [`SchedulerKind::TimingWheel`]; the
    /// [`SchedulerKind::BinaryHeap`] reference produces a bit-identical run and
    /// exists for equivalence testing and scheduler benchmarking.
    /// [`SchedulerKind::Sharded`] partitions the nodes into contiguous shards
    /// and runs each barrier's deliveries shard-locally — round-robined over a
    /// persistent worker pool when the host has spare cores — with a serial
    /// cross-shard merge in global sequence order, so its runs are also
    /// bit-identical to the wheel's (`ds-netsim::sharded` documents the
    /// shard/merge contract). `workers` decouples the thread count from the
    /// shard count: `0` means one worker per shard, and a good explicit value
    /// is the host's core count (the pool never helps past it — more workers
    /// only add rendezvous traffic, while shards can stay higher for
    /// partition granularity):
    ///
    /// ```
    /// # use ds_graph::Graph;
    /// # use ds_netsim::SchedulerKind;
    /// # use ds_sync::session::Session;
    /// let graph = Graph::grid(8, 8);
    /// let session =
    ///     Session::on(&graph).scheduler(SchedulerKind::Sharded { shards: 4, workers: 2 });
    /// ```
    #[must_use]
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the delay adversary (ignored by [`SyncKind::Direct`]).
    #[must_use]
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Sets the simulation budgets.
    #[must_use]
    pub fn limits(mut self, limits: SimLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Chooses the synchronizer.
    #[must_use]
    pub fn synchronizer(mut self, kind: SyncKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Fixes the pulse bound `T(A)` explicitly instead of resolving it from a
    /// synchronous ground-truth run. Useful when the bound is already known (e.g. a
    /// diameter bound for BFS) or when the ground-truth run is too expensive.
    #[must_use]
    pub fn pulse_bound(mut self, bound: u64) -> Self {
        self.pulse_bound = Some(bound);
        self
    }

    fn validate(&self) -> Result<&SyncKind, SessionError> {
        if self.limits.max_events == 0 {
            return Err(SessionError::InvalidLimits { what: "max_events" });
        }
        if self.limits.max_rounds == 0 {
            return Err(SessionError::InvalidLimits { what: "max_rounds" });
        }
        self.kind.as_ref().ok_or(SessionError::MissingSynchronizer)
    }

    fn env(&self) -> ExecutionEnv<'g> {
        ExecutionEnv {
            graph: self.graph,
            delay: self.delay.clone(),
            limits: self.limits,
            scheduler: self.scheduler,
            trace: self.trace,
            faults: self.faults.clone(),
            recycle: self.recycle.clone(),
        }
    }

    /// Resolves the pulse bound: the explicit bound if set, otherwise `T(A)` from a
    /// synchronous ground-truth run (only executed when the chosen kind needs it).
    fn resolve_pulse_bound<A, F>(&self, kind: &SyncKind, make: &mut F) -> Result<u64, SessionError>
    where
        A: EventDriven,
        F: FnMut(NodeId) -> A,
    {
        if let Some(bound) = self.pulse_bound {
            return Ok(bound.max(1));
        }
        if !kind.needs_pulse_bound() {
            return Ok(1);
        }
        let sync = run_sync(self.graph, make, self.limits.max_rounds)?;
        Ok(sync.rounds_to_quiescence.max(1))
    }

    /// Runs the algorithm once through the configured synchronizer.
    ///
    /// # Errors
    ///
    /// Returns a [`SessionError`] if no synchronizer was configured, the limits are
    /// unusable, or the simulation fails.
    pub fn run<A, F>(&self, mut make: F) -> Result<SynchronizedRun<A::Output>, SessionError>
    where
        A: EventDriven,
        F: FnMut(NodeId) -> A,
    {
        let kind = self.validate()?.clone();
        let bound = self.resolve_pulse_bound(&kind, &mut make)?;
        let exec = kind.instantiate::<A>(self.graph, bound);
        exec.execute(&self.env(), &mut make).map_err(SessionError::from)
    }

    /// Runs the synchronous ground truth, then the configured synchronizer, and
    /// reports both with overhead factors.
    ///
    /// # Errors
    ///
    /// Returns a [`SessionError`] if no synchronizer was configured, the limits are
    /// unusable, or either simulation fails.
    pub fn compare<A, F>(&self, mut make: F) -> Result<ComparisonReport<A::Output>, SessionError>
    where
        A: EventDriven,
        F: FnMut(NodeId) -> A,
    {
        let kind = self.validate()?.clone();
        let sync = run_sync(self.graph, &mut make, self.limits.max_rounds)?;
        let bound = self.pulse_bound.unwrap_or(sync.rounds_to_quiescence).max(1);
        let exec = kind.instantiate::<A>(self.graph, bound);
        let run = exec.execute(&self.env(), &mut make)?;
        Ok(ComparisonReport {
            sync_rounds: sync.rounds_to_quiescence,
            sync_messages: sync.messages,
            sync_outputs: sync.outputs(),
            async_outputs: run.outputs,
            async_metrics: run.metrics,
            ordering_violations: run.ordering_violations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_netsim::event_driven::PulseCtx;

    #[derive(Debug)]
    struct Flood {
        me: NodeId,
        neighbors: Vec<NodeId>,
        hops: Option<u64>,
    }

    impl Flood {
        fn new(graph: &Graph, me: NodeId) -> Self {
            Flood { me, neighbors: graph.neighbors(me).to_vec(), hops: None }
        }
    }

    impl EventDriven for Flood {
        type Msg = u64;
        type Output = u64;

        fn on_init(&mut self, ctx: &mut PulseCtx<u64>) {
            if self.me == NodeId(0) {
                self.hops = Some(0);
                for &u in &self.neighbors {
                    ctx.send(u, 1);
                }
            }
        }

        fn on_pulse(&mut self, received: &[(NodeId, u64)], ctx: &mut PulseCtx<u64>) {
            if self.hops.is_none() {
                if let Some(&(_, h)) = received.first() {
                    self.hops = Some(h);
                    for &u in &self.neighbors {
                        ctx.send(u, h + 1);
                    }
                }
            }
        }

        fn output(&self) -> Option<u64> {
            self.hops
        }
    }

    #[test]
    fn run_without_synchronizer_is_rejected() {
        let graph = Graph::path(4);
        let err = Session::on(&graph).run(|v| Flood::new(&graph, v)).unwrap_err();
        assert_eq!(err, SessionError::MissingSynchronizer);
        let err = Session::on(&graph).compare(|v| Flood::new(&graph, v)).unwrap_err();
        assert_eq!(err, SessionError::MissingSynchronizer);
    }

    #[test]
    fn zero_limits_are_rejected() {
        let graph = Graph::path(4);
        let err = Session::on(&graph)
            .synchronizer(SyncKind::Direct)
            .limits(SimLimits { max_events: 0, ..SimLimits::default() })
            .run(|v| Flood::new(&graph, v))
            .unwrap_err();
        assert_eq!(err, SessionError::InvalidLimits { what: "max_events" });
        let err = Session::on(&graph)
            .synchronizer(SyncKind::Direct)
            .limits(SimLimits { max_rounds: 0, ..SimLimits::default() })
            .run(|v| Flood::new(&graph, v))
            .unwrap_err();
        assert_eq!(err, SessionError::InvalidLimits { what: "max_rounds" });
    }

    #[test]
    fn session_errors_format_helpfully() {
        assert!(format!("{}", SessionError::MissingSynchronizer).contains("synchronizer"));
        assert!(format!("{}", SessionError::InvalidLimits { what: "max_events" })
            .contains("max_events"));
    }

    #[test]
    fn every_kind_runs_through_the_same_call_path() {
        let graph = Graph::grid(3, 3);
        let direct = Session::on(&graph)
            .synchronizer(SyncKind::Direct)
            .run(|v| Flood::new(&graph, v))
            .expect("direct");
        for kind in SyncKind::standard_suite() {
            let run = Session::on(&graph)
                .delay(DelayModel::jitter(3))
                .synchronizer(kind.clone())
                .run(|v| Flood::new(&graph, v))
                .unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
            assert_eq!(run.outputs, direct.outputs, "{} diverged", kind.label());
        }
    }

    #[test]
    fn explicit_det_config_and_pulse_bound_are_honored() {
        let graph = Graph::path(6);
        let cfg = SynchronizerConfig::build(&graph, 8);
        let run = Session::on(&graph)
            .delay(DelayModel::slow_cut(2))
            .synchronizer(SyncKind::Det(cfg))
            .run(|v| Flood::new(&graph, v))
            .expect("det run");
        assert_eq!(run.ordering_violations, 0);
        // An explicit pulse bound skips the ground-truth run entirely.
        let run = Session::on(&graph)
            .delay(DelayModel::uniform())
            .synchronizer(SyncKind::Alpha)
            .pulse_bound(8)
            .run(|v| Flood::new(&graph, v))
            .expect("alpha run");
        assert!(run.outputs.iter().all(Option::is_some));
    }

    #[test]
    fn record_trace_surfaces_a_trace_without_changing_the_run() {
        let graph = Graph::grid(3, 3);
        let plain = Session::on(&graph)
            .delay(DelayModel::jitter(6))
            .synchronizer(SyncKind::DetAuto)
            .run(|v| Flood::new(&graph, v))
            .expect("plain run");
        assert!(plain.trace.is_none());
        let traced = Session::on(&graph)
            .delay(DelayModel::jitter(6))
            .synchronizer(SyncKind::DetAuto)
            .record_trace(true)
            .run(|v| Flood::new(&graph, v))
            .expect("traced run");
        let trace = traced.trace.expect("trace was requested");
        assert!(!trace.records.is_empty());
        assert_eq!(traced.outputs, plain.outputs);
        assert_eq!(traced.metrics, plain.metrics);
        // Direct execution has no deliveries to trace.
        let direct = Session::on(&graph)
            .synchronizer(SyncKind::Direct)
            .record_trace(true)
            .run(|v| Flood::new(&graph, v))
            .expect("direct run");
        assert!(direct.trace.is_none());
    }

    #[test]
    fn faulted_session_terminates_with_explicit_partial_status() {
        // Crash the flood source at time 0 and never recover it: nothing can
        // flood, yet the run must terminate (dropped deliveries starve the
        // schedule) and say exactly how partial the result is.
        let graph = Graph::grid(3, 3);
        let plan = ds_netsim::FaultPlan::new().node_crash(0, NodeId(0));
        for kind in [SyncKind::Alpha, SyncKind::DetAuto] {
            let run = Session::on(&graph)
                .delay(DelayModel::jitter(4))
                .synchronizer(kind.clone())
                .pulse_bound(10)
                .faults(plan.clone())
                .run(|v| Flood::new(&graph, v))
                .unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
            assert!(run.health.is_partial(), "{}", kind.label());
            assert_eq!(run.health.crashed, vec![NodeId(0)], "{}", kind.label());
            assert!(run.health.missing.contains(&NodeId(0)), "{}", kind.label());
            assert!(run.outputs.iter().all(Option::is_none), "{}: no node can learn", kind.label());
            assert!(run.fault_transitions >= 1, "{}", kind.label());
        }
        // The same session without the plan is healthy and complete.
        let clean = Session::on(&graph)
            .delay(DelayModel::jitter(4))
            .synchronizer(SyncKind::DetAuto)
            .run(|v| Flood::new(&graph, v))
            .expect("clean run");
        assert!(!clean.health.is_partial());
        assert_eq!(clean.dropped_events, 0);
        assert_eq!(clean.fault_transitions, 0);
    }

    #[test]
    fn compare_reports_ground_truth_and_overheads() {
        let graph = Graph::grid(3, 4);
        let report = Session::on(&graph)
            .delay(DelayModel::jitter(3))
            .synchronizer(SyncKind::DetAuto)
            .compare(|v| Flood::new(&graph, v))
            .expect("compare");
        assert!(report.outputs_match());
        assert!(report.sync_rounds >= 5);
        assert!(report.message_overhead() >= 1.0);
        assert!(report.time_overhead().is_some());
    }
}
