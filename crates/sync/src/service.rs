//! Simulation-as-a-service: run many independent simulation requests
//! concurrently, amortizing per-topology and per-run setup across them.
//!
//! A standalone [`Session`] pays full setup on every
//! run: the synchronizer cover construction (`SynchronizerConfig::build`, by
//! far the dominant cost at scale) and the engine's allocations. The paper's
//! synchronizer is explicitly a *reusable overlay* — the cover/layer
//! structure of Ghaffari–Trygub depends only on the topology and the pulse
//! bound, never on the workload — so a service can build it once per
//! `(topology, parameters)` and share it, via `Arc`, across every session
//! that runs on it. This module provides the three pieces:
//!
//! * [`CoverCache`] — a bounded, thread-safe cache of built
//!   [`SynchronizerConfig`]s keyed by `(graph structural hash, n, m,
//!   SynchronizerParams)`, with **verify-on-hit**: a hit is returned only
//!   after a full `Graph` equality check, so a 64-bit hash collision can
//!   never alias two topologies (they coexist under one key instead).
//! * [`ServiceRequest`] — one simulation request: a graph, a delay
//!   adversary, a [`SyncKind`], scheduler, limits, and an optional fault
//!   plan. A plain-data description, deliberately mirroring the `Session`
//!   builder.
//! * [`SessionPool`] — runs a batch of requests concurrently over the
//!   `ds-netsim::pool` worker threads (the workspace's single thread-spawn
//!   site), resolving `DetAuto` through the shared cover cache and drawing
//!   engine state from a shared recycling [`SlabBank`].
//!
//! # Pooled determinism
//!
//! Every pooled run is **bit-identical** to the same request run through a
//! standalone `Session` (pinned by `tests/service_determinism.rs`),
//! regardless of cache hits, recycled engine state, worker count, or
//! interleaving with other requests. The argument is by construction:
//!
//! 1. Requests never share mutable state: each job owns its protocol
//!    instances, engine state, and result slot; the only shared structures
//!    are the cover cache (returning `Arc`s of immutable configs) and the
//!    slab bank (handing out exclusively-owned state).
//! 2. A cache-hit `SynchronizerConfig` is the output of the same
//!    deterministic `build(graph, max_pulse)` the standalone session would
//!    have run — verified equal-keyed *and* equal-graphed — so `Det(hit)`
//!    and `DetAuto` instantiate identical executors.
//! 3. Recycled engine state is bit-identical to cold state by the reset
//!    contract of `ds-netsim::recycle` (asserted by the engine every run).
//! 4. Completion order is irrelevant: results are reassembled by submission
//!    index, and no request reads another's output.
//!
//! The only field recycling may legitimately change is
//! [`SynchronizedRun::arena_bytes`] — a recycled arena may carry more
//! *capacity* than a cold run ever needed. It is an engine internal
//! (explicitly excluded from run identity, like `overflow_events`); every
//! other field, including `peak_live_handles`, is identical.

use crate::executor::SynchronizedRun;
use crate::session::{Session, SessionError, SyncKind};
use crate::synchronizer::SynchronizerConfig;
use ds_graph::{Graph, NodeId};
use ds_netsim::async_engine::SimLimits;
use ds_netsim::delay::DelayModel;
use ds_netsim::event_driven::EventDriven;
use ds_netsim::pool::WorkerPool;
use ds_netsim::sync_engine::run_sync;
use ds_netsim::{FaultPlan, SchedulerKind, SlabBank};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// The synchronizer parameters a cover construction depends on (besides the
/// topology itself): the pulse bound `max_pulse` handed to
/// [`SynchronizerConfig::build`]. Two requests on the same graph share a
/// cached config iff their resolved parameters are equal — a changed bound
/// changes the config, so it must miss, never alias.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SynchronizerParams {
    /// Upper bound on simulated pulses (`T(A)`), as resolved by the session.
    pub max_pulse: u64,
}

/// Cache key: structural hash plus the two cheap exact discriminators, then
/// the build parameters. The hash is a discriminator, not a proof — entries
/// under one key are disambiguated by full graph equality.
type CacheKey = (u64, usize, usize, SynchronizerParams);

struct CacheEntry {
    /// The exact topology this config was built for (verify-on-hit: a hit
    /// must compare equal to the requesting graph, not just hash-equal).
    graph: Graph,
    cfg: Arc<SynchronizerConfig>,
    last_used: u64,
}

struct CacheInner {
    entries: BTreeMap<CacheKey, Vec<CacheEntry>>,
    len: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded, thread-safe cache of built [`SynchronizerConfig`]s, keyed by
/// `(Graph::structural_hash, node count, edge count, SynchronizerParams)`.
///
/// * **Soundness**: a hit is returned only after full `Graph` equality
///   against the stored topology (`Graph: Eq`), so a hash collision
///   coexists under one key rather than aliasing. Any structural change —
///   a removed edge, a repaired graph, a different edge insertion order —
///   changes the key or fails the equality check and misses.
/// * **Build outside the lock**: a miss releases the lock, builds, then
///   re-checks under the lock (first writer wins), so concurrent sessions
///   on *different* topologies never serialize behind a build.
/// * **LRU eviction**: at capacity, the least-recently-used entry is
///   evicted; an evicted topology simply rebuilds on next use (bit-identical
///   — the build is deterministic).
pub struct CoverCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl CoverCache {
    /// Default capacity of [`CoverCache::new`]: plenty for an experiment
    /// sweep's distinct topologies while bounding memory.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// Creates a cache with the default capacity.
    pub fn new() -> Self {
        CoverCache::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a cache holding at most `capacity` configs (clamped to ≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        CoverCache {
            inner: Mutex::new(CacheInner {
                entries: BTreeMap::new(),
                len: 0,
                clock: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Returns the cached config for `(graph, params)`, building (and
    /// caching) it on a miss. The returned `Arc` is shared by every session
    /// on this topology; the config itself is immutable.
    pub fn get_or_build(
        &self,
        graph: &Graph,
        params: SynchronizerParams,
    ) -> Arc<SynchronizerConfig> {
        let key = (graph.structural_hash(), graph.node_count(), graph.edge_count(), params);
        {
            let mut inner = self.inner.lock().expect("cover cache poisoned");
            let clock = inner.clock;
            if let Some(slot) = inner.entries.get_mut(&key) {
                if let Some(entry) = slot.iter_mut().find(|e| e.graph == *graph) {
                    entry.last_used = clock;
                    let cfg = Arc::clone(&entry.cfg);
                    inner.clock += 1;
                    inner.hits += 1;
                    return cfg;
                }
            }
            inner.misses += 1;
        }
        // Build outside the lock: concurrent misses on different topologies
        // proceed in parallel (two racing builds of the *same* topology both
        // produce the identical config — the build is deterministic — and
        // the first writer's entry wins below).
        let cfg = SynchronizerConfig::build(graph, params.max_pulse);
        let mut inner = self.inner.lock().expect("cover cache poisoned");
        if let Some(slot) = inner.entries.get(&key) {
            if let Some(entry) = slot.iter().find(|e| e.graph == *graph) {
                return Arc::clone(&entry.cfg);
            }
        }
        while inner.len >= self.capacity {
            inner.evict_lru();
        }
        let clock = inner.clock;
        inner.clock += 1;
        inner.len += 1;
        inner.entries.entry(key).or_default().push(CacheEntry {
            graph: graph.clone(),
            cfg: Arc::clone(&cfg),
            last_used: clock,
        });
        cfg
    }

    /// Configs currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cover cache poisoned").len
    }

    /// Whether the cache holds no configs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of cached configs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups served from the cache (after graph-equality verification).
    pub fn hits(&self) -> u64 {
        self.inner.lock().expect("cover cache poisoned").hits
    }

    /// Lookups that had to build (no entry, or an entry whose stored graph
    /// failed the equality check).
    pub fn misses(&self) -> u64 {
        self.inner.lock().expect("cover cache poisoned").misses
    }

    /// Entries evicted to stay within capacity.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().expect("cover cache poisoned").evictions
    }
}

impl Default for CoverCache {
    fn default() -> Self {
        CoverCache::new()
    }
}

impl fmt::Debug for CoverCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().expect("cover cache poisoned");
        f.debug_struct("CoverCache")
            .field("len", &inner.len)
            .field("capacity", &self.capacity)
            .field("hits", &inner.hits)
            .field("misses", &inner.misses)
            .field("evictions", &inner.evictions)
            .finish()
    }
}

impl CacheInner {
    fn evict_lru(&mut self) {
        let Some((&key, oldest)) = self
            .entries
            .iter()
            .filter_map(|(k, slot)| slot.iter().map(|e| e.last_used).min().map(|t| (k, t)))
            .min_by_key(|&(_, t)| t)
        else {
            return;
        };
        let slot = self.entries.get_mut(&key).expect("key just found");
        let pos = slot
            .iter()
            .position(|e| e.last_used == oldest)
            .expect("entry with the minimum stamp exists");
        slot.remove(pos);
        if slot.is_empty() {
            self.entries.remove(&key);
        }
        self.len -= 1;
        self.evictions += 1;
    }
}

/// One simulation request for a [`SessionPool`]: the per-request half of a
/// [`Session`], as plain data. Construct with [`ServiceRequest::on`] and the
/// builder methods (same names and defaults as `Session`'s).
#[derive(Clone, Debug)]
pub struct ServiceRequest<'g> {
    /// The network graph.
    pub graph: &'g Graph,
    /// The delay adversary.
    pub delay: DelayModel,
    /// Which synchronizer to drive the algorithm with.
    pub kind: SyncKind,
    /// The event scheduler.
    pub scheduler: SchedulerKind,
    /// Simulation budgets.
    pub limits: SimLimits,
    /// Explicit pulse bound `T(A)`, or `None` to resolve it from a
    /// synchronous ground-truth run (exactly like a standalone session).
    pub pulse_bound: Option<u64>,
    /// Optional dynamic-topology fault plan.
    pub faults: Option<FaultPlan>,
}

impl<'g> ServiceRequest<'g> {
    /// Starts a request on `graph` with the [`Session`] defaults: uniform
    /// delays, default limits, timing-wheel scheduler, deterministic
    /// synchronizer with auto-built config ([`SyncKind::DetAuto`] — the kind
    /// the cover cache serves).
    pub fn on(graph: &'g Graph) -> Self {
        ServiceRequest {
            graph,
            delay: DelayModel::uniform(),
            kind: SyncKind::DetAuto,
            scheduler: SchedulerKind::default(),
            limits: SimLimits::default(),
            pulse_bound: None,
            faults: None,
        }
    }

    /// Sets the delay adversary.
    #[must_use]
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Chooses the synchronizer.
    #[must_use]
    pub fn synchronizer(mut self, kind: SyncKind) -> Self {
        self.kind = kind;
        self
    }

    /// Selects the event scheduler.
    #[must_use]
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the simulation budgets.
    #[must_use]
    pub fn limits(mut self, limits: SimLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Fixes the pulse bound explicitly.
    #[must_use]
    pub fn pulse_bound(mut self, bound: u64) -> Self {
        self.pulse_bound = Some(bound);
        self
    }

    /// Injects a fault plan.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Runs this request standalone through an equivalent [`Session`] — the
    /// reference execution the pooled run is bit-identical to. `extras`
    /// applies pool-independent session options (the pool's own path adds
    /// the recycle bank here).
    fn run_via_session<A, F>(
        &self,
        make: &mut F,
        extras: impl FnOnce(Session<'g>) -> Session<'g>,
        cfg: Option<Arc<SynchronizerConfig>>,
        bound: u64,
    ) -> Result<SynchronizedRun<A::Output>, SessionError>
    where
        A: EventDriven,
        F: FnMut(NodeId) -> A,
    {
        let kind = match cfg {
            Some(cfg) => SyncKind::Det(cfg),
            None => self.kind.clone(),
        };
        let mut session = Session::on(self.graph)
            .delay(self.delay.clone())
            .limits(self.limits)
            .scheduler(self.scheduler)
            .synchronizer(kind)
            .pulse_bound(bound);
        if let Some(plan) = &self.faults {
            session = session.faults(plan.clone());
        }
        extras(session).run(make)
    }

    /// Resolves the pulse bound exactly as [`Session::run`] would: the
    /// explicit bound (clamped ≥ 1) if set; `1` if the kind needs none;
    /// otherwise `T(A)` from a synchronous ground-truth run.
    fn resolve_pulse_bound<A, F>(&self, make: &mut F) -> Result<u64, SessionError>
    where
        A: EventDriven,
        F: FnMut(NodeId) -> A,
    {
        if let Some(bound) = self.pulse_bound {
            return Ok(bound.max(1));
        }
        if !self.kind.needs_pulse_bound() {
            return Ok(1);
        }
        let sync = run_sync(self.graph, make, self.limits.max_rounds)?;
        Ok(sync.rounds_to_quiescence.max(1))
    }

    fn validate(&self) -> Result<(), SessionError> {
        if self.limits.max_events == 0 {
            return Err(SessionError::InvalidLimits { what: "max_events" });
        }
        if self.limits.max_rounds == 0 {
            return Err(SessionError::InvalidLimits { what: "max_rounds" });
        }
        Ok(())
    }
}

/// Runs one request through the service path: validate, resolve the pulse
/// bound, serve `DetAuto` from the cover cache, run with recycled engine
/// state. Used by the pool's workers; also callable inline (worker count 0
/// routes here) — the execution is identical either way.
fn run_one<A, F>(
    req: &ServiceRequest<'_>,
    cache: &CoverCache,
    bank: &SlabBank,
    make: &mut F,
) -> Result<SynchronizedRun<A::Output>, SessionError>
where
    A: EventDriven,
    F: FnMut(NodeId) -> A,
{
    req.validate()?;
    let bound = req.resolve_pulse_bound(make)?;
    // DetAuto is the cacheable kind: its config is a pure function of
    // (graph, bound), which is exactly the cache key. Everything else
    // passes through unchanged.
    let cfg = match &req.kind {
        SyncKind::DetAuto => {
            Some(cache.get_or_build(req.graph, SynchronizerParams { max_pulse: bound }))
        }
        _ => None,
    };
    req.run_via_session(make, |s| s.recycle(bank.clone()), cfg, bound)
}

/// One queued unit of pool work: a request, the shared cache/bank handles,
/// its own clone of the algorithm factory, and a result slot the worker
/// fills. Reassembled by `index` after out-of-order completion.
struct Job<'r, 'g, A: EventDriven, F> {
    index: usize,
    req: &'r ServiceRequest<'g>,
    cache: &'r CoverCache,
    bank: SlabBank,
    make: F,
    result: Option<Result<SynchronizedRun<A::Output>, SessionError>>,
}

/// Runs batches of independent simulation requests concurrently over the
/// `ds-netsim::pool` worker threads, sharing a [`CoverCache`] and a
/// recycling [`SlabBank`] across all of them.
///
/// The pool is a *scheduler*, not a session: it holds no per-run state, and
/// a single pool can serve any number of `run_batch` calls (each call spins
/// the worker threads up and down; the cache and bank persist across
/// calls). Results come back in submission order whatever the completion
/// order. See the module docs for the pooled-determinism argument.
pub struct SessionPool {
    workers: usize,
    cache: CoverCache,
    bank: SlabBank,
}

impl SessionPool {
    /// Creates a pool dispatching over `workers` worker threads (0 runs
    /// every request inline on the caller's thread — same execution, no
    /// concurrency), with a default-capacity [`CoverCache`].
    pub fn new(workers: usize) -> Self {
        SessionPool::with_cache(workers, CoverCache::new())
    }

    /// Creates a pool with an explicitly configured cover cache (e.g. a
    /// smaller capacity for eviction testing).
    pub fn with_cache(workers: usize, cache: CoverCache) -> Self {
        SessionPool { workers, cache, bank: SlabBank::new() }
    }

    /// The shared cover cache (hit/miss/eviction counters for observability).
    pub fn cache(&self) -> &CoverCache {
        &self.cache
    }

    /// The shared engine-state recycling bank.
    pub fn bank(&self) -> &SlabBank {
        &self.bank
    }

    /// Runs every request of a batch, concurrently over the pool's workers,
    /// and returns one result per request **in submission order**.
    ///
    /// `make(i, v)` builds the algorithm instance of node `v` for request
    /// `i` — it is cloned per job, and must not observe shared mutable
    /// state (the usual determinism contract for factories).
    ///
    /// Requests are independent: one failing (its `Err` is returned in its
    /// slot) never affects another. A panicking protocol propagates after
    /// the whole batch drained, like the sharded engine's worker barrier.
    pub fn run_batch<'g, A, F>(
        &self,
        requests: &[ServiceRequest<'g>],
        make: F,
    ) -> Vec<Result<SynchronizedRun<A::Output>, SessionError>>
    where
        A: EventDriven,
        A::Output: Send,
        F: FnMut(usize, NodeId) -> A + Clone + Send,
    {
        if requests.is_empty() {
            return Vec::new();
        }
        if self.workers == 0 {
            return requests
                .iter()
                .enumerate()
                .map(|(i, req)| {
                    let mut make = make.clone();
                    run_one(req, &self.cache, &self.bank, &mut |v| make(i, v))
                })
                .collect();
        }
        let workers = self.workers.min(requests.len());
        let work = |job: &mut Job<'_, 'g, A, F>| {
            let (index, mut make) = (job.index, job.make.clone());
            job.result = Some(run_one(job.req, job.cache, &job.bank, &mut |v| make(index, v)));
        };
        WorkerPool::run(workers, work, |pool| {
            for (index, req) in requests.iter().enumerate() {
                pool.dispatch(
                    index,
                    Job {
                        index,
                        req,
                        cache: &self.cache,
                        bank: self.bank.clone(),
                        make: make.clone(),
                        result: None,
                    },
                );
            }
            let mut results: Vec<_> = (0..requests.len()).map(|_| None).collect();
            let mut panicked = None;
            for _ in 0..requests.len() {
                let (_, job, panic) = pool.collect();
                panicked = panicked.or(panic);
                results[job.index] = job.result;
            }
            // Resume only after every job answered, so no worker is left
            // sending into a dropped channel (same discipline as the sharded
            // engine's barrier).
            if let Some(payload) = panicked {
                std::panic::resume_unwind(payload);
            }
            results.into_iter().map(|r| r.expect("every job ran")).collect()
        })
    }
}

impl fmt::Debug for SessionPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionPool")
            .field("workers", &self.workers)
            .field("cache", &self.cache)
            .field("bank", &self.bank)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_netsim::event_driven::PulseCtx;

    #[derive(Debug)]
    struct Flood {
        me: NodeId,
        neighbors: Vec<NodeId>,
        hops: Option<u64>,
    }

    impl Flood {
        fn new(graph: &Graph, me: NodeId) -> Self {
            Flood { me, neighbors: graph.neighbors(me).to_vec(), hops: None }
        }
    }

    impl EventDriven for Flood {
        type Msg = u64;
        type Output = u64;

        fn on_init(&mut self, ctx: &mut PulseCtx<u64>) {
            if self.me == NodeId(0) {
                self.hops = Some(0);
                for &u in &self.neighbors {
                    ctx.send(u, 1);
                }
            }
        }

        fn on_pulse(&mut self, received: &[(NodeId, u64)], ctx: &mut PulseCtx<u64>) {
            if self.hops.is_none() {
                if let Some(&(_, h)) = received.first() {
                    self.hops = Some(h);
                    for &u in &self.neighbors {
                        ctx.send(u, h + 1);
                    }
                }
            }
        }

        fn output(&self) -> Option<u64> {
            self.hops
        }
    }

    #[test]
    fn cache_hits_share_one_config_and_count() {
        let cache = CoverCache::new();
        let graph = Graph::grid(3, 3);
        let params = SynchronizerParams { max_pulse: 8 };
        let a = cache.get_or_build(&graph, params);
        let b = cache.get_or_build(&graph, params);
        assert!(Arc::ptr_eq(&a, &b), "a hit returns the cached Arc, not a rebuild");
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        // A different bound is a different config: must miss, never alias.
        let c = cache.get_or_build(&graph, SynchronizerParams { max_pulse: 9 });
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 2, 2));
    }

    #[test]
    fn cache_eviction_is_lru_and_rebuilds_identically() {
        let cache = CoverCache::with_capacity(2);
        let g1 = Graph::path(5);
        let g2 = Graph::cycle(5);
        let g3 = Graph::grid(2, 3);
        let params = SynchronizerParams { max_pulse: 6 };
        let first = cache.get_or_build(&g1, params);
        cache.get_or_build(&g2, params);
        cache.get_or_build(&g1, params); // g1 now more recent than g2
        cache.get_or_build(&g3, params); // evicts g2
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        let again = cache.get_or_build(&g1, params);
        assert!(Arc::ptr_eq(&first, &again), "g1 survived the eviction");
        // g2 rebuilds (a miss), bit-identical to its first build.
        let rebuilt = cache.get_or_build(&g2, params);
        assert_eq!(*rebuilt, *SynchronizerConfig::build(&g2, params.max_pulse));
    }

    #[test]
    fn pooled_batch_matches_inline_and_keeps_submission_order() {
        let graphs = [Graph::grid(3, 3), Graph::path(7), Graph::cycle(6)];
        let requests: Vec<ServiceRequest<'_>> = graphs
            .iter()
            .enumerate()
            .map(|(i, g)| ServiceRequest::on(g).delay(DelayModel::jitter(3 + i as u64)))
            .collect();
        let make = |i: usize, v: NodeId| Flood::new(requests[i].graph, v);
        let inline = SessionPool::new(0).run_batch::<Flood, _>(&requests, make);
        let pooled = SessionPool::new(2).run_batch::<Flood, _>(&requests, make);
        for (i, (a, b)) in inline.iter().zip(&pooled).enumerate() {
            let (a, b) = (a.as_ref().expect("inline"), b.as_ref().expect("pooled"));
            assert_eq!(a.outputs, b.outputs, "request {i}");
            assert_eq!(a.metrics, b.metrics, "request {i}");
        }
    }

    #[test]
    fn invalid_requests_fail_in_their_slot_without_poisoning_the_batch() {
        let graph = Graph::path(4);
        let requests = vec![
            ServiceRequest::on(&graph),
            ServiceRequest::on(&graph).limits(SimLimits { max_events: 0, ..SimLimits::default() }),
            ServiceRequest::on(&graph),
        ];
        let results =
            SessionPool::new(2).run_batch::<Flood, _>(&requests, |_, v| Flood::new(&graph, v));
        assert!(results[0].is_ok());
        assert_eq!(
            results[1].as_ref().unwrap_err(),
            &SessionError::InvalidLimits { what: "max_events" }
        );
        assert!(results[2].is_ok());
    }
}
