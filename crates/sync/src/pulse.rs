//! Pulse arithmetic: levels, `prev`, `prev(prev(·))` and stage bookkeeping
//! (Definitions 4.3–4.5, Lemmas 4.7, 4.13, 4.14, 4.16 of the paper).
//!
//! Pulses are the round numbers of the simulated synchronous execution. The
//! synchronizer groups its work into *stages*, one per pulse `p ≥ 1`; the stage of
//! pulse `p` uses sparse covers of radius `2^{ℓ(p)+5}`, where `ℓ(p)` is the pulse's
//! *level*, and is anchored at execution-tree ancestors of pulse `prev(prev(p))`.

/// The level `ℓ(p)` of a pulse: the exponent of the largest power of two dividing
/// `p`; by convention `ℓ(0)` is treated as "infinite" and is not used directly
/// (pulse 0 is the initiator pulse).
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn level(p: u64) -> u32 {
    assert!(p > 0, "level is defined for positive pulses only");
    p.trailing_zeros()
}

/// `prev(p)` (Definition 4.4): the largest pulse `q ≤ p − 2^{ℓ(p)}` with
/// `ℓ(q) = ℓ(p) + 1`, or 0 if no such positive pulse exists; `prev(0) = 0`.
pub fn prev(p: u64) -> u64 {
    if p == 0 {
        return 0;
    }
    let step = 1u64 << (level(p) + 1);
    let bound = p - (1u64 << level(p));
    // Largest multiple of 2^{ℓ(p)+1} that is ≤ bound and has level exactly ℓ(p)+1.
    let mut q = (bound / step) * step;
    while q > 0 && level(q) != level(p) + 1 {
        q -= step;
    }
    q
}

/// `prev(prev(p))`: the anchor pulse of stage `p`.
pub fn prev_prev(p: u64) -> u64 {
    prev(prev(p))
}

/// The cover-radius exponent used by stage `p`: clusters of the `2^{ℓ(p)+5}`-cover.
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn cover_exponent(p: u64) -> u32 {
    level(p) + 5
}

/// Whether stage `p` is a *base stage*, i.e. anchored at the initiators
/// (`prev(prev(p)) = 0`, Section 4.2).
pub fn is_base_stage(p: u64) -> bool {
    p > 0 && prev_prev(p) == 0
}

/// All stages `1 ..= max_pulse` tracked by a virtual node of pulse `q`: the stages
/// `s` with `prev(prev(s)) ≤ q ≤ s` (Lemma 4.14 bounds their number by `O(log T)`).
pub fn stages_tracked(q: u64, max_pulse: u64) -> Vec<u64> {
    (1..=max_pulse).filter(|&s| prev_prev(s) <= q && q <= s).collect()
}

/// All stages `1 ..= max_pulse` anchored at pulse `q` (`prev(prev(s)) = q`).
pub fn stages_anchored(q: u64, max_pulse: u64) -> Vec<u64> {
    (1..=max_pulse).filter(|&s| prev_prev(s) == q).collect()
}

/// All stages `p ≤ max_pulse` whose registration is triggered by `s`-safety, i.e.
/// `prev(p) = s`.
pub fn stages_with_prev(s: u64, max_pulse: u64) -> Vec<u64> {
    (1..=max_pulse).filter(|&p| prev(p) == s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_examples() {
        assert_eq!(level(1), 0);
        assert_eq!(level(2), 1);
        assert_eq!(level(3), 0);
        assert_eq!(level(4), 2);
        assert_eq!(level(12), 2);
        assert_eq!(level(96), 5);
    }

    #[test]
    fn prev_examples_from_the_paper_definitions() {
        assert_eq!(prev(0), 0);
        assert_eq!(prev(1), 0);
        assert_eq!(prev(2), 0);
        assert_eq!(prev(3), 2);
        assert_eq!(prev(4), 0);
        assert_eq!(prev(5), 2);
        assert_eq!(prev(6), 4);
        assert_eq!(prev(7), 6);
        assert_eq!(prev(8), 0);
        assert_eq!(prev(12), 8);
    }

    #[test]
    fn prev_has_higher_level_and_respects_gap() {
        // Lemma 4.7(a): p − prev(p) ≤ 3·2^{ℓ(p)}, and prev(p) has level ℓ(p)+1 (or is 0).
        for p in 1..=4096u64 {
            let q = prev(p);
            assert!(q < p);
            assert!(p - q <= 3 * (1 << level(p)), "gap too large at p={p}");
            assert!(q <= p - (1 << level(p)));
            if q > 0 {
                assert_eq!(level(q), level(p) + 1, "prev({p}) = {q}");
            }
        }
    }

    #[test]
    fn prev_prev_respects_lemma_4_7_b() {
        for p in 1..=4096u64 {
            assert!(p - prev_prev(p) <= 9 * (1 << level(p)), "p = {p}");
        }
    }

    #[test]
    fn prev_gap_is_at_least_two_for_non_base_pulses() {
        // Used by the synchronizer: when prev(p) > 0, prev(p) − prev(prev(p)) ≥ 2.
        for p in 1..=4096u64 {
            if prev(p) > 0 {
                assert!(prev(p) - prev_prev(p) >= 2, "p = {p}");
            }
        }
    }

    #[test]
    fn level_sum_is_order_t_log_t() {
        // Lemma 4.13: Σ_{p ≤ 2^t} 2^{ℓ(p)} = O(2^t · t).
        for t in 1..=10u32 {
            let total: u64 = (1..=(1u64 << t)).map(|p| 1u64 << level(p)).sum();
            assert!(total <= (t as u64 + 1) * (1 << t));
        }
    }

    #[test]
    fn tracked_stages_are_logarithmically_many() {
        // Lemma 4.14: for any pulse q there are O(log T) stages with
        // prev(prev(p)) ≤ q ≤ p.
        let max_pulse = 2048;
        let bound = 12 * ((max_pulse as f64).log2() as usize + 1);
        for q in 0..=max_pulse {
            let tracked = stages_tracked(q, max_pulse);
            assert!(tracked.len() <= bound, "pulse {q} tracks {} stages", tracked.len());
            for s in tracked {
                assert!(prev_prev(s) <= q && q <= s);
            }
        }
    }

    #[test]
    fn base_stages_are_logarithmically_many() {
        // Lemma 4.16: O(t) pulses p ≤ 2^t have prev(prev(p)) = 0.
        for t in 1..=11u32 {
            let count = (1..=(1u64 << t)).filter(|&p| is_base_stage(p)).count();
            assert!(count <= 4 * (t as usize + 1), "t={t}: {count} base stages");
        }
    }

    #[test]
    fn anchored_and_prev_indexed_stage_sets_are_consistent() {
        let max_pulse = 512;
        for q in 0..=max_pulse {
            for s in stages_anchored(q, max_pulse) {
                assert_eq!(prev_prev(s), q);
            }
            for p in stages_with_prev(q, max_pulse) {
                assert_eq!(prev(p), q);
                if q > 0 {
                    assert_eq!(prev_prev(p), prev(q));
                }
            }
        }
    }

    #[test]
    fn cover_exponent_tracks_level() {
        assert_eq!(cover_exponent(1), 5);
        assert_eq!(cover_exponent(4), 7);
        assert_eq!(cover_exponent(6), 6);
    }

    #[test]
    #[should_panic(expected = "positive pulses")]
    fn level_of_zero_panics() {
        let _ = level(0);
    }
}
