//! The [`Synchronizer`] trait: one pipeline for every way of executing an
//! event-driven algorithm.
//!
//! The paper presents the deterministic synchronizer as a *drop-in wrapper*: any
//! event-driven synchronous algorithm runs unchanged under any synchronizer, and its
//! overheads are measured against the synchronous ground truth. This module makes
//! that uniformity literal: [`DirectExecutor`] (lock-step ground truth),
//! [`AlphaExecutor`] and [`BetaExecutor`] (Appendix A baselines) and [`DetExecutor`]
//! (Sections 4–5) all implement the same object-safe trait, so runners, experiments
//! and tests are written once and parametrized by a `Box<dyn Synchronizer<A>>`.
//!
//! Use [`crate::session::Session`] to construct and drive executors; the types here
//! are the extension point for new execution strategies.

use crate::alpha::AlphaSynchronizer;
use crate::beta::{BetaSynchronizer, SpanningTree};
use crate::synchronizer::{collect_outputs, DetSynchronizer, SynchronizerConfig};
use ds_graph::{Graph, NodeId};
use ds_netsim::async_engine::{run_async_faulted, run_async_faulted_traced, SimError, SimLimits};
use ds_netsim::delay::DelayModel;
use ds_netsim::event_driven::EventDriven;
use ds_netsim::metrics::RunMetrics;
use ds_netsim::protocol::Protocol;
use ds_netsim::recycle::{run_async_recycled, SlabBank};
use ds_netsim::sharded::{
    run_async_sharded_faulted_traced_with, run_async_sharded_faulted_with, ShardedOptions,
};
use ds_netsim::sync_engine::run_sync;
use ds_netsim::{AsyncReport, DeliveryTrace, FaultPlan, SchedulerKind, ThreadMode};
use std::sync::Arc;

/// The environment an executor runs in: the network, the delay adversary and the
/// simulation budgets. Built by [`crate::session::Session`].
#[derive(Clone, Debug)]
pub struct ExecutionEnv<'g> {
    /// The network graph.
    pub graph: &'g Graph,
    /// The delay adversary (ignored by the lock-step executor).
    pub delay: DelayModel,
    /// Event/round budgets.
    pub limits: SimLimits,
    /// Event scheduler driving the asynchronous engine (ignored by the lock-step
    /// executor). Both kinds produce bit-identical runs.
    pub scheduler: SchedulerKind,
    /// Record a [`DeliveryTrace`] for the happens-before checker (`ds-verify`).
    /// Off by default; the traced execution is bit-identical to the untraced
    /// one. The lock-step executor ignores this (no deliveries to trace).
    pub trace: bool,
    /// Dynamic-topology fault plan (link churn, crash-stop failures) the
    /// asynchronous engines consult at dispatch and delivery time. `None` runs
    /// on the intact topology. The lock-step executor **ignores** faults — it
    /// is the fault-free ground truth degraded runs are compared against.
    pub faults: Option<FaultPlan>,
    /// Engine-state recycling pool ([`ds_netsim::recycle`]). When set, serial
    /// [`SchedulerKind::TimingWheel`] runs check their engine state (wheel,
    /// link table, payload arena) out of this shared bank and return it after
    /// the run, instead of allocating cold. Schedules are bit-identical with
    /// or without a bank (the reset contract, DESIGN.md §11); other
    /// scheduler kinds and traced runs ignore it. `None` (the default) always
    /// allocates cold.
    pub recycle: Option<SlabBank>,
}

/// Runs a synchronizer protocol on the engine the environment selects:
/// [`SchedulerKind::Sharded`] dispatches to the sharded engine (worker threads
/// when the host has them — the synchronizer protocols are `Send` because
/// [`EventDriven`] algorithms are), everything else to the serial engine. All
/// kinds produce bit-identical runs. With `env.trace` set, the run also
/// records the delivery trace the happens-before checker consumes.
fn run_env_async<P, F>(
    env: &ExecutionEnv<'_>,
    make: F,
) -> Result<(AsyncReport<P>, Option<DeliveryTrace>), SimError>
where
    P: Protocol + Send,
    P::Message: Send + 'static,
    F: FnMut(NodeId) -> P,
{
    let faults = env.faults.as_ref();
    // Recycled path: serial wheel runs draw their engine state from the
    // environment's slab bank. Bit-identical to the cold path below — the
    // recycling reset contract is asserted by the engine itself — and scoped
    // to exactly the configuration the slabs fit (the sharded engine owns
    // per-shard state, and traced runs are rare one-off verification runs).
    // An error run drops its slab instead of checking it back in: the bank
    // only ever pools provably clean state.
    if let (SchedulerKind::TimingWheel, false, Some(bank)) =
        (env.scheduler, env.trace, env.recycle.as_ref())
    {
        let mut slab = bank.checkout::<P::Message>();
        let report =
            run_async_recycled(env.graph, env.delay.clone(), faults, make, env.limits, &mut slab)?;
        bank.check_in(slab);
        return Ok((report, None));
    }
    match (env.scheduler, env.trace) {
        (SchedulerKind::Sharded { shards, workers }, false) => run_async_sharded_faulted_with(
            env.graph,
            env.delay.clone(),
            faults,
            make,
            env.limits,
            ShardedOptions { workers, threads: ThreadMode::Auto, ..ShardedOptions::new(shards) },
        )
        .map(|report| (report, None)),
        (SchedulerKind::Sharded { shards, workers }, true) => {
            run_async_sharded_faulted_traced_with(
                env.graph,
                env.delay.clone(),
                faults,
                make,
                env.limits,
                ShardedOptions {
                    workers,
                    threads: ThreadMode::Auto,
                    ..ShardedOptions::new(shards)
                },
            )
            .map(|(report, trace)| (report, Some(trace)))
        }
        (kind, false) => {
            run_async_faulted(env.graph, env.delay.clone(), faults, make, env.limits, kind)
                .map(|report| (report, None))
        }
        (kind, true) => {
            run_async_faulted_traced(env.graph, env.delay.clone(), faults, make, env.limits, kind)
                .map(|(report, trace)| (report, Some(trace)))
        }
    }
}

/// Degradation status of a run under a fault plan: which nodes were lost and
/// which produced no output. A fault-free run on a connected graph has both
/// lists empty; under churn a workload still terminates (dropped messages
/// starve the schedule instead of wedging it) and this records exactly how
/// partial the result is.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunHealth {
    /// Nodes left crashed when the fault plan ran out
    /// ([`FaultPlan::crashed_at_end`]): their outputs are unreliable by
    /// definition — the node stopped participating.
    pub crashed: Vec<NodeId>,
    /// Nodes that produced no output (`None`), crashed or not: partitioned
    /// nodes starve and land here without ever having crashed themselves.
    pub missing: Vec<NodeId>,
}

impl RunHealth {
    /// Whether the run degraded at all: some node crashed or produced no output.
    pub fn is_partial(&self) -> bool {
        !self.crashed.is_empty() || !self.missing.is_empty()
    }

    /// Health of a finished run: crash status from the environment's fault plan
    /// (the lock-step executor passes no plan — it ignores faults), missing
    /// nodes from the collected outputs.
    fn of<O>(faults: Option<&FaultPlan>, outputs: &[Option<O>]) -> Self {
        RunHealth {
            crashed: faults.map(|p| p.crashed_at_end(outputs.len())).unwrap_or_default(),
            missing: outputs
                .iter()
                .enumerate()
                .filter(|(_, o)| o.is_none())
                .map(|(i, _)| NodeId(i))
                .collect(),
        }
    }
}

/// Result of running an event-driven algorithm through an executor.
#[derive(Clone, Debug)]
pub struct SynchronizedRun<O> {
    /// Per-node outputs.
    pub outputs: Vec<Option<O>>,
    /// Metrics of the run.
    pub metrics: RunMetrics,
    /// Ordering violations recorded by the synchronizer (always 0 in a correct run;
    /// only the deterministic synchronizer instruments this).
    pub ordering_violations: u64,
    /// The delivery trace, when the environment asked for one
    /// ([`ExecutionEnv::trace`]; always `None` for the lock-step executor).
    pub trace: Option<DeliveryTrace>,
    /// Extra ticks the engine processed inside batched causality-free windows
    /// ([`AsyncReport::batched_ticks`]; 0 for the lock-step executor and for
    /// serial engines). An engine internal surfaced for the bench artifact —
    /// it never differs between runs that differ only in scheduler.
    pub batched_ticks: u64,
    /// Deliveries dropped by the fault plan ([`AsyncReport::dropped_events`];
    /// 0 without faults and for the lock-step executor).
    pub dropped_events: u64,
    /// Fault-plan operations applied by the engine
    /// ([`AsyncReport::fault_transitions`]; 0 for the lock-step executor).
    pub fault_transitions: u64,
    /// Peak number of simultaneously live payload handles in the engine's
    /// event arena(s) ([`AsyncReport::peak_live_handles`]; 0 for the
    /// lock-step executor). New in bench schema v6.
    pub peak_live_handles: u64,
    /// Bytes held by the payload-arena slabs at the end of the run
    /// ([`AsyncReport::arena_bytes`]; 0 for the lock-step executor).
    pub arena_bytes: u64,
    /// Largest one-tick due batch the engine drained
    /// ([`AsyncReport::max_batch`]; 0 for the lock-step executor).
    pub max_batch: u64,
    /// Degradation status: crashed nodes and nodes with no output. A run under
    /// faults never hangs — it terminates with this explicit partial-result
    /// status instead.
    pub health: RunHealth,
}

/// An execution strategy for event-driven algorithms: wraps per-node algorithm
/// state, delivers pulses, and collects outputs.
///
/// Object-safe over the algorithm type `A`, so heterogeneous executors can be swept
/// uniformly (`Box<dyn Synchronizer<A>>`). The algorithm factory is taken as a
/// `&mut dyn FnMut` for the same reason.
pub trait Synchronizer<A: EventDriven> {
    /// Short human-readable name ("direct", "alpha", "beta", "det"), used as a row
    /// label by the experiment harness.
    fn name(&self) -> &'static str;

    /// Runs one instance of the algorithm per node and collects outputs and metrics.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the underlying simulation fails (non-neighbor send,
    /// event or round budget exceeded).
    fn execute(
        &self,
        env: &ExecutionEnv<'_>,
        make_alg: &mut dyn FnMut(NodeId) -> A,
    ) -> Result<SynchronizedRun<A::Output>, SimError>;
}

/// Lock-step synchronous execution: the ground truth the synchronizers are measured
/// against. No synchronizer at all — the delay adversary is irrelevant.
#[derive(Clone, Copy, Debug, Default)]
pub struct DirectExecutor;

impl<A: EventDriven> Synchronizer<A> for DirectExecutor {
    fn name(&self) -> &'static str {
        "direct"
    }

    fn execute(
        &self,
        env: &ExecutionEnv<'_>,
        make_alg: &mut dyn FnMut(NodeId) -> A,
    ) -> Result<SynchronizedRun<A::Output>, SimError> {
        let report = run_sync(env.graph, make_alg, env.limits.max_rounds)?;
        let outputs = report.outputs();
        let health = RunHealth::of(None, &outputs);
        Ok(SynchronizedRun {
            outputs,
            metrics: report.metrics,
            ordering_violations: 0,
            trace: None,
            batched_ticks: 0,
            dropped_events: 0,
            fault_transitions: 0,
            peak_live_handles: 0,
            arena_bytes: 0,
            max_batch: 0,
            health,
        })
    }
}

/// Awerbuch's α synchronizer (Appendix A): `O(1)` time but `Θ(m)` messages per pulse.
#[derive(Clone, Debug)]
pub struct AlphaExecutor {
    /// Upper bound on the simulated pulses (the algorithm's `T(A)`).
    pub max_pulse: u64,
}

impl<A: EventDriven> Synchronizer<A> for AlphaExecutor {
    fn name(&self) -> &'static str {
        "alpha"
    }

    fn execute(
        &self,
        env: &ExecutionEnv<'_>,
        make_alg: &mut dyn FnMut(NodeId) -> A,
    ) -> Result<SynchronizedRun<A::Output>, SimError> {
        let max_pulse = self.max_pulse;
        let (report, trace) =
            run_env_async(env, |v| AlphaSynchronizer::new(env.graph, v, make_alg(v), max_pulse))?;
        let outputs: Vec<_> = report.nodes.iter().map(|n| n.algorithm().output()).collect();
        let health = RunHealth::of(env.faults.as_ref(), &outputs);
        Ok(SynchronizedRun {
            outputs,
            metrics: report.metrics,
            ordering_violations: 0,
            trace,
            batched_ticks: report.batched_ticks,
            dropped_events: report.dropped_events,
            fault_transitions: report.fault_transitions,
            peak_live_handles: report.peak_live_handles,
            arena_bytes: report.arena_bytes,
            max_batch: report.max_batch,
            health,
        })
    }
}

/// Awerbuch's β synchronizer (Appendix A): per-pulse convergecast/broadcast on a
/// global spanning tree — `Θ(n)` messages and `Θ(D)` time per pulse.
#[derive(Clone, Debug)]
pub struct BetaExecutor {
    /// The precomputed rooted spanning tree.
    pub tree: Arc<SpanningTree>,
    /// Upper bound on the simulated pulses (the algorithm's `T(A)`).
    pub max_pulse: u64,
}

impl<A: EventDriven> Synchronizer<A> for BetaExecutor {
    fn name(&self) -> &'static str {
        "beta"
    }

    fn execute(
        &self,
        env: &ExecutionEnv<'_>,
        make_alg: &mut dyn FnMut(NodeId) -> A,
    ) -> Result<SynchronizedRun<A::Output>, SimError> {
        let max_pulse = self.max_pulse;
        let tree = Arc::clone(&self.tree);
        let (report, trace) =
            run_env_async(env, |v| BetaSynchronizer::new(tree.clone(), v, make_alg(v), max_pulse))?;
        let outputs: Vec<_> = report.nodes.iter().map(|n| n.algorithm().output()).collect();
        let health = RunHealth::of(env.faults.as_ref(), &outputs);
        Ok(SynchronizedRun {
            outputs,
            metrics: report.metrics,
            ordering_violations: 0,
            trace,
            batched_ticks: report.batched_ticks,
            dropped_events: report.dropped_events,
            fault_transitions: report.fault_transitions,
            peak_live_handles: report.peak_live_handles,
            arena_bytes: report.arena_bytes,
            max_batch: report.max_batch,
            health,
        })
    }
}

/// The paper's deterministic synchronizer (Sections 4–5, Theorems 5.2–5.5):
/// polylogarithmic time and message overheads via layered sparse covers.
#[derive(Clone, Debug)]
pub struct DetExecutor {
    /// The shared synchronizer configuration (pulse bound + covers).
    pub cfg: Arc<SynchronizerConfig>,
}

impl<A: EventDriven> Synchronizer<A> for DetExecutor {
    fn name(&self) -> &'static str {
        "det"
    }

    fn execute(
        &self,
        env: &ExecutionEnv<'_>,
        make_alg: &mut dyn FnMut(NodeId) -> A,
    ) -> Result<SynchronizedRun<A::Output>, SimError> {
        let cfg = Arc::clone(&self.cfg);
        let (report, trace) =
            run_env_async(env, |v| DetSynchronizer::new(v, make_alg(v), cfg.clone()))?;
        let outputs = collect_outputs(&report.nodes);
        let health = RunHealth::of(env.faults.as_ref(), &outputs.outputs);
        Ok(SynchronizedRun {
            outputs: outputs.outputs,
            metrics: report.metrics,
            ordering_violations: outputs.ordering_violations,
            trace,
            batched_ticks: report.batched_ticks,
            dropped_events: report.dropped_events,
            fault_transitions: report.fault_transitions,
            peak_live_handles: report.peak_live_handles,
            arena_bytes: report.arena_bytes,
            max_batch: report.max_batch,
            health,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_netsim::event_driven::PulseCtx;

    /// Minimal flooding workload for exercising executors directly.
    #[derive(Debug)]
    struct Flood {
        me: NodeId,
        neighbors: Vec<NodeId>,
        hops: Option<u64>,
    }

    impl Flood {
        fn new(graph: &Graph, me: NodeId) -> Self {
            Flood { me, neighbors: graph.neighbors(me).to_vec(), hops: None }
        }
    }

    impl EventDriven for Flood {
        type Msg = u64;
        type Output = u64;

        fn on_init(&mut self, ctx: &mut PulseCtx<u64>) {
            if self.me == NodeId(0) {
                self.hops = Some(0);
                for &u in &self.neighbors {
                    ctx.send(u, 1);
                }
            }
        }

        fn on_pulse(&mut self, received: &[(NodeId, u64)], ctx: &mut PulseCtx<u64>) {
            if self.hops.is_none() {
                if let Some(&(_, h)) = received.first() {
                    self.hops = Some(h);
                    for &u in &self.neighbors {
                        ctx.send(u, h + 1);
                    }
                }
            }
        }

        fn output(&self) -> Option<u64> {
            self.hops
        }
    }

    #[test]
    fn all_executors_reproduce_the_direct_outputs() {
        let graph = Graph::grid(3, 3);
        let env = ExecutionEnv {
            graph: &graph,
            delay: DelayModel::jitter(5),
            limits: SimLimits::default(),
            scheduler: SchedulerKind::default(),
            trace: false,
            faults: None,
            recycle: None,
        };
        let direct =
            DirectExecutor.execute(&env, &mut |v| Flood::new(&graph, v)).expect("direct run");
        let t = 10; // generous pulse bound for a 3x3 grid flood
        let executors: Vec<Box<dyn Synchronizer<Flood>>> = vec![
            Box::new(AlphaExecutor { max_pulse: t }),
            Box::new(BetaExecutor { tree: SpanningTree::bfs(&graph, NodeId(0)), max_pulse: t }),
            Box::new(DetExecutor { cfg: SynchronizerConfig::build(&graph, t) }),
        ];
        for exec in executors {
            let run = exec.execute(&env, &mut |v| Flood::new(&graph, v)).expect("run");
            assert_eq!(run.outputs, direct.outputs, "{} diverged", exec.name());
            assert_eq!(run.ordering_violations, 0);
        }
    }
}
