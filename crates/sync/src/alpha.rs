//! Awerbuch's α synchronizer (Appendix A): the trivial pulse-generation scheme.
//!
//! Every node generates every pulse `1, 2, 3, …`. A node is *safe* for pulse `p` once
//! all its pulse-`p` algorithm messages have been acknowledged; it then tells all its
//! neighbors, and it generates pulse `p + 1` once it is safe for `p` and has heard
//! that every neighbor is safe for `p`. The time overhead is `O(1)` per pulse but the
//! message overhead is `Θ(m)` per pulse — the baseline the paper's synchronizer
//! improves on.

use ds_graph::{Graph, NodeId};
use ds_netsim::event_driven::{canonical_batch, EventDriven, PulseCtx};
use ds_netsim::metrics::MessageClass;
use ds_netsim::protocol::{Ctx, Protocol};

/// Messages of the α synchronizer.
#[derive(Clone, Debug)]
pub enum AlphaMsg<M> {
    /// An algorithm message of pulse `pulse`.
    Alg { pulse: u64, payload: M },
    /// Acknowledgment of an algorithm message of pulse `pulse`.
    Ack { pulse: u64 },
    /// The sender is safe for pulse `pulse`.
    Safe { pulse: u64 },
}

/// Per-node α synchronizer wrapping an event-driven algorithm.
///
/// All per-pulse bookkeeping is stored flat in vectors indexed by the pulse number
/// (pulses are dense in `0 ..= max_pulse`), and the neighbor list is borrowed from
/// the graph — the per-message path does no map lookups and no allocation.
#[derive(Debug)]
pub struct AlphaSynchronizer<'g, A: EventDriven> {
    me: NodeId,
    neighbors: &'g [NodeId],
    alg: A,
    max_pulse: u64,
    /// The pulse whose messages this node has already sent.
    current: u64,
    /// Outstanding acknowledgments per pulse.
    unacked: Vec<u32>,
    /// Neighbors' safety notifications per pulse.
    neighbor_safe: Vec<u32>,
    /// Whether this node has announced its own safety for a pulse.
    announced: Vec<bool>,
    /// Algorithm messages received, indexed by the sender's pulse.
    received: Vec<Vec<(NodeId, A::Msg)>>,
    /// Whether this node sent any algorithm messages at each pulse.
    sent_at: Vec<bool>,
}

impl<'g, A: EventDriven> AlphaSynchronizer<'g, A> {
    /// Creates the α synchronizer instance for node `me`, simulating `max_pulse`
    /// pulses of `alg`.
    pub fn new(graph: &'g Graph, me: NodeId, alg: A, max_pulse: u64) -> Self {
        let slots = max_pulse as usize + 1;
        AlphaSynchronizer {
            me,
            neighbors: graph.neighbors(me),
            alg,
            max_pulse,
            current: 0,
            unacked: vec![0; slots],
            neighbor_safe: vec![0; slots],
            announced: vec![false; slots],
            received: (0..slots).map(|_| Vec::new()).collect(),
            sent_at: vec![false; slots],
        }
    }

    /// The wrapped algorithm (for extracting outputs).
    pub fn algorithm(&self) -> &A {
        &self.alg
    }

    fn dispatch(
        &mut self,
        pulse: u64,
        outbox: Vec<(NodeId, A::Msg)>,
        ctx: &mut Ctx<AlphaMsg<A::Msg>>,
    ) {
        self.sent_at[pulse as usize] = !outbox.is_empty();
        self.unacked[pulse as usize] += outbox.len() as u32;
        for (to, payload) in outbox {
            ctx.send_with(to, AlphaMsg::Alg { pulse, payload }, pulse, MessageClass::Algorithm);
        }
        self.try_announce(pulse, ctx);
    }

    fn try_announce(&mut self, pulse: u64, ctx: &mut Ctx<AlphaMsg<A::Msg>>) {
        if self.announced[pulse as usize] || self.unacked[pulse as usize] > 0 {
            return;
        }
        self.announced[pulse as usize] = true;
        for &u in self.neighbors {
            ctx.send_with(u, AlphaMsg::Safe { pulse }, pulse, MessageClass::Control);
        }
        self.try_advance(ctx);
    }

    fn try_advance(&mut self, ctx: &mut Ctx<AlphaMsg<A::Msg>>) {
        loop {
            let p = self.current;
            if p >= self.max_pulse {
                return;
            }
            let own_safe = self.announced[p as usize];
            let all_neighbors = self.neighbor_safe[p as usize] as usize == self.neighbors.len();
            if !(own_safe && all_neighbors) {
                return;
            }
            // Generate pulse p + 1.
            self.current = p + 1;
            let mut batch = std::mem::take(&mut self.received[p as usize]);
            let triggered = !batch.is_empty() || self.sent_at[p as usize];
            let outbox = if triggered {
                canonical_batch(&mut batch);
                let mut pctx = PulseCtx::new(self.me);
                self.alg.on_pulse(&batch, &mut pctx);
                pctx.take_outbox()
            } else {
                Vec::new()
            };
            self.dispatch(p + 1, outbox, ctx);
        }
    }
}

impl<A: EventDriven> Protocol for AlphaSynchronizer<'_, A> {
    type Message = AlphaMsg<A::Msg>;

    fn on_start(&mut self, ctx: &mut Ctx<Self::Message>) {
        let mut pctx = PulseCtx::new(self.me);
        self.alg.on_init(&mut pctx);
        let outbox = pctx.take_outbox();
        self.dispatch(0, outbox, ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Message, ctx: &mut Ctx<Self::Message>) {
        match msg {
            AlphaMsg::Alg { pulse, payload } => {
                self.received[pulse as usize].push((from, payload));
                ctx.send_with(from, AlphaMsg::Ack { pulse }, pulse, MessageClass::Control);
            }
            AlphaMsg::Ack { pulse } => {
                let c = &mut self.unacked[pulse as usize];
                *c = c.saturating_sub(1);
                self.try_announce(pulse, ctx);
            }
            AlphaMsg::Safe { pulse } => {
                self.neighbor_safe[pulse as usize] += 1;
                self.try_advance(ctx);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.alg.output().is_some()
    }
}
