//! Awerbuch's α synchronizer (Appendix A): the trivial pulse-generation scheme.
//!
//! Every node generates every pulse `1, 2, 3, …`. A node is *safe* for pulse `p` once
//! all its pulse-`p` algorithm messages have been acknowledged; it then tells all its
//! neighbors, and it generates pulse `p + 1` once it is safe for `p` and has heard
//! that every neighbor is safe for `p`. The time overhead is `O(1)` per pulse but the
//! message overhead is `Θ(m)` per pulse — the baseline the paper's synchronizer
//! improves on.

use ds_graph::{Graph, NodeId};
use ds_netsim::event_driven::{canonical_batch, EventDriven, PulseCtx};
use ds_netsim::metrics::MessageClass;
use ds_netsim::protocol::{Ctx, Protocol};
use std::collections::BTreeMap;

/// Messages of the α synchronizer.
#[derive(Clone, Debug)]
pub enum AlphaMsg<M> {
    /// An algorithm message of pulse `pulse`.
    Alg { pulse: u64, payload: M },
    /// Acknowledgment of an algorithm message of pulse `pulse`.
    Ack { pulse: u64 },
    /// The sender is safe for pulse `pulse`.
    Safe { pulse: u64 },
}

/// Per-node α synchronizer wrapping an event-driven algorithm.
#[derive(Debug)]
pub struct AlphaSynchronizer<A: EventDriven> {
    me: NodeId,
    neighbors: Vec<NodeId>,
    alg: A,
    max_pulse: u64,
    /// The pulse whose messages this node has already sent.
    current: u64,
    /// Outstanding acknowledgments per pulse.
    unacked: BTreeMap<u64, usize>,
    /// Neighbors' safety notifications per pulse.
    neighbor_safe: BTreeMap<u64, usize>,
    /// Whether this node has announced its own safety for a pulse.
    announced: BTreeMap<u64, bool>,
    /// Algorithm messages received, keyed by the sender's pulse.
    received: BTreeMap<u64, Vec<(NodeId, A::Msg)>>,
    /// Whether this node sent any algorithm messages at each pulse.
    sent_at: BTreeMap<u64, bool>,
}

impl<A: EventDriven> AlphaSynchronizer<A> {
    /// Creates the α synchronizer instance for node `me`, simulating `max_pulse`
    /// pulses of `alg`.
    pub fn new(graph: &Graph, me: NodeId, alg: A, max_pulse: u64) -> Self {
        AlphaSynchronizer {
            me,
            neighbors: graph.neighbors(me).to_vec(),
            alg,
            max_pulse,
            current: 0,
            unacked: BTreeMap::new(),
            neighbor_safe: BTreeMap::new(),
            announced: BTreeMap::new(),
            received: BTreeMap::new(),
            sent_at: BTreeMap::new(),
        }
    }

    /// The wrapped algorithm (for extracting outputs).
    pub fn algorithm(&self) -> &A {
        &self.alg
    }

    fn dispatch(
        &mut self,
        pulse: u64,
        outbox: Vec<(NodeId, A::Msg)>,
        ctx: &mut Ctx<AlphaMsg<A::Msg>>,
    ) {
        self.sent_at.insert(pulse, !outbox.is_empty());
        *self.unacked.entry(pulse).or_insert(0) += outbox.len();
        for (to, payload) in outbox {
            ctx.send_with(to, AlphaMsg::Alg { pulse, payload }, pulse, MessageClass::Algorithm);
        }
        self.try_announce(pulse, ctx);
    }

    fn try_announce(&mut self, pulse: u64, ctx: &mut Ctx<AlphaMsg<A::Msg>>) {
        if self.announced.get(&pulse).copied().unwrap_or(false) {
            return;
        }
        if self.unacked.get(&pulse).copied().unwrap_or(0) > 0 {
            return;
        }
        self.announced.insert(pulse, true);
        for &u in &self.neighbors {
            ctx.send_with(u, AlphaMsg::Safe { pulse }, pulse, MessageClass::Control);
        }
        self.try_advance(ctx);
    }

    fn try_advance(&mut self, ctx: &mut Ctx<AlphaMsg<A::Msg>>) {
        loop {
            let p = self.current;
            if p >= self.max_pulse {
                return;
            }
            let own_safe = self.announced.get(&p).copied().unwrap_or(false);
            let all_neighbors =
                self.neighbor_safe.get(&p).copied().unwrap_or(0) == self.neighbors.len();
            if !(own_safe && all_neighbors) {
                return;
            }
            // Generate pulse p + 1.
            self.current = p + 1;
            let mut batch = self.received.remove(&p).unwrap_or_default();
            let triggered = !batch.is_empty() || self.sent_at.get(&p).copied().unwrap_or(false);
            let outbox = if triggered {
                canonical_batch(&mut batch);
                let mut pctx = PulseCtx::new(self.me);
                self.alg.on_pulse(&batch, &mut pctx);
                pctx.take_outbox()
            } else {
                Vec::new()
            };
            self.dispatch(p + 1, outbox, ctx);
        }
    }
}

impl<A: EventDriven> Protocol for AlphaSynchronizer<A> {
    type Message = AlphaMsg<A::Msg>;

    fn on_start(&mut self, ctx: &mut Ctx<Self::Message>) {
        let mut pctx = PulseCtx::new(self.me);
        self.alg.on_init(&mut pctx);
        let outbox = pctx.take_outbox();
        self.dispatch(0, outbox, ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Message, ctx: &mut Ctx<Self::Message>) {
        match msg {
            AlphaMsg::Alg { pulse, payload } => {
                self.received.entry(pulse).or_default().push((from, payload));
                ctx.send_with(from, AlphaMsg::Ack { pulse }, pulse, MessageClass::Control);
            }
            AlphaMsg::Ack { pulse } => {
                if let Some(c) = self.unacked.get_mut(&pulse) {
                    *c = c.saturating_sub(1);
                }
                self.try_announce(pulse, ctx);
            }
            AlphaMsg::Safe { pulse } => {
                *self.neighbor_safe.entry(pulse).or_insert(0) += 1;
                self.try_advance(ctx);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.alg.output().is_some()
    }
}
