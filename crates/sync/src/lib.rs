//! The paper's primary contribution: a deterministic distributed synchronizer with
//! polylogarithmic time and message complexity overheads, plus the classical α and β
//! baselines of Awerbuch.
//!
//! * [`pulse`] — pulse levels, `prev(·)` and stage bookkeeping (Definitions 4.3–4.5).
//! * [`registration`] — the cluster registration abstraction (Section 3.2).
//! * [`synchronizer`] — the deterministic synchronizer for event-driven algorithms
//!   (Sections 4–5, Theorems 5.2–5.5).
//! * [`alpha`], [`beta`] — the classical baselines (Appendix A), used for the
//!   overhead-comparison experiments.
//! * [`executor`] — the [`executor::Synchronizer`] trait: one
//!   object-safe pipeline through which the deterministic synchronizer, both
//!   baselines and the lock-step ground truth all execute.
//! * [`session`] — the [`session::Session`] builder, the single entry
//!   point for running and comparing event-driven algorithms.
//! * [`service`] — simulation-as-a-service: [`service::SessionPool`] runs
//!   batches of independent requests concurrently, amortizing cover
//!   construction (a [`service::CoverCache`]) and engine allocations (a
//!   recycling bank) across them, with every pooled run bit-identical to its
//!   standalone session.
//! * [`event_driven`] — re-export of the event-driven algorithm interface from
//!   `ds-netsim`, so downstream crates only need this crate.
//!
//! # Example
//!
//! Wrap a synchronous flooding algorithm and run it asynchronously through
//! [`session::Session`]; see `examples/quickstart.rs` in the repository root for a
//! complete program and `DESIGN.md` for the theorem→module map.

#![forbid(unsafe_code)]

pub mod alpha;
pub mod beta;
pub mod executor;
pub mod flat;
pub mod pulse;
pub mod registration;
pub mod service;
pub mod session;
pub mod synchronizer;

/// Re-export of the event-driven algorithm interface.
pub mod event_driven {
    pub use ds_netsim::event_driven::{canonical_batch, EventDriven, PulseCtx};
}

pub use executor::{
    AlphaExecutor, BetaExecutor, DetExecutor, DirectExecutor, ExecutionEnv, RunHealth,
    SynchronizedRun, Synchronizer,
};
pub use service::{CoverCache, ServiceRequest, SessionPool, SynchronizerParams};
pub use session::{ComparisonReport, Session, SessionError, SyncKind};
pub use synchronizer::{collect_outputs, DetSynchronizer, SyncMsg, SynchronizerConfig};
