//! The deterministic distributed synchronizer (Sections 4 and 5 of the paper).
//!
//! [`DetSynchronizer`] wraps an event-driven synchronous algorithm
//! ([`EventDriven`]) and runs it in the asynchronous model with polylogarithmic time
//! and message overheads, given a layered sparse cover (the Theorem 5.3 setting).
//!
//! # How it works
//!
//! Every physical node simulates *virtual nodes* `(v, p)` — one for each pulse `p`
//! at which `v` sends algorithm messages. Virtual nodes form an *execution forest*:
//! the parent of `(v, p)` is a virtual node of pulse `p − 1` from which `v` received
//! a triggering message (or `(v, p − 1)` itself). The synchronizer ensures that a
//! node evaluates the algorithm's pulse-`p` behavior only when it is guaranteed to
//! have received *all* pulse-`≤ p − 1` algorithm messages destined to it (Lemma 5.1),
//! so the asynchronous execution produces exactly the synchronous execution's
//! messages and outputs (Theorem 5.2).
//!
//! The guarantee is enforced stage by stage. For each pulse `p ≥ 1`:
//!
//! * nodes between pulses `prev(prev(p))` and `p` collect *`p`-safety* of their
//!   execution subtrees (all relevant descendants have sent their messages and had
//!   them confirmed) via a convergecast along the execution forest,
//! * *anchor* nodes of pulse `prev(prev(p))` register in every cluster of the
//!   `2^{ℓ(p)+5}`-cover containing them (using the Section 3.2 registration
//!   abstraction) once they are `prev(p)`-safe, withholding their own `prev(p)`-safety
//!   report until the registration is confirmed, and deregister once `p`-safe,
//! * cluster roots issue `Go-Ahead(p)`s once all registered anchors have
//!   deregistered; anchors that have collected Go-Aheads from all their clusters
//!   release pulse `p` down the execution forest, and pulse-`p − 1` virtual nodes
//!   forward the release to the recipients of their messages,
//! * stages anchored at pulse 0 (`prev(prev(p)) = 0`, the multi-source base case of
//!   Section 4.2) use full-cluster barriers instead of the registration abstraction:
//!   initiators may send only after a cluster-wide "all initiators present" barrier,
//!   and `Go-Ahead(p)` is broadcast once every initiator in the cluster is `p`-safe.
//!
//! # Deviations from the paper
//!
//! DESIGN.md §3 records two deliberate deviations, both conservative: the safety
//! definition is the well-founded variant needed for general (non-BFS) event-driven
//! algorithms, and anchors register whenever they have any execution-tree child
//! (the paper's `prev(p)`-emptiness test is not evaluable at that moment for general
//! algorithms). Both keep the correctness invariants; the measured overheads remain
//! polylogarithmic (see DESIGN.md §4 and the `exp_*` binaries in `ds-bench`).

use crate::flat::{FlatMap, FlatSet, PulseSet};
use crate::pulse;
use crate::registration::{RegAction, RegMsg, RegistrationInstance, TreePosition};
use ds_covers::builder::build_synchronizer_cover;
use ds_covers::{ClusterId, LayeredSparseCover};
use ds_graph::{metrics, Graph, NodeId};
use ds_netsim::event_driven::{canonical_batch, EventDriven, PulseCtx};
use ds_netsim::metrics::MessageClass;
use ds_netsim::protocol::{Ctx, Protocol};
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

/// Messages exchanged by the synchronizer. `M` is the wrapped algorithm's message
/// type.
#[derive(Clone, Debug)]
pub enum SyncMsg<M> {
    /// An algorithm message sent by the sender's virtual node of pulse `pulse`.
    Alg { pulse: u64, payload: M },
    /// Receipt confirmation for an algorithm message of pulse `pulse`.
    AlgAck { pulse: u64 },
    /// The sender was triggered at pulse `pulse` and reports whether it created a
    /// virtual node and whether the recipient's pulse-`pulse − 1` virtual node was
    /// chosen as its parent.
    Decision { pulse: u64, created: bool, chosen_parent: bool },
    /// Safety report: the sender's virtual node of pulse `sender_pulse` reports that
    /// its subtree is `stage`-safe to its execution-tree parent.
    Safe { stage: u64, sender_pulse: u64 },
    /// Go-Ahead for `stage` travelling down the execution tree, from the sender's
    /// virtual node of pulse `sender_pulse` to the recipient's virtual node of pulse
    /// `sender_pulse + 1`.
    GoAheadExec { stage: u64, sender_pulse: u64 },
    /// Go-Ahead for `stage` forwarded by a pulse-`stage − 1` virtual node to a
    /// recipient of its algorithm messages: the recipient may now evaluate pulse
    /// `stage`.
    GoAheadRecipient { stage: u64 },
    /// A registration-abstraction message for (stage, cluster).
    Reg { stage: u64, cluster: u32, msg: RegMsg },
    /// Base-stage barrier, phase A (all initiators present), travelling up/down the
    /// cluster tree of cluster `cluster` in cover layer `cover_idx`.
    BarrierAUp { cover_idx: u32, cluster: u32 },
    /// Phase A completion broadcast.
    BarrierADown { cover_idx: u32, cluster: u32 },
    /// Base-stage barrier, phase B (all initiators `stage`-safe), travelling up.
    BarrierBUp { stage: u64, cluster: u32 },
    /// Phase B completion broadcast: the cluster's Go-Ahead for the base stage.
    BarrierBDown { stage: u64, cluster: u32 },
}

/// Precomputed per-stage data.
#[derive(Clone, Debug, PartialEq, Eq)]
struct StageInfo {
    prev: u64,
    prev_prev: u64,
    cover_idx: usize,
}

/// Shared configuration of a synchronizer run: the pulse bound, the layered sparse
/// cover, and precomputed stage tables.
///
/// All per-stage index sets the synchronizer consults on its hot path
/// (`stages_tracked`, `stages_with_prev`, `base_stages`)
/// are precomputed here once and served as slices — total table size is
/// `O(T log T)` by Lemma 4.14.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynchronizerConfig {
    /// Upper bound on the wrapped algorithm's synchronous time complexity `T(A)`.
    pub max_pulse: u64,
    /// The layered sparse cover used by all stages.
    pub covers: LayeredSparseCover,
    stages: Vec<StageInfo>,
    base_cover_levels: Vec<usize>,
    /// Base stages (anchored at pulse 0), ascending.
    base_stage_list: Vec<u64>,
    /// `tracked[q]`: stages `s` with `prev(prev(s)) ≤ q < s`, ascending.
    tracked: Vec<Vec<u64>>,
    /// `with_prev[s]`: non-base stages `p` with `prev(p) = s`, ascending.
    with_prev: Vec<Vec<u64>>,
}

impl SynchronizerConfig {
    /// Builds a configuration for `graph`, constructing the layered sparse cover
    /// internally (the "without being given a cover" setting; the construction is
    /// centralized, see DESIGN.md §3).
    ///
    /// The cover only needs an *upper bound* on the graph diameter (the top layer
    /// must reach radius ≥ diameter so one cluster spans the whole graph), so this
    /// uses the two-BFS double-sweep bound of [`metrics::diameter_bounds`] instead
    /// of the exact `O(n·m)` all-pairs diameter. Whenever `64·T(A)` dominates the
    /// bound — every shipped workload, since `T(A) ≥ ecc(source) ≥ diameter/2` —
    /// the produced cover is identical to the exact-diameter construction.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or disconnected, or `max_pulse == 0`.
    pub fn build(graph: &Graph, max_pulse: u64) -> Arc<Self> {
        assert!(max_pulse > 0, "the pulse bound must be positive");
        let (_, diameter_upper) =
            metrics::diameter_bounds(graph).expect("synchronizer requires a connected graph");
        let covers = build_synchronizer_cover(graph, max_pulse as usize, diameter_upper.max(1));
        Self::with_covers(covers, max_pulse)
    }

    /// Builds a configuration from an existing layered sparse cover (the Theorem 5.3
    /// "given a layered sparse `O(T(A))`-cover" setting).
    ///
    /// # Panics
    ///
    /// Panics if `max_pulse == 0`.
    pub fn with_covers(covers: LayeredSparseCover, max_pulse: u64) -> Arc<Self> {
        assert!(max_pulse > 0, "the pulse bound must be positive");
        let mut stages = Vec::with_capacity(max_pulse as usize + 1);
        stages.push(StageInfo { prev: 0, prev_prev: 0, cover_idx: 0 }); // unused slot 0
        let mut base_levels = BTreeSet::new();
        let mut base_stage_list = Vec::new();
        let mut tracked = vec![Vec::new(); max_pulse as usize + 1];
        let mut with_prev = vec![Vec::new(); max_pulse as usize + 1];
        for p in 1..=max_pulse {
            let radius = 1usize << pulse::cover_exponent(p).min(60);
            let cover_idx = (0..covers.layers())
                .find(|&j| covers.level(j).radius >= radius)
                .unwrap_or(covers.layers() - 1);
            let info =
                StageInfo { prev: pulse::prev(p), prev_prev: pulse::prev_prev(p), cover_idx };
            if info.prev_prev == 0 {
                base_levels.insert(cover_idx);
                base_stage_list.push(p);
            } else {
                with_prev[info.prev as usize].push(p);
            }
            for q in info.prev_prev..p {
                tracked[q as usize].push(p);
            }
            stages.push(info);
        }
        Arc::new(SynchronizerConfig {
            max_pulse,
            covers,
            stages,
            base_cover_levels: base_levels.into_iter().collect(),
            base_stage_list,
            tracked,
            with_prev,
        })
    }

    fn stage(&self, p: u64) -> &StageInfo {
        &self.stages[p as usize]
    }

    /// The cover layer index used by stage `p`.
    fn cover_idx(&self, p: u64) -> usize {
        self.stage(p).cover_idx
    }

    /// Base stages (anchored at pulse 0) up to the pulse bound.
    fn base_stages(&self) -> &[u64] {
        &self.base_stage_list
    }

    /// Stages `p` with `prev(p) == s` (their registration is triggered by `s`-safety).
    fn stages_with_prev(&self, s: u64) -> &[u64] {
        &self.with_prev[s as usize]
    }

    /// Stages tracked (safety-wise) by a virtual node of pulse `q`.
    fn stages_tracked(&self, q: u64) -> &[u64] {
        &self.tracked[q as usize]
    }

    /// Tree position of node `v` in cluster `cluster` of cover layer `cover_idx`.
    fn tree_position(&self, cover_idx: usize, cluster: ClusterId, v: NodeId) -> TreePosition {
        let c = self.covers.level(cover_idx).cluster(cluster);
        TreePosition { parent: c.parent_of(v), children: c.children_of(v).to_vec() }
    }
}

/// Per-stage safety state at one virtual node.
#[derive(Clone, Debug, Default)]
struct VStage {
    safe_children: FlatSet<NodeId>,
    safe_self_child: bool,
    subtree_safe: bool,
    reported_up: bool,
    gate_pending: usize,
    gate_started: bool,
}

/// Anchor bookkeeping for one stage anchored at this virtual node.
#[derive(Clone, Debug)]
struct AnchorStage {
    clusters: Vec<ClusterId>,
    registered: usize,
    deregistered: bool,
    dereg_requested: bool,
    freed: usize,
    goahead_done: bool,
}

/// One virtual node `(v, pulse)`. All keyed sub-state is stored in flat sorted
/// vectors — the key sets (tracked stages, execution-tree children) are small.
#[derive(Clone, Debug)]
struct VNode<M> {
    parent_remote: Option<NodeId>,
    self_parent: bool,
    sent_all: bool,
    recipients: Vec<NodeId>,
    unacked: usize,
    undecided: usize,
    children_remote: FlatSet<NodeId>,
    child_self: bool,
    complete: bool,
    goaheads: FlatSet<u64>,
    stages: FlatMap<u64, VStage>,
    anchored: FlatMap<u64, AnchorStage>,
    pending_sends: Vec<(NodeId, M)>,
}

impl<M> VNode<M> {
    fn has_children(&self) -> bool {
        self.child_self || !self.children_remote.is_empty()
    }
}

/// Barrier state for one (cover layer, cluster): phase A. Each cluster-tree child
/// reports up exactly once, so a countdown suffices.
#[derive(Clone, Debug)]
struct BarrierA {
    children_left: usize,
    sent_up: bool,
}

/// Barrier state for one (stage, cluster): phase B.
#[derive(Clone, Debug)]
struct BarrierB {
    children_left: usize,
    sent_up: bool,
}

/// Internal work items, processed by [`DetSynchronizer::drain_work`].
#[derive(Clone, Debug)]
enum Work {
    RecomputeComplete(u64),
    RecomputeStage(u64, u64),
    GoAhead(u64, u64),
    ReportSafeInternal { parent_pulse: u64, stage: u64 },
    TryProcess,
    BarrierBCheck(u64),
}

/// The synchronizer protocol run by every node: wraps one instance of the event-driven
/// algorithm `A` and simulates it in the asynchronous model.
#[derive(Debug)]
pub struct DetSynchronizer<A: EventDriven> {
    me: NodeId,
    cfg: Arc<SynchronizerConfig>,
    alg: A,
    /// Algorithm messages received, keyed by the *sender's* pulse.
    received: FlatMap<u64, Vec<(NodeId, A::Msg)>>,
    /// Pulses at which this node has been triggered but not yet processed.
    pending_triggers: PulseSet,
    processed: PulseSet,
    /// Largest pulse processed so far (for the ordering-violation diagnostic).
    max_processed: Option<u64>,
    /// Stages for which this physical node has received a recipient-level Go-Ahead.
    goahead_recv: PulseSet,
    vnodes: FlatMap<u64, VNode<A::Msg>>,
    reg: FlatMap<(u64, u32), RegistrationInstance>,
    barrier_a: FlatMap<(u32, u32), BarrierA>,
    barrier_b: FlatMap<(u64, u32), BarrierB>,
    /// Phase-A confirmations still missing before pulse-0 messages may be sent.
    init_barrier_pending: usize,
    /// Phase-B confirmations received per base stage.
    base_goahead_recv: FlatMap<u64, usize>,
    is_initiator: bool,
    work: VecDeque<Work>,
    /// Diagnostic: algorithm messages that arrived out of pulse order (must stay 0).
    ordering_violations: u64,
}

type SCtx<A> = Ctx<SyncMsg<<A as EventDriven>::Msg>>;

impl<A: EventDriven> DetSynchronizer<A> {
    /// Creates the synchronizer instance for node `me`, wrapping `alg`.
    pub fn new(me: NodeId, alg: A, cfg: Arc<SynchronizerConfig>) -> Self {
        let bound = cfg.max_pulse + 1;
        DetSynchronizer {
            me,
            cfg,
            alg,
            received: FlatMap::new(),
            pending_triggers: PulseSet::with_bound(bound),
            processed: PulseSet::with_bound(bound),
            max_processed: None,
            goahead_recv: PulseSet::with_bound(bound),
            vnodes: FlatMap::new(),
            reg: FlatMap::new(),
            barrier_a: FlatMap::new(),
            barrier_b: FlatMap::new(),
            init_barrier_pending: 0,
            base_goahead_recv: FlatMap::new(),
            is_initiator: false,
            work: VecDeque::new(),
            ordering_violations: 0,
        }
    }

    /// The wrapped algorithm instance (for extracting outputs after a run).
    pub fn algorithm(&self) -> &A {
        &self.alg
    }

    /// Number of algorithm messages that arrived out of pulse order (0 in a correct
    /// execution; exposed for the test suite).
    pub fn ordering_violations(&self) -> u64 {
        self.ordering_violations
    }

    /// Diagnostic dump of the node's stall-relevant state (for debugging deadlocks).
    #[doc(hidden)]
    pub fn debug_stall(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "node {}: initiator={} pending_triggers={:?} goahead_recv={:?} processed={:?}",
            self.me,
            self.is_initiator,
            self.pending_triggers.iter().collect::<Vec<_>>(),
            self.goahead_recv.iter().collect::<Vec<_>>(),
            self.processed.iter().collect::<Vec<_>>()
        );
        let _ = writeln!(
            s,
            "  init_barrier_pending={} base_goahead_recv={:?}",
            self.init_barrier_pending,
            self.base_goahead_recv.iter().map(|(k, v)| (k, *v)).collect::<Vec<_>>()
        );
        for (p, v) in self.vnodes.iter() {
            let _ = writeln!(
                s,
                "  vnode p={p}: complete={} sent_all={} unacked={} undecided={} child_self={} children_remote={:?} parent_remote={:?} self_parent={} goaheads={:?}",
                v.complete, v.sent_all, v.unacked, v.undecided, v.child_self,
                v.children_remote.iter().collect::<Vec<_>>(),
                v.parent_remote, v.self_parent,
                v.goaheads.iter().collect::<Vec<_>>()
            );
            for (st, vs) in v.stages.iter() {
                let _ = writeln!(
                    s,
                    "    stage {st}: subtree_safe={} reported_up={} gate_pending={} gate_started={} safe_self_child={} safe_children={:?}",
                    vs.subtree_safe, vs.reported_up, vs.gate_pending, vs.gate_started,
                    vs.safe_self_child,
                    vs.safe_children.iter().collect::<Vec<_>>()
                );
            }
            for (st, a) in v.anchored.iter() {
                let _ = writeln!(
                    s,
                    "    anchored {st}: clusters={:?} registered={} deregistered={} dereg_requested={} freed={} goahead_done={}",
                    a.clusters, a.registered, a.deregistered, a.dereg_requested, a.freed,
                    a.goahead_done
                );
            }
        }
        for ((st, cl), inst) in self.reg.iter() {
            let _ = writeln!(s, "  reg ({st},{cl}): {inst:?}");
        }
        s
    }

    // ----- helpers ---------------------------------------------------------------

    fn send(
        &self,
        ctx: &mut SCtx<A>,
        to: NodeId,
        msg: SyncMsg<A::Msg>,
        prio: u64,
        class: MessageClass,
    ) {
        ctx.send_with(to, msg, prio, class);
    }

    fn member_clusters(&self, stage: u64) -> Vec<ClusterId> {
        let idx = self.cfg.cover_idx(stage);
        self.cfg.covers.level(idx).clusters_of(self.me).to_vec()
    }

    fn reg_instance(&mut self, stage: u64, cluster: ClusterId) -> &mut RegistrationInstance {
        let cfg = Arc::clone(&self.cfg);
        let me = self.me;
        self.reg.get_mut_or_insert_with((stage, cluster.0 as u32), || {
            let idx = cfg.cover_idx(stage);
            RegistrationInstance::new(cfg.tree_position(idx, cluster, me))
        })
    }

    fn handle_reg_actions(
        &mut self,
        ctx: &mut SCtx<A>,
        stage: u64,
        cluster: ClusterId,
        actions: Vec<RegAction>,
    ) {
        for a in actions {
            match a {
                RegAction::Send { to, msg } => {
                    self.send(
                        ctx,
                        to,
                        SyncMsg::Reg { stage, cluster: cluster.0 as u32, msg },
                        stage,
                        MessageClass::Control,
                    );
                }
                RegAction::Registered => self.on_registration_confirmed(stage),
                RegAction::Free => self.on_registration_free(stage),
            }
        }
    }

    fn on_registration_confirmed(&mut self, stage: u64) {
        let anchor_pulse = self.cfg.stage(stage).prev_prev;
        let gate_stage = self.cfg.stage(stage).prev;
        let mut fully_registered = false;
        if let Some(v) = self.vnodes.get_mut(anchor_pulse) {
            if let Some(a) = v.anchored.get_mut(stage) {
                a.registered += 1;
                fully_registered = a.registered == a.clusters.len();
            }
            let st = v.stages.get_mut_or_default(gate_stage);
            if st.gate_pending > 0 {
                st.gate_pending -= 1;
            }
        }
        self.work.push_back(Work::RecomputeStage(anchor_pulse, gate_stage));
        if fully_registered {
            // A deregistration may have been requested while registrations were in
            // flight; re-evaluate the anchor's own stage safety to trigger it.
            self.work.push_back(Work::RecomputeStage(anchor_pulse, stage));
        }
    }

    fn on_registration_free(&mut self, stage: u64) {
        let anchor_pulse = self.cfg.stage(stage).prev_prev;
        let mut done = false;
        if let Some(v) = self.vnodes.get_mut(anchor_pulse) {
            if let Some(a) = v.anchored.get_mut(stage) {
                a.freed += 1;
                if a.deregistered && a.freed == a.clusters.len() && !a.goahead_done {
                    a.goahead_done = true;
                    done = true;
                }
            }
        }
        if done {
            self.work.push_back(Work::GoAhead(anchor_pulse, stage));
        }
    }

    // ----- pulse processing -------------------------------------------------------

    fn try_process(&mut self, ctx: &mut SCtx<A>) {
        loop {
            let Some(p) = self.pending_triggers.min() else { return };
            if p > self.cfg.max_pulse {
                // The configured bound was too small; stop simulating further pulses.
                return;
            }
            if !self.goahead_recv.contains(p) {
                return;
            }
            self.pending_triggers.remove(p);
            self.process_pulse(ctx, p);
        }
    }

    fn process_pulse(&mut self, ctx: &mut SCtx<A>, p: u64) {
        debug_assert!(!self.processed.contains(p));
        let mut batch = self.received.remove(p - 1).unwrap_or_default();
        canonical_batch(&mut batch);
        let mut senders: Vec<NodeId> = batch.iter().map(|(s, _)| *s).collect();
        senders.dedup();

        let mut pctx = PulseCtx::new(self.me);
        self.alg.on_pulse(&batch, &mut pctx);
        let outbox = pctx.take_outbox();
        let created = !outbox.is_empty();
        let self_parent_available = self.vnodes.get(p - 1).is_some();

        // Notify every pulse-(p-1) sender of the decision.
        let chosen_remote =
            if created && !self_parent_available { senders.first().copied() } else { None };
        for &s in &senders {
            let msg =
                SyncMsg::Decision { pulse: p, created, chosen_parent: Some(s) == chosen_remote };
            self.send(ctx, s, msg, p, MessageClass::Control);
        }

        if created {
            let mut recipients: Vec<NodeId> = outbox.iter().map(|(to, _)| *to).collect();
            recipients.sort();
            recipients.dedup();
            let vnode = VNode {
                parent_remote: chosen_remote,
                self_parent: self_parent_available,
                sent_all: true,
                recipients: recipients.clone(),
                unacked: outbox.len(),
                undecided: recipients.len() + 1,
                children_remote: FlatSet::new(),
                child_self: false,
                complete: false,
                goaheads: FlatSet::new(),
                stages: FlatMap::new(),
                anchored: FlatMap::new(),
                pending_sends: Vec::new(),
            };
            self.vnodes.insert(p, vnode);
            for (to, payload) in outbox {
                self.send(ctx, to, SyncMsg::Alg { pulse: p, payload }, p, MessageClass::Algorithm);
            }
            // Having sent at pulse p, this node is triggered at pulse p + 1.
            self.pending_triggers.insert(p + 1);
        }

        // Resolve the self-decision at the pulse-(p-1) virtual node.
        let mut parent_goaheads: Vec<u64> = Vec::new();
        if let Some(parent) = self.vnodes.get_mut(p - 1) {
            parent.undecided = parent.undecided.saturating_sub(1);
            if created && self_parent_available {
                parent.child_self = true;
                parent_goaheads = parent.goaheads.iter().filter(|&s| s > p).collect();
            }
            self.work.push_back(Work::RecomputeComplete(p - 1));
        }
        for s in parent_goaheads {
            self.work.push_back(Work::GoAhead(p, s));
        }

        self.processed.insert(p);
        self.max_processed = Some(self.max_processed.map_or(p, |m| m.max(p)));
        if created {
            // Newly created virtual nodes may already be safe for near stages.
            for &s in self.cfg.stages_tracked(p) {
                self.work.push_back(Work::RecomputeStage(p, s));
            }
        }
    }

    // ----- safety machinery -------------------------------------------------------

    fn recompute_complete(&mut self, q: u64) {
        let Some(v) = self.vnodes.get_mut(q) else { return };
        let complete = v.sent_all && v.unacked == 0 && v.undecided == 0;
        if complete && !v.complete {
            v.complete = true;
            for &s in self.cfg.stages_tracked(q) {
                self.work.push_back(Work::RecomputeStage(q, s));
            }
        } else if !complete {
            // An ack may still flip pulse-(s-1) safety even before completeness.
            for &s in self.cfg.stages_tracked(q) {
                if q == s - 1 {
                    self.work.push_back(Work::RecomputeStage(q, s));
                }
            }
        }
    }

    fn recompute_stage(&mut self, ctx: &mut SCtx<A>, q: u64, s: u64) {
        if s == 0 || s > self.cfg.max_pulse {
            return;
        }
        let info_prev = self.cfg.stage(s).prev;
        let info_anchor = self.cfg.stage(s).prev_prev;
        if q < info_anchor || q > s - 1 {
            return;
        }
        // Phase 1: determine whether the subtree just became s-safe, under a scoped
        // borrow of the virtual node.
        let became_safe;
        let has_children;
        {
            let Some(v) = self.vnodes.get_mut(q) else { return };
            let safe = if q == s - 1 {
                v.sent_all && v.unacked == 0
            } else {
                let st = v.stages.get_mut_or_default(s);
                v.complete
                    && (!v.child_self || st.safe_self_child)
                    && v.children_remote.iter().all(|c| st.safe_children.contains(c))
            };
            let st = v.stages.get_mut_or_default(s);
            if !safe || st.subtree_safe {
                return;
            }
            st.subtree_safe = true;
            became_safe = true;
            has_children = v.has_children();
        }
        debug_assert!(became_safe);

        // Phase 2: if this virtual node is the anchor of stages whose registration is
        // triggered by s-safety (q == prev(s) > 0), start those registrations and gate
        // the upward report on their confirmation.
        if q == info_prev && q > 0 {
            let gate_stages: Vec<u64> = self.cfg.stages_with_prev(s).to_vec();
            if has_children && !gate_stages.is_empty() {
                let mut plan: Vec<(u64, ClusterId)> = Vec::new();
                for &p in &gate_stages {
                    for c in self.member_clusters(p) {
                        plan.push((p, c));
                    }
                }
                let already_started = {
                    let v = self.vnodes.get_mut(q).expect("vnode exists");
                    let st = v.stages.get_mut_or_default(s);
                    let started = st.gate_started;
                    if !started {
                        st.gate_started = true;
                        st.gate_pending = plan.len();
                        for &p in &gate_stages {
                            let clusters: Vec<ClusterId> =
                                plan.iter().filter(|(pp, _)| *pp == p).map(|(_, c)| *c).collect();
                            v.anchored.get_mut_or_insert_with(p, || AnchorStage {
                                clusters,
                                registered: 0,
                                deregistered: false,
                                dereg_requested: false,
                                freed: 0,
                                goahead_done: false,
                            });
                        }
                    }
                    started
                };
                if !already_started {
                    for (p, c) in plan {
                        let mut actions = Vec::new();
                        self.reg_instance(p, c).register(&mut actions);
                        self.handle_reg_actions(ctx, p, c, actions);
                    }
                }
            }
        }

        // Phase 3: if this virtual node is the anchor of stage s itself, s-safety is
        // the deregistration trigger (or, for base stages, the phase-B contribution).
        if q == info_anchor {
            if info_anchor == 0 && self.cfg.stage(s).prev_prev == 0 {
                self.work.push_back(Work::BarrierBCheck(s));
            }
            let mut dereg_plan: Vec<(u64, ClusterId)> = Vec::new();
            if let Some(v) = self.vnodes.get_mut(q) {
                if let Some(a) = v.anchored.get_mut(s) {
                    a.dereg_requested = true;
                    if a.registered == a.clusters.len() && !a.deregistered {
                        a.deregistered = true;
                        dereg_plan = a.clusters.iter().map(|&c| (s, c)).collect();
                    }
                }
            }
            for (p, c) in dereg_plan {
                let mut actions = Vec::new();
                self.reg_instance(p, c).deregister(&mut actions);
                self.handle_reg_actions(ctx, p, c, actions);
            }
        }

        // Phase 4: report s-safety to the execution-tree parent (gated).
        if q > info_anchor {
            self.flush_safety_report(ctx, q, s);
        }
    }

    /// Sends the `Safe(s)` report of the virtual node of pulse `q` to its parent, if
    /// the subtree is safe and the registration gate has cleared.
    fn flush_safety_report(&mut self, ctx: &mut SCtx<A>, q: u64, s: u64) {
        let (report_remote, report_self) = {
            let Some(v) = self.vnodes.get_mut(q) else { return };
            let st = v.stages.get_mut_or_default(s);
            if !st.subtree_safe || st.reported_up || st.gate_pending > 0 {
                return;
            }
            st.reported_up = true;
            (v.parent_remote, v.self_parent)
        };
        if let Some(parent) = report_remote {
            self.send(
                ctx,
                parent,
                SyncMsg::Safe { stage: s, sender_pulse: q },
                s,
                MessageClass::Control,
            );
        } else if report_self {
            self.work.push_back(Work::ReportSafeInternal { parent_pulse: q - 1, stage: s });
        }
    }

    /// Handles a pending deregistration that was blocked on outstanding registrations,
    /// and pending safety reports blocked on the gate. Re-driven from the work queue.
    fn maybe_flush_anchor(&mut self, ctx: &mut SCtx<A>, q: u64, s: u64) {
        let mut dereg_plan: Vec<(u64, ClusterId)> = Vec::new();
        if let Some(v) = self.vnodes.get_mut(q) {
            if let Some(a) = v.anchored.get_mut(s) {
                if a.dereg_requested && a.registered == a.clusters.len() && !a.deregistered {
                    a.deregistered = true;
                    dereg_plan = a.clusters.iter().map(|&c| (s, c)).collect();
                }
            }
        }
        for (p, c) in dereg_plan {
            let mut actions = Vec::new();
            self.reg_instance(p, c).deregister(&mut actions);
            self.handle_reg_actions(ctx, p, c, actions);
        }
    }

    // ----- go-aheads ----------------------------------------------------------------

    fn record_goahead(&mut self, ctx: &mut SCtx<A>, q: u64, s: u64) {
        let (forward_children, forward_recipients, self_child) = {
            let Some(v) = self.vnodes.get_mut(q) else { return };
            if v.goaheads.contains(s) {
                return;
            }
            v.goaheads.insert(s);
            let children: Vec<NodeId> =
                if s >= q + 2 { v.children_remote.iter().collect() } else { Vec::new() };
            let recipients: Vec<NodeId> =
                if q + 1 == s { v.recipients.clone() } else { Vec::new() };
            (children, recipients, v.child_self && s >= q + 2)
        };
        for c in forward_children {
            self.send(
                ctx,
                c,
                SyncMsg::GoAheadExec { stage: s, sender_pulse: q },
                s,
                MessageClass::Control,
            );
        }
        if self_child {
            self.work.push_back(Work::GoAhead(q + 1, s));
        }
        if !forward_recipients.is_empty() || q + 1 == s {
            for r in forward_recipients {
                self.send(ctx, r, SyncMsg::GoAheadRecipient { stage: s }, s, MessageClass::Control);
            }
            self.goahead_recv.insert(s);
            self.work.push_back(Work::TryProcess);
        }
    }

    // ----- base-stage barriers -------------------------------------------------------

    fn barrier_a_key(&self, cover_idx: usize, cluster: ClusterId) -> (u32, u32) {
        (cover_idx as u32, cluster.0 as u32)
    }

    fn setup_barriers(&mut self, ctx: &mut SCtx<A>) {
        let cfg = Arc::clone(&self.cfg);
        // Phase A: one barrier per (base cover level, cluster tree containing me).
        for &idx in &cfg.base_cover_levels {
            let cover = cfg.covers.level(idx);
            for &cid in cover.tree_clusters_of(self.me) {
                let cluster = cover.cluster(cid);
                self.barrier_a.insert(
                    self.barrier_a_key(idx, cid),
                    BarrierA { children_left: cluster.children_of(self.me).len(), sent_up: false },
                );
            }
            if self.is_initiator {
                self.init_barrier_pending += cover.clusters_of(self.me).len();
            }
        }
        // Phase B: one barrier per (base stage, cluster tree containing me).
        for &stage in cfg.base_stages() {
            let idx = cfg.cover_idx(stage);
            let cover = cfg.covers.level(idx);
            for &cid in cover.tree_clusters_of(self.me) {
                let cluster = cover.cluster(cid);
                self.barrier_b.insert(
                    (stage, cid.0 as u32),
                    BarrierB { children_left: cluster.children_of(self.me).len(), sent_up: false },
                );
            }
            self.base_goahead_recv.insert(stage, 0);
        }
        // Kick off phase A at the leaves (and trivially-complete roots).
        let a_keys: Vec<(u32, u32)> = self.barrier_a.keys().collect();
        for key in a_keys {
            self.barrier_a_try_advance(ctx, key);
        }
        // Kick off phase B where this node has nothing to wait for.
        for &stage in cfg.base_stages() {
            self.work.push_back(Work::BarrierBCheck(stage));
        }
        if self.is_initiator && self.init_barrier_pending == 0 {
            self.release_initiator_sends(ctx);
        }
    }

    fn barrier_a_try_advance(&mut self, ctx: &mut SCtx<A>, key: (u32, u32)) {
        let cfg = Arc::clone(&self.cfg);
        let (idx, cid) = (key.0 as usize, ClusterId(key.1 as usize));
        let cover = cfg.covers.level(idx);
        let cluster = cover.cluster(cid);
        let Some(state) = self.barrier_a.get_mut(key) else { return };
        if state.sent_up || state.children_left > 0 {
            return;
        }
        state.sent_up = true;
        match cluster.parent_of(self.me) {
            Some(parent) => {
                self.send(
                    ctx,
                    parent,
                    SyncMsg::BarrierAUp { cover_idx: key.0, cluster: key.1 },
                    0,
                    MessageClass::Control,
                );
            }
            None => self.barrier_a_complete(ctx, key),
        }
    }

    /// Phase A complete at the root (or received from the parent): deliver locally and
    /// broadcast down the cluster tree.
    fn barrier_a_complete(&mut self, ctx: &mut SCtx<A>, key: (u32, u32)) {
        let cfg = Arc::clone(&self.cfg);
        let (idx, cid) = (key.0 as usize, ClusterId(key.1 as usize));
        let cover = cfg.covers.level(idx);
        let cluster = cover.cluster(cid);
        for &c in cluster.children_of(self.me) {
            self.send(
                ctx,
                c,
                SyncMsg::BarrierADown { cover_idx: key.0, cluster: key.1 },
                0,
                MessageClass::Control,
            );
        }
        if self.is_initiator && cover.clusters_of(self.me).contains(&cid) {
            self.init_barrier_pending = self.init_barrier_pending.saturating_sub(1);
            if self.init_barrier_pending == 0 {
                self.release_initiator_sends(ctx);
            }
        }
    }

    fn release_initiator_sends(&mut self, ctx: &mut SCtx<A>) {
        let Some(v) = self.vnodes.get_mut(0) else { return };
        if v.sent_all {
            return;
        }
        v.sent_all = true;
        let sends = std::mem::take(&mut v.pending_sends);
        for (to, payload) in sends {
            self.send(ctx, to, SyncMsg::Alg { pulse: 0, payload }, 0, MessageClass::Algorithm);
        }
        self.work.push_back(Work::RecomputeComplete(0));
        for &s in self.cfg.stages_tracked(0) {
            self.work.push_back(Work::RecomputeStage(0, s));
        }
    }

    /// Re-evaluates this node's phase-B contributions for base stage `stage`.
    fn barrier_b_check(&mut self, ctx: &mut SCtx<A>, stage: u64) {
        let cfg = Arc::clone(&self.cfg);
        let idx = cfg.cover_idx(stage);
        let cover = cfg.covers.level(idx);
        let my_safe = if self.is_initiator {
            self.vnodes
                .get(0)
                .map(|v| v.stages.get(stage).map(|st| st.subtree_safe).unwrap_or(false))
                .unwrap_or(false)
        } else {
            true
        };
        let tree_clusters: Vec<ClusterId> = cover.tree_clusters_of(self.me).to_vec();
        for cid in tree_clusters {
            let key = (stage, cid.0 as u32);
            let member = cover.clusters_of(self.me).contains(&cid);
            let gate_on_safety = self.is_initiator && member;
            let ready = {
                let Some(state) = self.barrier_b.get_mut(key) else { continue };
                if state.sent_up || state.children_left > 0 {
                    continue;
                }
                if gate_on_safety && !my_safe {
                    continue;
                }
                state.sent_up = true;
                true
            };
            if ready {
                let cluster = cover.cluster(cid);
                match cluster.parent_of(self.me) {
                    Some(parent) => {
                        self.send(
                            ctx,
                            parent,
                            SyncMsg::BarrierBUp { stage, cluster: key.1 },
                            stage,
                            MessageClass::Control,
                        );
                    }
                    None => self.barrier_b_complete(ctx, stage, cid),
                }
            }
        }
    }

    /// Phase B complete for (stage, cluster): broadcast the base-stage Go-Ahead down
    /// the cluster tree and count it locally if this node is an initiator member.
    fn barrier_b_complete(&mut self, ctx: &mut SCtx<A>, stage: u64, cid: ClusterId) {
        let cfg = Arc::clone(&self.cfg);
        let idx = cfg.cover_idx(stage);
        let cover = cfg.covers.level(idx);
        let cluster = cover.cluster(cid);
        for &c in cluster.children_of(self.me) {
            self.send(
                ctx,
                c,
                SyncMsg::BarrierBDown { stage, cluster: cid.0 as u32 },
                stage,
                MessageClass::Control,
            );
        }
        if self.is_initiator && cover.clusters_of(self.me).contains(&cid) {
            let needed = cover.clusters_of(self.me).len();
            let counter = self.base_goahead_recv.get_mut_or_default(stage);
            *counter += 1;
            if *counter == needed {
                self.work.push_back(Work::GoAhead(0, stage));
            }
        }
    }

    // ----- work queue ------------------------------------------------------------------

    fn drain_work(&mut self, ctx: &mut SCtx<A>) {
        let mut guard = 0u64;
        while let Some(item) = self.work.pop_front() {
            guard += 1;
            assert!(
                guard < 10_000_000,
                "synchronizer work queue failed to quiesce (internal error)"
            );
            match item {
                Work::RecomputeComplete(q) => self.recompute_complete(q),
                Work::RecomputeStage(q, s) => {
                    self.maybe_flush_anchor(ctx, q, s);
                    self.recompute_stage(ctx, q, s);
                    self.flush_safety_report(ctx, q, s);
                }
                Work::GoAhead(q, s) => self.record_goahead(ctx, q, s),
                Work::ReportSafeInternal { parent_pulse, stage } => {
                    if let Some(v) = self.vnodes.get_mut(parent_pulse) {
                        v.stages.get_mut_or_default(stage).safe_self_child = true;
                    }
                    self.work.push_back(Work::RecomputeStage(parent_pulse, stage));
                }
                Work::TryProcess => self.try_process(ctx),
                Work::BarrierBCheck(stage) => self.barrier_b_check(ctx, stage),
            }
        }
    }
}

impl<A: EventDriven> Protocol for DetSynchronizer<A> {
    type Message = SyncMsg<A::Msg>;

    fn on_start(&mut self, ctx: &mut Ctx<Self::Message>) {
        // Evaluate the algorithm's initialization; initiators get a pulse-0 virtual
        // node whose sends are held back until the phase-A barriers complete.
        let mut pctx = PulseCtx::new(self.me);
        self.alg.on_init(&mut pctx);
        let outbox = pctx.take_outbox();
        self.is_initiator = !outbox.is_empty();
        if self.is_initiator {
            let mut recipients: Vec<NodeId> = outbox.iter().map(|(to, _)| *to).collect();
            recipients.sort();
            recipients.dedup();
            let vnode = VNode {
                parent_remote: None,
                self_parent: false,
                sent_all: false,
                recipients: recipients.clone(),
                unacked: outbox.len(),
                undecided: recipients.len() + 1,
                children_remote: FlatSet::new(),
                child_self: false,
                complete: false,
                goaheads: FlatSet::new(),
                stages: FlatMap::new(),
                anchored: FlatMap::new(),
                pending_sends: outbox,
            };
            self.vnodes.insert(0, vnode);
            self.processed.insert(0);
            self.max_processed = Some(0);
            self.pending_triggers.insert(1);
        }
        self.setup_barriers(ctx);
        self.drain_work(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Message, ctx: &mut Ctx<Self::Message>) {
        match msg {
            SyncMsg::Alg { pulse, payload } => {
                if let Some(done) = self.max_processed {
                    if pulse < done && !self.processed.contains(pulse + 1) {
                        self.ordering_violations += 1;
                    }
                }
                self.received.get_mut_or_default(pulse).push((from, payload));
                self.send(ctx, from, SyncMsg::AlgAck { pulse }, pulse, MessageClass::Control);
                if !self.processed.contains(pulse + 1) {
                    self.pending_triggers.insert(pulse + 1);
                }
                self.work.push_back(Work::TryProcess);
            }
            SyncMsg::AlgAck { pulse } => {
                if let Some(v) = self.vnodes.get_mut(pulse) {
                    v.unacked = v.unacked.saturating_sub(1);
                }
                self.work.push_back(Work::RecomputeComplete(pulse));
            }
            SyncMsg::Decision { pulse, created, chosen_parent } => {
                let mut forward: Vec<u64> = Vec::new();
                if let Some(v) = self.vnodes.get_mut(pulse - 1) {
                    v.undecided = v.undecided.saturating_sub(1);
                    if created && chosen_parent {
                        v.children_remote.insert(from);
                        forward = v.goaheads.iter().filter(|&s| s > pulse).collect();
                    }
                }
                for s in forward {
                    self.send(
                        ctx,
                        from,
                        SyncMsg::GoAheadExec { stage: s, sender_pulse: pulse - 1 },
                        s,
                        MessageClass::Control,
                    );
                }
                self.work.push_back(Work::RecomputeComplete(pulse - 1));
            }
            SyncMsg::Safe { stage, sender_pulse } => {
                let parent_pulse = sender_pulse - 1;
                if let Some(v) = self.vnodes.get_mut(parent_pulse) {
                    v.stages.get_mut_or_default(stage).safe_children.insert(from);
                }
                self.work.push_back(Work::RecomputeStage(parent_pulse, stage));
            }
            SyncMsg::GoAheadExec { stage, sender_pulse } => {
                self.work.push_back(Work::GoAhead(sender_pulse + 1, stage));
            }
            SyncMsg::GoAheadRecipient { stage } => {
                self.goahead_recv.insert(stage);
                self.work.push_back(Work::TryProcess);
            }
            SyncMsg::Reg { stage, cluster, msg } => {
                let cid = ClusterId(cluster as usize);
                let mut actions = Vec::new();
                self.reg_instance(stage, cid).on_message(from, msg, &mut actions);
                self.handle_reg_actions(ctx, stage, cid, actions);
            }
            SyncMsg::BarrierAUp { cover_idx, cluster } => {
                let key = (cover_idx, cluster);
                let complete_at_root = {
                    let Some(state) = self.barrier_a.get_mut(key) else { return };
                    state.children_left = state.children_left.saturating_sub(1);
                    state.children_left == 0 && !state.sent_up
                };
                if complete_at_root {
                    self.barrier_a_try_advance(ctx, key);
                }
            }
            SyncMsg::BarrierADown { cover_idx, cluster } => {
                self.barrier_a_complete(ctx, (cover_idx, cluster));
            }
            SyncMsg::BarrierBUp { stage, cluster } => {
                if let Some(state) = self.barrier_b.get_mut((stage, cluster)) {
                    state.children_left = state.children_left.saturating_sub(1);
                }
                self.work.push_back(Work::BarrierBCheck(stage));
            }
            SyncMsg::BarrierBDown { stage, cluster } => {
                self.barrier_b_complete(ctx, stage, ClusterId(cluster as usize));
            }
        }
        self.drain_work(ctx);
    }

    fn is_done(&self) -> bool {
        self.alg.output().is_some()
    }
}

/// Convenience report of a synchronized run: outputs plus diagnostics.
#[derive(Clone, Debug)]
pub struct SynchronizedOutputs<O> {
    /// Per-node outputs of the wrapped algorithm.
    pub outputs: Vec<Option<O>>,
    /// Total ordering violations observed (0 in a correct run).
    pub ordering_violations: u64,
}

/// Extracts per-node outputs from a finished asynchronous run of the synchronizer.
pub fn collect_outputs<A: EventDriven>(
    nodes: &[DetSynchronizer<A>],
) -> SynchronizedOutputs<A::Output> {
    SynchronizedOutputs {
        outputs: nodes.iter().map(|n| n.algorithm().output()).collect(),
        ordering_violations: nodes.iter().map(|n| n.ordering_violations()).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_netsim::async_engine::{run_async, SimLimits};
    use ds_netsim::delay::DelayModel;

    #[derive(Debug)]
    struct Flood<'g> {
        me: NodeId,
        neighbors: &'g [NodeId],
        hops: Option<u64>,
    }

    impl EventDriven for Flood<'_> {
        type Msg = u64;
        type Output = u64;

        fn on_init(&mut self, ctx: &mut PulseCtx<u64>) {
            if self.me == NodeId(0) {
                self.hops = Some(0);
                for &u in self.neighbors {
                    ctx.send(u, 1);
                }
            }
        }

        fn on_pulse(&mut self, received: &[(NodeId, u64)], ctx: &mut PulseCtx<u64>) {
            if self.hops.is_none() {
                if let Some(&(_, h)) = received.first() {
                    self.hops = Some(h);
                    for &u in self.neighbors {
                        ctx.send(u, h + 1);
                    }
                }
            }
        }

        fn output(&self) -> Option<u64> {
            self.hops
        }
    }

    /// `debug_stall` is the stall-diagnosis tool for this protocol (see the verify
    /// skill); this keeps it compiling against the live field set and anchored to a
    /// real finished run.
    #[test]
    fn debug_stall_reports_per_node_protocol_state() {
        let graph = Graph::path(4);
        let cfg = SynchronizerConfig::build(&graph, 4);
        let report = run_async(
            &graph,
            DelayModel::jitter(3),
            |v| {
                DetSynchronizer::new(
                    v,
                    Flood { me: v, neighbors: graph.neighbors(v), hops: None },
                    cfg.clone(),
                )
            },
            SimLimits::default(),
        )
        .expect("run");
        for (i, node) in report.nodes.iter().enumerate() {
            let dump = node.debug_stall();
            assert!(dump.starts_with(&format!("node {i}:")), "dump header: {dump}");
            // A finished run left no unreleased triggers behind.
            assert!(dump.contains("pending_triggers=[]"), "node {i} still pending: {dump}");
        }
        // The initiator's dump names its pulse-0 virtual node.
        assert!(report.nodes[0].debug_stall().contains("vnode p=0"));
    }
}
