//! The cluster registration abstraction of Section 3.2.
//!
//! Within one cluster tree and one stage, nodes *register* before performing a piece
//! of work, *deregister* once done, and then wait for a `Go-Ahead` from the cluster.
//! The two guarantees (Lemmas 3.4 and 3.5) are:
//!
//! 1. when a node receives its Go-Ahead, every node that registered before this node
//!    deregistered has already deregistered, and
//! 2. once no more registrations happen and all registered nodes have deregistered,
//!    every registered node receives its Go-Ahead within `O(h)` time, spending only
//!    messages proportional to the registrations.
//!
//! The implementation follows the paper: registration marks the tree path to the
//! root *dirty* (procedure `R`), deregistration converts dirty edges to *waiting*
//! (procedure `D`), and the root propagates Go-Aheads down waiting edges
//! (procedure `G`).
//!
//! [`RegistrationInstance`] is a pure node-local state machine: it consumes local
//! commands ([`RegistrationInstance::register`], [`RegistrationInstance::deregister`])
//! and peer messages ([`RegistrationInstance::on_message`]), and emits
//! [`RegAction`]s — messages to tree neighbors plus local notifications — which the
//! embedding protocol (the synchronizer) routes over the network. One instance exists
//! per (cluster, stage) pair per node, created lazily.

use ds_graph::NodeId;

/// Messages exchanged between cluster-tree neighbors by the registration abstraction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegMsg {
    /// Child → parent: "I marked our edge dirty; run `R` and tell me when the path to
    /// the root is dirty."
    RegisterUp,
    /// Parent → child: "`R` is complete here (the path from me to the root is dirty)."
    RegisterDone,
    /// Child → parent: "our edge is no longer dirty but waiting; run `D`."
    DeregisterUp,
    /// Parent → child over a waiting edge: the Go-Ahead (procedure `G`).
    GoAheadDown,
}

/// Local effects produced by the state machine for the embedding protocol to act on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegAction {
    /// Send `msg` to the cluster-tree neighbor `to`.
    Send { to: NodeId, msg: RegMsg },
    /// This node's own registration is confirmed (the path to the root is dirty).
    Registered,
    /// This node received the Go-Ahead it was waiting for after deregistering.
    Free,
}

/// The role of the local node within one cluster tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreePosition {
    /// Parent in the cluster tree (`None` for the cluster root).
    pub parent: Option<NodeId>,
    /// Children in the cluster tree.
    pub children: Vec<NodeId>,
}

/// Edge marks as seen from the node above the edge (for child edges) or below it (for
/// the parent edge).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
enum EdgeMark {
    #[default]
    Clean,
    Dirty,
    Waiting,
}

/// Per-node state of the registration abstraction for one (cluster, stage).
#[derive(Clone, Debug)]
pub struct RegistrationInstance {
    position: TreePosition,
    /// Whether the path from this node to the root is known to be fully dirty.
    finished: bool,
    /// This node's own lifecycle.
    registered: bool,
    deregistered: bool,
    free: bool,
    /// Mark of the edge to the parent, from this node's point of view.
    parent_edge: EdgeMark,
    /// Marks of the child edges, aligned with `position.children` (flat: children
    /// lists are short, so a linear index scan beats any map).
    child_marks: Vec<EdgeMark>,
    /// Whether each child's `R` invocation is waiting for this node to become
    /// finished, aligned with `position.children`.
    r_waiting: Vec<bool>,
    /// Whether this node's own registration is waiting for the parent's `R`.
    own_r_pending: bool,
    /// Whether a `RegisterUp` has been sent and not yet answered.
    awaiting_parent: bool,
}

impl RegistrationInstance {
    /// Creates the instance for a node at the given tree position. The cluster root
    /// (no parent) starts out `finished`, as in the paper.
    pub fn new(position: TreePosition) -> Self {
        let finished = position.parent.is_none();
        let degree = position.children.len();
        RegistrationInstance {
            position,
            finished,
            registered: false,
            deregistered: false,
            free: false,
            parent_edge: EdgeMark::Clean,
            child_marks: vec![EdgeMark::Clean; degree],
            r_waiting: vec![false; degree],
            own_r_pending: false,
            awaiting_parent: false,
        }
    }

    /// Index of `child` in the children list.
    ///
    /// # Panics
    ///
    /// Panics if `child` is not a cluster-tree child of this node (registration
    /// messages only travel along cluster-tree edges).
    fn child_index(&self, child: NodeId) -> usize {
        self.position
            .children
            .iter()
            .position(|&c| c == child)
            .expect("registration message from a non-child")
    }

    /// Whether this node's registration has been confirmed.
    pub fn is_registered(&self) -> bool {
        self.registered
    }

    /// Whether this node has deregistered.
    pub fn is_deregistered(&self) -> bool {
        self.deregistered
    }

    /// Whether this node has received its Go-Ahead.
    pub fn is_free(&self) -> bool {
        self.free
    }

    /// Starts this node's registration (procedure `R`). Idempotent.
    pub fn register(&mut self, actions: &mut Vec<RegAction>) {
        if self.registered || self.own_r_pending {
            return;
        }
        self.own_r_pending = true;
        self.invoke_r(actions);
    }

    /// Deregisters this node (procedure `D`).
    ///
    /// # Panics
    ///
    /// Panics if the node has not completed registration, or deregisters twice: the
    /// synchronizer always registers, waits for confirmation, then deregisters once.
    pub fn deregister(&mut self, actions: &mut Vec<RegAction>) {
        assert!(self.registered, "deregister requires a confirmed registration");
        assert!(!self.deregistered, "deregister is one-shot per instance");
        self.registered = false;
        self.deregistered = true;
        self.invoke_d(actions);
    }

    /// Handles a registration message from the cluster-tree neighbor `from`.
    pub fn on_message(&mut self, from: NodeId, msg: RegMsg, actions: &mut Vec<RegAction>) {
        match msg {
            RegMsg::RegisterUp => {
                let i = self.child_index(from);
                self.child_marks[i] = EdgeMark::Dirty;
                self.r_waiting[i] = true;
                self.invoke_r(actions);
            }
            RegMsg::RegisterDone => {
                self.awaiting_parent = false;
                self.complete_r(actions);
            }
            RegMsg::DeregisterUp => {
                let i = self.child_index(from);
                self.child_marks[i] = EdgeMark::Waiting;
                if self.position.parent.is_none() {
                    self.maybe_issue_goahead(actions);
                } else {
                    self.invoke_d(actions);
                }
            }
            RegMsg::GoAheadDown => {
                // The Go-Ahead resolves the wave whose DeregisterUp marked this edge
                // waiting. A Dirty mark means a newer registration wave has already
                // re-dirtied the edge (its RegisterUp is ordered after our
                // DeregisterUp on the link, so the parent learns of it after issuing
                // this Go-Ahead) — the stale Go-Ahead must not wipe that mark, or the
                // new wave's deregistration can never propagate and the cluster
                // deadlocks.
                if self.parent_edge == EdgeMark::Waiting {
                    self.parent_edge = EdgeMark::Clean;
                }
                self.receive_goahead(actions);
            }
        }
    }

    /// Procedure `R` at this node.
    fn invoke_r(&mut self, actions: &mut Vec<RegAction>) {
        if self.finished {
            self.complete_r(actions);
            return;
        }
        let parent = self.position.parent.expect("only the root is finished from the start");
        if self.parent_edge != EdgeMark::Dirty {
            self.parent_edge = EdgeMark::Dirty;
        }
        if !self.awaiting_parent {
            self.awaiting_parent = true;
            actions.push(RegAction::Send { to: parent, msg: RegMsg::RegisterUp });
        }
    }

    /// This node has become finished: complete all pending `R` invocations.
    fn complete_r(&mut self, actions: &mut Vec<RegAction>) {
        self.finished = true;
        if self.own_r_pending {
            self.own_r_pending = false;
            self.registered = true;
            actions.push(RegAction::Registered);
        }
        for i in 0..self.r_waiting.len() {
            if self.r_waiting[i] {
                self.r_waiting[i] = false;
                actions.push(RegAction::Send {
                    to: self.position.children[i],
                    msg: RegMsg::RegisterDone,
                });
            }
        }
    }

    /// Procedure `D` at this node.
    fn invoke_d(&mut self, actions: &mut Vec<RegAction>) {
        if self.child_marks.contains(&EdgeMark::Dirty) {
            return;
        }
        if self.registered {
            return;
        }
        match self.position.parent {
            None => self.maybe_issue_goahead(actions),
            Some(parent) => {
                if self.parent_edge == EdgeMark::Dirty {
                    self.parent_edge = EdgeMark::Waiting;
                    self.finished = false;
                    actions.push(RegAction::Send { to: parent, msg: RegMsg::DeregisterUp });
                } else if self.deregistered && !self.free && self.parent_edge == EdgeMark::Clean {
                    // The node deregistered without ever dirtying its parent edge
                    // (possible only if it was already finished through another
                    // registration wave that has since been fully resolved). Nothing
                    // upstream tracks it, so it frees itself.
                    self.free = true;
                    actions.push(RegAction::Free);
                }
            }
        }
    }

    /// Procedure `G` at this node: consume and forward the Go-Ahead.
    fn receive_goahead(&mut self, actions: &mut Vec<RegAction>) {
        if self.deregistered && !self.free {
            self.free = true;
            actions.push(RegAction::Free);
        }
        for i in 0..self.child_marks.len() {
            if self.child_marks[i] == EdgeMark::Waiting {
                self.child_marks[i] = EdgeMark::Clean;
                actions.push(RegAction::Send {
                    to: self.position.children[i],
                    msg: RegMsg::GoAheadDown,
                });
            }
        }
    }

    /// At the root: issue a Go-Ahead if no child edge is dirty.
    fn maybe_issue_goahead(&mut self, actions: &mut Vec<RegAction>) {
        debug_assert!(self.position.parent.is_none());
        if self.child_marks.contains(&EdgeMark::Dirty) {
            return;
        }
        self.receive_goahead(actions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    /// A tiny sequential harness that delivers registration messages between the
    /// node-local instances of one cluster tree, in FIFO order, and records local
    /// notifications. Used to unit-test the state machine without the full simulator
    /// (the simulator-level tests live in the synchronizer integration tests).
    struct Harness {
        nodes: BTreeMap<NodeId, RegistrationInstance>,
        inbox: Vec<(NodeId, NodeId, RegMsg)>,
        registered: BTreeSet<NodeId>,
        freed: Vec<NodeId>,
        messages: usize,
    }

    impl Harness {
        fn new(parents: &[(usize, Option<usize>)]) -> Self {
            let mut children: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
            for &(v, p) in parents {
                if let Some(p) = p {
                    children.entry(p).or_default().push(NodeId(v));
                }
            }
            let nodes = parents
                .iter()
                .map(|&(v, p)| {
                    let pos = TreePosition {
                        parent: p.map(NodeId),
                        children: children.get(&v).cloned().unwrap_or_default(),
                    };
                    (NodeId(v), RegistrationInstance::new(pos))
                })
                .collect();
            Harness {
                nodes,
                inbox: Vec::new(),
                registered: BTreeSet::new(),
                freed: Vec::new(),
                messages: 0,
            }
        }

        fn apply(&mut self, node: NodeId, actions: Vec<RegAction>) {
            for a in actions {
                match a {
                    RegAction::Send { to, msg } => {
                        self.messages += 1;
                        self.inbox.push((node, to, msg));
                    }
                    RegAction::Registered => {
                        self.registered.insert(node);
                    }
                    RegAction::Free => self.freed.push(node),
                }
            }
        }

        fn register(&mut self, v: usize) {
            let mut actions = Vec::new();
            self.nodes.get_mut(&NodeId(v)).unwrap().register(&mut actions);
            self.apply(NodeId(v), actions);
        }

        fn deregister(&mut self, v: usize) {
            let mut actions = Vec::new();
            self.nodes.get_mut(&NodeId(v)).unwrap().deregister(&mut actions);
            self.apply(NodeId(v), actions);
        }

        /// Delivers queued messages until quiescence.
        fn drain(&mut self) {
            while !self.inbox.is_empty() {
                let (from, to, msg) = self.inbox.remove(0);
                let mut actions = Vec::new();
                self.nodes.get_mut(&to).unwrap().on_message(from, msg, &mut actions);
                self.apply(to, actions);
            }
        }
    }

    /// Path tree 0 (root) - 1 - 2 - 3.
    fn path_tree() -> Harness {
        Harness::new(&[(0, None), (1, Some(0)), (2, Some(1)), (3, Some(2))])
    }

    #[test]
    fn single_registration_roundtrip() {
        let mut h = path_tree();
        h.register(3);
        h.drain();
        assert!(h.registered.contains(&NodeId(3)));
        assert!(h.freed.is_empty());
        h.deregister(3);
        h.drain();
        assert_eq!(h.freed, vec![NodeId(3)]);
    }

    #[test]
    fn root_registration_is_immediate() {
        let mut h = path_tree();
        h.register(0);
        assert!(h.registered.contains(&NodeId(0)));
        h.deregister(0);
        h.drain();
        assert_eq!(h.freed, vec![NodeId(0)]);
    }

    #[test]
    fn go_ahead_waits_for_all_registered_nodes() {
        let mut h = path_tree();
        h.register(2);
        h.register(3);
        h.drain();
        assert!(h.registered.contains(&NodeId(2)) && h.registered.contains(&NodeId(3)));
        // Deregister only node 3: node 2's registration keeps the path dirty, so no
        // Go-Ahead may be issued (register guarantee 1).
        h.deregister(3);
        h.drain();
        assert!(h.freed.is_empty());
        h.deregister(2);
        h.drain();
        let mut freed = h.freed.clone();
        freed.sort();
        assert_eq!(freed, vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn registration_after_goahead_starts_a_new_wave() {
        let mut h = path_tree();
        h.register(3);
        h.drain();
        h.deregister(3);
        h.drain();
        assert_eq!(h.freed, vec![NodeId(3)]);
        // A different node registers afterwards; it must get its own confirmation and
        // (after deregistering) its own Go-Ahead.
        h.register(2);
        h.drain();
        assert!(h.registered.contains(&NodeId(2)));
        h.deregister(2);
        h.drain();
        assert_eq!(h.freed, vec![NodeId(3), NodeId(2)]);
    }

    #[test]
    fn overlapping_registrations_on_a_star() {
        // Root 0 with children 1, 2, 3.
        let mut h = Harness::new(&[(0, None), (1, Some(0)), (2, Some(0)), (3, Some(0))]);
        h.register(1);
        h.register(2);
        h.register(3);
        h.drain();
        h.deregister(2);
        h.drain();
        assert!(h.freed.is_empty(), "nodes 1 and 3 are still registered");
        h.deregister(1);
        h.deregister(3);
        h.drain();
        let mut freed = h.freed.clone();
        freed.sort();
        assert_eq!(freed, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn message_cost_is_proportional_to_path_length() {
        // Register guarantee 1: registration and deregistration of a node at depth h
        // cost O(h) messages; with a single registrant on a path of depth 3 the whole
        // cycle (register, deregister, go-ahead) uses at most 3 messages per phase.
        let mut h = path_tree();
        h.register(3);
        h.drain();
        let after_register = h.messages;
        assert!(after_register <= 2 * 3, "registration used {after_register} messages");
        h.deregister(3);
        h.drain();
        assert!(h.messages - after_register <= 2 * 3);
    }

    #[test]
    fn intermediate_nodes_piggyback_on_existing_dirty_paths() {
        let mut h = path_tree();
        h.register(3);
        h.drain();
        let before = h.messages;
        // Node 1 lies on the already-dirty path, so its registration completes with no
        // additional messages up the tree.
        h.register(1);
        assert!(h.registered.contains(&NodeId(1)));
        assert_eq!(h.messages, before);
        h.deregister(1);
        h.deregister(3);
        h.drain();
        let mut freed = h.freed.clone();
        freed.sort();
        assert_eq!(freed, vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    #[should_panic(expected = "confirmed registration")]
    fn deregister_without_registration_panics() {
        let mut h = path_tree();
        h.deregister(2);
    }

    /// Regression test: a Go-Ahead still in flight from a finished wave must not
    /// wipe a parent edge that a newer registration wave has re-dirtied. (Observed
    /// as a cluster-wide deadlock on stage 14 of an 8x8-grid BFS run: the relay's
    /// parent edge was reset to Clean, so the second wave's deregistration never
    /// propagated and the root's child edge stayed Dirty forever.)
    #[test]
    fn stale_goahead_does_not_wipe_a_redirtied_parent_edge() {
        // Root 0 — relay 1 — leaves 2 and 3. Messages are delivered by hand so the
        // stale Go-Ahead can be held back and reordered after the new RegisterUp.
        let pos = |parent: Option<usize>, children: &[usize]| TreePosition {
            parent: parent.map(NodeId),
            children: children.iter().map(|&c| NodeId(c)).collect(),
        };
        let mut n0 = RegistrationInstance::new(pos(None, &[1]));
        let mut n1 = RegistrationInstance::new(pos(Some(0), &[2, 3]));
        let mut n2 = RegistrationInstance::new(pos(Some(1), &[]));
        let mut n3 = RegistrationInstance::new(pos(Some(1), &[]));
        let deliver = |inst: &mut RegistrationInstance, from: usize, msg: RegMsg| {
            let mut actions = Vec::new();
            inst.on_message(NodeId(from), msg, &mut actions);
            actions
        };

        // Wave 1: node 2 registers through the relay and deregisters.
        let mut a = Vec::new();
        n2.register(&mut a);
        assert_eq!(a, vec![RegAction::Send { to: NodeId(1), msg: RegMsg::RegisterUp }]);
        let a = deliver(&mut n1, 2, RegMsg::RegisterUp);
        assert_eq!(a, vec![RegAction::Send { to: NodeId(0), msg: RegMsg::RegisterUp }]);
        let a = deliver(&mut n0, 1, RegMsg::RegisterUp);
        assert_eq!(a, vec![RegAction::Send { to: NodeId(1), msg: RegMsg::RegisterDone }]);
        let a = deliver(&mut n1, 0, RegMsg::RegisterDone);
        assert_eq!(a, vec![RegAction::Send { to: NodeId(2), msg: RegMsg::RegisterDone }]);
        let a = deliver(&mut n2, 1, RegMsg::RegisterDone);
        assert_eq!(a, vec![RegAction::Registered]);
        let mut a = Vec::new();
        n2.deregister(&mut a);
        assert_eq!(a, vec![RegAction::Send { to: NodeId(1), msg: RegMsg::DeregisterUp }]);
        let a = deliver(&mut n1, 2, RegMsg::DeregisterUp);
        assert_eq!(a, vec![RegAction::Send { to: NodeId(0), msg: RegMsg::DeregisterUp }]);
        // The root issues the wave-1 Go-Ahead — hold it in flight.
        let a = deliver(&mut n0, 1, RegMsg::DeregisterUp);
        assert_eq!(a, vec![RegAction::Send { to: NodeId(1), msg: RegMsg::GoAheadDown }]);

        // Wave 2: node 3 registers; the relay re-dirties its parent edge.
        let mut a = Vec::new();
        n3.register(&mut a);
        assert_eq!(a, vec![RegAction::Send { to: NodeId(1), msg: RegMsg::RegisterUp }]);
        let a = deliver(&mut n1, 3, RegMsg::RegisterUp);
        assert_eq!(a, vec![RegAction::Send { to: NodeId(0), msg: RegMsg::RegisterUp }]);

        // The stale wave-1 Go-Ahead now lands: it must free node 2 without clearing
        // the re-dirtied parent edge.
        let a = deliver(&mut n1, 0, RegMsg::GoAheadDown);
        assert_eq!(a, vec![RegAction::Send { to: NodeId(2), msg: RegMsg::GoAheadDown }]);
        let a = deliver(&mut n2, 1, RegMsg::GoAheadDown);
        assert_eq!(a, vec![RegAction::Free]);

        // Wave 2 completes: registration confirms, then deregistration must still
        // propagate up (this is the step the bug broke) and the Go-Ahead must return.
        let a = deliver(&mut n0, 1, RegMsg::RegisterUp);
        assert_eq!(a, vec![RegAction::Send { to: NodeId(1), msg: RegMsg::RegisterDone }]);
        let a = deliver(&mut n1, 0, RegMsg::RegisterDone);
        assert_eq!(a, vec![RegAction::Send { to: NodeId(3), msg: RegMsg::RegisterDone }]);
        let a = deliver(&mut n3, 1, RegMsg::RegisterDone);
        assert_eq!(a, vec![RegAction::Registered]);
        let mut a = Vec::new();
        n3.deregister(&mut a);
        assert_eq!(a, vec![RegAction::Send { to: NodeId(1), msg: RegMsg::DeregisterUp }]);
        let a = deliver(&mut n1, 3, RegMsg::DeregisterUp);
        assert_eq!(a, vec![RegAction::Send { to: NodeId(0), msg: RegMsg::DeregisterUp }]);
        let a = deliver(&mut n0, 1, RegMsg::DeregisterUp);
        assert_eq!(a, vec![RegAction::Send { to: NodeId(1), msg: RegMsg::GoAheadDown }]);
        let a = deliver(&mut n1, 0, RegMsg::GoAheadDown);
        assert_eq!(a, vec![RegAction::Send { to: NodeId(3), msg: RegMsg::GoAheadDown }]);
        let a = deliver(&mut n3, 1, RegMsg::GoAheadDown);
        assert_eq!(a, vec![RegAction::Free]);
    }
}
