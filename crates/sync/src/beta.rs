//! Awerbuch's β synchronizer (Appendix A): per-pulse convergecast and broadcast on a
//! global spanning tree.
//!
//! After sending its pulse-`p` messages and collecting their acknowledgments, each
//! node reports readiness up a (precomputed) rooted BFS spanning tree; once the whole
//! tree is ready the root broadcasts the next pulse. The message overhead per pulse is
//! `Θ(n)` and the time overhead per pulse is `Θ(D)` — the other classical baseline.
//!
//! The spanning tree is provided as initialization data (computing it is the
//! β synchronizer's initialization phase, which Appendix A accounts separately).

use ds_graph::{metrics, Graph, NodeId};
use ds_netsim::event_driven::{canonical_batch, EventDriven, PulseCtx};
use ds_netsim::metrics::MessageClass;
use ds_netsim::protocol::{Ctx, Protocol};
use std::sync::Arc;

/// The shared spanning-tree structure used by the β synchronizer.
#[derive(Clone, Debug)]
pub struct SpanningTree {
    /// The root of the tree.
    pub root: NodeId,
    /// Parent of each node (`None` for the root).
    pub parent: Vec<Option<NodeId>>,
    /// Children of each node.
    pub children: Vec<Vec<NodeId>>,
}

impl SpanningTree {
    /// Builds a BFS spanning tree of `graph` rooted at `root`.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected.
    pub fn bfs(graph: &Graph, root: NodeId) -> Arc<Self> {
        let parent = metrics::bfs_tree(graph, root);
        assert!(
            graph.nodes().all(|v| v == root || parent[v.index()].is_some()),
            "β synchronizer requires a connected graph"
        );
        let mut children = vec![Vec::new(); graph.node_count()];
        for v in graph.nodes() {
            if let Some(p) = parent[v.index()] {
                children[p.index()].push(v);
            }
        }
        Arc::new(SpanningTree { root, parent, children })
    }
}

/// Messages of the β synchronizer.
#[derive(Clone, Debug)]
pub enum BetaMsg<M> {
    /// An algorithm message of pulse `pulse`.
    Alg { pulse: u64, payload: M },
    /// Acknowledgment of an algorithm message.
    Ack { pulse: u64 },
    /// Convergecast: the sender's subtree is safe for pulse `pulse`.
    Ready { pulse: u64 },
    /// Broadcast: the whole network is safe for `pulse`; generate pulse `pulse + 1`.
    NextPulse { pulse: u64 },
}

/// Per-node β synchronizer wrapping an event-driven algorithm. Per-pulse inboxes
/// are stored flat, indexed by the (dense) pulse number.
#[derive(Debug)]
pub struct BetaSynchronizer<A: EventDriven> {
    me: NodeId,
    tree: Arc<SpanningTree>,
    alg: A,
    max_pulse: u64,
    current: u64,
    unacked: usize,
    children_ready: usize,
    received: Vec<Vec<(NodeId, A::Msg)>>,
    sent_at_current: bool,
    reported: bool,
}

impl<A: EventDriven> BetaSynchronizer<A> {
    /// Creates the β synchronizer instance for node `me`.
    pub fn new(tree: Arc<SpanningTree>, me: NodeId, alg: A, max_pulse: u64) -> Self {
        BetaSynchronizer {
            me,
            tree,
            alg,
            max_pulse,
            current: 0,
            unacked: 0,
            children_ready: 0,
            received: (0..=max_pulse as usize).map(|_| Vec::new()).collect(),
            sent_at_current: false,
            reported: false,
        }
    }

    /// The wrapped algorithm (for extracting outputs).
    pub fn algorithm(&self) -> &A {
        &self.alg
    }

    fn dispatch(
        &mut self,
        pulse: u64,
        outbox: Vec<(NodeId, A::Msg)>,
        ctx: &mut Ctx<BetaMsg<A::Msg>>,
    ) {
        self.sent_at_current = !outbox.is_empty();
        self.unacked = outbox.len();
        self.children_ready = 0;
        self.reported = false;
        for (to, payload) in outbox {
            ctx.send_with(to, BetaMsg::Alg { pulse, payload }, pulse, MessageClass::Algorithm);
        }
        self.try_report(ctx);
    }

    fn try_report(&mut self, ctx: &mut Ctx<BetaMsg<A::Msg>>) {
        if self.reported || self.unacked > 0 {
            return;
        }
        if self.children_ready < self.tree.children[self.me.index()].len() {
            return;
        }
        self.reported = true;
        match self.tree.parent[self.me.index()] {
            Some(parent) => {
                ctx.send_with(
                    parent,
                    BetaMsg::Ready { pulse: self.current },
                    self.current,
                    MessageClass::Control,
                );
            }
            None => self.broadcast_next(ctx),
        }
    }

    fn broadcast_next(&mut self, ctx: &mut Ctx<BetaMsg<A::Msg>>) {
        let pulse = self.current;
        for &c in &self.tree.children[self.me.index()] {
            ctx.send_with(c, BetaMsg::NextPulse { pulse }, pulse, MessageClass::Control);
        }
        self.advance(ctx);
    }

    fn advance(&mut self, ctx: &mut Ctx<BetaMsg<A::Msg>>) {
        let p = self.current;
        if p >= self.max_pulse {
            return;
        }
        self.current = p + 1;
        let mut batch = std::mem::take(&mut self.received[p as usize]);
        let triggered = !batch.is_empty() || self.sent_at_current;
        let outbox = if triggered {
            canonical_batch(&mut batch);
            let mut pctx = PulseCtx::new(self.me);
            self.alg.on_pulse(&batch, &mut pctx);
            pctx.take_outbox()
        } else {
            Vec::new()
        };
        self.dispatch(p + 1, outbox, ctx);
    }
}

impl<A: EventDriven> Protocol for BetaSynchronizer<A> {
    type Message = BetaMsg<A::Msg>;

    fn on_start(&mut self, ctx: &mut Ctx<Self::Message>) {
        let mut pctx = PulseCtx::new(self.me);
        self.alg.on_init(&mut pctx);
        let outbox = pctx.take_outbox();
        self.dispatch(0, outbox, ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Message, ctx: &mut Ctx<Self::Message>) {
        match msg {
            BetaMsg::Alg { pulse, payload } => {
                self.received[pulse as usize].push((from, payload));
                ctx.send_with(from, BetaMsg::Ack { pulse }, pulse, MessageClass::Control);
            }
            BetaMsg::Ack { pulse: _ } => {
                self.unacked = self.unacked.saturating_sub(1);
                self.try_report(ctx);
            }
            BetaMsg::Ready { pulse: _ } => {
                self.children_ready += 1;
                self.try_report(ctx);
            }
            BetaMsg::NextPulse { pulse: _ } => {
                // Forward the broadcast and advance.
                for &c in &self.tree.children[self.me.index()] {
                    ctx.send_with(
                        c,
                        BetaMsg::NextPulse { pulse: self.current },
                        self.current,
                        MessageClass::Control,
                    );
                }
                self.advance(ctx);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.alg.output().is_some()
    }
}
