//! Flat, allocation-light containers for the synchronizers' per-node state.
//!
//! The synchronizer state is keyed by small dense integers — pulses bounded by the
//! pulse bound `T(A)`, cluster ids, node ids of a handful of tree children. At those
//! sizes, sorted vectors with binary search ([`FlatMap`]) and dense bit vectors
//! ([`PulseSet`]) beat `BTreeMap`/`BTreeSet` by a wide margin on the simulation hot
//! path, and keep the per-node memory contiguous.

use std::cell::Cell;

/// A map from small `Ord + Copy` keys to values, stored as a sorted vector
/// (SmallVec-style: optimized for few entries, binary-searched lookups).
#[derive(Clone, Debug, Default)]
pub struct FlatMap<K: Ord + Copy, V> {
    entries: Vec<(K, V)>,
}

impl<K: Ord + Copy, V> FlatMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        FlatMap { entries: Vec::new() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn position(&self, key: K) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.cmp(&key))
    }

    /// Returns a reference to the value for `key`.
    pub fn get(&self, key: K) -> Option<&V> {
        self.position(key).ok().map(|i| &self.entries[i].1)
    }

    /// Returns a mutable reference to the value for `key`.
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        match self.position(key) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Inserts `value` for `key`, replacing and returning any previous value.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.position(key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Removes and returns the value for `key`.
    pub fn remove(&mut self, key: K) -> Option<V> {
        match self.position(key) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Returns the value for `key`, inserting one produced by `make` if missing.
    pub fn get_mut_or_insert_with(&mut self, key: K, make: impl FnOnce() -> V) -> &mut V {
        let i = match self.position(key) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (key, make()));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Iterates over `(key, value)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }

    /// Iterates over the keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.entries.iter().map(|(k, _)| *k)
    }
}

impl<K: Ord + Copy, V: Default> FlatMap<K, V> {
    /// Returns the value for `key`, inserting a default if missing (the `entry(..)
    /// .or_default()` idiom).
    pub fn get_mut_or_default(&mut self, key: K) -> &mut V {
        self.get_mut_or_insert_with(key, V::default)
    }
}

/// A sorted vector of small `Ord + Copy` elements, used as a set.
#[derive(Clone, Debug, Default)]
pub struct FlatSet<T: Ord + Copy> {
    items: Vec<T>,
}

impl<T: Ord + Copy> FlatSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        FlatSet { items: Vec::new() }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Inserts `item`; returns `true` if it was not present.
    pub fn insert(&mut self, item: T) -> bool {
        match self.items.binary_search(&item) {
            Ok(_) => false,
            Err(i) => {
                self.items.insert(i, item);
                true
            }
        }
    }

    /// Whether `item` is present.
    pub fn contains(&self, item: T) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Iterates in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.items.iter().copied()
    }
}

/// A dense set of pulses `0 ..= bound`, with an `O(1)` amortized minimum query.
///
/// Backed by a bit vector sized to the synchronizer's pulse bound; `min()` scans
/// from a monotone hint that only ever moves right past removed pulses.
#[derive(Clone, Debug, Default)]
pub struct PulseSet {
    bits: Vec<bool>,
    count: usize,
    /// Lower bound on the smallest set pulse (a hint; never overshoots).
    first_hint: Cell<usize>,
}

impl PulseSet {
    /// Creates an empty set able to hold pulses `0 ..= bound` without resizing.
    pub fn with_bound(bound: u64) -> Self {
        PulseSet { bits: vec![false; bound as usize + 1], count: 0, first_hint: Cell::new(0) }
    }

    /// Number of pulses in the set.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Inserts pulse `p`; returns `true` if it was not present. Grows if needed.
    pub fn insert(&mut self, p: u64) -> bool {
        let i = p as usize;
        if i >= self.bits.len() {
            self.bits.resize(i + 1, false);
        }
        if self.bits[i] {
            return false;
        }
        self.bits[i] = true;
        self.count += 1;
        if i < self.first_hint.get() {
            self.first_hint.set(i);
        }
        true
    }

    /// Removes pulse `p`; returns `true` if it was present.
    pub fn remove(&mut self, p: u64) -> bool {
        let i = p as usize;
        if i >= self.bits.len() || !self.bits[i] {
            return false;
        }
        self.bits[i] = false;
        self.count -= 1;
        true
    }

    /// Whether pulse `p` is in the set.
    pub fn contains(&self, p: u64) -> bool {
        let i = p as usize;
        i < self.bits.len() && self.bits[i]
    }

    /// The smallest pulse in the set.
    pub fn min(&self) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let mut i = self.first_hint.get();
        while i < self.bits.len() && !self.bits[i] {
            i += 1;
        }
        self.first_hint.set(i);
        debug_assert!(i < self.bits.len(), "count is positive so a bit must be set");
        Some(i as u64)
    }

    /// Iterates over the set pulses in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_map_inserts_looks_up_and_removes() {
        let mut m: FlatMap<u64, &'static str> = FlatMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(5, "five"), None);
        assert_eq!(m.insert(1, "one"), None);
        assert_eq!(m.insert(5, "FIVE"), Some("five"));
        assert_eq!(m.get(5), Some(&"FIVE"));
        assert_eq!(m.get(2), None);
        *m.get_mut(1).unwrap() = "ONE";
        assert_eq!(m.keys().collect::<Vec<_>>(), vec![1, 5]);
        assert_eq!(m.remove(1), Some("ONE"));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn flat_map_entry_like_access_defaults() {
        let mut m: FlatMap<(u64, u32), Vec<u64>> = FlatMap::new();
        m.get_mut_or_default((3, 1)).push(7);
        m.get_mut_or_default((3, 1)).push(8);
        assert_eq!(m.get((3, 1)), Some(&vec![7, 8]));
        let v = m.get_mut_or_insert_with((0, 0), || vec![42]);
        assert_eq!(v, &[42]);
    }

    #[test]
    fn flat_set_deduplicates_and_sorts() {
        let mut s: FlatSet<u64> = FlatSet::new();
        assert!(s.insert(9));
        assert!(s.insert(3));
        assert!(!s.insert(9));
        assert!(s.contains(3) && !s.contains(4));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 9]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn pulse_set_tracks_minimum_through_churn() {
        let mut s = PulseSet::with_bound(10);
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
        s.insert(7);
        s.insert(3);
        s.insert(5);
        assert_eq!(s.min(), Some(3));
        assert!(s.remove(3));
        assert_eq!(s.min(), Some(5));
        // Inserting below the hint must rewind it.
        s.insert(1);
        assert_eq!(s.min(), Some(1));
        assert!(!s.remove(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5, 7]);
        // Out-of-bound inserts grow the backing store.
        s.insert(64);
        assert!(s.contains(64));
    }
}
