//! End-to-end correctness tests of the deterministic synchronizer: the synchronized
//! asynchronous execution must produce exactly the outputs of the synchronous
//! execution, for every delay adversary. Runs flow through the `Session` API — the
//! same pipeline every downstream consumer uses.

use ds_graph::{metrics, Graph, NodeId};
use ds_netsim::delay::DelayModel;
use ds_netsim::event_driven::{EventDriven, PulseCtx};
use ds_netsim::sync_engine::run_sync;
use ds_sync::session::{Session, SyncKind};
use ds_sync::synchronizer::SynchronizerConfig;

/// Single-source BFS written as an event-driven synchronous algorithm: the source
/// floods "join" proposals carrying hop counts; every node adopts the first proposal
/// it receives. Under the synchronous semantics the first proposal arrives along a
/// shortest path, so each node outputs (distance, parent).
#[derive(Debug, Clone)]
struct BfsAlgorithm {
    me: NodeId,
    source: NodeId,
    neighbors: Vec<NodeId>,
    output: Option<(u64, Option<NodeId>)>,
}

impl BfsAlgorithm {
    fn new(graph: &Graph, me: NodeId, source: NodeId) -> Self {
        BfsAlgorithm { me, source, neighbors: graph.neighbors(me).to_vec(), output: None }
    }
}

impl EventDriven for BfsAlgorithm {
    type Msg = u64;
    type Output = (u64, Option<NodeId>);

    fn on_init(&mut self, ctx: &mut PulseCtx<u64>) {
        if self.me == self.source {
            self.output = Some((0, None));
            for &u in &self.neighbors {
                ctx.send(u, 1);
            }
        }
    }

    fn on_pulse(&mut self, received: &[(NodeId, u64)], ctx: &mut PulseCtx<u64>) {
        if self.output.is_some() {
            return;
        }
        if let Some(&(from, dist)) = received.first() {
            self.output = Some((dist, Some(from)));
            for &u in &self.neighbors {
                if u != from {
                    ctx.send(u, dist + 1);
                }
            }
        }
    }

    fn output(&self) -> Option<Self::Output> {
        self.output
    }
}

fn check_graph(graph: &Graph, seed: u64) {
    let source = NodeId(0);
    let sync = run_sync(graph, |v| BfsAlgorithm::new(graph, v, source), 10_000).expect("sync run");
    let expected = sync.outputs();
    let t_bound = sync.rounds_to_quiescence.max(1);

    let cfg = SynchronizerConfig::build(graph, t_bound);
    for delay in DelayModel::standard_suite(seed) {
        let run = Session::on(graph)
            .delay(delay.clone())
            .synchronizer(SyncKind::Det(cfg.clone()))
            .run(|v| BfsAlgorithm::new(graph, v, source))
            .unwrap_or_else(|e| panic!("async run failed under {delay:?}: {e}"));
        assert_eq!(run.ordering_violations, 0, "ordering violated under {delay:?}");
        assert_eq!(run.outputs, expected, "outputs differ under {delay:?}");
        assert!(
            run.metrics.time_to_output.is_some(),
            "not all nodes produced output under {delay:?}"
        );
    }

    // The distances must equal the true BFS distances (the algorithm itself is only
    // correct when properly synchronized, so this doubles as a semantic check).
    let dist = metrics::bfs_distances(graph, source);
    for v in graph.nodes() {
        assert_eq!(expected[v.index()].as_ref().map(|o| o.0), dist[v.index()].map(|d| d as u64));
    }
}

#[test]
fn bfs_on_path_matches_synchronous_run() {
    check_graph(&Graph::path(9), 1);
}

#[test]
fn bfs_on_cycle_matches_synchronous_run() {
    check_graph(&Graph::cycle(10), 2);
}

#[test]
fn bfs_on_grid_matches_synchronous_run() {
    check_graph(&Graph::grid(4, 4), 3);
}

#[test]
fn bfs_on_star_matches_synchronous_run() {
    check_graph(&Graph::star(12), 4);
}

#[test]
fn bfs_on_random_graph_matches_synchronous_run() {
    check_graph(&Graph::random_connected(24, 0.12, 7), 5);
}

#[test]
fn bfs_on_barbell_matches_synchronous_run() {
    check_graph(&Graph::barbell(5, 4), 6);
}
