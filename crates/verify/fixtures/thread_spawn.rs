//! Seeded violation: thread creation outside the worker pool.

fn run() {
    std::thread::spawn(|| {}).join().unwrap();
}
