//! Seeded violation: thread creation outside the sharded engine.

fn run() {
    std::thread::spawn(|| {}).join().unwrap();
}
