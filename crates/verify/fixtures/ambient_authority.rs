//! Seeded violations: host parallelism probe and a pointer-value cast.

fn shard_count() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

fn key_of<T>(x: &T) -> usize {
    x as *const T as usize
}
