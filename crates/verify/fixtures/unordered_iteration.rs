//! Seeded violation: iterating an unordered container. The collection itself
//! is waived line by line, so only the iteration hazard remains — exactly the
//! case the second rule exists for.

// ds-lint: allow(unordered-collections) — fixture: iteration is the hazard under test
use std::collections::HashMap;

fn dispatch() {
    // ds-lint: allow(unordered-collections) — fixture: iteration is the hazard under test
    let pending: HashMap<u64, u64> = HashMap::new();
    for (seq, _event) in pending.iter() {
        drop(seq);
    }
}
