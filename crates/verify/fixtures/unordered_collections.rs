//! Seeded violation: a HashMap with the default RandomState.

use std::collections::HashMap;

fn tally(events: &[u64]) -> HashMap<u64, u64> {
    events.iter().map(|&e| (e, e)).collect()
}
