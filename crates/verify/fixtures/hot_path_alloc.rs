//! Seeded violation: an owned-container allocation inside a function marked
//! `ds-lint: hot-path`. Per-delivery code must run on recycled buffers and
//! arena handles (DESIGN.md §10); a fresh `Vec` per event is exactly the
//! allocation churn the event arena removes.

// ds-lint: hot-path (per-delivery: no owned-container allocation tokens)
fn deliver(payloads: &mut [u64], handle: usize) -> u64 {
    let scratch: Vec<u64> = Vec::new();
    drop(scratch);
    payloads[handle]
}

/// Outside the marked function the same tokens are fine — cold paths may
/// allocate freely.
fn setup() -> Vec<u64> {
    let mut v = Vec::new();
    v.push(0);
    v
}
