//! The escape hatch under test: every hazard below carries its
//! `// ds-lint: allow(<rule>)` waiver, so this file must lint clean.

// ds-lint: allow(unordered-collections) — fixture: waiver under test
use std::collections::HashSet;

fn all_waived() {
    // ds-lint: allow(unordered-collections) — fixture: waiver under test
    let seen: HashSet<u64> = HashSet::new();
    // ds-lint: allow(unordered-iteration) — fixture: waiver under test
    for s in seen.iter() {
        drop(s);
    }
    // ds-lint: allow(wall-clock) — fixture: waiver under test
    let t = std::time::Instant::now();
    // ds-lint: allow(ambient-authority) — fixture: waiver under test
    let k = std::thread::available_parallelism();
    // ds-lint: allow(thread-spawn) — fixture: waiver under test
    std::thread::spawn(move || drop((t, k)));
}

fn sketchy(p: &u8) -> u8 {
    // ds-lint: allow(missing-safety-comment) — fixture: waiver under test
    unsafe { std::ptr::read(p) }
}

// ds-lint: hot-path (per-delivery: no owned-container allocation tokens)
fn hot_but_waived() -> Vec<u64> {
    // ds-lint: allow(hot-path-alloc) — fixture: waiver under test
    Vec::new()
}
