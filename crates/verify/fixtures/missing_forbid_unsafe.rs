//! Seeded violation: a crate root (linted as `lib.rs`) that gates unsafe code
//! with neither `#![forbid(unsafe_code)]` nor `#![deny(unsafe_op_in_unsafe_fn)]`.

pub fn id(x: u64) -> u64 {
    x
}
