//! Seeded violation: an `unsafe` block with no SAFETY comment.

fn read_first(xs: &[u8]) -> u8 {
    unsafe { *xs.as_ptr() }
}
