//! Seeded violation: a wall-clock read.

use std::time::Instant;

fn stamp() -> Instant {
    Instant::now()
}
