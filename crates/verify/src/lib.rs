//! # ds-verify — the determinism analysis layer
//!
//! The reproduction's whole value is the paper's *determinism* guarantee
//! (Ghaffari & Trygub, PODC 2023): identical inputs must yield bit-identical
//! schedules, on every scheduler, with any shard count, threaded or not. This
//! crate makes that guarantee machine-checked instead of conventional, with
//! three mechanisms (DESIGN.md §8):
//!
//! 1. **[`lint`]** — source-level rules rejecting determinism hazards
//!    (`HashMap` iteration feeding dispatch, wall-clock reads, ambient host
//!    authority, stray thread spawns, ungated `unsafe`). Run as
//!    `cargo run -p ds-verify --bin ds-lint`; `--self-test` seeds one
//!    violation per rule and asserts each fires.
//! 2. **[`hb`]** — the happens-before checker: rebuilds the ordering relation
//!    implied by the shard/merge contract from a recorded
//!    [`DeliveryTrace`](ds_netsim::DeliveryTrace) and fails if any cross-shard
//!    delivery order is not forced by `seq` (vector clocks over shards;
//!    `tests/happens_before.rs` runs it over the full scheduler-equivalence
//!    matrix).
//! 3. **Sanitizer CI** — ThreadSanitizer over the threaded sharded tests and
//!    Miri over the core `ds-netsim` data structures, wired in the `analysis`
//!    workflow job (see `.github/workflows/ci.yml`), outside the tier-1 path.

#![forbid(unsafe_code)]

pub mod hb;
pub mod lint;
pub mod source;

pub use hb::{check_equivalence, check_trace, HbReport, HbViolation};
pub use lint::{lint_files, lint_source, self_test, Finding, Rule};
