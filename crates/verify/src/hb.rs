//! The happens-before checker: turns the sharded engine's determinism
//! *argument* into a checked invariant over recorded traces.
//!
//! The shard/merge contract (DESIGN.md §6) argues that the sharded engine's
//! schedule is bit-identical to the serial wheel's because (a) the serial
//! merge draws every sequence number in ascending global `seq` order, and
//! (b) deliveries within one tick are causally independent across shards, so
//! running their activations in parallel cannot be observed. This module
//! *verifies* both halves on a [`DeliveryTrace`] recorded by an instrumented
//! run ([`ds_netsim::trace`]):
//!
//! * The happens-before relation is rebuilt from the trace: same-shard
//!   program order (a shard processes its deliveries in `(tick, seq)` order —
//!   ascending `seq` *within* each tick, `seq` free across ticks) plus
//!   *cause* edges (delivery `d` scheduled delivery `e`'s event, directly
//!   or through the acknowledgment that freed the link). Vector clocks over
//!   shards give the relation in closed form.
//! * **Order forced ⇒ seq agrees.** Every cause must be strictly earlier in
//!   both `seq` and tick — the adversary's one-tick minimum delay is what
//!   makes the tick barrier sound, and a cause in the same tick would mean
//!   phase 1 observed phase 2.
//! * **Order not forced ⇒ genuinely concurrent.** Any two same-tick
//!   deliveries on different shards must be vector-clock *incomparable*: their
//!   merge order is forced by `seq` alone, never by causality — exactly the
//!   freedom the parallel phase 1 exploits. A comparable pair would be a
//!   cross-shard delivery order that `seq` is not free to choose, i.e. a hole
//!   in the contract.
//!
//! [`check_equivalence`] completes the picture: a serial and a sharded trace
//! of one scenario must agree record for record on the scheduler-independent
//! [`schedule_key`](DeliveryRecord::schedule_key) — shard assignment is the
//! *only* thing the engines may disagree on.

use ds_netsim::{DeliveryRecord, DeliveryTrace};
use std::collections::BTreeMap;
use std::fmt;

/// A violation of the happens-before contract found in a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HbViolation {
    /// Records within one tick are not in strictly ascending `seq` order.
    /// (Across ticks `seq` is free — a later-drawn message with a shorter
    /// delay legitimately delivers first; the engines order deliveries by
    /// `(tick, seq)`, with `seq` the merge tiebreak *within* the tick.)
    NonAscendingSeq {
        /// Position in the trace.
        index: usize,
        /// Previous record's `seq`.
        prev: u64,
        /// This record's `seq`.
        seq: u64,
    },
    /// Two records share one sequence number.
    DuplicateSeq {
        /// The repeated `seq`.
        seq: u64,
    },
    /// A later record fired at an earlier tick.
    TickRegression {
        /// The record's `seq`.
        seq: u64,
        /// Previous record's tick.
        prev_tick: u64,
        /// This record's (earlier) tick.
        tick: u64,
    },
    /// A record's shard is outside `0..shards`.
    ShardOutOfRange {
        /// The record's `seq`.
        seq: u64,
        /// The offending shard.
        shard: u32,
        /// The trace's shard count.
        shards: u32,
    },
    /// One destination node appeared in two different shards.
    InconsistentShard {
        /// The destination node's dense id.
        dst: usize,
        /// First shard it was seen in.
        first: u32,
        /// The conflicting shard.
        conflicting: u32,
    },
    /// A record's cause is not a delivery in the trace.
    UnknownCause {
        /// The record's `seq`.
        seq: u64,
        /// The dangling cause `seq`.
        cause: u64,
    },
    /// A record's cause does not precede it in `seq`.
    CauseNotEarlier {
        /// The record's `seq`.
        seq: u64,
        /// The cause's `seq`.
        cause: u64,
    },
    /// A record's cause fired in the same or a later tick: the one-tick
    /// minimum delay (the soundness of the tick barrier) was violated.
    CauseTickNotEarlier {
        /// The record's `seq`.
        seq: u64,
        /// The record's tick.
        tick: u64,
        /// The cause's `seq`.
        cause: u64,
        /// The cause's tick.
        cause_tick: u64,
    },
    /// Two same-tick deliveries on different shards are happens-before
    /// comparable: their merge order is forced by causality, not by `seq`,
    /// so the parallel phase 1 is not entitled to run them concurrently.
    OrderNotForced {
        /// The earlier (by `seq`) record.
        earlier_seq: u64,
        /// The later record.
        later_seq: u64,
        /// The shared tick.
        tick: u64,
    },
    /// Two traces of one scenario disagree (see [`check_equivalence`]).
    TraceMismatch {
        /// Position of the first disagreement.
        index: usize,
        /// Rendered left record (or "missing").
        left: String,
        /// Rendered right record (or "missing").
        right: String,
    },
}

impl fmt::Display for HbViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HbViolation::NonAscendingSeq { index, prev, seq } => {
                write!(f, "record {index}: seq {seq} after {prev} in one tick (merge order broken)")
            }
            HbViolation::DuplicateSeq { seq } => {
                write!(f, "seq {seq} delivered twice")
            }
            HbViolation::TickRegression { seq, prev_tick, tick } => {
                write!(f, "seq {seq}: tick {tick} after tick {prev_tick} (time ran backwards)")
            }
            HbViolation::ShardOutOfRange { seq, shard, shards } => {
                write!(f, "seq {seq}: shard {shard} out of range (trace has {shards})")
            }
            HbViolation::InconsistentShard { dst, first, conflicting } => {
                write!(f, "node {dst} delivered in shard {first} and shard {conflicting}")
            }
            HbViolation::UnknownCause { seq, cause } => {
                write!(f, "seq {seq}: cause {cause} is not a delivery in the trace")
            }
            HbViolation::CauseNotEarlier { seq, cause } => {
                write!(f, "seq {seq}: cause {cause} does not precede it in seq")
            }
            HbViolation::CauseTickNotEarlier { seq, tick, cause, cause_tick } => {
                write!(
                    f,
                    "seq {seq} (tick {tick}): cause {cause} fired at tick {cause_tick} — the \
                     one-tick minimum delay is violated"
                )
            }
            HbViolation::OrderNotForced { earlier_seq, later_seq, tick } => {
                write!(
                    f,
                    "tick {tick}: cross-shard deliveries {earlier_seq} and {later_seq} are \
                     happens-before comparable — their order is forced by causality, not seq"
                )
            }
            HbViolation::TraceMismatch { index, left, right } => {
                write!(f, "record {index}: traces disagree — {left} vs {right}")
            }
        }
    }
}

/// Summary statistics of a verified trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HbReport {
    /// Number of delivery records.
    pub records: usize,
    /// Records with a cause (the rest are start-wave roots).
    pub cause_edges: usize,
    /// Distinct ticks that delivered something.
    pub ticks: usize,
    /// Same-tick cross-shard pairs checked for vector-clock incomparability.
    pub concurrent_pairs_checked: u64,
}

/// Verifies the happens-before contract on one trace. Returns summary
/// statistics, or every violation found.
///
/// # Errors
///
/// A non-empty list of [`HbViolation`]s if any invariant fails.
pub fn check_trace(trace: &DeliveryTrace) -> Result<HbReport, Vec<HbViolation>> {
    let mut violations = Vec::new();
    let records = &trace.records;
    let shards = trace.shards.max(1);

    // Pass 1: seq/tick monotonicity, shard sanity, cause resolution.
    let mut index_of: BTreeMap<u64, usize> = BTreeMap::new();
    let mut shard_of_dst: BTreeMap<usize, u32> = BTreeMap::new();
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            let prev = &records[i - 1];
            if r.tick == prev.tick && r.seq <= prev.seq {
                violations.push(HbViolation::NonAscendingSeq {
                    index: i,
                    prev: prev.seq,
                    seq: r.seq,
                });
            }
            if r.tick < prev.tick {
                violations.push(HbViolation::TickRegression {
                    seq: r.seq,
                    prev_tick: prev.tick,
                    tick: r.tick,
                });
            }
        }
        if r.shard >= shards {
            violations.push(HbViolation::ShardOutOfRange { seq: r.seq, shard: r.shard, shards });
        }
        let dst = r.dst.0;
        match shard_of_dst.get(&dst) {
            Some(&s) if s != r.shard => {
                violations.push(HbViolation::InconsistentShard {
                    dst,
                    first: s,
                    conflicting: r.shard,
                });
            }
            Some(_) => {}
            None => {
                shard_of_dst.insert(dst, r.shard);
            }
        }
        if index_of.insert(r.seq, i).is_some() {
            violations.push(HbViolation::DuplicateSeq { seq: r.seq });
        }
    }
    for r in records {
        let Some(cause) = r.cause else { continue };
        match index_of.get(&cause) {
            None => violations.push(HbViolation::UnknownCause { seq: r.seq, cause }),
            Some(&ci) => {
                let c = &records[ci];
                if c.seq >= r.seq {
                    violations.push(HbViolation::CauseNotEarlier { seq: r.seq, cause });
                }
                if c.tick >= r.tick {
                    violations.push(HbViolation::CauseTickNotEarlier {
                        seq: r.seq,
                        tick: r.tick,
                        cause,
                        cause_tick: c.tick,
                    });
                }
            }
        }
    }

    // Pass 2: vector clocks. A record's clock is the join of its shard's
    // previous clock (program order) and its cause's clock, then its own
    // shard component advances. Clock dimension = shard count.
    let k = shards as usize;
    let mut clocks: Vec<Vec<u64>> = Vec::with_capacity(records.len());
    let mut shard_last: Vec<Option<usize>> = vec![None; k];
    for (i, r) in records.iter().enumerate() {
        let s = (r.shard as usize).min(k - 1);
        let mut vc = match shard_last[s] {
            Some(p) => clocks[p].clone(),
            None => vec![0; k],
        };
        if let Some(cause) = r.cause {
            if let Some(&ci) = index_of.get(&cause) {
                if ci < i {
                    for (a, b) in vc.iter_mut().zip(&clocks[ci]) {
                        *a = (*a).max(*b);
                    }
                }
            }
        }
        vc[s] += 1;
        clocks.push(vc);
        shard_last[s] = Some(i);
    }

    // Pass 3: same-tick cross-shard deliveries must be incomparable — their
    // merge order is seq's alone to choose. Records are grouped into
    // contiguous same-tick runs (pass 1 verified tick monotonicity).
    let mut concurrent_pairs_checked = 0u64;
    let mut ticks = 0usize;
    let mut run_start = 0;
    while run_start < records.len() {
        let tick = records[run_start].tick;
        let mut run_end = run_start + 1;
        while run_end < records.len() && records[run_end].tick == tick {
            run_end += 1;
        }
        ticks += 1;
        for i in run_start..run_end {
            for j in (i + 1)..run_end {
                if records[i].shard == records[j].shard {
                    continue;
                }
                concurrent_pairs_checked += 1;
                let (a, b) = (&clocks[i], &clocks[j]);
                let a_le_b = a.iter().zip(b).all(|(x, y)| x <= y);
                let b_le_a = b.iter().zip(a).all(|(x, y)| x <= y);
                if a_le_b || b_le_a {
                    violations.push(HbViolation::OrderNotForced {
                        earlier_seq: records[i].seq,
                        later_seq: records[j].seq,
                        tick,
                    });
                }
            }
        }
        run_start = run_end;
    }

    if violations.is_empty() {
        Ok(HbReport {
            records: records.len(),
            cause_edges: records.iter().filter(|r| r.cause.is_some()).count(),
            ticks,
            concurrent_pairs_checked,
        })
    } else {
        Err(violations)
    }
}

/// Verifies that two traces of one scenario describe the same schedule:
/// record for record, the scheduler-independent
/// [`schedule_key`](DeliveryRecord::schedule_key) must match. Shard
/// assignment is the only permitted difference (serial engines record shard
/// 0 everywhere; the sharded engine records the destination's owner).
///
/// # Errors
///
/// A non-empty list of [`HbViolation::TraceMismatch`]es (capped at 8) if the
/// traces disagree.
pub fn check_equivalence(
    left: &DeliveryTrace,
    right: &DeliveryTrace,
) -> Result<(), Vec<HbViolation>> {
    let mut violations = Vec::new();
    let n = left.records.len().max(right.records.len());
    for i in 0..n {
        let l = left.records.get(i);
        let r = right.records.get(i);
        let matches = match (l, r) {
            (Some(a), Some(b)) => a.schedule_key() == b.schedule_key(),
            _ => false,
        };
        if !matches {
            let render = |x: Option<&DeliveryRecord>| {
                x.map_or_else(|| "missing".to_string(), |rec| format!("{rec:?}"))
            };
            violations.push(HbViolation::TraceMismatch {
                index: i,
                left: render(l),
                right: render(r),
            });
            if violations.len() >= 8 {
                break;
            }
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_graph::NodeId;

    fn rec(
        seq: u64,
        tick: u64,
        shard: u32,
        src: usize,
        dst: usize,
        cause: Option<u64>,
    ) -> DeliveryRecord {
        DeliveryRecord { seq, tick, shard, src: NodeId(src), dst: NodeId(dst), cause }
    }

    fn trace(shards: u32, records: Vec<DeliveryRecord>) -> DeliveryTrace {
        DeliveryTrace { records, shards }
    }

    #[test]
    fn a_consistent_trace_passes_with_stats() {
        // Two shards, three ticks: start-wave roots at tick 5, then caused
        // deliveries strictly later.
        let t = trace(
            2,
            vec![
                rec(0, 5, 0, 1, 0, None),
                rec(1, 5, 1, 0, 3, None),
                rec(4, 6, 1, 0, 2, Some(0)),
                rec(5, 6, 0, 2, 1, Some(1)),
                rec(9, 8, 0, 3, 0, Some(4)),
            ],
        );
        let report = check_trace(&t).expect("consistent trace");
        assert_eq!(report.records, 5);
        assert_eq!(report.cause_edges, 3);
        assert_eq!(report.ticks, 3);
        assert_eq!(report.concurrent_pairs_checked, 2);
    }

    #[test]
    fn seq_and_tick_regressions_are_caught() {
        let t = trace(
            1,
            vec![rec(3, 5, 0, 0, 1, None), rec(2, 5, 0, 1, 0, None), rec(7, 4, 0, 0, 1, None)],
        );
        let violations = check_trace(&t).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| matches!(v, HbViolation::NonAscendingSeq { prev: 3, seq: 2, .. })));
        assert!(violations
            .iter()
            .any(|v| matches!(v, HbViolation::TickRegression { prev_tick: 5, tick: 4, .. })));
    }

    #[test]
    fn cross_tick_seq_inversion_is_legitimate_but_duplicates_are_not() {
        // A later-drawn seq delivering at an earlier tick than a higher seq is
        // how real jitter traces look — only *within* a tick is seq the order.
        let ok = trace(1, vec![rec(9, 5, 0, 0, 1, None), rec(2, 6, 0, 1, 0, None)]);
        check_trace(&ok).expect("cross-tick seq inversion is fine");
        let dup = trace(1, vec![rec(3, 5, 0, 0, 1, None), rec(3, 6, 0, 1, 0, None)]);
        let violations = check_trace(&dup).unwrap_err();
        assert!(violations.iter().any(|v| matches!(v, HbViolation::DuplicateSeq { seq: 3 })));
    }

    #[test]
    fn dangling_and_non_earlier_causes_are_caught() {
        let t = trace(1, vec![rec(0, 5, 0, 0, 1, Some(7)), rec(2, 6, 0, 1, 0, Some(2))]);
        let violations = check_trace(&t).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| matches!(v, HbViolation::UnknownCause { seq: 0, cause: 7 })));
        assert!(violations
            .iter()
            .any(|v| matches!(v, HbViolation::CauseNotEarlier { seq: 2, cause: 2 })));
    }

    #[test]
    fn a_same_tick_cause_breaks_both_the_delay_bound_and_concurrency() {
        // Delivery 1 (shard 1) caused by delivery 0 (shard 0) *in the same
        // tick*: the one-tick delay bound is violated, and the pair becomes
        // happens-before comparable — phase 1 would have run an order that
        // causality, not seq, dictated.
        let t = trace(2, vec![rec(0, 5, 0, 1, 0, None), rec(1, 5, 1, 0, 3, Some(0))]);
        let violations = check_trace(&t).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| matches!(v, HbViolation::CauseTickNotEarlier { seq: 1, cause: 0, .. })));
        assert!(violations.iter().any(|v| matches!(
            v,
            HbViolation::OrderNotForced { earlier_seq: 0, later_seq: 1, tick: 5 }
        )));
    }

    #[test]
    fn inconsistent_shard_assignment_is_caught() {
        let t = trace(2, vec![rec(0, 5, 0, 1, 0, None), rec(1, 6, 1, 2, 0, Some(0))]);
        let violations = check_trace(&t).unwrap_err();
        assert!(violations.iter().any(|v| matches!(
            v,
            HbViolation::InconsistentShard { dst: 0, first: 0, conflicting: 1 }
        )));
    }

    #[test]
    fn equivalence_ignores_shards_but_nothing_else() {
        let a = trace(1, vec![rec(0, 5, 0, 1, 0, None), rec(2, 6, 0, 0, 1, Some(0))]);
        let b = trace(2, vec![rec(0, 5, 0, 1, 0, None), rec(2, 6, 1, 0, 1, Some(0))]);
        check_equivalence(&a, &b).expect("shard-only difference is fine");
        let c = trace(2, vec![rec(0, 5, 0, 1, 0, None), rec(3, 6, 1, 0, 1, Some(0))]);
        let violations = check_equivalence(&a, &c).unwrap_err();
        assert_eq!(violations.len(), 1);
        assert!(matches!(violations[0], HbViolation::TraceMismatch { index: 1, .. }));
        let short = trace(1, vec![rec(0, 5, 0, 1, 0, None)]);
        assert!(check_equivalence(&a, &short).is_err());
    }

    #[test]
    fn violations_render_readably() {
        let v = HbViolation::OrderNotForced { earlier_seq: 3, later_seq: 9, tick: 7 };
        let s = format!("{v}");
        assert!(s.contains("tick 7") && s.contains('3') && s.contains('9'));
    }
}
