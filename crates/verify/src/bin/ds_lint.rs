//! `ds-lint`: the workspace's determinism lint.
//!
//! ```text
//! cargo run -p ds-verify --bin ds-lint               # lint the simulation crates
//! cargo run -p ds-verify --bin ds-lint -- --self-test  # seeded-violation self-test
//! cargo run -p ds-verify --bin ds-lint -- PATH...    # lint explicit files/dirs
//! ```
//!
//! Exits non-zero on any finding (or self-test failure), printing one
//! `path:line: [rule] message` per finding. See `ds_verify::lint` for the
//! rules and the `// ds-lint: allow(<rule>)` escape hatch.

use ds_verify::lint::{lint_source, self_test};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The crates the determinism rules govern, relative to the workspace root:
/// everything that can influence an engine schedule. (`bench` drives wall
/// clocks by design; `verify` hosts the seeded-violation fixtures.)
const DEFAULT_SCAN: [&str; 5] = [
    "crates/netsim/src",
    "crates/sync/src",
    "crates/covers/src",
    "crates/graph/src",
    "crates/algos/src",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: ds-lint [--self-test] [PATH...]");
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--self-test") {
        let failures = self_test();
        if failures.is_empty() {
            println!("ds-lint self-test: every rule fired on its fixture; pragma waivers held");
            return ExitCode::SUCCESS;
        }
        for f in &failures {
            eprintln!("ds-lint self-test FAILED: {f}");
        }
        return ExitCode::FAILURE;
    }

    let roots: Vec<PathBuf> = if args.is_empty() {
        let base = workspace_root();
        DEFAULT_SCAN.iter().map(|p| base.join(p)).collect()
    } else {
        args.iter().map(PathBuf::from).collect()
    };

    let mut files = Vec::new();
    for root in &roots {
        collect_rs_files(root, &mut files);
    }
    files.sort();
    if files.is_empty() {
        eprintln!("ds-lint: no .rs files under {roots:?}");
        return ExitCode::FAILURE;
    }

    let mut findings = 0usize;
    for path in &files {
        let content = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("ds-lint: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        // Findings are reported with forward slashes so the allowlist and
        // output are host-independent.
        let shown = path.to_string_lossy().replace('\\', "/");
        for finding in lint_source(&shown, &content) {
            println!("{finding}");
            findings += 1;
        }
    }
    if findings == 0 {
        println!("ds-lint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("ds-lint: {findings} finding(s)");
        ExitCode::FAILURE
    }
}

/// The workspace root: two levels above this crate's manifest directory.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).map_or(manifest.clone(), Path::to_path_buf)
}

/// Recursively collects `.rs` files under `root` (or `root` itself if it is a
/// file), in sorted order per directory for deterministic output.
fn collect_rs_files(root: &Path, out: &mut Vec<PathBuf>) {
    if root.is_file() {
        if root.extension().is_some_and(|e| e == "rs") {
            out.push(root.to_path_buf());
        }
        return;
    }
    let Ok(entries) = std::fs::read_dir(root) else { return };
    let mut children: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    children.sort();
    for child in children {
        collect_rs_files(&child, out);
    }
}
