//! A small, dependency-free Rust source scanner for `ds-lint`.
//!
//! The lint rules ([`crate::lint`]) are token-level: they need to know whether
//! `HashMap` or `thread::spawn` appears in *code*, not in a comment, a string
//! literal or a doc example. This module splits each line of a source file
//! into its code part (with comment and literal *contents* blanked out by
//! spaces, so byte offsets are preserved) and its comment part (for pragma and
//! `SAFETY:` detection). The scanner is a line-oriented state machine that
//! carries block-comment nesting and raw-string state across lines; it handles
//! nested `/* */`, `//` line comments, string literals with escapes,
//! raw strings `r#"…"#` of any hash depth, byte strings, and the char-literal
//! vs. lifetime ambiguity (`'a'` vs. `<'a>`).
//!
//! This is deliberately *not* a full lexer: it only needs to be sound for the
//! decision "is this byte inside code?". On that question it errs on the side
//! of code (a finding can always be waived with a pragma; a hazard silently
//! hidden inside what the scanner mistook for a string cannot be recovered).

/// One scanned source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Line {
    /// The line verbatim (without the trailing newline).
    pub raw: String,
    /// The line with comments removed and string/char-literal contents
    /// replaced by spaces. Same length as `raw` up to the first comment.
    pub code: String,
    /// Concatenated text of every comment on the line (line and block).
    pub comment: String,
}

impl Line {
    /// Whether the line holds no code at all (blank or comment-only).
    pub fn is_comment_only(&self) -> bool {
        self.code.trim().is_empty()
    }
}

/// A fully scanned source file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Path the file was read from (shown in findings).
    pub path: String,
    /// Scanned lines, in order; `lines[i]` is source line `i + 1`.
    pub lines: Vec<Line>,
}

/// Scanner state carried across lines.
enum State {
    /// Plain code.
    Code,
    /// Inside `/* … */`, at the given nesting depth (Rust block comments nest).
    BlockComment(u32),
    /// Inside a raw string opened with the given number of `#`s.
    RawString(u32),
}

/// Scans `content` into per-line code/comment splits.
pub fn scan(path: &str, content: &str) -> SourceFile {
    let mut lines = Vec::new();
    let mut state = State::Code;
    for raw_line in content.lines() {
        let bytes = raw_line.as_bytes();
        let mut code = String::with_capacity(raw_line.len());
        let mut comment = String::new();
        let mut i = 0;
        while i < bytes.len() {
            match state {
                State::BlockComment(depth) => {
                    if bytes[i..].starts_with(b"*/") {
                        comment.push(' ');
                        i += 2;
                        state =
                            if depth > 1 { State::BlockComment(depth - 1) } else { State::Code };
                    } else if bytes[i..].starts_with(b"/*") {
                        comment.push(' ');
                        i += 2;
                        state = State::BlockComment(depth + 1);
                    } else {
                        let ch = next_char(raw_line, i);
                        comment.push(ch);
                        i += ch.len_utf8();
                    }
                }
                State::RawString(hashes) => {
                    let close = raw_close(bytes, i, hashes);
                    if close > 0 {
                        // Blank the closing delimiter too: its quotes are not code.
                        code.push_str(&" ".repeat(close));
                        i += close;
                        state = State::Code;
                    } else {
                        code.push(' ');
                        i += next_char(raw_line, i).len_utf8();
                    }
                }
                State::Code => {
                    if bytes[i..].starts_with(b"//") {
                        comment.push_str(&raw_line[i + 2..]);
                        i = bytes.len();
                    } else if bytes[i..].starts_with(b"/*") {
                        i += 2;
                        state = State::BlockComment(1);
                    } else if let Some(hashes) = raw_string_open(bytes, i) {
                        // Keep the `r`/`br` prefix blanked with the delimiter.
                        let open = raw_open_len(bytes, i, hashes);
                        code.push_str(&" ".repeat(open));
                        i += open;
                        state = State::RawString(hashes);
                    } else if bytes[i] == b'"'
                        || (bytes[i] == b'b' && bytes.get(i + 1) == Some(&b'"'))
                    {
                        let start = if bytes[i] == b'b' { i + 1 } else { i };
                        code.push_str(&" ".repeat(start + 1 - i));
                        i = skip_string(bytes, start + 1, &mut code);
                    } else if bytes[i] == b'\'' && is_char_literal(bytes, i) {
                        i = skip_char_literal(bytes, i, &mut code);
                    } else {
                        let ch = next_char(raw_line, i);
                        code.push(ch);
                        i += ch.len_utf8();
                    }
                }
            }
        }
        // An unterminated plain string at end of line: Rust allows a trailing
        // `\` continuation; treat the next line as code again (close enough —
        // multi-line plain strings are rare and the contents were blanked).
        lines.push(Line { raw: raw_line.to_string(), code, comment });
    }
    SourceFile { path: path.to_string(), lines }
}

fn next_char(line: &str, i: usize) -> char {
    line[i..].chars().next().unwrap_or(' ')
}

/// If `bytes[i..]` opens a raw string (`r"`, `r#"`, `br##"`, …), returns the
/// hash count.
fn raw_string_open(bytes: &[u8], i: usize) -> Option<u32> {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    // `r` followed by an identifier (e.g. `raw`) is not a raw string; require
    // the quote. Also reject when `r` is the tail of an identifier (`for"x"`
    // cannot occur; `var"` cannot either) by checking the previous byte.
    if bytes.get(j) != Some(&b'"') {
        return None;
    }
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return None;
    }
    Some(hashes)
}

/// Length of the raw-string opener at `i` (prefix + hashes + quote).
fn raw_open_len(bytes: &[u8], i: usize, hashes: u32) -> usize {
    let prefix = if bytes[i] == b'b' { 2 } else { 1 };
    prefix + hashes as usize + 1
}

/// If `bytes[i..]` closes a raw string with `hashes` hashes, returns the
/// closer's length, else 0.
fn raw_close(bytes: &[u8], i: usize, hashes: u32) -> usize {
    if bytes[i] != b'"' {
        return 0;
    }
    let h = hashes as usize;
    if bytes.len() >= i + 1 + h && bytes[i + 1..i + 1 + h].iter().all(|&b| b == b'#') {
        1 + h
    } else {
        0
    }
}

/// Blanks a plain string literal starting just after its opening quote at
/// `start`; returns the index after the closing quote (or end of line).
fn skip_string(bytes: &[u8], start: usize, code: &mut String) -> usize {
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                code.push_str("  ");
                i += 2;
            }
            b'"' => {
                code.push(' ');
                return i + 1;
            }
            _ => {
                code.push(' ');
                i += 1;
            }
        }
    }
    i
}

/// Whether the `'` at `i` starts a char literal (as opposed to a lifetime).
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        // `'\…'` — always a char literal.
        Some(b'\\') => true,
        // `'x'` — char literal iff the quote closes right after one char.
        // A lifetime (`'a`, `'static`) has an identifier and no closing quote.
        Some(_) => bytes.get(i + 2) == Some(&b'\''),
        None => false,
    }
}

/// Blanks a char literal starting at the `'` at `i`; returns the index after
/// its closing quote.
fn skip_char_literal(bytes: &[u8], i: usize, code: &mut String) -> usize {
    code.push(' ');
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => {
                code.push_str("  ");
                j += 2;
            }
            b'\'' => {
                code.push(' ');
                return j + 1;
            }
            _ => {
                code.push(' ');
                j += 1;
            }
        }
    }
    j
}

/// Whether `code` contains `token` as a whole word (identifier-boundary on
/// both sides). `token` itself may contain `::` or other punctuation; only its
/// first and last characters are boundary-checked.
pub fn has_token(code: &str, token: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let at = from + pos;
        let before_ok = at == 0
            || !code[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + token.len();
        let after_ok = after >= code.len()
            || !code[after..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + token.len().max(1);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        scan("t.rs", src).lines.into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_stripped_from_code() {
        let f = scan("t.rs", "let x = 1; // HashMap here\nlet y = 2;");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].comment.contains("HashMap"));
        assert_eq!(f.lines[1].code, "let y = 2;");
    }

    #[test]
    fn nested_block_comments_span_lines() {
        let c = codes("a /* x /* y */ still comment\nmore */ b");
        assert_eq!(c[0].trim(), "a");
        assert_eq!(c[1].trim(), "b");
    }

    #[test]
    fn string_contents_are_blanked_but_line_structure_survives() {
        let c = codes(r#"let s = "HashMap::new() // not a comment"; let t = 1;"#);
        assert!(!c[0].contains("HashMap"));
        assert!(c[0].contains("let t = 1;"));
    }

    #[test]
    fn escaped_quotes_do_not_end_the_string() {
        let c = codes(r#"let s = "a\"HashMap\"b"; spawn();"#);
        assert!(!c[0].contains("HashMap"));
        assert!(c[0].contains("spawn"));
    }

    #[test]
    fn raw_strings_with_hashes_span_lines() {
        let c = codes("let s = r#\"HashMap\nInstant\"#; let u = 2;");
        assert!(!c[0].contains("HashMap"));
        assert!(!c[1].contains("Instant"));
        assert!(c[1].contains("let u = 2;"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        // A lifetime must not open a "string" that swallows the rest.
        let c = codes("fn f<'a>(x: &'a str) { let q = 'y'; let h = HashMap::new(); }");
        assert!(c[0].contains("HashMap"));
        assert!(!c[0].contains("'y'"));
        // Escaped char literal containing a quote.
        let c = codes(r"let q = '\''; let h = Instant::now();");
        assert!(c[0].contains("Instant"));
    }

    #[test]
    fn has_token_respects_identifier_boundaries() {
        assert!(has_token("let m: HashMap<u32, u32>;", "HashMap"));
        assert!(!has_token("let m = instantiate();", "Instant"));
        assert!(!has_token("MyHashMapLike", "HashMap"));
        assert!(has_token("std::thread::spawn(f)", "thread::spawn"));
        assert!(!has_token("my_thread::spawner(f)", "thread::spawn"));
    }

    #[test]
    fn comment_only_lines_are_detected() {
        let f = scan("t.rs", "  // just a comment\nlet x = 1; // tail\n\n/* block */");
        assert!(f.lines[0].is_comment_only());
        assert!(!f.lines[1].is_comment_only());
        assert!(f.lines[2].is_comment_only());
        assert!(f.lines[3].is_comment_only());
    }
}
