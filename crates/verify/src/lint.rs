//! `ds-lint`: source-level determinism rules for the simulation crates.
//!
//! The engines' determinism contract (DESIGN.md §6) is easy to break from a
//! distance: one `HashMap` iteration feeding dispatch order, one wall-clock
//! read seeding a delay, one stray `thread::spawn`, and schedules silently
//! diverge across runs or hosts. These rules reject the hazard *patterns* at
//! the source level, with an explicit, reviewable escape hatch:
//!
//! ```text
//! // ds-lint: allow(<rule>) — justification
//! ```
//!
//! on the offending line or in the contiguous comment block directly above it
//! waives that rule for that line. The pragma carries its justification with
//! it, so every waiver is visible in review — the same shape as `#[allow]`
//! with a comment, but enforced for tools that cannot see attributes.
//!
//! Rules (one fixture per rule under `fixtures/`, exercised by
//! [`self_test`] and `cargo run -p ds-verify --bin ds-lint -- --self-test`):
//!
//! | rule | rejects |
//! |------|---------|
//! | `unordered-collections` | `HashMap`/`HashSet` (default `RandomState` hashes differently every process — iteration order is nondeterministic) |
//! | `unordered-iteration` | iterating an identifier bound to a `HashMap`/`HashSet` in the same file (the dispatch-order hazard, even where the collection itself was waived) |
//! | `wall-clock` | `Instant`/`SystemTime` (wall-clock reads differ per run) |
//! | `ambient-authority` | thread ids, `available_parallelism`, pointer-value casts (host-dependent values) |
//! | `thread-spawn` | `thread::spawn`/`thread::scope` outside the worker-pool allowlist |
//! | `missing-safety-comment` | an `unsafe` token with no `SAFETY:` comment nearby |
//! | `missing-forbid-unsafe` | a crate root (`lib.rs`) with neither `#![forbid(unsafe_code)]` nor `#![deny(unsafe_op_in_unsafe_fn)]` |
//! | `hot-path-alloc` | owned-container allocation tokens (`Box::new`, `Vec::new`, `vec![`, …) inside a function whose preceding comment block carries the `ds-lint: hot-path` marker — per-delivery code must run on recycled buffers and arena handles |

use crate::source::{has_token, scan, SourceFile};

/// A determinism rule `ds-lint` enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` with the default hasher.
    UnorderedCollections,
    /// Iteration over an unordered container (dispatch-order hazard).
    UnorderedIteration,
    /// `Instant`/`SystemTime` reads.
    WallClock,
    /// Thread ids, parallelism probes, pointer-value casts.
    AmbientAuthority,
    /// Thread creation outside the worker pool.
    ThreadSpawn,
    /// `unsafe` without a `SAFETY:` comment.
    MissingSafetyComment,
    /// Crate root without an unsafe-code lint gate.
    MissingForbidUnsafe,
    /// Owned-container allocation inside a `ds-lint: hot-path` marked
    /// function.
    HotPathAlloc,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 8] = [
        Rule::UnorderedCollections,
        Rule::UnorderedIteration,
        Rule::WallClock,
        Rule::AmbientAuthority,
        Rule::ThreadSpawn,
        Rule::MissingSafetyComment,
        Rule::MissingForbidUnsafe,
        Rule::HotPathAlloc,
    ];

    /// The rule's name, as used in `// ds-lint: allow(<name>)` pragmas.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnorderedCollections => "unordered-collections",
            Rule::UnorderedIteration => "unordered-iteration",
            Rule::WallClock => "wall-clock",
            Rule::AmbientAuthority => "ambient-authority",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::MissingSafetyComment => "missing-safety-comment",
            Rule::MissingForbidUnsafe => "missing-forbid-unsafe",
            Rule::HotPathAlloc => "hot-path-alloc",
        }
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule.name(), self.message)
    }
}

/// Whether line `idx` (0-based) of `file` is covered by an
/// `// ds-lint: allow(rule)` pragma: on the line itself, or anywhere in the
/// contiguous run of comment-only lines directly above it.
fn allowed(file: &SourceFile, idx: usize, rule: Rule) -> bool {
    let needle = format!("ds-lint: allow({})", rule.name());
    if file.lines[idx].comment.contains(&needle) {
        return true;
    }
    let mut i = idx;
    while i > 0 && file.lines[i - 1].is_comment_only() {
        i -= 1;
        if file.lines[i].comment.contains(&needle) {
            return true;
        }
    }
    false
}

/// Whether `path` may create threads. All thread creation is concentrated in
/// `ds-netsim::pool` — the persistent worker pool the sharded engine drives —
/// so even `sharded.rs` itself contains no thread tokens; everything else must
/// stay on the coordinator.
fn thread_spawn_allowlisted(path: &str) -> bool {
    path.ends_with("netsim/src/pool.rs")
}

/// Whether `path` is a crate root subject to the unsafe-gate rule.
fn is_crate_root(path: &str) -> bool {
    path.ends_with("lib.rs") || path.ends_with("main.rs")
}

/// Owned-container allocation tokens the `hot-path-alloc` rule rejects. Each
/// constructs (or clones into) a fresh heap allocation per call — per-delivery
/// code must reuse recycled buffers and arena handles instead.
const ALLOC_TOKENS: [&str; 7] = [
    "Box::new",
    "Vec::new",
    "VecDeque::new",
    "String::new",
    "vec![",
    ".to_vec()",
    "with_capacity(",
];

/// Extracts the identifiers bound to `HashMap`/`HashSet` values on this line:
/// `let [mut] NAME: …Hash(Map|Set)…`, `NAME: Hash(Map|Set)<…>` (struct
/// fields), and `let [mut] NAME = Hash(Map|Set)::…`.
fn unordered_bindings(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    if !(has_token(code, "HashMap") || has_token(code, "HashSet")) {
        return out;
    }
    // `NAME : … Hash(Map|Set)` — the name directly left of the first `:`
    // preceding the token, and `let NAME = HashMap::new()`.
    for marker in ["HashMap", "HashSet"] {
        let Some(pos) = code.find(marker) else { continue };
        let before = &code[..pos];
        // Find the nearest binder: `let [mut] NAME =` or `NAME:`.
        let candidate =
            if let Some(colon) = before.rfind(':') { ident_before(&before[..colon]) } else { None };
        let candidate =
            candidate.or_else(|| before.rfind('=').and_then(|eq| ident_before(&before[..eq])));
        if let Some(name) = candidate {
            out.push(name);
        }
    }
    out.sort();
    out.dedup();
    out
}

/// The identifier ending at the end of `s` (ignoring trailing whitespace).
fn ident_before(s: &str) -> Option<String> {
    let trimmed = s.trim_end();
    let end = trimmed.len();
    let start = trimmed
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_alphanumeric() || *c == '_')
        .last()
        .map(|(i, _)| i)?;
    let ident = &trimmed[start..end];
    let first = ident.chars().next()?;
    if first.is_alphabetic() || first == '_' {
        Some(ident.to_string())
    } else {
        None
    }
}

/// Whether `code` iterates over binding `name`.
fn iterates(code: &str, name: &str) -> bool {
    for pattern in [
        format!("in {name}"),
        format!("in &{name}"),
        format!("in &mut {name}"),
        format!("{name}.iter()"),
        format!("{name}.iter_mut()"),
        format!("{name}.into_iter()"),
        format!("{name}.keys()"),
        format!("{name}.values()"),
        format!("{name}.values_mut()"),
        format!("{name}.drain("),
    ] {
        if code.contains(&pattern) {
            return true;
        }
    }
    false
}

/// Lints one file's content. `path` decides the thread-spawn allowlist and
/// the crate-root rule; it does not need to exist on disk.
pub fn lint_source(path: &str, content: &str) -> Vec<Finding> {
    let file = scan(path, content);
    let mut findings = Vec::new();
    let mut push = |idx: usize, rule: Rule, message: String| {
        if !allowed(&file, idx, rule) {
            findings.push(Finding { path: path.to_string(), line: idx + 1, rule, message });
        }
    };

    // File-local identifiers bound to unordered containers, for the
    // iteration rule (a waived HashMap is still a dispatch-order hazard
    // when iterated).
    let mut unordered: Vec<String> = Vec::new();
    for line in &file.lines {
        unordered.extend(unordered_bindings(&line.code));
    }
    unordered.sort();
    unordered.dedup();

    // Hot-path tracking for `hot-path-alloc`: a `ds-lint: hot-path` marker in
    // a comment arms the rule for the next `fn`; the function's extent is the
    // brace span opened after its signature. Tracking is textual (brace
    // counting on comment-stripped code), which the seeded fixture pins.
    let mut depth = 0i64;
    let mut armed = false;
    let mut hot_base: Option<i64> = None;
    let mut hot_entered = false;

    for (idx, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        if line.comment.contains("ds-lint: hot-path") {
            armed = true;
        }
        if armed && has_token(code, "fn") {
            hot_base = Some(depth);
            hot_entered = false;
            armed = false;
        }
        if hot_base.is_some() {
            for marker in ALLOC_TOKENS {
                if code.contains(marker) {
                    push(
                        idx,
                        Rule::HotPathAlloc,
                        format!(
                            "`{marker}` allocates inside a `ds-lint: hot-path` function: \
                             per-delivery code must run on recycled buffers and arena handles"
                        ),
                    );
                }
            }
        }
        depth += code.matches('{').count() as i64;
        if let Some(base) = hot_base {
            if depth > base {
                hot_entered = true;
            }
        }
        depth -= code.matches('}').count() as i64;
        if let Some(base) = hot_base {
            if hot_entered && depth <= base {
                hot_base = None;
            }
        }
        for marker in ["HashMap", "HashSet"] {
            if has_token(code, marker) {
                push(
                    idx,
                    Rule::UnorderedCollections,
                    format!(
                        "{marker} hashes with a per-process random seed; iteration order is \
                         nondeterministic — use BTreeMap/BTreeSet (or waive with a pragma and a \
                         deterministic BuildHasher)"
                    ),
                );
            }
        }
        for name in &unordered {
            if iterates(code, name) {
                push(
                    idx,
                    Rule::UnorderedIteration,
                    format!(
                        "iterating `{name}`, an unordered container: the visit order is \
                         nondeterministic and must not feed event dispatch"
                    ),
                );
            }
        }
        for marker in ["Instant", "SystemTime"] {
            if has_token(code, marker) {
                push(
                    idx,
                    Rule::WallClock,
                    format!(
                        "{marker} reads wall-clock time, which differs per run; simulation time \
                         must come from the engine's tick counter"
                    ),
                );
            }
        }
        for marker in ["thread::current", "ThreadId", "available_parallelism"] {
            if has_token(code, marker) {
                push(
                    idx,
                    Rule::AmbientAuthority,
                    format!(
                        "`{marker}` exposes host/thread identity; anything schedule-affecting \
                         must be derived from deterministic inputs"
                    ),
                );
            }
        }
        if (code.contains("*const") || code.contains("*mut"))
            && ["as usize", "as u64", "as u32", "as isize", "as i64"]
                .iter()
                .any(|c| code.contains(c))
        {
            push(
                idx,
                Rule::AmbientAuthority,
                "casting a pointer to an integer leaks allocator addresses, which differ per \
                 run; derive keys from stable ids instead"
                    .to_string(),
            );
        }
        if !thread_spawn_allowlisted(path) {
            for marker in ["thread::spawn", "thread::scope", "thread::Builder"] {
                if has_token(code, marker) {
                    push(
                        idx,
                        Rule::ThreadSpawn,
                        format!(
                            "`{marker}` outside the worker pool: all parallelism must go \
                             through the shard/merge contract's pool (ds-netsim::pool)"
                        ),
                    );
                }
            }
        }
        if has_token(code, "unsafe") {
            let mut documented = line.comment.contains("SAFETY:");
            let mut i = idx;
            while !documented && i > 0 && file.lines[i - 1].is_comment_only() {
                i -= 1;
                documented = file.lines[i].comment.contains("SAFETY:");
            }
            if !documented {
                push(
                    idx,
                    Rule::MissingSafetyComment,
                    "`unsafe` without a `// SAFETY:` comment in the directly preceding comment \
                     block"
                        .to_string(),
                );
            }
        }
    }

    if is_crate_root(path) {
        let has_gate = file.lines.iter().any(|l| {
            l.code.contains("#![forbid(unsafe_code)]")
                || l.code.contains("#![deny(unsafe_op_in_unsafe_fn)]")
        });
        let waived =
            file.lines.iter().any(|l| l.comment.contains("ds-lint: allow(missing-forbid-unsafe)"));
        if !has_gate && !waived {
            findings.push(Finding {
                path: path.to_string(),
                line: 1,
                rule: Rule::MissingForbidUnsafe,
                message: "crate root lacks `#![forbid(unsafe_code)]` (or, for crates with \
                          audited unsafe, `#![deny(unsafe_op_in_unsafe_fn)]`)"
                    .to_string(),
            });
        }
    }

    findings
}

/// Lints a set of `(path, content)` pairs, concatenating findings in input
/// order.
pub fn lint_files<P: AsRef<str>, C: AsRef<str>>(files: &[(P, C)]) -> Vec<Finding> {
    files.iter().flat_map(|(p, c)| lint_source(p.as_ref(), c.as_ref())).collect()
}

// ---------------------------------------------------------------------------
// Self-test: one seeded violation per rule, plus the pragma escape.
// ---------------------------------------------------------------------------

/// The self-test fixtures: `(fixture path as linted, content, rule that must
/// fire)`. Paths are synthetic — chosen so the allowlist and crate-root rules
/// apply the way each fixture needs.
pub fn fixtures() -> Vec<(&'static str, &'static str, Rule)> {
    vec![
        (
            "fixtures/unordered_collections.rs",
            include_str!("../fixtures/unordered_collections.rs"),
            Rule::UnorderedCollections,
        ),
        (
            "fixtures/unordered_iteration.rs",
            include_str!("../fixtures/unordered_iteration.rs"),
            Rule::UnorderedIteration,
        ),
        ("fixtures/wall_clock.rs", include_str!("../fixtures/wall_clock.rs"), Rule::WallClock),
        (
            "fixtures/ambient_authority.rs",
            include_str!("../fixtures/ambient_authority.rs"),
            Rule::AmbientAuthority,
        ),
        (
            "fixtures/thread_spawn.rs",
            include_str!("../fixtures/thread_spawn.rs"),
            Rule::ThreadSpawn,
        ),
        (
            "fixtures/missing_safety_comment.rs",
            include_str!("../fixtures/missing_safety_comment.rs"),
            Rule::MissingSafetyComment,
        ),
        (
            "fixtures/missing_forbid_unsafe/lib.rs",
            include_str!("../fixtures/missing_forbid_unsafe.rs"),
            Rule::MissingForbidUnsafe,
        ),
        (
            "fixtures/hot_path_alloc.rs",
            include_str!("../fixtures/hot_path_alloc.rs"),
            Rule::HotPathAlloc,
        ),
    ]
}

/// Runs the seeded-violation self-test: every rule must fire on its fixture,
/// and the pragma fixture must produce no findings. Returns the list of
/// failures (empty on success).
pub fn self_test() -> Vec<String> {
    let mut failures = Vec::new();
    for (path, content, rule) in fixtures() {
        let findings = lint_source(path, content);
        if !findings.iter().any(|f| f.rule == rule) {
            failures.push(format!("rule `{}` did not fire on {path}", rule.name()));
        }
    }
    let escape =
        lint_source("fixtures/allow_escape.rs", include_str!("../fixtures/allow_escape.rs"));
    for f in escape {
        failures.push(format!("pragma failed to waive: {f}"));
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_fires_on_its_fixture_and_pragmas_waive() {
        let failures = self_test();
        assert!(failures.is_empty(), "self-test failures:\n{}", failures.join("\n"));
    }

    #[test]
    fn fixtures_cover_every_rule() {
        let mut covered: Vec<Rule> = fixtures().into_iter().map(|(_, _, r)| r).collect();
        covered.sort();
        covered.dedup();
        assert_eq!(covered, Rule::ALL.to_vec());
    }

    #[test]
    fn comments_and_strings_do_not_trigger_rules() {
        let src = r#"
//! Uses no HashMap; mentions Instant only in docs.
#![forbid(unsafe_code)]
/// thread::spawn is discussed here, not called.
fn f() -> &'static str {
    "HashMap SystemTime thread::scope unsafe"
}
"#;
        assert_eq!(lint_source("x/lib.rs", src), vec![]);
    }

    #[test]
    fn pragma_waives_only_the_named_rule() {
        let src =
            "// ds-lint: allow(wall-clock) — test\nlet t = (Instant::now(), HashMap::new());\n";
        let findings = lint_source("x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::UnorderedCollections);
    }

    #[test]
    fn pragma_reaches_through_a_comment_block() {
        let src = "// ds-lint: allow(wall-clock) — justified\n// continued explanation\nlet t = Instant::now();\n";
        assert_eq!(lint_source("x.rs", src), vec![]);
        // …but not through intervening code.
        let src = "// ds-lint: allow(wall-clock)\nlet a = 1;\nlet t = Instant::now();\n";
        assert_eq!(lint_source("x.rs", src).len(), 1);
    }

    #[test]
    fn pool_rs_may_spawn_threads_but_others_may_not() {
        // The allowlist names exactly one module: the worker pool. The sharded
        // engine proper moved off the list when it handed its `thread::scope`
        // to `pool.rs`, so a thread token creeping back into `sharded.rs`
        // must be flagged like any other file's.
        let src = "std::thread::scope(|s| {});\n";
        assert_eq!(lint_source("crates/netsim/src/pool.rs", src), vec![]);
        assert_eq!(lint_source("crates/netsim/src/sharded.rs", src).len(), 1);
        assert_eq!(lint_source("crates/netsim/src/async_engine.rs", src).len(), 1);
    }

    #[test]
    fn safety_comment_satisfies_the_unsafe_rule() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\n// SAFETY: len checked above.\nlet x = unsafe { p.read() };\n";
        assert_eq!(lint_source("y/lib.rs", src), vec![]);
    }

    #[test]
    fn hot_path_alloc_fires_only_inside_the_marked_function() {
        let src = "\
// ds-lint: hot-path
fn hot(buf: &mut Vec<u8>) {
    let v = vec![1, 2];
    buf.push(v[0]);
}
fn cold() -> Vec<u8> {
    Vec::new()
}
";
        let findings = lint_source("x.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::HotPathAlloc);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn hot_path_alloc_scope_ends_with_the_function_body() {
        // Nested braces inside the hot function stay hot; the sibling after
        // its closing brace is cold again.
        let src = "\
// ds-lint: hot-path
fn hot(n: usize) {
    if n > 0 {
        let b = Box::new(n);
        drop(b);
    }
}
fn sibling() {
    let s = String::new();
    drop(s);
}
";
        let findings = lint_source("x.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn findings_render_with_path_line_and_rule() {
        let f =
            Finding { path: "a.rs".into(), line: 3, rule: Rule::WallClock, message: "m".into() };
        assert_eq!(format!("{f}"), "a.rs:3: [wall-clock] m");
    }
}
