//! Criterion micro-benchmarks: one per reproduced quantity that is fast enough to run
//! repeatedly (cover construction, registration-abstraction round trips, and a full
//! synchronized BFS on a small graph). The larger sweeps live in the `exp_*` binaries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ds_algos::bfs::run_synchronized_bfs;
use ds_covers::builder::build_sparse_cover;
use ds_graph::{Graph, NodeId};
use ds_netsim::delay::DelayModel;
use ds_sync::registration::{RegistrationInstance, TreePosition};

fn bench_cover_construction(c: &mut Criterion) {
    let graph = Graph::random_connected(64, 0.05, 3);
    c.bench_function("sparse_cover_d4_n64", |b| {
        b.iter(|| build_sparse_cover(&graph, 4));
    });
}

fn bench_registration_roundtrip(c: &mut Criterion) {
    // One register/deregister cycle on a path cluster tree of depth 32, driven
    // directly (Lemma 3.4: O(h) messages).
    c.bench_function("registration_roundtrip_depth32", |b| {
        b.iter_batched(
            || {
                (0..33usize)
                    .map(|v| {
                        RegistrationInstance::new(TreePosition {
                            parent: if v == 0 { None } else { Some(NodeId(v - 1)) },
                            children: if v == 32 { vec![] } else { vec![NodeId(v + 1)] },
                        })
                    })
                    .collect::<Vec<_>>()
            },
            |mut nodes| {
                use ds_sync::registration::{RegAction, RegMsg};
                let mut queue: Vec<(usize, usize, RegMsg)> = Vec::new();
                let mut actions = Vec::new();
                nodes[32].register(&mut actions);
                let mut apply = |from: usize, acts: Vec<RegAction>, queue: &mut Vec<(usize, usize, RegMsg)>| {
                    for a in acts {
                        if let RegAction::Send { to, msg } = a {
                            queue.push((from, to.index(), msg));
                        }
                    }
                };
                apply(32, actions, &mut queue);
                let mut deregistered = false;
                loop {
                    if queue.is_empty() {
                        if deregistered {
                            break;
                        }
                        deregistered = true;
                        let mut acts = Vec::new();
                        nodes[32].deregister(&mut acts);
                        apply(32, acts, &mut queue);
                        continue;
                    }
                    let (from, to, msg) = queue.remove(0);
                    let mut acts = Vec::new();
                    nodes[to].on_message(NodeId(from), msg, &mut acts);
                    apply(to, acts, &mut queue);
                }
                nodes
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_synchronized_bfs(c: &mut Criterion) {
    let graph = Graph::grid(5, 5);
    let mut group = c.benchmark_group("synchronized_bfs");
    group.sample_size(10);
    group.bench_function("grid5x5_jitter", |b| {
        b.iter(|| run_synchronized_bfs(&graph, NodeId(0), DelayModel::jitter(1)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_cover_construction, bench_registration_roundtrip, bench_synchronized_bfs);
criterion_main!(benches);
