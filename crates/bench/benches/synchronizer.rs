//! Micro-benchmarks, one per reproduced quantity that is fast enough to run
//! repeatedly: cover construction, registration-abstraction round trips, and a full
//! synchronized BFS on a small graph (driven through `Session` like every other
//! execution in the workspace). The larger sweeps live in the `exp_*` binaries.
//!
//! The workspace builds without external crates, so this is a `harness = false`
//! bench with a small hand-rolled timing loop instead of criterion: each case is
//! warmed up, then timed over enough iterations to fill ~0.2 s, and the per-iteration
//! median of several samples is reported.

use ds_algos::bfs::BfsAlgorithm;
use ds_covers::builder::build_sparse_cover;
use ds_graph::{Graph, NodeId};
use ds_netsim::delay::DelayModel;
use ds_sync::registration::{RegAction, RegMsg, RegistrationInstance, TreePosition};
use ds_sync::session::{Session, SyncKind};
use std::time::{Duration, Instant};

/// Times `f` and prints its per-iteration median over `SAMPLES` samples.
fn bench(name: &str, mut f: impl FnMut()) {
    const SAMPLES: usize = 7;
    const TARGET: Duration = Duration::from_millis(200);

    // Warm-up and iteration-count calibration.
    let start = Instant::now();
    f();
    let once = start.elapsed().max(Duration::from_nanos(1));
    let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

    let mut per_iter: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed() / iters
        })
        .collect();
    per_iter.sort();
    println!(
        "{name:<40} {:>12.3?} / iter  ({iters} iters x {SAMPLES} samples)",
        per_iter[SAMPLES / 2]
    );
}

fn bench_cover_construction() {
    let graph = Graph::random_connected(64, 0.05, 3);
    bench("sparse_cover_d4_n64", || {
        let cover = build_sparse_cover(&graph, 4);
        assert!(cover.cluster_count() > 0);
    });
}

fn bench_registration_roundtrip() {
    // One register/deregister cycle on a path cluster tree of depth 32, driven
    // directly (Lemma 3.4: O(h) messages). Instances are one-shot, so each
    // iteration starts from a clone of a prebuilt template; the clone is the only
    // setup inside the timed loop.
    let template: Vec<RegistrationInstance> = (0..33usize)
        .map(|v| {
            RegistrationInstance::new(TreePosition {
                parent: if v == 0 { None } else { Some(NodeId(v - 1)) },
                children: if v == 32 { vec![] } else { vec![NodeId(v + 1)] },
            })
        })
        .collect();
    bench("registration_roundtrip_depth32", || {
        let mut nodes = template.clone();
        let mut queue: Vec<(usize, usize, RegMsg)> = Vec::new();
        let apply = |from: usize, acts: Vec<RegAction>, queue: &mut Vec<(usize, usize, RegMsg)>| {
            for a in acts {
                if let RegAction::Send { to, msg } = a {
                    queue.push((from, to.index(), msg));
                }
            }
        };
        let mut actions = Vec::new();
        nodes[32].register(&mut actions);
        apply(32, actions, &mut queue);
        let mut deregistered = false;
        loop {
            if queue.is_empty() {
                if deregistered {
                    break;
                }
                deregistered = true;
                let mut acts = Vec::new();
                nodes[32].deregister(&mut acts);
                apply(32, acts, &mut queue);
                continue;
            }
            let (from, to, msg) = queue.remove(0);
            let mut acts = Vec::new();
            nodes[to].on_message(NodeId(from), msg, &mut acts);
            apply(to, acts, &mut queue);
        }
    });
}

fn bench_synchronized_bfs() {
    let graph = Graph::grid(5, 5);
    // Build the synchronizer configuration once, outside the timed loop: with
    // `DetAuto` every iteration would also run the synchronous ground truth and
    // rebuild the sparse cover (benchmarked separately above), conflating three
    // quantities into one number.
    let bound = ds_graph::metrics::diameter(&graph).expect("connected") as u64 + 1;
    let cfg = ds_sync::synchronizer::SynchronizerConfig::build(&graph, bound);
    let session = Session::on(&graph)
        .delay(DelayModel::jitter(1))
        .synchronizer(SyncKind::Det(cfg))
        .pulse_bound(bound);
    bench("synchronized_bfs_grid5x5_jitter", || {
        let run = session.run(|v| BfsAlgorithm::new(&graph, v, &[NodeId(0)])).unwrap();
        assert!(run.outputs.iter().all(Option::is_some));
    });
}

fn main() {
    println!("== synchronizer micro-benchmarks");
    bench_cover_construction();
    bench_registration_roundtrip();
    bench_synchronized_bfs();
}
