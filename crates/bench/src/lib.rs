//! Experiment harness reproducing the paper's complexity claims (see DESIGN.md §4).
//!
//! Each experiment runs a workload over a parameter sweep, collects one [`Row`] per
//! parameter point, and returns the rows so that tests and captured logs stay
//! consistent; the `exp_*` binaries print them through the shared [`table`] module.
//! The paper has no numbered tables or figures (it is a theory paper), so every
//! experiment targets a theorem: the quantities of interest are time and message
//! *overhead factors* and their growth with `n`.
//!
//! All executions flow through [`Session`] and the
//! [`Synchronizer`](ds_sync::executor::Synchronizer) trait — the baseline
//! comparison (E2) is literally a loop over [`SyncKind::standard_suite`], with no
//! per-baseline runner code.

#![forbid(unsafe_code)]

pub mod compare;
pub mod json;
pub mod perf;
pub mod service;
pub mod table;

pub use table::{print_table, render_table, Row};

use ds_algos::bfs::BfsAlgorithm;
use ds_algos::flood::FloodAlgorithm;
use ds_algos::leader::run_synchronized_leader_election;
use ds_algos::mst::run_synchronized_mst;
use ds_covers::builder::build_layered_sparse_cover;
use ds_covers::stats::layered_stats;
use ds_graph::weights::{minimum_spanning_tree, EdgeWeights};
use ds_graph::{metrics, Graph, NodeId};
use ds_netsim::delay::DelayModel;
use ds_netsim::sync_engine::run_sync;
use ds_sync::session::{Session, SyncKind};

/// The graph families used by the sweeps.
pub fn graph_suite(sizes: &[usize]) -> Vec<(String, Graph)> {
    let mut out = Vec::new();
    for &n in sizes {
        out.push((format!("path/{n}"), Graph::path(n)));
        let side = (n as f64).sqrt().round().max(2.0) as usize;
        out.push((format!("grid/{}", side * side), Graph::grid(side, side)));
        out.push((
            format!("random/{n}"),
            Graph::random_connected(n, (3.0 / n as f64).min(1.0), n as u64),
        ));
    }
    out
}

/// E1 — Theorem 1.1 / 5.3: time and message overheads of the deterministic
/// synchronizer on single-source BFS, across graph families and sizes.
pub fn experiment_overhead(sizes: &[usize], delay_seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for (label, graph) in graph_suite(sizes) {
        let report = Session::on(&graph)
            .delay(DelayModel::jitter(delay_seed))
            .synchronizer(SyncKind::DetAuto)
            .compare(|v| BfsAlgorithm::new(&graph, v, &[NodeId(0)]))
            .expect("comparison run");
        let n = graph.node_count() as f64;
        rows.push(Row {
            label,
            values: vec![
                ("match", if report.outputs_match() { 1.0 } else { 0.0 }),
                ("n", n),
                ("m", graph.edge_count() as f64),
                ("T(A)", report.sync_rounds as f64),
                ("M(A)", report.sync_messages as f64),
                ("asyncT", report.async_metrics.time_to_output.unwrap_or(f64::NAN)),
                ("asyncM", report.async_metrics.total_messages() as f64),
                ("timeOvh", report.time_overhead().unwrap_or(f64::NAN)),
                ("msgOvh", report.message_overhead()),
                (
                    "msg/(m·lg²n)",
                    report.async_metrics.total_messages() as f64
                        / (graph.edge_count() as f64 * n.log2().powi(2)),
                ),
            ],
        });
    }
    rows
}

/// E2 — Appendix A comparison: every execution strategy (direct, α, β, det) on the
/// same flooding workload, as one parametrized sweep over [`SyncKind`]. One row per
/// (graph, synchronizer); outputs are asserted to match the ground truth in every
/// case.
pub fn experiment_baselines(sizes: &[usize], delay_seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        let side = (n as f64).sqrt().round().max(2.0) as usize;
        let graph = Graph::grid(side, side);
        let source = NodeId(0);
        let delay = DelayModel::jitter(delay_seed);
        // One ground-truth run per graph: `compare` would re-run it for every kind
        // (and the direct row would duplicate it a fifth time).
        let truth = run_sync(&graph, &mut |v| FloodAlgorithm::new(&graph, v, source, 1), 1_000_000)
            .expect("ground truth");
        let (t, m) = (truth.rounds_to_quiescence, truth.messages);
        for kind in SyncKind::standard_suite() {
            let run = Session::on(&graph)
                .delay(delay.clone())
                .synchronizer(kind.clone())
                .pulse_bound(t)
                .run(|v| FloodAlgorithm::new(&graph, v, source, 1))
                .expect("baseline run");
            assert_eq!(run.outputs, truth.outputs(), "{} diverged on grid/{n}", kind.label());
            rows.push(Row {
                label: format!("grid/{}/{}", side * side, kind.label()),
                values: vec![
                    ("n", graph.node_count() as f64),
                    ("T(A)", t as f64),
                    ("M(A)", m as f64),
                    ("time", run.metrics.time_to_output.unwrap_or(f64::NAN)),
                    ("msgs", run.metrics.total_messages() as f64),
                    ("timeOvh", run.metrics.time_to_output.unwrap_or(f64::NAN) / t.max(1) as f64),
                    ("msgOvh", run.metrics.total_messages() as f64 / m.max(1) as f64),
                ],
            });
        }
    }
    rows
}

/// E3/E4/E5 — the Section 6 applications: asynchronous BFS, leader election and MST,
/// with their time and message costs next to `D`, `m` and `n`.
pub fn experiment_applications(sizes: &[usize], delay_seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        let graph = Graph::random_connected(n, (3.0 / n as f64).min(1.0), n as u64 + 7);
        let d = metrics::diameter(&graph).unwrap() as f64;
        let delay = DelayModel::jitter(delay_seed);

        let bfs = ds_algos::bfs::run_synchronized_bfs(&graph, NodeId(0), delay.clone()).unwrap();
        let le = run_synchronized_leader_election(&graph, delay.clone()).unwrap();
        let weights = EdgeWeights::random_distinct(&graph, n as u64);
        let mst = run_synchronized_mst(&graph, &weights, delay).unwrap();
        let reference = minimum_spanning_tree(&graph, &weights);
        assert_eq!(mst.tree_edges.len(), reference.len());

        rows.push(Row {
            label: format!("random/{n}"),
            values: vec![
                ("n", n as f64),
                ("m", graph.edge_count() as f64),
                ("D", d),
                ("bfsT", bfs.metrics.time_to_output.unwrap_or(f64::NAN)),
                ("bfsM", bfs.metrics.total_messages() as f64),
                ("leT", le.metrics.time_to_output.unwrap_or(f64::NAN)),
                ("leM", le.metrics.total_messages() as f64),
                ("mstT", mst.metrics.time_to_output.unwrap_or(f64::NAN)),
                ("mstM", mst.metrics.total_messages() as f64),
            ],
        });
    }
    rows
}

/// E6 — sparse-cover quality (Definition 2.1 / Theorem 4.21): membership, stretch and
/// edge load per layer.
pub fn experiment_covers(sizes: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        let graph = Graph::random_connected(n, (3.0 / n as f64).min(1.0), 3 * n as u64);
        let d = metrics::diameter(&graph).unwrap().max(1);
        let layered = build_layered_sparse_cover(&graph, d);
        for stats in layered_stats(&graph, &layered) {
            rows.push(Row {
                label: format!("random/{n} d={}", stats.radius),
                values: vec![
                    ("n", n as f64),
                    ("clusters", stats.clusters as f64),
                    ("maxMember", stats.max_membership as f64),
                    ("avgMember", stats.avg_membership),
                    ("treeHeight", stats.max_tree_height as f64),
                    ("stretch", stats.stretch),
                    ("edgeLoad", stats.max_edge_load as f64),
                ],
            });
        }
    }
    rows
}

/// E8 — robustness: the synchronized BFS under every delay adversary; outputs must
/// match the synchronous run in every case.
pub fn experiment_adversaries(n: usize) -> Vec<Row> {
    let graph = Graph::random_connected(n, (3.0 / n as f64).min(1.0), 11);
    let mut rows = Vec::new();
    for delay in DelayModel::standard_suite(5) {
        let report = Session::on(&graph)
            .delay(delay.clone())
            .synchronizer(SyncKind::DetAuto)
            .compare(|v| BfsAlgorithm::new(&graph, v, &[NodeId(0)]))
            .expect("run");
        assert!(report.outputs_match(), "{delay:?}");
        rows.push(Row {
            label: format!("{delay:?}"),
            values: vec![
                ("match", 1.0),
                ("asyncT", report.async_metrics.time_to_output.unwrap_or(f64::NAN)),
                ("asyncM", report.async_metrics.total_messages() as f64),
                ("timeOvh", report.time_overhead().unwrap_or(f64::NAN)),
                ("msgOvh", report.message_overhead()),
            ],
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_rows_have_matching_outputs_and_bounded_overhead() {
        let rows = experiment_overhead(&[16], 1);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.value("match"), Some(1.0));
            assert!(row.value("msgOvh").unwrap() >= 1.0);
            assert!(row.value("timeOvh").unwrap() > 0.0);
        }
    }

    #[test]
    fn baseline_sweep_covers_all_kinds_and_alpha_pays_per_pulse_edges() {
        let rows = experiment_baselines(&[16], 2);
        // One row per synchronizer kind, all on the same workload.
        let labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
        for kind in ["direct", "alpha", "beta", "det"] {
            assert!(
                labels.iter().any(|l| l.ends_with(kind)),
                "missing row for {kind} in {labels:?}"
            );
        }
        // α sends Θ(m) safety messages per pulse, so with T ≈ 2·diameter pulses its
        // message count must exceed the algorithm's own by a large factor.
        let alpha = rows.iter().find(|r| r.label.ends_with("alpha")).unwrap();
        assert!(alpha.value("msgs").unwrap() > 4.0 * alpha.value("M(A)").unwrap());
        // The direct row is the ground truth: messages equal M(A) exactly.
        let direct = rows.iter().find(|r| r.label.ends_with("direct")).unwrap();
        assert_eq!(direct.value("msgs"), direct.value("M(A)"));
    }

    #[test]
    fn cover_rows_report_valid_statistics() {
        let rows = experiment_covers(&[20]);
        assert!(!rows.is_empty());
        for row in rows {
            assert!(row.value("maxMember").unwrap() >= 1.0);
            // Stretch can drop below 1 when the layer's radius exceeds the graph
            // diameter (the tree is then shallower than the radius).
            assert!(row.value("stretch").unwrap() > 0.0);
        }
    }

    #[test]
    fn adversary_rows_always_match() {
        for row in experiment_adversaries(18) {
            assert_eq!(row.value("match"), Some(1.0));
        }
    }
}
