//! Experiment harness reproducing the paper's complexity claims (see DESIGN.md §4 and
//! EXPERIMENTS.md).
//!
//! Each experiment runs a workload over a parameter sweep, prints one table row per
//! parameter point, and returns the rows so that tests and the captured logs in
//! EXPERIMENTS.md stay consistent. The paper has no numbered tables or figures (it is
//! a theory paper), so every experiment targets a theorem: the quantities of interest
//! are time and message *overhead factors* and their growth with `n`.

use ds_algos::bfs::BfsAlgorithm;
use ds_algos::flood::FloodAlgorithm;
use ds_algos::leader::run_synchronized_leader_election;
use ds_algos::mst::run_synchronized_mst;
use ds_algos::runner::compare_runs;
use ds_covers::builder::build_layered_sparse_cover;
use ds_covers::stats::layered_stats;
use ds_graph::weights::{minimum_spanning_tree, EdgeWeights};
use ds_graph::{metrics, Graph, NodeId};
use ds_netsim::async_engine::{run_async, SimLimits};
use ds_netsim::delay::DelayModel;
use ds_netsim::sync_engine::run_sync;
use ds_sync::alpha::AlphaSynchronizer;
use ds_sync::beta::{BetaSynchronizer, SpanningTree};

/// One row of an experiment table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Label of the parameter point (graph family, size, adversary, ...).
    pub label: String,
    /// Named measurements, printed in order.
    pub values: Vec<(&'static str, f64)>,
}

impl Row {
    /// Looks up a measurement by name.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.values.iter().find(|(k, _)| *k == name).map(|(_, v)| *v)
    }
}

/// Prints a table of rows with a header derived from the first row.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("== {title}");
    if let Some(first) = rows.first() {
        let header: Vec<String> = first.values.iter().map(|(k, _)| format!("{k:>12}")).collect();
        println!("{:<28} {}", "workload", header.join(" "));
    }
    for row in rows {
        let cells: Vec<String> = row.values.iter().map(|(_, v)| format!("{v:>12.2}")).collect();
        println!("{:<28} {}", row.label, cells.join(" "));
    }
    println!();
}

/// The graph families used by the sweeps.
pub fn graph_suite(sizes: &[usize]) -> Vec<(String, Graph)> {
    let mut out = Vec::new();
    for &n in sizes {
        out.push((format!("path/{n}"), Graph::path(n)));
        let side = (n as f64).sqrt().round().max(2.0) as usize;
        out.push((format!("grid/{}", side * side), Graph::grid(side, side)));
        out.push((
            format!("random/{n}"),
            Graph::random_connected(n, (3.0 / n as f64).min(1.0), n as u64),
        ));
    }
    out
}

/// E1 — Theorem 1.1 / 5.3: time and message overheads of the deterministic
/// synchronizer on single-source BFS, across graph families and sizes.
pub fn experiment_overhead(sizes: &[usize], delay_seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for (label, graph) in graph_suite(sizes) {
        let report = compare_runs(&graph, DelayModel::jitter(delay_seed), |v| {
            BfsAlgorithm::new(&graph, v, &[NodeId(0)])
        })
        .expect("comparison run");
        let n = graph.node_count() as f64;
        rows.push(Row {
            label,
            values: vec![
                ("match", if report.outputs_match() { 1.0 } else { 0.0 }),
                ("n", n),
                ("m", graph.edge_count() as f64),
                ("T(A)", report.sync_rounds as f64),
                ("M(A)", report.sync_messages as f64),
                ("asyncT", report.async_metrics.time_to_output.unwrap_or(f64::NAN)),
                ("asyncM", report.async_metrics.total_messages() as f64),
                ("timeOvh", report.time_overhead().unwrap_or(f64::NAN)),
                ("msgOvh", report.message_overhead()),
                ("msg/(m·lg²n)", report.async_metrics.total_messages() as f64
                    / (graph.edge_count() as f64 * n.log2().powi(2))),
            ],
        });
    }
    rows
}

/// E2 — Appendix A comparison: α, β and the deterministic synchronizer on the same
/// flooding workload.
pub fn experiment_baselines(sizes: &[usize], delay_seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        let side = (n as f64).sqrt().round().max(2.0) as usize;
        let graph = Graph::grid(side, side);
        let source = NodeId(0);
        let make = |v: NodeId| FloodAlgorithm::new(&graph, v, source, 1);
        let sync = run_sync(&graph, make, 100_000).expect("sync run");
        let t = sync.rounds_to_quiescence;
        let delay = DelayModel::jitter(delay_seed);

        let alpha = run_async(
            &graph,
            delay.clone(),
            |v| AlphaSynchronizer::new(&graph, v, make(v), t),
            SimLimits::default(),
        )
        .expect("alpha run");
        let tree = SpanningTree::bfs(&graph, source);
        let beta = run_async(
            &graph,
            delay.clone(),
            |v| BetaSynchronizer::new(tree.clone(), v, make(v), t),
            SimLimits::default(),
        )
        .expect("beta run");
        let det = compare_runs(&graph, delay, make).expect("det run");
        assert!(det.outputs_match());

        rows.push(Row {
            label: format!("grid/{}", side * side),
            values: vec![
                ("n", graph.node_count() as f64),
                ("T(A)", t as f64),
                ("M(A)", sync.messages as f64),
                ("alphaM", alpha.metrics.total_messages() as f64),
                ("betaM", beta.metrics.total_messages() as f64),
                ("detM", det.async_metrics.total_messages() as f64),
                ("alphaT", alpha.metrics.time_to_output.unwrap_or(f64::NAN)),
                ("betaT", beta.metrics.time_to_output.unwrap_or(f64::NAN)),
                ("detT", det.async_metrics.time_to_output.unwrap_or(f64::NAN)),
            ],
        });
    }
    rows
}

/// E3/E4/E5 — the Section 6 applications: asynchronous BFS, leader election and MST,
/// with their time and message costs next to `D`, `m` and `n`.
pub fn experiment_applications(sizes: &[usize], delay_seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        let graph = Graph::random_connected(n, (3.0 / n as f64).min(1.0), n as u64 + 7);
        let d = metrics::diameter(&graph).unwrap() as f64;
        let delay = DelayModel::jitter(delay_seed);

        let bfs = ds_algos::bfs::run_synchronized_bfs(&graph, NodeId(0), delay.clone()).unwrap();
        let le = run_synchronized_leader_election(&graph, delay.clone()).unwrap();
        let weights = EdgeWeights::random_distinct(&graph, n as u64);
        let mst = run_synchronized_mst(&graph, &weights, delay).unwrap();
        let reference = minimum_spanning_tree(&graph, &weights);
        assert_eq!(mst.tree_edges.len(), reference.len());

        rows.push(Row {
            label: format!("random/{n}"),
            values: vec![
                ("n", n as f64),
                ("m", graph.edge_count() as f64),
                ("D", d),
                ("bfsT", bfs.metrics.time_to_output.unwrap_or(f64::NAN)),
                ("bfsM", bfs.metrics.total_messages() as f64),
                ("leT", le.metrics.time_to_output.unwrap_or(f64::NAN)),
                ("leM", le.metrics.total_messages() as f64),
                ("mstT", mst.metrics.time_to_output.unwrap_or(f64::NAN)),
                ("mstM", mst.metrics.total_messages() as f64),
            ],
        });
    }
    rows
}

/// E6 — sparse-cover quality (Definition 2.1 / Theorem 4.21): membership, stretch and
/// edge load per layer.
pub fn experiment_covers(sizes: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        let graph = Graph::random_connected(n, (3.0 / n as f64).min(1.0), 3 * n as u64);
        let d = metrics::diameter(&graph).unwrap().max(1);
        let layered = build_layered_sparse_cover(&graph, d);
        for stats in layered_stats(&graph, &layered) {
            rows.push(Row {
                label: format!("random/{n} d={}", stats.radius),
                values: vec![
                    ("n", n as f64),
                    ("clusters", stats.clusters as f64),
                    ("maxMember", stats.max_membership as f64),
                    ("avgMember", stats.avg_membership),
                    ("treeHeight", stats.max_tree_height as f64),
                    ("stretch", stats.stretch),
                    ("edgeLoad", stats.max_edge_load as f64),
                ],
            });
        }
    }
    rows
}

/// E8 — robustness: the synchronized BFS under every delay adversary; outputs must
/// match the synchronous run in every case.
pub fn experiment_adversaries(n: usize) -> Vec<Row> {
    let graph = Graph::random_connected(n, (3.0 / n as f64).min(1.0), 11);
    let mut rows = Vec::new();
    for delay in DelayModel::standard_suite(5) {
        let report = compare_runs(&graph, delay.clone(), |v| BfsAlgorithm::new(&graph, v, &[NodeId(0)]))
            .expect("run");
        assert!(report.outputs_match(), "{delay:?}");
        rows.push(Row {
            label: format!("{delay:?}"),
            values: vec![
                ("match", 1.0),
                ("asyncT", report.async_metrics.time_to_output.unwrap_or(f64::NAN)),
                ("asyncM", report.async_metrics.total_messages() as f64),
                ("timeOvh", report.time_overhead().unwrap_or(f64::NAN)),
                ("msgOvh", report.message_overhead()),
            ],
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_rows_have_matching_outputs_and_bounded_overhead() {
        let rows = experiment_overhead(&[16], 1);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.value("msgOvh").unwrap() >= 1.0);
            assert!(row.value("timeOvh").unwrap() > 0.0);
        }
    }

    #[test]
    fn baseline_rows_show_alpha_paying_per_pulse_edges() {
        let rows = experiment_baselines(&[16], 2);
        let row = &rows[0];
        // α sends Θ(m) safety messages per pulse, so with T ≈ 2·diameter pulses its
        // message count must exceed the algorithm's own by a large factor.
        assert!(row.value("alphaM").unwrap() > 4.0 * row.value("M(A)").unwrap());
    }

    #[test]
    fn cover_rows_report_valid_statistics() {
        let rows = experiment_covers(&[20]);
        assert!(!rows.is_empty());
        for row in rows {
            assert!(row.value("maxMember").unwrap() >= 1.0);
            // Stretch can drop below 1 when the layer's radius exceeds the graph
            // diameter (the tree is then shallower than the radius).
            assert!(row.value("stretch").unwrap() > 0.0);
        }
    }

    #[test]
    fn adversary_rows_always_match() {
        for row in experiment_adversaries(18) {
            assert_eq!(row.value("match"), Some(1.0));
        }
    }
}
