//! Baseline comparison for the E9 performance artifact.
//!
//! `exp_perf --compare BENCH_synchronizer.json` reruns the matrix and diffs it
//! against a previously committed artifact: per-scenario throughput deltas, plus
//! two failure classes that make the comparison exit non-zero —
//!
//! * a **throughput regression**: a matched scenario slower than the baseline by
//!   more than the tolerance (20 % by default) — catches accidental hot-path
//!   pessimizations,
//! * an **event-count mismatch**: a matched scenario processing a different
//!   number of delivery events — the engine is deterministic, so this means the
//!   simulated *schedule* changed, which a pure performance PR must never do,
//! * a **setup regression**: a matched scenario whose one-off setup cost
//!   (`setup_ms`: cover construction for the det scenarios) grew by more than the
//!   same tolerance — catches pessimizations of `SynchronizerConfig::build`,
//!   which `events_per_sec` deliberately excludes.
//!
//! Scenarios present on only one side (new tiers, retired tiers, smoke subsets)
//! are listed but never fail the comparison.
//!
//! The workspace has no external dependencies, so this module carries a minimal
//! recursive-descent JSON parser — the read-side counterpart of [`crate::json`] —
//! that understands exactly the artifact schema (`DESIGN.md` §4.1).

use crate::perf::PerfRecord;
use crate::table::{render_table, Row};
use std::collections::BTreeMap;

/// Default allowed per-scenario throughput drop before the comparison fails.
pub const DEFAULT_TOLERANCE: f64 = 0.20;

// ---------------------------------------------------------------------------
// Minimal JSON parsing (read-side of `crate::json`)
// ---------------------------------------------------------------------------

/// A parsed JSON value with owned keys (the emitter's [`crate::json::Json`] uses
/// static keys and cannot represent parsed documents).
#[derive(Clone, Debug, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Obj(fields) => fields.get(key),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn error(&self, what: &str) -> String {
        format!("invalid JSON at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek().ok_or_else(|| self.error("unexpected end of input"))? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b't' => self.parse_literal("true", Value::Bool(true)),
            b'f' => self.parse_literal("false", Value::Bool(false)),
            b'n' => self.parse_literal("null", Value::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {lit}")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>().map(Value::Num).map_err(|_| self.error("malformed number"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied().ok_or_else(|| self.error("unclosed string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc =
                        self.bytes.get(self.pos).ok_or_else(|| self.error("unclosed escape"))?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("malformed \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                    self.pos += 1;
                }
                b => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.error("truncated UTF-8"))?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| self.error("bad UTF-8"))?);
                    self.pos += len;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            fields.insert(key, self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Baseline artifact
// ---------------------------------------------------------------------------

/// One scenario of a previously recorded `BENCH_synchronizer.json`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BaselineScenario {
    /// Delivery events processed — must be identical across engine refactors.
    pub events: u64,
    /// Recorded throughput.
    pub events_per_sec: f64,
    /// Recorded one-off setup cost in milliseconds (0 for non-det scenarios;
    /// converted from `setup_seconds` when reading a v1 artifact).
    pub setup_ms: f64,
}

/// A parsed baseline artifact: scenario id → recorded numbers.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// `mode` field of the artifact (`full` or `smoke`).
    pub mode: String,
    /// Scenario id → recorded numbers, sorted by id.
    pub scenarios: BTreeMap<String, BaselineScenario>,
}

impl Baseline {
    /// Parses a `det-synchronizer-bench/v6` artifact, or an older one: v5 (no
    /// `peak_live_handles`/`arena_bytes`/`max_batch` event-arena counters —
    /// the engine predates the recycled arena), v4 (additionally no
    /// `dropped_events`/`fault_transitions` fault counters — the engine
    /// predates fault injection; a checked-in fixture under
    /// `crates/bench/fixtures/` pins this reader), v3 (additionally no
    /// `workers`/`batched_ticks` fields — the engine predates the worker
    /// pool), v2 (additionally no `threads` field — every scenario was
    /// serial) and v1 (records `setup_seconds`, converted to `setup_ms`)
    /// baselines stay readable so regenerating the committed artifact can
    /// never break the comparison gate mid-PR.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema problem.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        const SUPPORTED: [&str; 6] = [
            "det-synchronizer-bench/v6",
            "det-synchronizer-bench/v5",
            "det-synchronizer-bench/v4",
            "det-synchronizer-bench/v3",
            "det-synchronizer-bench/v2",
            "det-synchronizer-bench/v1",
        ];
        let mut parser = Parser::new(text);
        let root = parser.parse_value()?;
        let schema = root.get("schema").and_then(Value::as_str).unwrap_or("");
        if !SUPPORTED.contains(&schema) {
            return Err(format!("unsupported baseline schema {schema:?}"));
        }
        let mode = root.get("mode").and_then(Value::as_str).unwrap_or("unknown").to_string();
        let Some(Value::Arr(raw)) = root.get("scenarios") else {
            return Err("baseline has no scenarios array".into());
        };
        let mut scenarios = BTreeMap::new();
        for s in raw {
            let id = s
                .get("scenario")
                .and_then(Value::as_str)
                .ok_or("scenario without an id")?
                .to_string();
            let events =
                s.get("events").and_then(Value::as_f64).ok_or("scenario without events")?;
            let eps = s
                .get("events_per_sec")
                .and_then(Value::as_f64)
                .ok_or("scenario without events_per_sec")?;
            let setup_ms = s
                .get("setup_ms")
                .and_then(Value::as_f64)
                .or_else(|| s.get("setup_seconds").and_then(Value::as_f64).map(|x| x * 1e3))
                .ok_or("scenario without setup_ms/setup_seconds")?;
            scenarios.insert(
                id,
                BaselineScenario { events: events as u64, events_per_sec: eps, setup_ms },
            );
        }
        Ok(Baseline { mode, scenarios })
    }
}

// ---------------------------------------------------------------------------
// Comparison report
// ---------------------------------------------------------------------------

/// One matched scenario in a [`CompareReport`].
#[derive(Clone, Debug)]
pub struct CompareRow {
    /// Scenario id.
    pub scenario: String,
    /// Recorded numbers from the baseline artifact.
    pub baseline: BaselineScenario,
    /// Events processed by the current run.
    pub events: u64,
    /// Throughput of the current run.
    pub events_per_sec: f64,
    /// One-off setup cost of the current run, milliseconds.
    pub setup_ms: f64,
}

impl CompareRow {
    /// Current throughput over baseline throughput (> 1 is faster).
    pub fn speedup(&self) -> f64 {
        self.events_per_sec / self.baseline.events_per_sec.max(1e-12)
    }
}

/// Result of diffing a fresh E9 run against a recorded baseline.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Matched scenarios, in run order.
    pub rows: Vec<CompareRow>,
    /// Scenario ids present in the run but not in the baseline (new tiers).
    pub only_current: Vec<String>,
    /// Scenario ids present in the baseline but not in the run (smoke subsets).
    pub only_baseline: Vec<String>,
    /// Allowed relative throughput drop before a row counts as a regression.
    pub tolerance: f64,
}

/// Scenarios whose *current* wall time is below this are excluded from the
/// throughput regression check: below ~50 ms, run-to-run noise on a warm machine
/// exceeds the tolerance, so flagging them would make the check flaky (CI runs
/// the smoke matrix, whose scenarios are all this small — there the comparison
/// acts as a pure schedule-determinism check). The gate deliberately looks at
/// the current side only: a genuine pessimization of a fast scenario pushes its
/// current wall time *above* the floor and is still caught. The event-count
/// check applies regardless.
const MIN_COMPARABLE_WALL_SECONDS: f64 = 0.05;

/// Same noise floor for the setup-cost check, in the milliseconds the setup field
/// is recorded in: a setup regression is only flagged when the *current* setup
/// takes at least this long (pessimizing a fast setup pushes it above the floor).
const MIN_COMPARABLE_SETUP_MS: f64 = 50.0;

impl CompareRow {
    fn wall_seconds(&self) -> f64 {
        self.events as f64 / self.events_per_sec.max(1e-12)
    }
}

impl CompareReport {
    /// Matched scenarios slower than the baseline by more than the tolerance,
    /// excluding scenarios too short for a meaningful wall-clock measurement.
    pub fn regressions(&self) -> Vec<&CompareRow> {
        self.rows
            .iter()
            .filter(|r| {
                r.speedup() < 1.0 - self.tolerance
                    && r.wall_seconds() >= MIN_COMPARABLE_WALL_SECONDS
            })
            .collect()
    }

    /// Matched scenarios whose event counts differ — the simulated schedule
    /// changed, which the deterministic engine must never do under refactors.
    pub fn event_mismatches(&self) -> Vec<&CompareRow> {
        self.rows.iter().filter(|r| r.events != r.baseline.events).collect()
    }

    /// Matched scenarios whose one-off setup cost grew by more than the
    /// tolerance, excluding scenarios whose current setup is under the 50 ms
    /// noise floor.
    pub fn setup_regressions(&self) -> Vec<&CompareRow> {
        self.rows
            .iter()
            .filter(|r| {
                r.setup_ms >= MIN_COMPARABLE_SETUP_MS
                    && r.setup_ms > r.baseline.setup_ms * (1.0 + self.tolerance)
            })
            .collect()
    }

    /// Whether the comparison should exit zero.
    pub fn passed(&self) -> bool {
        self.regressions().is_empty()
            && self.event_mismatches().is_empty()
            && self.setup_regressions().is_empty()
    }

    /// Whether the *machine-independent* part of the comparison passed: at
    /// least one scenario matched the baseline and none of the matches drifted
    /// in event count. This is the `--events-only` gate CI uses — runners and
    /// the artifact-recording machine differ (and burstable hosts wobble run
    /// to run by more than any sane tolerance), so wall-clock and setup deltas
    /// are informational there, while a changed schedule fails everywhere.
    /// An empty match set fails too: a renamed tier or a stale CI filter must
    /// not turn the schedule-identity gate into a silent no-op.
    pub fn schedule_ok(&self) -> bool {
        !self.rows.is_empty() && self.event_mismatches().is_empty()
    }

    /// Renders the full human-readable delta report.
    pub fn render(&self) -> String {
        let rows: Vec<Row> = self
            .rows
            .iter()
            .map(|r| Row {
                label: r.scenario.clone(),
                values: vec![
                    ("base_ev/s", r.baseline.events_per_sec),
                    ("new_ev/s", r.events_per_sec),
                    ("speedup", r.speedup()),
                    ("delta%", (r.speedup() - 1.0) * 100.0),
                    ("base_setup", r.baseline.setup_ms),
                    ("new_setup", r.setup_ms),
                    ("events_ok", if r.events == r.baseline.events { 1.0 } else { 0.0 }),
                ],
            })
            .collect();
        let mut out = render_table("E9 baseline comparison", &rows);
        for id in &self.only_current {
            out.push_str(&format!("  new scenario (no baseline): {id}\n"));
        }
        for id in &self.only_baseline {
            out.push_str(&format!("  baseline scenario not rerun: {id}\n"));
        }
        let mismatches = self.event_mismatches();
        for r in &mismatches {
            out.push_str(&format!(
                "  EVENT COUNT MISMATCH {}: baseline {} vs current {} — the schedule changed\n",
                r.scenario, r.baseline.events, r.events
            ));
        }
        let regressions = self.regressions();
        for r in &regressions {
            out.push_str(&format!(
                "  REGRESSION {}: {:.0} -> {:.0} ev/s ({:+.1}%)\n",
                r.scenario,
                r.baseline.events_per_sec,
                r.events_per_sec,
                (r.speedup() - 1.0) * 100.0
            ));
        }
        let setup_regressions = self.setup_regressions();
        for r in &setup_regressions {
            out.push_str(&format!(
                "  SETUP REGRESSION {}: {:.0} -> {:.0} ms\n",
                r.scenario, r.baseline.setup_ms, r.setup_ms
            ));
        }
        out.push_str(&format!(
            "verdict: {} ({} matched, {} regressions > {:.0}%, {} event mismatches, \
             {} setup regressions)\n",
            if self.passed() { "PASS" } else { "FAIL" },
            self.rows.len(),
            regressions.len(),
            self.tolerance * 100.0,
            mismatches.len(),
            setup_regressions.len()
        ));
        out
    }
}

/// Diffs freshly measured `records` against `baseline` with the given tolerance
/// (see [`DEFAULT_TOLERANCE`]).
pub fn compare_against_baseline(
    records: &[PerfRecord],
    baseline: &Baseline,
    tolerance: f64,
) -> CompareReport {
    let mut report = CompareReport { tolerance, ..CompareReport::default() };
    let mut seen = std::collections::BTreeSet::new();
    for r in records {
        seen.insert(r.scenario.clone());
        match baseline.scenarios.get(&r.scenario) {
            Some(&b) => report.rows.push(CompareRow {
                scenario: r.scenario.clone(),
                baseline: b,
                events: r.events,
                events_per_sec: r.events_per_sec,
                setup_ms: r.setup_ms,
            }),
            None => report.only_current.push(r.scenario.clone()),
        }
    }
    report.only_baseline =
        baseline.scenarios.keys().filter(|id| !seen.contains(*id)).cloned().collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::render_artifact;

    fn record(scenario: &str, events: u64, eps: f64) -> PerfRecord {
        PerfRecord {
            scenario: scenario.into(),
            family: "grid".into(),
            n: 16,
            m: 24,
            synchronizer: "det".into(),
            adversary: "uniform".into(),
            threads: 1,
            workers: 1,
            pulse_bound: 5,
            sync_rounds: 5,
            sync_messages: 10,
            setup_ms: 0.0,
            wall_seconds: events as f64 / eps,
            events,
            batched_ticks: 0,
            dropped_events: 0,
            fault_transitions: 0,
            peak_live_handles: 0,
            arena_bytes: 0,
            max_batch: 0,
            events_per_sec: eps,
            messages: 10,
            algorithm_messages: 10,
            control_messages: 0,
            acks: events,
            time_overhead: 1.0,
            message_overhead: 1.0,
        }
    }

    #[test]
    fn roundtrips_the_emitters_artifact() {
        let records = vec![record("grid/16/det/uniform", 100, 5e5)];
        let baseline = Baseline::parse(&render_artifact("full", &records)).expect("parse");
        assert_eq!(baseline.mode, "full");
        assert_eq!(
            baseline.scenarios["grid/16/det/uniform"],
            BaselineScenario { events: 100, events_per_sec: 5e5, setup_ms: 0.0 }
        );
    }

    #[test]
    fn rejects_foreign_schemas() {
        assert!(Baseline::parse("{\"schema\": \"something/v9\"}").is_err());
        assert!(Baseline::parse("{not json").is_err());
    }

    #[test]
    fn parses_strings_numbers_and_escapes() {
        let mut p = Parser::new(r#"{"a": [1, -2.5e3, "x\n\"yA"], "b": {"k": true}}"#);
        let v = p.parse_value().expect("parse");
        let Value::Arr(items) = v.get("a").unwrap() else { panic!("a is an array") };
        assert_eq!(items[0], Value::Num(1.0));
        assert_eq!(items[1], Value::Num(-2500.0));
        assert_eq!(items[2], Value::Str("x\n\"yA".into()));
        assert_eq!(v.get("b").unwrap().get("k"), Some(&Value::Bool(true)));
    }

    #[test]
    fn flags_regressions_and_event_mismatches() {
        let old = vec![
            record("grid/16/det/uniform", 100_000, 1e6),
            record("grid/16/det/jitter", 100_000, 1e6),
            record("grid/16/alpha/uniform", 50, 1e6),
            record("cycle/9/det/uniform", 42, 1e6),
        ];
        let baseline = Baseline::parse(&render_artifact("full", &old)).expect("parse");
        let new = vec![
            record("grid/16/det/uniform", 100_000, 1.5e6), // faster: fine
            record("grid/16/det/jitter", 100_000, 0.7e6),  // -30%: regression
            record("grid/16/alpha/uniform", 51, 1e6),      // schedule changed
            record("torus/16/det/uniform", 10, 1e6),       // new tier: listed only
        ];
        let report = compare_against_baseline(&new, &baseline, DEFAULT_TOLERANCE);
        assert!(!report.passed());
        assert!(!report.schedule_ok(), "an event mismatch must fail events-only mode too");
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.regressions().len(), 1);
        assert_eq!(report.regressions()[0].scenario, "grid/16/det/jitter");
        assert_eq!(report.event_mismatches().len(), 1);
        assert_eq!(report.event_mismatches()[0].scenario, "grid/16/alpha/uniform");
        assert_eq!(report.only_current, vec!["torus/16/det/uniform".to_string()]);
        assert_eq!(report.only_baseline, vec!["cycle/9/det/uniform".to_string()]);
        let text = report.render();
        assert!(text.contains("FAIL"));
        assert!(text.contains("REGRESSION grid/16/det/jitter"));
        assert!(text.contains("EVENT COUNT MISMATCH grid/16/alpha/uniform"));
    }

    #[test]
    fn pessimizing_a_fast_scenario_is_still_caught() {
        // Baseline wall 8ms (below the noise floor) but the current run takes
        // 400ms: the current-side gate keeps genuine pessimizations visible.
        let old = vec![record("grid/256/det/uniform", 80_000, 1e7)];
        let baseline = Baseline::parse(&render_artifact("full", &old)).expect("parse");
        let new = vec![record("grid/256/det/uniform", 80_000, 2e5)];
        let report = compare_against_baseline(&new, &baseline, DEFAULT_TOLERANCE);
        assert_eq!(report.regressions().len(), 1);
        assert!(!report.passed());
        assert!(report.schedule_ok(), "a pure wall-clock regression passes events-only mode");
        // The reverse: a noisy sub-floor current measurement never fails.
        let new = vec![record("grid/256/det/uniform", 80_000, 5e6)];
        let report = compare_against_baseline(&new, &baseline, DEFAULT_TOLERANCE);
        assert!(report.passed());
    }

    fn with_setup(mut r: PerfRecord, setup_ms: f64) -> PerfRecord {
        r.setup_ms = setup_ms;
        r
    }

    #[test]
    fn setup_regressions_fail_above_the_noise_floor() {
        let old = vec![
            with_setup(record("grid/4096/det/uniform", 1000, 1e6), 120.0),
            with_setup(record("grid/256/det/uniform", 100, 1e6), 4.0),
        ];
        let baseline = Baseline::parse(&render_artifact("full", &old)).expect("parse");
        // 120 ms -> 300 ms: a real setup regression.
        let new = vec![
            with_setup(record("grid/4096/det/uniform", 1000, 1e6), 300.0),
            // 4 ms -> 8 ms: doubled, but under the 50 ms floor — noise, not a fail.
            with_setup(record("grid/256/det/uniform", 100, 1e6), 8.0),
        ];
        let report = compare_against_baseline(&new, &baseline, DEFAULT_TOLERANCE);
        assert_eq!(report.setup_regressions().len(), 1);
        assert_eq!(report.setup_regressions()[0].scenario, "grid/4096/det/uniform");
        assert!(!report.passed());
        assert!(report.render().contains("SETUP REGRESSION grid/4096/det/uniform"));
        // A sub-floor *baseline* that blows past the floor now is still caught.
        let new = vec![with_setup(record("grid/256/det/uniform", 100, 1e6), 400.0)];
        let report = compare_against_baseline(&new, &baseline, DEFAULT_TOLERANCE);
        assert_eq!(report.setup_regressions().len(), 1);
        // Zero matched scenarios (a renamed tier, a stale CI filter) must fail
        // the events-only gate rather than pass vacuously.
        let report = compare_against_baseline(
            &[record("renamed/16/det/uniform", 1, 1e6)],
            &baseline,
            DEFAULT_TOLERANCE,
        );
        assert!(report.rows.is_empty());
        assert!(!report.schedule_ok(), "an empty match set must not pass events-only mode");
        // Setup improvements pass.
        let new = vec![with_setup(record("grid/4096/det/uniform", 1000, 1e6), 60.0)];
        let report = compare_against_baseline(&new, &baseline, DEFAULT_TOLERANCE);
        assert!(report.passed());
    }

    #[test]
    fn parses_the_checked_in_v4_fixture() {
        // `fixtures/baseline_v4.json` is a verbatim excerpt of the last v4
        // artifact this repo committed (no fault or arena counters). Reading a
        // real on-disk artifact — not a hand-written literal — pins the reader
        // against the exact bytes older checkouts compare against.
        let v4 = include_str!("../fixtures/baseline_v4.json");
        let baseline = Baseline::parse(v4).expect("v4 fixture parses");
        assert_eq!(baseline.mode, "full");
        assert_eq!(baseline.scenarios.len(), 3);
        assert_eq!(
            baseline.scenarios["grid/4096/det/uniform"],
            BaselineScenario {
                events: 1_119_962,
                events_per_sec: 1_424_173.071_404_047_8,
                setup_ms: 18.311_127,
            }
        );
        assert_eq!(baseline.scenarios["grid/256/direct/none"].events, 705);
        assert_eq!(baseline.scenarios["torus/16384/det/jitter"].events, 5_245_927);
        // The v4 fixture must gate a v6 run exactly like a fresh baseline:
        // identical events pass, a changed schedule fails.
        let new = vec![record("grid/256/direct/none", 705, 1e6)];
        let report = compare_against_baseline(&new, &baseline, DEFAULT_TOLERANCE);
        assert!(report.schedule_ok(), "identical event counts must pass the v4 gate");
        let drifted = vec![record("grid/256/direct/none", 706, 1e6)];
        let report = compare_against_baseline(&drifted, &baseline, DEFAULT_TOLERANCE);
        assert!(!report.schedule_ok(), "a drifted schedule must fail the v4 gate");
    }

    #[test]
    fn parses_v3_baselines_without_worker_fields() {
        // The committed artifact regenerates as v4 mid-PR; the gate must keep
        // reading the previous release's v3 artifact until then.
        let v3 = r#"{
            "schema": "det-synchronizer-bench/v3",
            "mode": "full",
            "scenarios": [
                {"scenario": "grid/16/det/uniform", "events": 7, "threads": 2,
                 "events_per_sec": 1000.0, "setup_ms": 12.5}
            ]
        }"#;
        let baseline = Baseline::parse(v3).expect("v3 parses");
        assert_eq!(
            baseline.scenarios["grid/16/det/uniform"],
            BaselineScenario { events: 7, events_per_sec: 1000.0, setup_ms: 12.5 }
        );
    }

    #[test]
    fn parses_v2_baselines_without_a_threads_field() {
        // v2 predates the `threads` field entirely; it must stay readable too.
        let v2 = r#"{
            "schema": "det-synchronizer-bench/v2",
            "mode": "full",
            "scenarios": [
                {"scenario": "grid/16/det/uniform", "events": 7,
                 "events_per_sec": 1000.0, "setup_ms": 12.5}
            ]
        }"#;
        let baseline = Baseline::parse(v2).expect("v2 parses");
        assert_eq!(
            baseline.scenarios["grid/16/det/uniform"],
            BaselineScenario { events: 7, events_per_sec: 1000.0, setup_ms: 12.5 }
        );
    }

    #[test]
    fn parses_v1_baselines_converting_setup_seconds() {
        let v1 = r#"{
            "schema": "det-synchronizer-bench/v1",
            "mode": "full",
            "scenarios": [
                {"scenario": "grid/16/det/uniform", "events": 7,
                 "events_per_sec": 1000.0, "setup_seconds": 0.25}
            ]
        }"#;
        let baseline = Baseline::parse(v1).expect("v1 parses");
        assert_eq!(baseline.scenarios["grid/16/det/uniform"].setup_ms, 250.0);
    }

    #[test]
    fn within_tolerance_slowdowns_pass() {
        let old = vec![record("grid/16/det/uniform", 100_000, 1e6)];
        let baseline = Baseline::parse(&render_artifact("smoke", &old)).expect("parse");
        let new = vec![record("grid/16/det/uniform", 100_000, 0.85e6)];
        let report = compare_against_baseline(&new, &baseline, DEFAULT_TOLERANCE);
        assert!(report.passed());
        assert!(report.render().contains("PASS"));
    }
}
