//! E8 — robustness against delay adversaries.
fn main() {
    let rows = ds_bench::experiment_adversaries(40);
    ds_bench::print_table("E8: adversarial delay models (synchronized BFS)", &rows);
}
