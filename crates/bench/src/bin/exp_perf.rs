//! E9 — engine performance matrix (graph family × synchronizer × adversary),
//! written to `BENCH_synchronizer.json` (schema in DESIGN.md §4).
//!
//! Usage: `exp_perf [--smoke] [--filter SUBSTR] [--out PATH]`

use ds_bench::perf::{experiment_perf, render_artifact, PerfOptions, PerfRecord};

fn main() {
    let mut opts = PerfOptions::default();
    let mut out_path = String::from("BENCH_synchronizer.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--filter" => {
                opts.filter = Some(args.next().expect("--filter requires a substring"));
            }
            "--out" => out_path = args.next().expect("--out requires a path"),
            other => panic!("unknown argument {other:?} (expected --smoke, --filter, --out)"),
        }
    }

    let records = experiment_perf(&opts);
    let rows: Vec<_> = records.iter().map(PerfRecord::to_row).collect();
    ds_bench::print_table("E9: engine performance (single-source BFS)", &rows);

    let mode = if opts.smoke { "smoke" } else { "full" };
    let artifact = render_artifact(mode, &records);
    std::fs::write(&out_path, artifact).expect("write benchmark artifact");
    println!("wrote {} scenarios to {out_path}", records.len());
}
