//! E9 — engine performance matrix (graph family × synchronizer × adversary),
//! written to `BENCH_synchronizer.json` (schema in DESIGN.md §4).
//!
//! Usage: `exp_perf [--smoke] [--filter SUBSTR] [--shards K] [--workers W]
//!                  [--out PATH] [--compare BASELINE.json] [--compare-out PATH]
//!                  [--tolerance PCT] [--events-only]`
//!
//! `--events-only` restricts the non-zero-exit conditions of `--compare` to
//! event-count mismatches — the machine-independent schedule-identity check.
//! CI uses it because its runners and the machine that recorded the committed
//! artifact differ (and wobble run to run) by more than any useful wall-clock
//! tolerance; the throughput/setup deltas are still printed and uploaded.
//!
//! `--shards K` runs every asynchronous scenario on the sharded engine
//! (`SchedulerKind::Sharded { shards: K, .. }`) under unchanged scenario ids, so
//! a `--compare` against a serial baseline doubles as a schedule-identity check:
//! the sharded engine is bit-identical by contract, and any event-count drift
//! fails the comparison. `--workers W` sizes the engine's persistent worker
//! pool independently of the shard count (default: one worker per shard); a
//! good value is the host's core count. Schedules are bit-identical for every
//! worker count, so the same comparison gates it.
//!
//! With `--compare`, the run is additionally diffed against a previously recorded
//! artifact: per-scenario throughput and setup deltas are printed (and written to
//! `--compare-out`, default `BENCH_compare.txt`), and the process exits non-zero
//! if any matched scenario regressed in throughput or setup cost (`setup_ms`) by
//! more than the tolerance (default 20 %) or processed a different number of
//! events (i.e. the simulated schedule changed).

use ds_bench::compare::{compare_against_baseline, Baseline, DEFAULT_TOLERANCE};
use ds_bench::perf::{experiment_perf, render_artifact, PerfOptions, PerfRecord};

fn main() {
    let mut opts = PerfOptions::default();
    let mut out_path = String::from("BENCH_synchronizer.json");
    let mut compare_path: Option<String> = None;
    let mut compare_out = String::from("BENCH_compare.txt");
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut events_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--filter" => {
                opts.filter = Some(args.next().expect("--filter requires a substring"));
            }
            "--shards" => {
                opts.shards = args
                    .next()
                    .expect("--shards requires a count")
                    .parse()
                    .expect("--shards must be a positive integer");
                assert!(opts.shards >= 1, "--shards must be at least 1");
            }
            "--workers" => {
                opts.workers = args
                    .next()
                    .expect("--workers requires a count")
                    .parse()
                    .expect("--workers must be a non-negative integer (0 = one per shard)");
            }
            "--out" => out_path = args.next().expect("--out requires a path"),
            "--compare" => {
                compare_path = Some(args.next().expect("--compare requires a baseline path"));
            }
            "--compare-out" => compare_out = args.next().expect("--compare-out requires a path"),
            "--events-only" => events_only = true,
            "--tolerance" => {
                let pct: f64 = args
                    .next()
                    .expect("--tolerance requires a percentage")
                    .parse()
                    .expect("--tolerance must be a number (percent)");
                tolerance = pct / 100.0;
            }
            other => panic!(
                "unknown argument {other:?} (expected --smoke, --filter, --shards, --workers, \
                 --out, --compare, --compare-out, --tolerance, --events-only)"
            ),
        }
    }

    // Load the baseline up front: `--out` may overwrite the very file being
    // compared against (the CI job reuses the committed artifact's path).
    let baseline = compare_path.map(|path| {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        Baseline::parse(&text).unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"))
    });

    let records = experiment_perf(&opts);
    let rows: Vec<_> = records.iter().map(PerfRecord::to_row).collect();
    ds_bench::print_table("E9: engine performance (single-source BFS)", &rows);

    let mode = if opts.smoke { "smoke" } else { "full" };
    let artifact = render_artifact(mode, &records);
    std::fs::write(&out_path, artifact).expect("write benchmark artifact");
    println!("wrote {} scenarios to {out_path}", records.len());

    if let Some(baseline) = baseline {
        let report = compare_against_baseline(&records, &baseline, tolerance);
        let text = report.render();
        print!("{text}");
        std::fs::write(&compare_out, &text).expect("write comparison report");
        println!("wrote comparison report to {compare_out}");
        let ok = if events_only {
            println!(
                "events-only mode: wall-clock and setup deltas are informational, \
                 event counts gate"
            );
            report.schedule_ok()
        } else {
            report.passed()
        };
        if !ok {
            std::process::exit(1);
        }
    }
}
