//! E11 — simulation-as-a-service matrix (tier × worker count), written to
//! `BENCH_service.json` (same `det-synchronizer-bench/v6` schema as E9, with
//! `suite: "service"`).
//!
//! Usage: `exp_service [--smoke] [--filter SUBSTR] [--out PATH]
//!                     [--compare BASELINE.json] [--compare-out PATH]
//!                     [--tolerance PCT] [--events-only]`
//!
//! Each scenario runs a fixed batch of independent requests through a
//! `SessionPool` and reports requests/sec at that worker count, next to the
//! cold-vs-cache-hit setup cost (`setup_cold_ms` / `setup_warm_ms` /
//! `setup_speedup`). Every pooled run is asserted bit-identical to its
//! standalone `Session` run before any number is recorded, so the artifact
//! only ever describes provably unchanged schedules.
//!
//! `--compare` diffs against a committed artifact through the same pipeline as
//! `exp_perf`; `--events-only` restricts the non-zero-exit conditions to
//! event-count mismatches (per-batch totals are deterministic), which is the
//! machine-independent gate CI uses.

use ds_bench::compare::{compare_against_baseline, Baseline, DEFAULT_TOLERANCE};
use ds_bench::service::{experiment_service, render_artifact, ServiceOptions, ServiceRecord};

fn main() {
    let mut opts = ServiceOptions::default();
    let mut out_path = String::from("BENCH_service.json");
    let mut compare_path: Option<String> = None;
    let mut compare_out = String::from("BENCH_service_compare.txt");
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut events_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--filter" => {
                opts.filter = Some(args.next().expect("--filter requires a substring"));
            }
            "--out" => out_path = args.next().expect("--out requires a path"),
            "--compare" => {
                compare_path = Some(args.next().expect("--compare requires a baseline path"));
            }
            "--compare-out" => compare_out = args.next().expect("--compare-out requires a path"),
            "--events-only" => events_only = true,
            "--tolerance" => {
                let pct: f64 = args
                    .next()
                    .expect("--tolerance requires a percentage")
                    .parse()
                    .expect("--tolerance must be a number (percent)");
                tolerance = pct / 100.0;
            }
            other => panic!(
                "unknown argument {other:?} (expected --smoke, --filter, --out, --compare, \
                 --compare-out, --tolerance, --events-only)"
            ),
        }
    }

    // Load the baseline up front: `--out` may overwrite the file being
    // compared against (the CI job reuses the committed artifact's path).
    let baseline = compare_path.map(|path| {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        Baseline::parse(&text).unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"))
    });

    let records = experiment_service(&opts);
    let rows: Vec<_> = records.iter().map(ServiceRecord::to_row).collect();
    ds_bench::print_table("E11: service throughput (batched BFS via SessionPool)", &rows);

    let mode = if opts.smoke { "smoke" } else { "full" };
    let artifact = render_artifact(mode, &records);
    std::fs::write(&out_path, artifact).expect("write benchmark artifact");
    println!("wrote {} scenarios to {out_path}", records.len());

    if let Some(baseline) = baseline {
        let perf_records: Vec<_> = records.iter().map(ServiceRecord::to_perf_record).collect();
        let report = compare_against_baseline(&perf_records, &baseline, tolerance);
        let text = report.render();
        print!("{text}");
        std::fs::write(&compare_out, &text).expect("write comparison report");
        println!("wrote comparison report to {compare_out}");
        let ok = if events_only {
            println!(
                "events-only mode: wall-clock and setup deltas are informational, \
                 event counts gate"
            );
            report.schedule_ok()
        } else {
            report.passed()
        };
        if !ok {
            std::process::exit(1);
        }
    }
}
