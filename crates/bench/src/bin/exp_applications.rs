//! E3/E4/E5 — asynchronous BFS, leader election and MST (Corollaries 1.2-1.4).
fn main() {
    let rows = ds_bench::experiment_applications(&[16, 32, 48, 64], 7);
    ds_bench::print_table("E3-E5: applications (BFS, leader election, MST)", &rows);
}
