//! Scheduler microbenchmarks: the asynchronous engine's hot data structures in
//! isolation — `TimingWheel` vs the `BinaryHeap` reference on `schedule` /
//! `take_due`, and `StageQueue` vs a binary heap on `push` / `pop`.
//!
//! E7/E9 measure whole runs; constant-factor regressions in the scheduler hide
//! inside them behind protocol and cache noise. This binary drives the structures
//! directly with a deterministic engine-like workload (bursty schedules, bounded
//! delays, batched drains, clustered link priorities), so a slowdown of the wheel
//! or the bucket queue is visible without a full E9 sweep. No external deps: the
//! timing loop is hand-rolled and rows go through the shared `ds-bench` table
//! renderer.
//!
//! Usage: `exp_sched [--smoke]` (`--smoke` shrinks the op counts for CI).

use ds_bench::table::{print_table, Row};
use ds_netsim::scheduler::{EventScheduler, HeapScheduler, TimingWheel};
use ds_netsim::stage_queue::StageQueue;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

const SAMPLES: usize = 5;

/// Deterministic LCG, the same flavor the test suites use.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, m: u64) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 33) % m
    }
}

/// Runs `f` (which performs `ops` operations) `SAMPLES` times and returns the
/// median ns/op.
fn median_ns_per_op(ops: u64, mut f: impl FnMut()) -> f64 {
    let mut per_op: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64 / ops as f64
        })
        .collect();
    per_op.sort_by(f64::total_cmp);
    per_op[SAMPLES / 2]
}

/// Engine-like scheduler workload: bursts of events with bounded delays from the
/// moving current time, drained tick by tick. `slow_every > 0` makes every n-th
/// delay multi-horizon (the overflow path of the wheel).
fn drive_scheduler<S: EventScheduler<u32>>(sched: &mut S, events: u64, slow_every: u64) {
    let mut rng = Lcg(0x5EED);
    let mut now = 0u64;
    let mut seq = 0u64;
    let mut pending = 0u64;
    let mut due: Vec<(u64, u32)> = Vec::new();
    while seq < events || pending > 0 {
        if seq < events && (pending == 0 || rng.next(3) > 0) {
            for _ in 0..=rng.next(4) {
                if seq == events {
                    break;
                }
                let delay = if slow_every > 0 && seq.is_multiple_of(slow_every) {
                    1000 + rng.next(4000)
                } else {
                    1 + rng.next(1000)
                };
                sched.schedule(now + delay, seq, (seq % 8191) as u32);
                seq += 1;
                pending += 1;
            }
        } else {
            now = sched.take_due(&mut due).expect("pending > 0");
            pending -= due.len() as u64;
            due.clear();
        }
    }
}

fn scheduler_rows(events: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for (label, slow_every) in [("in-horizon", 0u64), ("10%-overflow", 10)] {
        let wheel_ns = median_ns_per_op(2 * events, || {
            let mut wheel = TimingWheel::new(1000);
            drive_scheduler(&mut wheel, events, slow_every);
        });
        let heap_ns = median_ns_per_op(2 * events, || {
            let mut heap = HeapScheduler::new();
            drive_scheduler(&mut heap, events, slow_every);
        });
        for (kind, ns) in [("wheel", wheel_ns), ("heap", heap_ns)] {
            rows.push(Row {
                label: format!("sched/{kind}/{label}"),
                values: vec![
                    ("events", events as f64),
                    ("ns/op", ns),
                    ("Mops/s", 1e3 / ns),
                    ("vs_heap", heap_ns / ns),
                ],
            });
        }
    }
    rows
}

/// Link-queue workload: clustered priorities around a slowly advancing stage,
/// interleaved pushes and pops — the shape the synchronizers produce.
fn drive_stage_queue(ops: u64) {
    let mut rng = Lcg(0xBEEF);
    let mut q: StageQueue<u32> = StageQueue::new();
    let mut seq = 0u64;
    let mut stage = 50u64;
    for op in 0..ops {
        if op.is_multiple_of(64) {
            stage += 1;
        }
        if q.is_empty() || rng.next(2) == 0 {
            q.push(stage + rng.next(12), seq, (seq % 8191) as u32);
            seq += 1;
        } else {
            q.pop();
        }
    }
    while q.pop().is_some() {}
}

fn drive_reference_heap(ops: u64) {
    let mut rng = Lcg(0xBEEF);
    let mut q: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut stage = 50u64;
    for op in 0..ops {
        if op.is_multiple_of(64) {
            stage += 1;
        }
        if q.is_empty() || rng.next(2) == 0 {
            q.push(Reverse((stage + rng.next(12), seq, (seq % 8191) as u32)));
            seq += 1;
        } else {
            q.pop();
        }
    }
    while q.pop().is_some() {}
}

fn stage_queue_rows(ops: u64) -> Vec<Row> {
    let bucket_ns = median_ns_per_op(ops, || drive_stage_queue(ops));
    let heap_ns = median_ns_per_op(ops, || drive_reference_heap(ops));
    [("stage-queue", bucket_ns), ("binary-heap", heap_ns)]
        .into_iter()
        .map(|(kind, ns)| Row {
            label: format!("link/{kind}/push+pop"),
            values: vec![
                ("ops", ops as f64),
                ("ns/op", ns),
                ("Mops/s", 1e3 / ns),
                ("vs_heap", heap_ns / ns),
            ],
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let (events, ops) = if smoke { (200_000, 400_000) } else { (2_000_000, 4_000_000) };
    let mut rows = scheduler_rows(events);
    rows.extend(stage_queue_rows(ops));
    print_table("scheduler microbenchmarks (schedule/take_due, link push/pop)", &rows);
}
