//! Scheduler microbenchmarks: the asynchronous engine's hot data structures in
//! isolation — `TimingWheel` vs the `BinaryHeap` reference on `schedule` /
//! `take_due`, and `StageQueue` vs a binary heap on `push` / `pop`.
//!
//! E7/E9 measure whole runs; constant-factor regressions in the scheduler hide
//! inside them behind protocol and cache noise. This binary drives the structures
//! directly with a deterministic engine-like workload (bursty schedules, bounded
//! delays, batched drains, clustered link priorities), so a slowdown of the wheel
//! or the bucket queue is visible without a full E9 sweep. No external deps: the
//! timing loop is hand-rolled and rows go through the shared `ds-bench` table
//! renderer.
//!
//! Two sections back the sharded engine's parallel machinery specifically:
//!
//! * `pool/*` — the per-barrier cost of handing K shard tasks to worker
//!   threads and waiting for them back, comparing the persistent
//!   [`WorkerPool`] rendezvous against spawning a fresh `thread::scope` per
//!   barrier (the engine's previous strategy, kept here as the baseline the
//!   pool must beat).
//! * `probe/*` — the batched-window probe (`TimingWheel::window_cap` +
//!   `occupied_ticks_within`), which the engine runs once per barrier when
//!   batching is on; it must stay cheap enough to be free relative to a drain.
//! * `arena/*` — the event-arena delivery path: draining one tick's events
//!   through the SoA `EventBatch` (grouped by destination, payloads recycled
//!   through the `PayloadArena`) against the per-event owned-enum walk it
//!   replaced, plus the hierarchical wheel on the 10%-overflow workload —
//!   whose every multi-horizon delay must be absorbed by the promoted/coarse
//!   tiers (`far_parked == 0`, asserted) instead of the old `BinaryHeap`
//!   overflow path.
//!
//! Usage: `exp_sched [--smoke]` (`--smoke` shrinks the op counts for CI).

use ds_bench::table::{print_table, Row};
use ds_netsim::arena::{EventBatch, PayloadArena};
use ds_netsim::pool::WorkerPool;
use ds_netsim::scheduler::{EventScheduler, HeapScheduler, TimingWheel};
use ds_netsim::stage_queue::StageQueue;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

const SAMPLES: usize = 5;

/// Deterministic LCG, the same flavor the test suites use.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, m: u64) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 33) % m
    }
}

/// Runs `f` (which performs `ops` operations) `SAMPLES` times and returns the
/// median ns/op.
fn median_ns_per_op(ops: u64, mut f: impl FnMut()) -> f64 {
    let mut per_op: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64 / ops as f64
        })
        .collect();
    per_op.sort_by(f64::total_cmp);
    per_op[SAMPLES / 2]
}

/// Engine-like scheduler workload: bursts of events with bounded delays from the
/// moving current time, drained tick by tick. `slow_every > 0` makes every n-th
/// delay multi-horizon (the overflow path of the wheel).
fn drive_scheduler<S: EventScheduler<u32>>(sched: &mut S, events: u64, slow_every: u64) {
    let mut rng = Lcg(0x5EED);
    let mut now = 0u64;
    let mut seq = 0u64;
    let mut pending = 0u64;
    let mut due: Vec<(u64, u32)> = Vec::new();
    while seq < events || pending > 0 {
        if seq < events && (pending == 0 || rng.next(3) > 0) {
            for _ in 0..=rng.next(4) {
                if seq == events {
                    break;
                }
                let delay = if slow_every > 0 && seq.is_multiple_of(slow_every) {
                    1000 + rng.next(4000)
                } else {
                    1 + rng.next(1000)
                };
                sched.schedule(now + delay, seq, (seq % 8191) as u32);
                seq += 1;
                pending += 1;
            }
        } else {
            now = sched.take_due(&mut due).expect("pending > 0");
            pending -= due.len() as u64;
            due.clear();
        }
    }
}

fn scheduler_rows(events: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for (label, slow_every) in [("in-horizon", 0u64), ("10%-overflow", 10)] {
        let wheel_ns = median_ns_per_op(2 * events, || {
            let mut wheel = TimingWheel::new(1000);
            drive_scheduler(&mut wheel, events, slow_every);
        });
        let heap_ns = median_ns_per_op(2 * events, || {
            let mut heap = HeapScheduler::new();
            drive_scheduler(&mut heap, events, slow_every);
        });
        for (kind, ns) in [("wheel", wheel_ns), ("heap", heap_ns)] {
            rows.push(Row {
                label: format!("sched/{kind}/{label}"),
                values: vec![
                    ("events", events as f64),
                    ("ns/op", ns),
                    ("Mops/s", 1e3 / ns),
                    ("vs_heap", heap_ns / ns),
                ],
            });
        }
    }
    rows
}

/// Link-queue workload: clustered priorities around a slowly advancing stage,
/// interleaved pushes and pops — the shape the synchronizers produce.
fn drive_stage_queue(ops: u64) {
    let mut rng = Lcg(0xBEEF);
    let mut q: StageQueue<u32> = StageQueue::new();
    let mut seq = 0u64;
    let mut stage = 50u64;
    for op in 0..ops {
        if op.is_multiple_of(64) {
            stage += 1;
        }
        if q.is_empty() || rng.next(2) == 0 {
            q.push(stage + rng.next(12), seq, (seq % 8191) as u32);
            seq += 1;
        } else {
            q.pop();
        }
    }
    while q.pop().is_some() {}
}

fn drive_reference_heap(ops: u64) {
    let mut rng = Lcg(0xBEEF);
    let mut q: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut stage = 50u64;
    for op in 0..ops {
        if op.is_multiple_of(64) {
            stage += 1;
        }
        if q.is_empty() || rng.next(2) == 0 {
            q.push(Reverse((stage + rng.next(12), seq, (seq % 8191) as u32)));
            seq += 1;
        } else {
            q.pop();
        }
    }
    while q.pop().is_some() {}
}

fn stage_queue_rows(ops: u64) -> Vec<Row> {
    let bucket_ns = median_ns_per_op(ops, || drive_stage_queue(ops));
    let heap_ns = median_ns_per_op(ops, || drive_reference_heap(ops));
    [("stage-queue", bucket_ns), ("binary-heap", heap_ns)]
        .into_iter()
        .map(|(kind, ns)| Row {
            label: format!("link/{kind}/push+pop"),
            values: vec![
                ("ops", ops as f64),
                ("ns/op", ns),
                ("Mops/s", 1e3 / ns),
                ("vs_heap", heap_ns / ns),
            ],
        })
        .collect()
}

/// Per-shard task for the dispatch benchmark: big enough to move by pointer
/// (a heap buffer), with a touch of real work so a barrier is not a pure
/// channel ping-pong.
fn pool_task(shard: usize) -> Vec<u64> {
    (0..64).map(|i| (shard as u64) << 32 | i).collect()
}

fn barrier_work(task: &mut [u64]) {
    for v in task.iter_mut() {
        *v = v.wrapping_mul(0x9E3779B97F4A7C15);
    }
}

/// `barriers` rendezvous over a persistent pool: dispatch K tasks, collect K,
/// repeat — the engine's steady-state shape.
fn drive_pool_rendezvous(barriers: u64, shards: usize, workers: usize) {
    let mut tasks: Vec<Option<Vec<u64>>> = (0..shards).map(|s| Some(pool_task(s))).collect();
    WorkerPool::run(
        workers,
        |task: &mut Vec<u64>| barrier_work(task),
        |pool| {
            for _ in 0..barriers {
                for (slot, task) in tasks.iter_mut().enumerate() {
                    pool.dispatch(slot, task.take().expect("collected last barrier"));
                }
                for _ in 0..shards {
                    let (slot, task, panic) = pool.collect();
                    assert!(panic.is_none());
                    tasks[slot] = Some(task);
                }
            }
        },
    );
}

/// The pre-pool baseline: a fresh `thread::scope` spawn/join per barrier.
/// (This binary is outside ds-lint's scan set; production code must go
/// through `ds_netsim::pool` instead.)
fn drive_scope_spawn(barriers: u64, shards: usize, workers: usize) {
    let mut tasks: Vec<Vec<u64>> = (0..shards).map(pool_task).collect();
    for _ in 0..barriers {
        std::thread::scope(|scope| {
            for chunk in tasks.chunks_mut(shards.div_ceil(workers)) {
                scope.spawn(|| chunk.iter_mut().for_each(|t| barrier_work(t)));
            }
        });
    }
}

fn pool_rows(barriers: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for (shards, workers) in [(4usize, 2usize), (4, 4), (7, 2)] {
        let spawn_ns = median_ns_per_op(barriers, || drive_scope_spawn(barriers, shards, workers));
        let pool_ns =
            median_ns_per_op(barriers, || drive_pool_rendezvous(barriers, shards, workers));
        for (kind, ns) in [("rendezvous", pool_ns), ("scope-spawn", spawn_ns)] {
            rows.push(Row {
                label: format!("pool/{kind}/{shards}sh-{workers}w"),
                values: vec![
                    ("barriers", barriers as f64),
                    ("ns/barrier", ns),
                    ("vs_spawn", spawn_ns / ns),
                ],
            });
        }
    }
    rows
}

/// Sparse wheel occupancy (events 200 ticks apart, delays well past one
/// tick), probed the way the engine's batching gate does: cap the window,
/// walk the occupancy bitsets, drain to the window end, refill what drained.
fn drive_window_probe(probes: u64) -> u64 {
    let mut wheel = TimingWheel::new(1000);
    let mut seq = 0u64;
    // Five events in flight, 200 ticks apart: sparse occupancy with real
    // multi-tick windows, held in steady state by the drain-matched refill.
    for i in 1..=5u64 {
        wheel.schedule(200 * i, seq, 0u32);
        seq += 1;
    }
    let mut window: Vec<u64> = Vec::new();
    let mut due: Vec<(u64, u32)> = Vec::new();
    let mut occupied = 0u64;
    for _ in 0..probes {
        let t0 = wheel.next_tick().expect("refilled every probe");
        window.clear();
        window.push(t0);
        let end = wheel.window_cap(t0 + 499);
        if end > t0 {
            wheel.occupied_ticks_within(end, &mut window);
            window.sort_unstable();
            window.dedup();
        }
        occupied += window.len() as u64;
        let t_last = *window.last().expect("window holds t0");
        let mut drained = 0u64;
        for &t in &window {
            if wheel.next_tick() == Some(t) {
                wheel.take_due(&mut due);
                drained += due.len() as u64;
                due.clear();
            }
        }
        wheel.advance_to(t_last);
        for i in 1..=drained {
            wheel.schedule(t_last + 200 * i, seq, 0u32);
            seq += 1;
        }
    }
    occupied
}

fn probe_rows(probes: u64) -> Vec<Row> {
    let mut occupied = 0u64;
    let probe_ns = median_ns_per_op(probes, || occupied = drive_window_probe(probes));
    vec![Row {
        label: "probe/window-cap+bitset".to_string(),
        values: vec![
            ("probes", probes as f64),
            ("ns/probe", probe_ns),
            ("ticks/win", occupied as f64 / probes as f64),
        ],
    }]
}

/// Destination nodes the arena drain benchmark spreads its events over.
const ARENA_DSTS: u64 = 512;

/// In-flight population for the arena drain benchmark. Delays cluster on
/// coarse multiples (protocols send in waves, so arrivals pile onto shared
/// ticks), which with this population gives batches of a few hundred events
/// per drained tick — the shape of a busy barrier, where the batch classify
/// amortizes.
const ARENA_PENDING: u64 = 4096;

/// Per-destination "node state" large enough that activation order shows up
/// in cache behavior — grouping by destination touches each slot once per
/// tick instead of once per event.
type NodeState = [u64; 16];

/// The engine's arena path, end to end: payloads parked in the recycled
/// arena at send time, 8-byte `(dst, handle)` rows through the wheel slots,
/// and each tick's drain classified into the SoA `EventBatch` and activated
/// destination by destination.
fn drive_arena_batch(events: u64, nodes: &mut [NodeState]) -> u64 {
    let mut wheel: TimingWheel<(u32, u32)> = TimingWheel::new(1000);
    let mut arena: PayloadArena<[u64; 4]> = PayloadArena::new();
    let mut batch = EventBatch::new();
    let mut due: Vec<(u64, (u32, u32))> = Vec::new();
    let mut rng = Lcg(0xA7E4A);
    let mut seq = 0u64;
    let mut pending = 0u64;
    let mut acc = 0u64;
    let mut now = 0u64;
    while seq < events || pending > 0 {
        if seq < events && pending < ARENA_PENDING {
            for _ in 0..64 {
                if seq == events {
                    break;
                }
                let dst = rng.next(ARENA_DSTS) as u32;
                let handle = arena.alloc([seq, seq ^ 1, seq ^ 2, seq ^ 3]);
                wheel.schedule(now + 100 * (1 + rng.next(10)), seq, (dst, handle));
                seq += 1;
                pending += 1;
            }
        } else {
            now = wheel.take_due(&mut due).expect("pending > 0");
            pending -= due.len() as u64;
            batch.begin();
            for &(s, (dst, handle)) in &due {
                batch.push_deliver(s, 0, handle, dst);
            }
            due.clear();
            batch.seal();
            for g in 0..batch.groups() {
                let (dst, idxs) = batch.group(g);
                let node = &mut nodes[dst as usize];
                for &i in idxs {
                    let (_, _, _, handle) = batch.event(i as usize);
                    let msg = arena.take(handle);
                    node[(msg[0] % 16) as usize] =
                        node[(msg[0] % 16) as usize].wrapping_add(msg[1]);
                    acc = acc.wrapping_add(msg[0]);
                }
            }
        }
    }
    assert_eq!(arena.live(), 0, "every handle must come back");
    acc
}

/// The pre-arena path: enum rows owning their payloads inline travel through
/// the wheel slots (and their free lists) by value, and the drain walks them
/// one event at a time in global seq order — destinations interleaved, node
/// state revisited per event rather than per group.
enum OwnedEvent {
    Deliver {
        dst: u32,
        msg: [u64; 4],
    },
    #[allow(dead_code)]
    Ack,
}

fn drive_owned_events(events: u64, nodes: &mut [NodeState]) -> u64 {
    let mut wheel: TimingWheel<OwnedEvent> = TimingWheel::new(1000);
    let mut due: Vec<(u64, OwnedEvent)> = Vec::new();
    let mut rng = Lcg(0xA7E4A);
    let mut seq = 0u64;
    let mut pending = 0u64;
    let mut acc = 0u64;
    let mut now = 0u64;
    while seq < events || pending > 0 {
        if seq < events && pending < ARENA_PENDING {
            for _ in 0..64 {
                if seq == events {
                    break;
                }
                let dst = rng.next(ARENA_DSTS) as u32;
                let ev = OwnedEvent::Deliver { dst, msg: [seq, seq ^ 1, seq ^ 2, seq ^ 3] };
                wheel.schedule(now + 100 * (1 + rng.next(10)), seq, ev);
                seq += 1;
                pending += 1;
            }
        } else {
            now = wheel.take_due(&mut due).expect("pending > 0");
            pending -= due.len() as u64;
            for (_, ev) in due.drain(..) {
                if let OwnedEvent::Deliver { dst, msg } = ev {
                    let node = &mut nodes[dst as usize];
                    node[(msg[0] % 16) as usize] =
                        node[(msg[0] % 16) as usize].wrapping_add(msg[1]);
                    acc = acc.wrapping_add(msg[0]);
                }
            }
        }
    }
    acc
}

fn arena_rows(events: u64) -> Vec<Row> {
    let drained = events;
    let mut nodes = vec![[0u64; 16]; ARENA_DSTS as usize];
    let soa_ns = median_ns_per_op(drained, || {
        std::hint::black_box(drive_arena_batch(events, &mut nodes));
    });
    let owned_ns = median_ns_per_op(drained, || {
        std::hint::black_box(drive_owned_events(events, &mut nodes));
    });
    [("soa-batch", soa_ns), ("owned-aos", owned_ns)]
        .into_iter()
        .map(|(kind, ns)| Row {
            label: format!("arena/{kind}/drain"),
            values: vec![
                ("events", drained as f64),
                ("ns/event", ns),
                ("Mops/s", 1e3 / ns),
                ("vs_owned", owned_ns / ns),
            ],
        })
        .collect()
}

/// The hierarchical wheel on the 10%-overflow workload: every multi-horizon
/// delay classifies as overflow, and all of them must land in the
/// promoted/coarse tiers — the far heap (the old `BinaryHeap` overflow path)
/// stays empty for outage-shaped delays.
fn hier_wheel_rows(events: u64) -> Vec<Row> {
    let mut wheel = TimingWheel::new(1000);
    drive_scheduler(&mut wheel, events, 10);
    assert!(wheel.overflow_scheduled() > 0, "the 10%-overflow workload must overflow");
    assert_eq!(wheel.far_parked(), 0, "outage-shaped overflow must bypass the far heap");
    vec![Row {
        label: "arena/hier-wheel/10%-overflow".to_string(),
        values: vec![
            ("events", events as f64),
            ("overflow", wheel.overflow_scheduled() as f64),
            ("far_parked", wheel.far_parked() as f64),
        ],
    }]
}

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let (events, ops, barriers, probes) = if smoke {
        (200_000, 400_000, 2_000, 100_000)
    } else {
        (2_000_000, 4_000_000, 20_000, 1_000_000)
    };
    let mut rows = scheduler_rows(events);
    rows.extend(stage_queue_rows(ops));
    print_table("scheduler microbenchmarks (schedule/take_due, link push/pop)", &rows);
    print_table(
        "pool dispatch (per-barrier rendezvous vs fresh scope spawn)",
        &pool_rows(barriers),
    );
    print_table("batched-window probe (window_cap + occupancy bitsets)", &probe_rows(probes));
    print_table("event arena (SoA batch drain vs owned per-event walk)", &arena_rows(events));
    print_table(
        "hierarchical-wheel overflow tiers (10%-overflow workload, far heap must stay empty)",
        &hier_wheel_rows(events),
    );
}
