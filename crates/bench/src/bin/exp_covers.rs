//! E6 — sparse cover quality (Definition 2.1 / Theorem 4.21).
fn main() {
    let rows = ds_bench::experiment_covers(&[32, 64, 128]);
    ds_bench::print_table("E6: sparse cover quality per layer", &rows);
}
