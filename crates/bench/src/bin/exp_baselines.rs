//! E2 — comparison against Awerbuch's alpha and beta synchronizers (Appendix A).
fn main() {
    let rows = ds_bench::experiment_baselines(&[16, 36, 64, 100], 7);
    ds_bench::print_table("E2: alpha / beta / deterministic synchronizer on flooding", &rows);
}
