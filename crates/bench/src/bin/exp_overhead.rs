//! E1 — synchronizer time/message overheads (Theorem 1.1 / 5.3).
fn main() {
    let rows = ds_bench::experiment_overhead(&[16, 36, 64, 100, 144], 7);
    ds_bench::print_table("E1: deterministic synchronizer overheads (single-source BFS)", &rows);
}
